package replica

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrapeURL fetches base/metrics and returns the exposition body.
func scrapeURL(t *testing.T, base string) string {
	t.Helper()
	res, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", res.StatusCode)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one exact series line's value, or fails.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: unparsable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in scrape:\n%s", series, body)
	return 0
}

// TestClusterMetrics scrapes /metrics on BOTH sides of a replicating
// pair and pins the cross-instance contract: the leader exposes
// publisher-side series (subscribers, published records, received
// forwarded observations, enqueue lag), the follower exposes
// apply-side series (snapshots/decisions applied, forward counters,
// decode-vs-apply lag), and oreo_replication_epoch converges to the
// same value on both so subtracting the two scrapes measures lag.
func TestClusterMetrics(t *testing.T) {
	const rows = 1200
	leader, _, lts := newLeader(t, rows, 80, 0)
	fol := newFollowerFixture(t, rows, lts.URL, true)
	fts := newFollowerServer(t, fol)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	const decided = 9
	for i := 0; i < decided; i++ {
		if _, err := leader.Answer(ctx, workloadQuery(i, rows)); err != nil {
			t.Fatal(err)
		}
	}
	// And one query answered at the follower, so the forward loop and
	// the leader's received-observation counters light up too.
	if _, err := fol.Core().Answer(ctx, workloadQuery(3, rows)); err != nil {
		t.Fatal(err)
	}
	const total = decided + 1
	waitFor(t, "follower converged", func() bool { return fol.Position("orders") == total })
	waitFor(t, "forward acknowledged", func() bool { return fol.Stats().Forwarded == 1 })

	lb := scrapeURL(t, lts.URL)
	fb := scrapeURL(t, fts.URL)

	// Leader-side publisher series.
	if got := metricValue(t, lb, `oreo_replication_subscribers`); got != 1 {
		t.Errorf("subscribers = %v, want 1", got)
	}
	if got := metricValue(t, lb, `oreo_replication_published_total`); got < total {
		t.Errorf("published = %v, want >= %d", got, total)
	}
	if got := metricValue(t, lb, `oreo_replication_observations_received_total{result="observed"}`); got != 1 {
		t.Errorf("received observed = %v, want 1", got)
	}
	if got := metricValue(t, lb, `oreo_role{role="leader"}`); got != 1 {
		t.Errorf("leader role gauge = %v", got)
	}

	// Follower-side apply series.
	if got := metricValue(t, fb, `oreo_replication_snapshots_applied_total`); got < 1 {
		t.Errorf("snapshots applied = %v, want >= 1", got)
	}
	if got := metricValue(t, fb, `oreo_replication_decisions_applied_total`); got != total {
		t.Errorf("decisions applied = %v, want %d", got, total)
	}
	if got := metricValue(t, fb, `oreo_replication_forwarded_total`); got != 1 {
		t.Errorf("forwarded = %v, want 1", got)
	}
	if got := metricValue(t, fb, `oreo_role{role="follower"}`); got != 1 {
		t.Errorf("follower role gauge = %v", got)
	}
	if got := metricValue(t, fb, `oreo_queries_served_total{table="orders"}`); got != 1 {
		t.Errorf("follower served = %v, want 1", got)
	}

	// The same series name on both sides is the lag instrument: after
	// convergence both report the same epoch and zero lag.
	le := metricValue(t, lb, `oreo_replication_epoch{table="orders"}`)
	fe := metricValue(t, fb, `oreo_replication_epoch{table="orders"}`)
	if le != total || fe != total {
		t.Errorf("replication epoch: leader %v, follower %v, want %d both", le, fe, total)
	}
	if lag := metricValue(t, lb, `oreo_replication_lag_epochs{table="orders"}`); lag != 0 {
		t.Errorf("leader-side lag after convergence = %v", lag)
	}
	if lag := metricValue(t, fb, `oreo_replication_lag_epochs{table="orders"}`); lag != 0 {
		t.Errorf("follower-side lag after convergence = %v", lag)
	}
}
