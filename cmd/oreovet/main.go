// Command oreovet runs the repo's standing-invariant analyzers over
// the named packages and exits non-zero on any finding. It is the
// compile-time half of the invariant story: golden files and property
// tests catch violations at runtime on exercised paths; oreovet
// catches the same classes of violation on every path, before a test
// runs.
//
// Usage:
//
//	go run ./cmd/oreovet ./...            # analyze, exit 1 on findings
//	go run ./cmd/oreovet -list            # describe the suite
//	go run ./cmd/oreovet -update-wire-manifest
//
// Suppressions are written in the source as
//
//	//oreovet:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above. The reason is
// mandatory and reviewed like code: a reason-less directive is itself
// a diagnostic and suppresses nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"oreo/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	updateManifest := flag.Bool("update-wire-manifest", false,
		"regenerate the frozen /v1 wire manifest from the current source (review the diff!)")
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *updateManifest {
		if err := writeWireManifest(); err != nil {
			fmt.Fprintln(os.Stderr, "oreovet:", err)
			os.Exit(2)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oreovet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analysis.Suite())
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "oreovet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// writeWireManifest regenerates the serve package's frozen wire
// manifest in place.
func writeWireManifest() error {
	cfg := analysis.ServeWirefreeze
	pkgs, err := analysis.Load("", "./internal/serve")
	if err != nil {
		return err
	}
	if len(pkgs) != 1 {
		return fmt.Errorf("expected 1 package for ./internal/serve, got %d", len(pkgs))
	}
	text, err := analysis.WireManifest(pkgs[0], cfg.Types)
	if err != nil {
		return err
	}
	path := filepath.Join(pkgs[0].Dir, cfg.ManifestRel)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d frozen types)\n", path, len(cfg.Types))
	return nil
}
