package datagen

import (
	"math/rand"
	"testing"

	"oreo/internal/table"
)

func TestGenerateUnknownDataset(t *testing.T) {
	if _, err := Generate("nope", 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestGenerateAllNames(t *testing.T) {
	for _, name := range Names() {
		ds, err := Generate(name, 500, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		if ds.NumRows() != 500 {
			t.Errorf("%s: NumRows = %d, want 500", name, ds.NumRows())
		}
		if ds.Schema().NumCols() < 10 {
			t.Errorf("%s: suspiciously narrow schema (%d cols)", name, ds.Schema().NumCols())
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, _ := Generate(name, 300, rand.New(rand.NewSource(42)))
		b, _ := Generate(name, 300, rand.New(rand.NewSource(42)))
		for c := 0; c < a.Schema().NumCols(); c++ {
			for r := 0; r < 300; r += 37 {
				if !a.ValueAt(c, r).Equal(b.ValueAt(c, r)) {
					t.Fatalf("%s: value (%d,%d) differs across identical seeds", name, c, r)
				}
			}
		}
	}
}

func TestTPCHInvariants(t *testing.T) {
	ds := GenerateTPCH(2000, rand.New(rand.NewSource(7)))
	s := ds.Schema()
	ship := s.MustIndex("l_shipdate")
	order := s.MustIndex("o_orderdate")
	receipt := s.MustIndex("l_receiptdate")
	cNation := s.MustIndex("c_nationkey")
	cRegion := s.MustIndex("c_regionkey")
	qty := s.MustIndex("l_quantity")
	disc := s.MustIndex("l_discount")
	flag := s.MustIndex("l_returnflag")

	for r := 0; r < ds.NumRows(); r++ {
		od, sd, rd := ds.Int64At(order, r), ds.Int64At(ship, r), ds.Int64At(receipt, r)
		if od < TPCHOrderDateMin || od > TPCHOrderDateMax {
			t.Fatalf("row %d: orderdate %d out of range", r, od)
		}
		if sd <= od || sd > od+121 {
			t.Fatalf("row %d: shipdate %d not in (orderdate, orderdate+121]", r, sd)
		}
		if rd <= sd {
			t.Fatalf("row %d: receiptdate %d <= shipdate %d", r, rd, sd)
		}
		if n, reg := ds.Int64At(cNation, r), ds.Int64At(cRegion, r); reg != n/5 {
			t.Fatalf("row %d: regionkey %d != nationkey %d / 5", r, reg, n)
		}
		if q := ds.Int64At(qty, r); q < 1 || q > 50 {
			t.Fatalf("row %d: quantity %d out of [1,50]", r, q)
		}
		if d := ds.Float64At(disc, r); d < 0 || d > 0.10+1e-9 {
			t.Fatalf("row %d: discount %g out of [0,0.1]", r, d)
		}
		// Returns only happen for early receipts.
		if f := ds.StringAt(flag, r); (f == "R" || f == "A") && rd > 9298 {
			t.Fatalf("row %d: return flag %q for late receipt %d", r, f, rd)
		}
	}
}

func TestTPCHArrivalOrderCorrelation(t *testing.T) {
	ds := GenerateTPCH(5000, rand.New(rand.NewSource(9)))
	order := ds.Schema().MustIndex("o_orderdate")
	// First decile should have much earlier dates than the last decile.
	avg := func(lo, hi int) float64 {
		sum := 0.0
		for r := lo; r < hi; r++ {
			sum += float64(ds.Int64At(order, r))
		}
		return sum / float64(hi-lo)
	}
	early, late := avg(0, 500), avg(4500, 5000)
	if late-early < float64(TPCHOrderDateMax-TPCHOrderDateMin)/2 {
		t.Errorf("arrival order weakly correlated with order date: early=%g late=%g", early, late)
	}
}

func TestTPCDSInvariants(t *testing.T) {
	ds := GenerateTPCDS(2000, rand.New(rand.NewSource(7)))
	s := ds.Schema()
	date := s.MustIndex("ss_sold_date")
	year := s.MustIndex("d_year")
	moy := s.MustIndex("d_moy")
	dom := s.MustIndex("d_dom")
	sales := s.MustIndex("ss_sales_price")
	list := s.MustIndex("ss_list_price")
	whole := s.MustIndex("ss_wholesale_cost")

	for r := 0; r < ds.NumRows(); r++ {
		d := ds.Int64At(date, r)
		if d < TPCDSDateMin || d > TPCDSDateMax {
			t.Fatalf("row %d: sold date %d out of range", r, d)
		}
		if y := ds.Int64At(year, r); y < TPCDSYearMin || y > TPCDSYearMax {
			t.Fatalf("row %d: year %d out of range", r, y)
		}
		if m := ds.Int64At(moy, r); m < 1 || m > 12 {
			t.Fatalf("row %d: moy %d", r, m)
		}
		if dm := ds.Int64At(dom, r); dm < 1 || dm > 30 {
			t.Fatalf("row %d: dom %d", r, dm)
		}
		if ds.Float64At(sales, r) > ds.Float64At(list, r) {
			t.Fatalf("row %d: sales price above list price", r)
		}
		if ds.Float64At(whole, r) <= 0 {
			t.Fatalf("row %d: nonpositive wholesale cost", r)
		}
	}
}

func TestTPCDSCalendarConsistency(t *testing.T) {
	ds := GenerateTPCDS(3000, rand.New(rand.NewSource(5)))
	s := ds.Schema()
	date := s.MustIndex("ss_sold_date")
	year := s.MustIndex("d_year")
	for r := 0; r < ds.NumRows(); r++ {
		d := ds.Int64At(date, r)
		y := ds.Int64At(year, r)
		wantYear := TPCDSYearMin + (d-TPCDSDateMin)/365
		if wantYear > TPCDSYearMax {
			wantYear = TPCDSYearMax
		}
		if y != wantYear {
			t.Fatalf("row %d: d_year %d inconsistent with date %d (want %d)", r, y, d, wantYear)
		}
	}
}

func TestTelemetryInvariants(t *testing.T) {
	ds := GenerateTelemetry(2000, rand.New(rand.NewSource(7)))
	s := ds.Schema()
	at := s.MustIndex("arrival_time")
	status := s.MustIndex("status")
	errc := s.MustIndex("error_code")

	prev := int64(-1)
	for r := 0; r < ds.NumRows(); r++ {
		v := ds.Int64At(at, r)
		if v < prev {
			t.Fatalf("row %d: arrival_time decreases (%d < %d) — log must be append-ordered", r, v, prev)
		}
		prev = v
		if v < TelemetryTimeMin || v > TelemetryTimeMax {
			t.Fatalf("row %d: arrival_time %d out of range", r, v)
		}
		st := ds.StringAt(status, r)
		ec := ds.Int64At(errc, r)
		if st == "OK" && ec != 0 {
			t.Fatalf("row %d: OK with error code %d", r, ec)
		}
		if st == "FAILED" && ec == 0 {
			t.Fatalf("row %d: FAILED without error code", r)
		}
	}
}

func TestTelemetryCollectorStickiness(t *testing.T) {
	ds := GenerateTelemetry(5000, rand.New(rand.NewSource(3)))
	col := ds.Schema().MustIndex("collector")
	changes := 0
	for r := 1; r < ds.NumRows(); r++ {
		if ds.StringAt(col, r) != ds.StringAt(col, r-1) {
			changes++
		}
	}
	// With switching probability 1/200 we expect ~25 changes, far fewer
	// than uniform assignment (~4900).
	if changes > 200 {
		t.Errorf("collector changes %d times in 5000 rows; bursts not sticky", changes)
	}
	if changes == 0 {
		t.Error("collector never changes; no burst structure at all")
	}
}

func TestSeqHelper(t *testing.T) {
	got := seq("x#", 3)
	want := []string{"x#01", "x#02", "x#03"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq = %v, want %v", got, want)
		}
	}
}

func TestZipfStringsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := seq("v", 10)
	counts := make(map[string]int)
	for i := 0; i < 10000; i++ {
		counts[zipfStrings(rng, vals)]++
	}
	if counts["v01"] <= counts["v10"] {
		t.Errorf("zipf skew inverted: first=%d last=%d", counts["v01"], counts["v10"])
	}
	for _, v := range vals {
		if counts[v] == 0 {
			t.Errorf("value %s never drawn", v)
		}
	}
}

// Type-check the generated schemas against their accessors.
func TestSchemasWellFormed(t *testing.T) {
	for _, sch := range []*table.Schema{TPCHSchema(), TPCDSSchema(), TelemetrySchema()} {
		for i := 0; i < sch.NumCols(); i++ {
			c := sch.Col(i)
			if c.Type != table.Int64 && c.Type != table.Float64 && c.Type != table.String {
				t.Errorf("column %s has invalid type %v", c.Name, c.Type)
			}
		}
	}
}
