package oreo

import (
	"io"

	"oreo/internal/trace"
)

// TraceEvent is one recorded reorganization decision; see Optimizer
// tracing in Config.TraceCapacity.
type TraceEvent = trace.Event

// TraceKind classifies trace events.
type TraceKind = trace.Kind

// Trace event kinds.
const (
	// TraceAdmit: a candidate layout joined the dynamic state space.
	TraceAdmit = trace.EventAdmit
	// TraceReject: a candidate was ε-similar to an incumbent.
	TraceReject = trace.EventReject
	// TracePrune: a layout was evicted to respect MaxStates.
	TracePrune = trace.EventPrune
	// TraceSwitch: the optimizer reorganized into a different layout.
	TraceSwitch = trace.EventSwitch
	// TracePhase: an MTS phase ended (all counters saturated).
	TracePhase = trace.EventPhase
)

// Events returns the retained trace events, oldest first. Empty unless
// Config.TraceCapacity was set.
func (o *Optimizer) Events() []TraceEvent { return o.rec.Events() }

// DumpTrace writes the retained trace to w, one event per line.
func (o *Optimizer) DumpTrace(w io.Writer) error { return o.rec.Dump(w) }
