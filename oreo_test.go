package oreo

import (
	"math/rand"
	"testing"
)

// buildEventsTable makes a small synthetic event table through the
// public API only.
func buildEventsTable(t testing.TB, n int) *Dataset {
	t.Helper()
	schema := NewSchema(
		Column{Name: "ts", Type: Int64},
		Column{Name: "user", Type: String},
		Column{Name: "latency", Type: Float64},
	)
	b := NewDatasetBuilder(schema, n)
	users := []string{"alice", "bob", "carol", "dave"}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		b.AppendRow(Int(int64(i)), Str(users[rng.Intn(len(users))]), Float(rng.Float64()*500))
	}
	return b.Build()
}

func TestNewValidation(t *testing.T) {
	ds := buildEventsTable(t, 100)
	if _, err := New(ds, Config{InitialSort: []string{"ts"}, Alpha: 0.5}); err == nil {
		t.Error("Alpha <= 1 accepted")
	}
	if _, err := New(ds, Config{}); err == nil {
		t.Error("missing initial layout accepted")
	}
	if _, err := New(ds, Config{InitialSort: []string{"nope"}}); err == nil {
		t.Error("unknown initial sort column accepted")
	}
	if _, err := New(ds, Config{InitialSort: []string{"ts"}, Epsilon: 2}); err == nil {
		t.Error("Epsilon > 1 accepted")
	}
	if _, err := New(ds, Config{InitialSort: []string{"ts"}, WindowSize: -1}); err == nil {
		t.Error("negative window accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	ds := buildEventsTable(t, 100)
	opt, err := New(ds, Config{InitialSort: []string{"ts"}})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Alpha() != 80 {
		t.Errorf("default Alpha = %g, want 80", opt.Alpha())
	}
	if opt.cfg.Gamma != 1 || opt.cfg.Epsilon != 0.08 || opt.cfg.WindowSize != 200 {
		t.Errorf("paper defaults not applied: %+v", opt.cfg)
	}
	if opt.cfg.Partitions != 8 {
		t.Errorf("derived partitions = %d, want clamp to 8", opt.cfg.Partitions)
	}
}

func TestNoPredictorFlag(t *testing.T) {
	ds := buildEventsTable(t, 100)
	opt, err := New(ds, Config{InitialSort: []string{"ts"}, NoPredictor: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.cfg.Gamma != 0 {
		t.Errorf("NoPredictor left Gamma = %g", opt.cfg.Gamma)
	}
}

func TestProcessQueryLifecycle(t *testing.T) {
	ds := buildEventsTable(t, 2000)
	opt, err := New(ds, Config{
		Alpha:       20,
		Partitions:  16,
		WindowSize:  50,
		Period:      50,
		InitialSort: []string{"ts"},
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: time-range queries (default layout is ideal).
	for i := 0; i < 150; i++ {
		lo := int64((i * 11) % 1900)
		dec := opt.ProcessQuery(Query{ID: i, Preds: []Predicate{IntRange("ts", lo, lo+100)}})
		if dec.Cost < 0 || dec.Cost > 1 {
			t.Fatalf("cost %g out of range", dec.Cost)
		}
		if dec.Layout == nil {
			t.Fatal("nil layout in decision")
		}
	}
	// Phase 2: drift to user-equality queries.
	for i := 150; i < 600; i++ {
		opt.ProcessQuery(Query{ID: i, Preds: []Predicate{StrEq("user", []string{"alice", "bob"}[i%2])}})
	}

	st := opt.Stats()
	if st.Queries != 600 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if st.States < 2 {
		t.Error("no candidate layouts were admitted under workload drift")
	}
	if st.Reorganizations == 0 {
		t.Error("OREO never reorganized under workload drift")
	}
	if st.ReorgCost != 20*float64(st.Reorganizations) {
		t.Errorf("ReorgCost = %g with %d reorgs", st.ReorgCost, st.Reorganizations)
	}
	if st.CompetitiveBound <= 0 {
		t.Error("no competitive bound reported")
	}
	if st.MaxStates < st.States {
		t.Error("MaxStates < States")
	}
	if opt.CurrentLayout() == nil {
		t.Error("no current layout")
	}
}

func TestExplicitInitialLayout(t *testing.T) {
	ds := buildEventsTable(t, 500)
	init := NewSortGenerator("user").Generate(ds, nil, 8)
	opt, err := New(ds, Config{Initial: init, Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if opt.CurrentLayout() != init {
		t.Error("explicit initial layout not used")
	}
}

func TestPredicateConstructorsExported(t *testing.T) {
	ps := []Predicate{
		IntRange("a", 1, 2), IntGE("a", 1), IntLE("a", 2),
		FloatRange("b", 1, 2), FloatGE("b", 1), FloatLE("b", 2),
		StrEq("c", "x"), StrIn("c", "x", "y"),
	}
	for i, p := range ps {
		if p.Col == "" {
			t.Errorf("constructor %d produced empty column", i)
		}
	}
}

func TestGeneratorConstructorsExported(t *testing.T) {
	if NewQdTreeGenerator().Name() != "qdtree" {
		t.Error("qdtree constructor")
	}
	if NewZOrderGenerator(2, "ts").Name() != "zorder" {
		t.Error("zorder constructor")
	}
	if NewSortGenerator("ts").Name() != "sort" {
		t.Error("sort constructor")
	}
}

func TestReproducibility(t *testing.T) {
	run := func() (float64, int) {
		ds := buildEventsTable(t, 1000)
		opt, err := New(ds, Config{
			Alpha: 15, Partitions: 8, WindowSize: 40, Period: 40,
			InitialSort: []string{"ts"}, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			var q Query
			if i%2 == 0 {
				q = Query{ID: i, Preds: []Predicate{StrEq("user", "alice")}}
			} else {
				q = Query{ID: i, Preds: []Predicate{IntRange("ts", 0, 99)}}
			}
			opt.ProcessQuery(q)
		}
		st := opt.Stats()
		return st.QueryCost, st.Reorganizations
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("identical seeds diverged: (%g,%d) vs (%g,%d)", c1, s1, c2, s2)
	}
}
