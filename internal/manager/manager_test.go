package manager

import (
	"fmt"
	"math/rand"
	"testing"

	"oreo/internal/layout"
	"oreo/internal/query"
	"oreo/internal/table"
)

func testSchema() *table.Schema {
	return table.NewSchema(
		table.Column{Name: "ts", Type: table.Int64},
		table.Column{Name: "cat", Type: table.String},
	)
}

func testDataset(n int) *table.Dataset {
	b := table.NewBuilder(testSchema(), n)
	cats := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		b.AppendRow(table.Int(int64(i)), table.Str(cats[i%4]))
	}
	return b.Build()
}

func tsQuery(id int, lo, hi int64) query.Query {
	return query.Query{ID: id, Preds: []query.Predicate{query.IntRange("ts", lo, hi)}}
}

func catQuery(id int, v string) query.Query {
	return query.Query{ID: id, Preds: []query.Predicate{query.StrEq("cat", v)}}
}

func newTestFeed(d *table.Dataset, cfg FeedConfig) *Feed {
	return NewFeed(d, layout.NewQdTreeGenerator(), cfg, rand.New(rand.NewSource(1)))
}

func TestFeedCadence(t *testing.T) {
	d := testDataset(400)
	f := newTestFeed(d, FeedConfig{WindowSize: 20, Period: 20, Partitions: 4})
	emissions := 0
	for i := 0; i < 100; i++ {
		cands := f.Observe(tsQuery(i, 0, 50))
		if len(cands) > 0 {
			emissions++
			if (i+1)%20 != 0 {
				t.Fatalf("candidate emitted off-cadence at query %d", i)
			}
		}
	}
	if emissions != 5 {
		t.Errorf("emissions = %d, want 5 (every 20 of 100)", emissions)
	}
}

func TestFeedMinWindowFill(t *testing.T) {
	d := testDataset(100)
	f := newTestFeed(d, FeedConfig{WindowSize: 40, Period: 10, Partitions: 4, MinWindowFill: 30})
	for i := 0; i < 20; i++ {
		if cands := f.Observe(tsQuery(i, 0, 50)); len(cands) != 0 {
			t.Fatalf("candidate emitted at query %d with only %d window queries", i, i+1)
		}
	}
	sawCandidate := false
	for i := 20; i < 60; i++ {
		if len(f.Observe(tsQuery(i, 0, 50))) > 0 {
			sawCandidate = true
		}
	}
	if !sawCandidate {
		t.Error("no candidate after window filled")
	}
}

func TestFeedSourceBoth(t *testing.T) {
	d := testDataset(200)
	f := newTestFeed(d, FeedConfig{
		WindowSize: 10, Period: 10, Partitions: 4,
		Source: SourceBoth, MinWindowFill: 5,
	})
	var maxPerTick int
	for i := 0; i < 50; i++ {
		if n := len(f.Observe(tsQuery(i, 0, 50))); n > maxPerTick {
			maxPerTick = n
		}
	}
	if maxPerTick != 2 {
		t.Errorf("SourceBoth emitted at most %d candidates per tick, want 2", maxPerTick)
	}
}

func TestFeedReservoirProvenance(t *testing.T) {
	d := testDataset(200)
	f := newTestFeed(d, FeedConfig{
		WindowSize: 10, Period: 10, Partitions: 4,
		Source: SourceReservoir, MinWindowFill: 5,
	})
	for i := 0; i < 30; i++ {
		for _, c := range f.Observe(tsQuery(i, 0, 50)) {
			if !c.FromReservoir {
				t.Fatal("SourceReservoir candidate not marked FromReservoir")
			}
		}
	}
}

func TestFeedKeyedGeneratorCache(t *testing.T) {
	d := testDataset(300)
	gen := layout.NewZOrderGenerator(1, "ts")
	f := NewFeed(d, gen, FeedConfig{WindowSize: 10, Period: 10, Partitions: 4, MinWindowFill: 5},
		rand.New(rand.NewSource(2)))
	var first, second *layout.Layout
	for i := 0; i < 40; i++ {
		// Same workload shape each period: the top column never changes,
		// so the cached layout must be reused (pointer-identical).
		cands := f.Observe(tsQuery(i, 0, 100))
		for _, c := range cands {
			if first == nil {
				first = c.Layout
			} else if second == nil {
				second = c.Layout
			}
		}
	}
	if first == nil || second == nil {
		t.Fatal("fewer than two candidate emissions")
	}
	if first != second {
		t.Error("cacheable z-order layout rebuilt instead of reused")
	}
}

func TestFeedSeenAndSamples(t *testing.T) {
	d := testDataset(100)
	f := newTestFeed(d, FeedConfig{WindowSize: 5, Period: 100, Partitions: 2})
	for i := 0; i < 8; i++ {
		f.Observe(catQuery(i, "a"))
	}
	if f.Seen() != 8 {
		t.Errorf("Seen = %d", f.Seen())
	}
	if got := len(f.WindowQueries()); got != 5 {
		t.Errorf("window holds %d, want 5", got)
	}
	if got := len(f.ReservoirQueries()); got != 8 {
		t.Errorf("reservoir holds %d, want all 8 while under capacity", got)
	}
}

func buildLayouts(d *table.Dataset) (tsLayout, catLayout *layout.Layout) {
	tsLayout = layout.NewSortGenerator("ts").Generate(d, nil, 4)
	catLayout = layout.NewSortGenerator("cat").Generate(d, nil, 4)
	return
}

func TestAdmitEmptyIncumbents(t *testing.T) {
	d := testDataset(100)
	tsL, _ := buildLayouts(d)
	if !Admit(tsL, nil, nil, 0.5) {
		t.Error("first layout must always be admitted")
	}
}

func TestAdmitEmptySampleRejects(t *testing.T) {
	d := testDataset(100)
	tsL, catL := buildLayouts(d)
	if Admit(catL, []*layout.Layout{tsL}, nil, 0.01) {
		t.Error("no evidence of difference must reject")
	}
}

func TestAdmitDistanceThreshold(t *testing.T) {
	d := testDataset(100)
	tsL, catL := buildLayouts(d)
	sample := []query.Query{
		tsQuery(0, 0, 24),
		catQuery(1, "a"),
		tsQuery(2, 50, 74),
		catQuery(3, "c"),
	}
	// The two layouts differ sharply on this sample.
	if !Admit(catL, []*layout.Layout{tsL}, sample, 0.08) {
		t.Error("clearly different layout rejected at eps=0.08")
	}
	// A layout is never eps-far from itself.
	if Admit(tsL, []*layout.Layout{tsL}, sample, 0.0) {
		t.Error("identical layout admitted at eps=0")
	}
	// With an absurd threshold nothing is admitted.
	if Admit(catL, []*layout.Layout{tsL}, sample, 1.0) {
		t.Error("layout admitted at eps=1.0")
	}
}

func TestMostRedundant(t *testing.T) {
	d := testDataset(100)
	tsL, catL := buildLayouts(d)
	tsL2 := layout.NewSortGenerator("ts", "cat").Generate(d, nil, 4) // near-duplicate of tsL
	sample := []query.Query{
		tsQuery(0, 0, 24), catQuery(1, "a"), tsQuery(2, 25, 49), catQuery(3, "b"),
	}
	incumbents := []*layout.Layout{tsL, catL, tsL2}
	victim := MostRedundant(incumbents, sample, nil)
	if victim != 0 && victim != 2 {
		t.Errorf("victim = %d (%s); want one of the near-duplicate time layouts", victim, incumbents[victim].Name)
	}
	// Skip must be honored.
	victim = MostRedundant(incumbents, sample, func(i int) bool { return i == 0 })
	if victim == 0 {
		t.Error("skip(0) ignored")
	}
}

func TestMostRedundantDegenerate(t *testing.T) {
	d := testDataset(50)
	tsL, _ := buildLayouts(d)
	if got := MostRedundant([]*layout.Layout{tsL}, []query.Query{tsQuery(0, 0, 10)}, nil); got != -1 {
		t.Errorf("single incumbent victim = %d, want -1", got)
	}
	if got := MostRedundant([]*layout.Layout{tsL, tsL}, nil, nil); got != -1 {
		t.Errorf("empty sample victim = %d, want -1", got)
	}
}

func TestSourceString(t *testing.T) {
	cases := map[Source]string{SourceWindow: "SW", SourceReservoir: "RS", SourceBoth: "SW+RS"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
	if got := Source(9).String(); got != "Source(?)" {
		t.Errorf("unknown source = %q", got)
	}
}

func TestFeedDefaults(t *testing.T) {
	d := testDataset(50)
	f := newTestFeed(d, FeedConfig{})
	if f.cfg.WindowSize != 200 || f.cfg.Period != 200 || f.cfg.Partitions != 64 ||
		f.cfg.ReservoirSize != 100 || f.cfg.MinWindowFill != 100 {
		t.Errorf("defaults = %+v", f.cfg)
	}
}

// The feed must produce identical candidate sequences across identically
// seeded instances — the property the harness relies on to give every
// policy the same candidate stream.
func TestFeedDeterministicAcrossInstances(t *testing.T) {
	d := testDataset(400)
	mk := func() []string {
		f := NewFeed(d, layout.NewQdTreeGenerator(),
			FeedConfig{WindowSize: 20, Period: 20, Partitions: 4},
			rand.New(rand.NewSource(77)))
		var names []string
		for i := 0; i < 100; i++ {
			q := tsQuery(i, int64(i%50)*4, int64(i%50)*4+40)
			for _, c := range f.Observe(q) {
				names = append(names, c.Layout.Name)
			}
		}
		return names
	}
	a, b := mk(), mk()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("candidate streams differ:\n%v\n%v", a, b)
	}
}
