// Package wirefreeze seeds violations for the wirefreeze analyzer:
// one type matching its pinned manifest shape, one that drifted
// (field removed + reordered), and one frozen by configuration but
// missing from the manifest.
package wirefreeze

// PinnedOK matches the manifest exactly.
type PinnedOK struct {
	Name  string `json:"name"`
	Count int    `json:"count,omitempty"`
}

// Drifted is pinned with a Cost field first and A before B; the
// source below removed Cost and swapped the order — the seeded /v1
// compatibility break.
type Drifted struct { // want "drifted from its frozen shape"
	B string `json:"b"`
	A string `json:"a"`
}

// NotPinned is in the frozen set but absent from the manifest.
type NotPinned struct { // want "missing from wire.manifest"
	X int `json:"x"`
}
