package experiments

import (
	"testing"

	"oreo/internal/datagen"
)

func TestAblationStayInPlace(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScenario(t, datagen.TPCH)
	rows := AblationStayInPlace(s, tinyParams())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var with, without AblationRow
	for _, r := range rows {
		if r.Variant == "stay-in-place" {
			with = r
			if !r.Default {
				t.Error("stay-in-place not marked default")
			}
		} else {
			without = r
		}
	}
	// The optimization exists to cut reorganization cost; random restart
	// must not beat it on that axis.
	if with.ReorgCost > without.ReorgCost {
		t.Errorf("stay-in-place reorg cost %g above random restart %g",
			with.ReorgCost, without.ReorgCost)
	}
}

func TestAblationMultiCopy(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScenario(t, datagen.TPCH)
	rows := AblationMultiCopy(s, tinyParams(), []int{1, 3})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	b1, b3 := rows[0], rows[1]
	if b1.Variant != "B=1" || b3.Variant != "B=3" {
		t.Fatalf("variants = %q, %q", b1.Variant, b3.Variant)
	}
	// A larger storage budget can only reduce the reorganization bill:
	// resident copies are free to switch to.
	if b3.ReorgCost > b1.ReorgCost {
		t.Errorf("B=3 reorg cost %g above B=1 %g", b3.ReorgCost, b1.ReorgCost)
	}
	// And must not hurt query cost (min over a superset of layouts).
	if b3.QueryCost > b1.QueryCost*1.05 {
		t.Errorf("B=3 query cost %g well above B=1 %g", b3.QueryCost, b1.QueryCost)
	}
	for _, r := range rows {
		if r.QueryCost <= 0 {
			t.Errorf("%s: no query cost", r.Variant)
		}
	}
}
