package table

import "testing"

func TestNewSchemaLookup(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Type: Int64},
		Column{Name: "b", Type: Float64},
		Column{Name: "c", Type: String},
	)
	if got := s.NumCols(); got != 3 {
		t.Fatalf("NumCols = %d, want 3", got)
	}
	for i, want := range []string{"a", "b", "c"} {
		if s.Col(i).Name != want {
			t.Errorf("Col(%d).Name = %q, want %q", i, s.Col(i).Name, want)
		}
		idx, ok := s.Index(want)
		if !ok || idx != i {
			t.Errorf("Index(%q) = %d,%v, want %d,true", want, idx, ok, i)
		}
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index(missing) reported ok")
	}
}

func TestSchemaTypes(t *testing.T) {
	s := NewSchema(
		Column{Name: "i", Type: Int64},
		Column{Name: "f", Type: Float64},
		Column{Name: "s", Type: String},
	)
	if s.Col(0).Type != Int64 || s.Col(1).Type != Float64 || s.Col(2).Type != String {
		t.Errorf("column types mismatched: %v %v %v", s.Col(0).Type, s.Col(1).Type, s.Col(2).Type)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column name did not panic")
		}
	}()
	NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "a", Type: String})
}

func TestSchemaEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty column name did not panic")
		}
	}()
	NewSchema(Column{Name: "", Type: Int64})
}

func TestSchemaMustIndexPanics(t *testing.T) {
	s := NewSchema(Column{Name: "a", Type: Int64})
	if got := s.MustIndex("a"); got != 0 {
		t.Fatalf("MustIndex(a) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on missing column did not panic")
		}
	}()
	s.MustIndex("zzz")
}

func TestSchemaNamesAndCols(t *testing.T) {
	s := NewSchema(Column{Name: "x", Type: Int64}, Column{Name: "y", Type: String})
	names := s.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
	cols := s.Cols()
	cols[0].Name = "mutated"
	if s.Col(0).Name != "x" {
		t.Error("Cols() returned a live reference, not a copy")
	}
}

func TestColTypeString(t *testing.T) {
	cases := map[ColType]string{Int64: "int64", Float64: "float64", String: "string"}
	for ct, want := range cases {
		if got := ct.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(ct), got, want)
		}
	}
	if got := ColType(99).String(); got != "ColType(99)" {
		t.Errorf("unknown type String() = %q", got)
	}
}
