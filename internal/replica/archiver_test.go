package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oreo/internal/testleak"
)

// TestArchiverRoundTripAndBootstrap is the archival contract end to
// end: an archiver tails a working leader to disk; a fresh follower
// pointed at the archive reaches the fleet's epoch by replay alone —
// its first live subscription is answered with a cheap resume, never a
// leader snapshot — and serves bit-identically; a restarted archiver
// recovers its position from the segments and resumes instead of
// forcing a re-snapshot.
func TestArchiverRoundTripAndBootstrap(t *testing.T) {
	testleak.Check(t)
	const rows = 1200
	const batch = 7
	leader, _, ts := newLeader(t, rows, 80 /* stable layout */, 0)
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	arch, err := NewArchiver(ArchiverConfig{
		Upstream:     ts.URL,
		Dir:          dir,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the workload until the subscription lands: the archive must
	// start from the epoch-0 snapshot, not from wherever the stream
	// happened to attach mid-run.
	waitFor(t, "initial snapshot archived", func() bool { return arch.Stats().Records >= 1 })

	// Queries, appends, and a compaction: the archive must carry every
	// record kind through a bootstrap.
	var want uint64
	next := rows
	for i := 0; i < 40; i++ {
		if i%5 == 4 {
			batchRows := make([]map[string]any, batch)
			for j := range batchRows {
				batchRows[j] = appendRow(next)
				next++
			}
			if _, err := leader.Append(ctx, "orders", batchRows); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := leader.Answer(ctx, workloadQuery(i, rows)); err != nil {
				t.Fatal(err)
			}
		}
		want++
		if i == 24 {
			if _, err := leader.Compact(ctx, "orders"); err != nil {
				t.Fatal(err)
			}
			want++
		}
	}
	waitFor(t, fmt.Sprintf("archive at epoch %d", want), func() bool {
		return arch.Position("orders") == want
	})
	if got := arch.Generation(); got != 1 {
		t.Fatalf("archived generation = %d, want 1", got)
	}

	// Point-in-time replay: bounding the replay must deliver only
	// records at or below the bound.
	mid := want / 2
	n, err := ReplayArchiveUpTo(dir, mid, func(rec *Record) error {
		if rec.Epoch > mid {
			return fmt.Errorf("record at epoch %d leaked past bound %d", rec.Epoch, mid)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || uint64(n) > mid+1 {
		t.Fatalf("bounded replay delivered %d records, want 1..%d", n, mid+1)
	}

	// Bootstrap: a fresh follower replays the archive offline and its
	// first subscription resumes. Exactly one snapshot may be applied —
	// the archived one; a second would mean the leader was asked to cut
	// a new one, the cost the archive exists to avoid.
	fol, err := NewFollower(FollowerConfig{
		Upstream:        ts.URL,
		Tables:          []TableData{{Name: "orders", Dataset: buildOrders(rows)}},
		ArchiveDir:      dir,
		Logf:            t.Logf,
		ReconnectMin:    5 * time.Millisecond,
		ReconnectMax:    50 * time.Millisecond,
		ForwardQueue:    -1,
		ForwardInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	if pos, _ := fol.Core().ReplicaPosition("orders"); pos.Epoch != want {
		t.Fatalf("bootstrap left the follower at epoch %d, want %d (before any live stream)", pos.Epoch, want)
	}
	waitFor(t, "live resume", func() bool { return fol.Stats().Resumes >= 1 })
	st := fol.Stats()
	if st.Snapshots != 1 {
		t.Fatalf("follower applied %d snapshots, want exactly the archived one", st.Snapshots)
	}
	assertLiveBitIdentical(t, leader, fol.Core(), rows, true)

	// Archiver restart: positions recover from the segments, the next
	// session starts a new segment, and the stream resumes.
	arch.Close()
	arch2, err := NewArchiver(ArchiverConfig{
		Upstream:     ts.URL,
		Dir:          dir,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer arch2.Close()
	if got := arch2.Position("orders"); got != want {
		t.Fatalf("restarted archiver recovered position %d, want %d", got, want)
	}
	waitFor(t, "cheap resume after restart", func() bool { return arch2.Stats().Resumes >= 1 })
	if _, err := leader.Answer(ctx, workloadQuery(41, rows)); err != nil {
		t.Fatal(err)
	}
	want++
	waitFor(t, "archive advanced past restart", func() bool {
		return arch2.Position("orders") == want
	})
	if st := arch2.Stats(); st.Records > 4 {
		t.Fatalf("restarted archiver stats %+v: want a cheap resume, not a replayed history", st)
	}

	// The whole archive replays cleanly and ends at the final epoch.
	var last uint64
	total, err := ReplayArchive(dir, func(rec *Record) error {
		if rec.Table == "orders" && rec.Epoch > last {
			last = rec.Epoch
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != want || total == 0 {
		t.Fatalf("full replay of %d records ended at epoch %d, want %d", total, last, want)
	}
}

// TestReplayArchiveTornTail pins the crash-tolerance contract: a
// truncated final line is skipped silently, garbage mid-segment fails
// loudly, and a replay callback's own error on the final line is
// surfaced, never mistaken for a torn tail.
func TestReplayArchiveTornTail(t *testing.T) {
	testleak.Check(t)
	mkRecord := func(epoch uint64) []byte {
		b, err := json.Marshal(Record{Type: RecordDecision, Table: "orders", Epoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		return append(b, '\n')
	}
	writeSegment := func(dir, name string, chunks ...[]byte) {
		var data []byte
		for _, c := range chunks {
			data = append(data, c...)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Torn tail: the last line is half a record — a crash mid-append.
	dir := t.TempDir()
	writeSegment(dir, "segment-00000001.ndjson", mkRecord(1), mkRecord(2), []byte(`{"type":"deci`))
	n, err := ReplayArchive(dir, func(*Record) error { return nil })
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got: %v", err)
	}
	if n != 2 {
		t.Fatalf("torn-tail replay delivered %d records, want 2", n)
	}

	// Garbage mid-segment: records follow the bad line, so this is
	// corruption, not a crash.
	dir = t.TempDir()
	writeSegment(dir, "segment-00000001.ndjson", mkRecord(1), []byte("not json at all\n"), mkRecord(2))
	if _, err := ReplayArchive(dir, func(*Record) error { return nil }); err == nil {
		t.Fatal("mid-segment corruption replayed without error")
	}

	// Apply failure on the final line: the callback's error must come
	// back out — the torn-tail skip is for decode failures only.
	dir = t.TempDir()
	writeSegment(dir, "segment-00000001.ndjson", mkRecord(1), mkRecord(2))
	sentinel := errors.New("apply failed")
	_, err = ReplayArchive(dir, func(rec *Record) error {
		if rec.Epoch == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("apply error on the final line came back as %v, want the apply error", err)
	}
}
