package policy

import (
	"oreo/internal/layout"
	"oreo/internal/mts"
	"oreo/internal/query"
	"oreo/internal/workload"
)

// MTSOptimal is the paper's first oracle reference (§VI-C): instead of
// growing the state space online, it is handed a fixed state space
// containing the best precomputed layout for every query template, and
// runs the same (modified) MTS algorithm over it. The gap between OREO
// and MTSOptimal isolates the cost of learning the state space online.
type MTSOptimal struct {
	reorg  *mts.Reorganizer
	states map[mts.StateID]*layout.Layout
}

// NewMTSOptimal builds the oracle policy from the precomputed
// per-template layouts (plus the initial layout as state 0).
func NewMTSOptimal(initial *layout.Layout, perTemplate []*layout.Layout, reorg *mts.Reorganizer) *MTSOptimal {
	m := &MTSOptimal{reorg: reorg, states: make(map[mts.StateID]*layout.Layout)}
	id := mts.StateID(0)
	m.states[id] = initial
	m.reorg.AddState(id)
	m.reorg.SetInitial(id)
	for _, l := range perTemplate {
		if l == nil {
			continue
		}
		id++
		m.states[id] = l
		m.reorg.AddState(id)
	}
	return m
}

// Name implements Policy.
func (m *MTSOptimal) Name() string { return "MTS Optimal" }

// Current implements Policy.
func (m *MTSOptimal) Current() *layout.Layout { return m.states[m.reorg.Current()] }

// StateSpaceSize implements SpaceReporter.
func (m *MTSOptimal) StateSpaceSize() int { return m.reorg.NumStates() }

// Observe implements Policy.
func (m *MTSOptimal) Observe(q query.Query) *layout.Layout {
	cq := m.Current().Compile(q)
	switched, sid := m.reorg.Observe(func(id mts.StateID) float64 {
		return m.states[id].CostCompiled(cq)
	})
	if switched {
		return m.states[sid]
	}
	return nil
}

// OfflineOptimal is the paper's second oracle (§VI-C): it sees the
// whole workload in advance and switches to the best layout for each
// template exactly when the stream's template changes. It lower-bounds
// the query cost of any online solution (it pays α per template switch
// but never serves a query on a stale layout).
type OfflineOptimal struct {
	current  *layout.Layout
	schedule map[int]*layout.Layout // query ID -> layout to switch to
}

// NewOfflineOptimal builds the oracle from the stream's segment
// structure and the per-template layouts (indexed by template).
// Segments whose template has no precomputed layout stay on the
// previous layout.
func NewOfflineOptimal(initial *layout.Layout, stream *workload.Stream, perTemplate map[int]*layout.Layout) *OfflineOptimal {
	o := &OfflineOptimal{current: initial, schedule: make(map[int]*layout.Layout)}
	for _, seg := range stream.Segments {
		if l, ok := perTemplate[seg.Template]; ok && l != nil {
			o.schedule[seg.Start] = l
		}
	}
	return o
}

// Name implements Policy.
func (o *OfflineOptimal) Name() string { return "Offline Optimal" }

// Current implements Policy.
func (o *OfflineOptimal) Current() *layout.Layout { return o.current }

// Observe implements Policy.
func (o *OfflineOptimal) Observe(q query.Query) *layout.Layout {
	next, ok := o.schedule[q.ID]
	if !ok || next.Name == o.current.Name {
		return nil
	}
	o.current = next
	return next
}
