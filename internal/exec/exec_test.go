package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"oreo/internal/prune"
	"oreo/internal/query"
	"oreo/internal/table"
)

// randomScenario builds a random schema, dataset, and partitioning:
// mixed column types, occasional NaN floats, and partition assignments
// that leave some partitions empty — the same adversarial shapes the
// pruning equivalence tests use.
func randomScenario(rng *rand.Rand) (*table.Dataset, *table.Partitioning) {
	ncols := 1 + rng.Intn(5)
	cols := make([]table.Column, ncols)
	for i := range cols {
		cols[i] = table.Column{
			Name: fmt.Sprintf("c%d", i),
			Type: table.ColType(rng.Intn(3)),
		}
	}
	schema := table.NewSchema(cols...)

	nrows := 1 + rng.Intn(400)
	cardinality := 1 + rng.Intn(120)
	b := table.NewBuilder(schema, nrows)
	row := make([]table.Value, ncols)
	for r := 0; r < nrows; r++ {
		for c, col := range cols {
			switch col.Type {
			case table.Int64:
				row[c] = table.Int(rng.Int63n(1000) - 500)
			case table.Float64:
				if rng.Intn(20) == 0 {
					row[c] = table.Float(math.NaN())
				} else {
					row[c] = table.Float(rng.NormFloat64() * 100)
				}
			case table.String:
				row[c] = table.Str(fmt.Sprintf("s%03d", rng.Intn(cardinality)))
			}
		}
		b.AppendRow(row...)
	}
	ds := b.Build()

	return ds, randomPartitioning(rng, ds)
}

// randomPartitioning draws a fresh layout of the dataset — what a
// reorganization produces.
func randomPartitioning(rng *rand.Rand, ds *table.Dataset) *table.Partitioning {
	k := 1 + rng.Intn(40)
	assign := make([]int, ds.NumRows())
	used := 1 + rng.Intn(k)
	for i := range assign {
		assign[i] = rng.Intn(used)
	}
	return table.MustBuildPartitioning(ds, assign, k)
}

// randomQuery draws a query exercising every bind path: any bound
// combination, IN sets, unknown columns, type-mismatched predicates.
func randomQuery(rng *rand.Rand, schema *table.Schema) query.Query {
	npreds := rng.Intn(4)
	preds := make([]query.Predicate, 0, npreds)
	for i := 0; i < npreds; i++ {
		var col string
		if rng.Intn(8) == 0 {
			col = "unknown_col"
		} else {
			col = schema.Col(rng.Intn(schema.NumCols())).Name
		}
		switch rng.Intn(3) {
		case 0:
			p := query.Predicate{Col: col, HasLo: rng.Intn(2) == 0, HasHi: rng.Intn(2) == 0}
			p.LoI = rng.Int63n(1000) - 500
			p.HiI = p.LoI + rng.Int63n(600) - 100
			p.LoF = rng.NormFloat64() * 100
			p.HiF = p.LoF + rng.NormFloat64()*80
			preds = append(preds, p)
		case 1:
			n := 1 + rng.Intn(6)
			vals := make([]string, n)
			for j := range vals {
				vals[j] = fmt.Sprintf("s%03d", rng.Intn(150))
			}
			preds = append(preds, query.StrIn(col, vals...))
		case 2: // type roulette: numeric shape that may land on a string column
			preds = append(preds, query.Predicate{
				Col: col, HasLo: true, HasHi: true,
				LoI: rng.Int63n(200) - 100, HiI: rng.Int63n(400),
				LoF: rng.NormFloat64() * 10, HiF: rng.NormFloat64() * 200,
			})
		}
	}
	return query.Query{ID: rng.Intn(1000), Template: -1, Preds: preds}
}

// randomAggs draws aggregate requests legal for the schema.
func randomAggs(rng *rand.Rand, schema *table.Schema) []AggSpec {
	aggs := []AggSpec{{Op: AggCount}}
	for i := 0; i < rng.Intn(3); i++ {
		c := schema.Col(rng.Intn(schema.NumCols()))
		ops := []AggOp{AggMin, AggMax}
		if c.Type != table.String {
			ops = append(ops, AggSum)
		}
		aggs = append(aggs, AggSpec{Op: ops[rng.Intn(len(ops))], Col: c.Name})
	}
	return aggs
}

// sameAggs compares aggregate vectors bitwise (NaN-safe: float results
// compare by bits, not by ==).
func sameAggs(a, b []AggValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Op != y.Op || x.Col != y.Col || x.Type != y.Type || x.Valid != y.Valid ||
			x.I != y.I || x.S != y.S ||
			math.Float64bits(x.F) != math.Float64bits(y.F) {
			return false
		}
	}
	return true
}

// closeAggs is sameAggs with float tolerance, for comparisons *across*
// layouts: the matched set is identical but its accumulation order is
// not, so float sums may differ in the last ulps (and NaN data makes
// float extremes order-dependent — those are skipped). The bitwise
// guarantee holds within one layout (pruned vs full), not across.
func closeAggs(a, b []AggValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Op != y.Op || x.Col != y.Col || x.Type != y.Type || x.Valid != y.Valid ||
			x.I != y.I || x.S != y.S {
			return false
		}
		if math.IsNaN(x.F) || math.IsNaN(y.F) {
			continue
		}
		if diff := math.Abs(x.F - y.F); diff > 1e-9*(1+math.Abs(x.F)) {
			return false
		}
	}
	return true
}

// checkScanEquality is the tentpole property: for one (dataset, layout,
// query) triple, the scan over only the survivor partitions returns
// bitwise-identical results to the full scan, and both agree with the
// interpreted row-by-row oracle over the original dataset.
func checkScanEquality(t testing.TB, ds *table.Dataset, part *table.Partitioning, store *Store, q query.Query, aggs []AggSpec) {
	t.Helper()
	ids, cost := prune.Compile(ds.Schema(), q).Survivors(part)

	full, err := store.ScanFull(q, aggs, Options{CollectRows: true})
	if err != nil {
		t.Fatalf("full scan: %v", err)
	}
	pruned, err := store.Scan(q, ids, aggs, Options{CollectRows: true})
	if err != nil {
		t.Fatalf("pruned scan: %v", err)
	}

	// Result sets are not just equal — they are the same sequence.
	if pruned.Matched != full.Matched {
		t.Fatalf("pruned matched %d, full matched %d\nquery: %+v", pruned.Matched, full.Matched, q.Preds)
	}
	if len(pruned.RowIDs) != len(full.RowIDs) {
		t.Fatalf("pruned rows %v != full rows %v", pruned.RowIDs, full.RowIDs)
	}
	for i := range full.RowIDs {
		if pruned.RowIDs[i] != full.RowIDs[i] {
			t.Fatalf("row sequence diverges at %d: pruned %v, full %v\nquery: %+v",
				i, pruned.RowIDs, full.RowIDs, q.Preds)
		}
	}
	if !sameAggs(pruned.Aggs, full.Aggs) {
		t.Fatalf("pruned aggs %+v != full aggs %+v\nquery: %+v", pruned.Aggs, full.Aggs, q.Preds)
	}

	// The pruned scan's examined mass is exactly the predicted cost.
	if part.TotalRows > 0 {
		if got := float64(pruned.RowsExamined) / float64(part.TotalRows); got != cost {
			t.Fatalf("examined fraction %v != predicted cost %v", got, cost)
		}
	}
	if pruned.PartitionsRead != len(ids) {
		t.Fatalf("read %d partitions, skip-list has %d", pruned.PartitionsRead, len(ids))
	}

	// Oracle: the interpreted MatchRow over the original dataset names
	// exactly the matched rows, independent of any layout.
	var want []int
	for r := 0; r < ds.NumRows(); r++ {
		if q.MatchRow(ds, r) {
			want = append(want, r)
		}
	}
	got := append([]int(nil), full.RowIDs...)
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("scan matched %d rows, oracle %d\nquery: %+v", len(got), len(want), q.Preds)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("matched set %v != oracle %v\nquery: %+v", got, want, q.Preds)
		}
	}
}

// TestPrunedScanEqualsFullScanProperty fuzzes the equality across
// random datasets, layouts, and queries — the acceptance property of
// the execution layer.
func TestPrunedScanEqualsFullScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		ds, part := randomScenario(rng)
		store := MustNewStore(ds, part)
		for i := 0; i < 25; i++ {
			q := randomQuery(rng, ds.Schema())
			checkScanEquality(t, ds, part, store, q, randomAggs(rng, ds.Schema()))
		}
	}
}

// TestScanEqualityAcrossReorganizations pins the serving loop's
// invariant: reorganizing (new layout, rebuilt store) never changes any
// query's result set — only which partitions the scan had to read.
func TestScanEqualityAcrossReorganizations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		ds, part := randomScenario(rng)
		queries := make([]query.Query, 15)
		for i := range queries {
			queries[i] = randomQuery(rng, ds.Schema())
		}
		aggs := randomAggs(rng, ds.Schema())

		// Reference results on the initial layout.
		store := MustNewStore(ds, part)
		ref := make([][]int, len(queries))
		refAggs := make([][]AggValue, len(queries))
		for i, q := range queries {
			checkScanEquality(t, ds, part, store, q, aggs)
			ids, _ := prune.Compile(ds.Schema(), q).Survivors(part)
			res, err := store.Scan(q, ids, aggs, Options{CollectRows: true})
			if err != nil {
				t.Fatal(err)
			}
			sort.Ints(res.RowIDs)
			ref[i] = res.RowIDs
			refAggs[i] = res.Aggs
		}

		// Three reorganizations: fresh layouts over the same rows.
		for reorg := 0; reorg < 3; reorg++ {
			part = randomPartitioning(rng, ds)
			store = MustNewStore(ds, part)
			for i, q := range queries {
				checkScanEquality(t, ds, part, store, q, aggs)
				ids, _ := prune.Compile(ds.Schema(), q).Survivors(part)
				res, err := store.Scan(q, ids, aggs, Options{CollectRows: true})
				if err != nil {
					t.Fatal(err)
				}
				sort.Ints(res.RowIDs)
				if len(res.RowIDs) != len(ref[i]) {
					t.Fatalf("reorg %d changed query %d's matches: %d rows, want %d",
						reorg, i, len(res.RowIDs), len(ref[i]))
				}
				for j := range ref[i] {
					if res.RowIDs[j] != ref[i][j] {
						t.Fatalf("reorg %d changed query %d's match set", reorg, i)
					}
				}
				if !closeAggs(res.Aggs, refAggs[i]) {
					t.Fatalf("reorg %d changed query %d's aggregates: %+v vs %+v",
						reorg, i, res.Aggs, refAggs[i])
				}
			}
		}
	}
}

// FuzzPrunedScanEquality is the native-fuzzing form of the property.
func FuzzPrunedScanEquality(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1234, 999983} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		ds, part := randomScenario(rng)
		store := MustNewStore(ds, part)
		for i := 0; i < 15; i++ {
			q := randomQuery(rng, ds.Schema())
			checkScanEquality(t, ds, part, store, q, randomAggs(rng, ds.Schema()))
		}
	})
}

// fixtureStore builds a small deterministic table for the unit tests:
// 8 rows over (id int, price float, tag string), split into 4
// partitions of 2 rows in id order.
func fixtureStore(t *testing.T) (*table.Dataset, *Store) {
	t.Helper()
	schema := table.NewSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "price", Type: table.Float64},
		table.Column{Name: "tag", Type: table.String},
	)
	b := table.NewBuilder(schema, 8)
	tags := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < 8; i++ {
		b.AppendRow(table.Int(int64(i)), table.Float(float64(i)*1.5), table.Str(tags[i]))
	}
	ds := b.Build()
	assign := []int{0, 0, 1, 1, 2, 2, 3, 3}
	part := table.MustBuildPartitioning(ds, assign, 4)
	return ds, MustNewStore(ds, part)
}

func TestScanAggregates(t *testing.T) {
	_, store := fixtureStore(t)
	q := query.Query{Preds: []query.Predicate{query.IntRange("id", 2, 5)}}
	res, err := store.ScanFull(q, []AggSpec{
		{Op: AggCount},
		{Op: AggSum, Col: "id"},
		{Op: AggSum, Col: "price"},
		{Op: AggMin, Col: "price"},
		{Op: AggMax, Col: "id"},
		{Op: AggMin, Col: "tag"},
		{Op: AggMax, Col: "tag"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 4 {
		t.Fatalf("matched %d, want 4", res.Matched)
	}
	want := []AggValue{
		{Op: AggCount, Type: table.Int64, Valid: true, I: 4},
		{Op: AggSum, Col: "id", Type: table.Int64, Valid: true, I: 2 + 3 + 4 + 5},
		{Op: AggSum, Col: "price", Type: table.Float64, Valid: true, F: (2 + 3 + 4 + 5) * 1.5},
		{Op: AggMin, Col: "price", Type: table.Float64, Valid: true, F: 3.0},
		{Op: AggMax, Col: "id", Type: table.Int64, Valid: true, I: 5},
		{Op: AggMin, Col: "tag", Type: table.String, Valid: true, S: "c"},
		{Op: AggMax, Col: "tag", Type: table.String, Valid: true, S: "f"},
	}
	if !sameAggs(res.Aggs, want) {
		t.Fatalf("aggs = %+v\nwant  %+v", res.Aggs, want)
	}
}

func TestScanEmptyMatchAggValidity(t *testing.T) {
	_, store := fixtureStore(t)
	q := query.Query{Preds: []query.Predicate{query.IntRange("id", 100, 200)}}
	res, err := store.ScanFull(q, []AggSpec{
		{Op: AggCount}, {Op: AggSum, Col: "price"}, {Op: AggMin, Col: "id"}, {Op: AggMax, Col: "tag"},
	}, Options{CollectRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 0 || len(res.RowIDs) != 0 {
		t.Fatalf("matched %d rows %v, want none", res.Matched, res.RowIDs)
	}
	if !res.Aggs[0].Valid || res.Aggs[0].I != 0 {
		t.Errorf("count over empty match = %+v, want valid 0", res.Aggs[0])
	}
	if !res.Aggs[1].Valid || res.Aggs[1].F != 0 {
		t.Errorf("sum over empty match = %+v, want valid 0", res.Aggs[1])
	}
	if res.Aggs[2].Valid || res.Aggs[3].Valid {
		t.Errorf("min/max over empty match must be invalid: %+v, %+v", res.Aggs[2], res.Aggs[3])
	}
}

// TestFloatExtremesIgnoreNaN pins that NaN cells neither seed nor
// poison float min/max: the extreme is a function of the matched set
// alone, so it cannot flip when a reorganization changes which matched
// row a scan visits first.
func TestFloatExtremesIgnoreNaN(t *testing.T) {
	schema := table.NewSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "v", Type: table.Float64},
	)
	b := table.NewBuilder(schema, 3)
	b.AppendRow(table.Int(0), table.Float(math.NaN()))
	b.AppendRow(table.Int(1), table.Float(5))
	b.AppendRow(table.Int(2), table.Float(7))
	ds := b.Build()

	q := query.Query{Preds: []query.Predicate{query.IntGE("id", 0)}}
	aggs := []AggSpec{{Op: AggMin, Col: "v"}, {Op: AggMax, Col: "v"}}
	// Two layouts that visit the NaN row first and last respectively.
	for _, assign := range [][]int{{0, 1, 1}, {1, 1, 0}} {
		store := MustNewStore(ds, table.MustBuildPartitioning(ds, assign, 2))
		res, err := store.ScanFull(q, aggs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Aggs[0].Valid || res.Aggs[0].F != 5 || !res.Aggs[1].Valid || res.Aggs[1].F != 7 {
			t.Fatalf("assign %v: extremes = %+v, want valid 5/7", assign, res.Aggs)
		}
	}

	// All matched values NaN: no extreme exists.
	res, err := MustNewStore(ds, table.MustBuildPartitioning(ds, []int{0, 0, 0}, 1)).
		ScanFull(query.Query{Preds: []query.Predicate{query.IntRange("id", 0, 0)}}, aggs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 1 || res.Aggs[0].Valid || res.Aggs[1].Valid {
		t.Fatalf("all-NaN match: %+v", res.Aggs)
	}
}

// TestIntSumOverflowInvalid pins that an int64 sum which overflows is
// reported invalid rather than silently wrapped — the same
// no-silent-corruption standard the float path (value_s spelling) and
// the ingest widening guard hold.
func TestIntSumOverflowInvalid(t *testing.T) {
	schema := table.NewSchema(table.Column{Name: "v", Type: table.Int64})
	b := table.NewBuilder(schema, 3)
	b.AppendRow(table.Int(math.MaxInt64 - 1))
	b.AppendRow(table.Int(2))
	b.AppendRow(table.Int(5))
	ds := b.Build()
	store := MustNewStore(ds, table.MustBuildPartitioning(ds, []int{0, 0, 0}, 1))

	q := query.Query{Preds: []query.Predicate{query.IntGE("v", math.MinInt64)}}
	res, err := store.ScanFull(q, []AggSpec{{Op: AggSum, Col: "v"}, {Op: AggCount}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggs[0].Valid || res.Aggs[0].I != 0 {
		t.Fatalf("overflowed sum = %+v, want invalid 0", res.Aggs[0])
	}
	// Overflow latches: the later small row cannot resurrect validity.
	if !res.Aggs[1].Valid || res.Aggs[1].I != 3 {
		t.Fatalf("count alongside overflow = %+v", res.Aggs[1])
	}

	// A sum that stays in range remains valid and exact.
	q = query.Query{Preds: []query.Predicate{query.IntRange("v", 0, 10)}}
	res, err = store.ScanFull(q, []AggSpec{{Op: AggSum, Col: "v"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Valid || res.Aggs[0].I != 7 {
		t.Fatalf("in-range sum = %+v, want valid 7", res.Aggs[0])
	}
}

func TestValidateAggs(t *testing.T) {
	_, store := fixtureStore(t)
	if err := ValidateAggs(store.Schema(), []AggSpec{{Op: AggCount}, {Op: AggSum, Col: "price"}}); err != nil {
		t.Errorf("legal aggs rejected: %v", err)
	}
	if err := ValidateAggs(store.Schema(), []AggSpec{{Op: AggSum, Col: "tag"}}); err == nil {
		t.Error("string sum accepted")
	}
	if err := ValidateAggs(store.Schema(), []AggSpec{{Op: AggMin, Col: "ghost"}}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestScanValidation(t *testing.T) {
	_, store := fixtureStore(t)
	q := query.Query{Preds: []query.Predicate{query.IntGE("id", 0)}}

	if _, err := store.Scan(q, []int{0, 4}, nil, Options{}); err == nil {
		t.Error("out-of-range survivor accepted")
	}
	if _, err := store.Scan(q, []int{-1}, nil, Options{}); err == nil {
		t.Error("negative survivor accepted")
	}
	if _, err := store.Scan(q, []int{1, 1}, nil, Options{}); err == nil {
		t.Error("duplicate survivor accepted")
	}
	if _, err := store.Scan(q, []int{2, 1}, nil, Options{}); err == nil {
		t.Error("descending survivor list accepted")
	}
	if _, err := store.ScanFull(q, []AggSpec{{Op: AggSum, Col: "tag"}}, Options{}); err == nil {
		t.Error("sum over string column accepted")
	}
	if _, err := store.ScanFull(q, []AggSpec{{Op: AggMin, Col: "ghost"}}, Options{}); err == nil {
		t.Error("aggregate on unknown column accepted")
	}
	if _, err := store.ScanFull(q, []AggSpec{{Op: AggOp(99)}}, Options{}); err == nil {
		t.Error("unknown aggregate op accepted")
	}
}

func TestNewStoreShape(t *testing.T) {
	ds, store := fixtureStore(t)
	if store.NumPartitions() != 4 || store.TotalRows() != 8 {
		t.Fatalf("store shape %d/%d, want 4 partitions 8 rows", store.NumPartitions(), store.TotalRows())
	}
	for pid := 0; pid < 4; pid++ {
		blk := store.Block(pid)
		if blk.NumRows() != store.Partitioning().RowsInPartition(pid) {
			t.Fatalf("block %d holds %d rows, meta says %d",
				pid, blk.NumRows(), store.Partitioning().RowsInPartition(pid))
		}
		// Blocks preserve dataset order and values.
		for r := 0; r < blk.NumRows(); r++ {
			orig := store.rowIDs[pid][r]
			if blk.Int64At(0, r) != ds.Int64At(0, orig) || blk.StringAt(2, r) != ds.StringAt(2, orig) {
				t.Fatalf("block %d row %d does not match dataset row %d", pid, r, orig)
			}
		}
	}

	// Row-count mismatch between dataset and partitioning must fail.
	other := table.NewBuilder(ds.Schema(), 1)
	other.AppendRow(table.Int(1), table.Float(1), table.Str("x"))
	if _, err := NewStore(other.Build(), store.Partitioning()); err == nil {
		t.Error("store over mismatched partitioning accepted")
	}
}

func TestParseAggOp(t *testing.T) {
	for name, want := range map[string]AggOp{"count": AggCount, "sum": AggSum, "min": AggMin, "max": AggMax} {
		got, err := ParseAggOp(name)
		if err != nil || got != want {
			t.Errorf("ParseAggOp(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseAggOp("avg"); err == nil {
		t.Error("unknown op parsed")
	}
}
