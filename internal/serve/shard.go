package serve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"oreo"
	"oreo/internal/exec"
	"oreo/internal/layout"
	"oreo/internal/metrics"
	"oreo/internal/table"
)

// shard is one table's serving unit. It runs in one of two modes:
//
// In leader mode it pairs a read-mostly optimizer with the bounded
// event queue that decouples request handling from the sequential
// decision path. The read path (serveQuery / serveExecute) is
// lock-free: it costs the query and extracts the survivor skip-list
// against the atomically published layout snapshot — and, for execute
// requests, scans the matching execution store — then hands the query
// to the decision loop through a non-blocking send. The write path is
// one background consumer goroutine draining the queue, so the
// mutex-serialized decision path never sits on a request's critical
// path. The queue carries three event kinds:
//
//   - observations (evObserve) feed ConcurrentOptimizer.ProcessQuery.
//     When the queue is full the query is sampled out of reorganization
//     decisions (counted in dropped) rather than blocking the request —
//     under overload OREO sees a uniform sample of the stream, which
//     its sliding-window machinery is built for.
//   - appends (evAppend) land a decoded row batch in the table's delta
//     segment. Unlike observations they are never dropped: the sender
//     blocks until the consumer has made the rows visible, then gets an
//     acknowledgment carrying the new epoch.
//   - compactions (evCompact) fold the delta into the base: the current
//     layout's assignment is extended over the delta rows (least-
//     widening placement), the grown dataset is repartitioned under it,
//     and a fresh optimizer takes over with the compacted layout as its
//     initial state.
//
// Every event advances the table's single epoch counter, so layout
// decisions and data changes share one totally ordered stream — the
// property replication relies on for bit-identical followers.
//
// In replica mode there is no optimizer and no event loop: the
// (epoch, snapshot, base, delta) state is applied from outside (a
// replication follower decoding the leader's stream — see
// internal/replica), the read path serves from it exactly as a leader
// shard would, and observations are handed to a forward function that
// ships them upstream instead of into a local queue. A replica shard
// that has not yet applied its first snapshot answers unavailable.
type shard struct {
	table string
	// ds is the boot-time dataset — the schema anchor (the schema
	// pointer never changes across appends and compactions) and the
	// fallback seed source. The *current* base lives in rep: compaction
	// grows it past ds.
	ds *oreo.Dataset

	// copt is the decision engine — leader mode only, nil on a replica.
	// It is an atomic pointer because compaction replaces the optimizer
	// wholesale (a fresh engine over the grown base, carrying the
	// compacted layout as its initial state) while request goroutines
	// keep reading trace events and snapshots.
	copt atomic.Pointer[oreo.ConcurrentOptimizer]
	// optCfg is the resolved optimizer configuration, reused for the
	// rebuilt engines compaction installs (only Initial is overridden).
	optCfg oreo.Config
	// seedRows is the row count of the table's boot source (the CSV or
	// fixture the process started from), which persistence needs to
	// frame tails relative to a stable prefix; see CoreConfig.SeedRows.
	seedRows int

	// replica marks a shard whose state is externally applied; forward
	// is its observation hand-off (upstream, not a local queue).
	replica bool
	forward func(oreo.Query) bool

	// rep is the published (epoch, snapshot, base, delta) state every
	// read serves from: one atomic load yields a sequence number, the
	// layout/stats view, the partitioned base it describes, and the
	// live delta tail that were all true at exactly that sequence
	// number. Leader shards publish it from the event consumer after
	// each processed event; replica shards publish it from
	// applyReplica. On a replica it is nil until the first snapshot
	// lands.
	rep atomic.Pointer[repState]

	// onDecision, when set, is invoked from the event consumer after
	// each processed event — the replication publish hook. Swapped
	// atomically so it can be attached to a running core.
	onDecision atomic.Pointer[func(table string, upd DecisionUpdate)]

	// store is the execution state: the materialized per-partition row
	// blocks paired with the exact layout they were arranged by, plus
	// the delta view scans must append. It is built lazily by the first
	// execute request (storeMu serializes that one build), so
	// costing-only deployments never pay the second copy of the data;
	// once it exists, the event consumer (leader) or applyReplica
	// (replica) swaps it in lockstep with the published state, so
	// execute requests read a (layout, data, delta) triple that is
	// always internally consistent — during a swap a request may
	// execute on the outgoing state one last time, never on a torn mix.
	store   atomic.Pointer[execState]
	storeMu sync.Mutex

	// delta is the table's live write tail — consumer-owned; requests
	// only ever see immutable views of it through rep. Leader mode only.
	delta *table.Delta
	// compactThreshold triggers an automatic fold when the delta
	// reaches this many rows; <= 0 disables auto-compaction.
	compactThreshold int
	// compactSeq names compacted layouts (compact-1, compact-2, …).
	compactSeq int
	// statsBase accumulates the cumulative counters of every optimizer
	// retired by compaction, so published stats stay monotone across
	// engine rebuilds. Consumer-owned.
	statsBase oreo.Stats

	queue     chan shardEvent
	closeOnce sync.Once
	wg        sync.WaitGroup
	// obsMu guards the handoff into queue against close: senders hold
	// the read side (cheap, shared), close holds the write side, so a
	// request racing a shutdown observes obsClosed instead of panicking
	// on a closed channel.
	obsMu     sync.RWMutex
	obsClosed bool

	// The serving counters are metrics-registry instruments — the one
	// source of truth that /stats, /healthz, and a /metrics scrape all
	// read, so the surfaces cannot drift from each other. Recording on a
	// resolved instrument is a single atomic add (see internal/metrics).
	served   *metrics.Counter // read-path answers
	observed *metrics.Counter // queries enqueued for the decision loop (or forwarded upstream)
	dropped  *metrics.Counter // queue-full samples (or failed forwards)
	costBits atomic.Uint64    // sum of served costs, as float64 bits (scraped via CounterFunc)
	// compiles counts snapshot compile-and-sweep evaluations served on
	// the read path — the memo-bypassing complement of the engine's
	// decision-path hit/miss counters.
	compiles *metrics.Counter
	// executions / execRows count row-level scans and the rows they
	// examined; parallelScans counts the executions that ran with more
	// than one scan worker (see scanPar).
	executions    *metrics.Counter
	execRows      *metrics.Counter
	parallelScans *metrics.Counter
	// rowsAppended counts rows landed through the live write path (on a
	// follower: applied from the leader's stream); compactions counts
	// delta folds.
	rowsAppended *metrics.Counter
	compactions  *metrics.Counter

	// scanPar is the worker count execute scans run with
	// (exec.Options.Parallelism), resolved by the core at construction.
	scanPar int
}

// repState is one published (epoch, snapshot, base, delta) state; see
// shard.rep.
type repState struct {
	epoch uint64
	snap  oreo.OptimizerSnapshot
	// ds is the partitioned base the snapshot's layouts describe. It
	// grows at compaction epochs and is otherwise stable.
	ds *oreo.Dataset
	// delta is the immutable live-tail view as of the epoch; nil means
	// empty. Scans append it in full (it is unpartitioned, so it is an
	// always-survivor extra partition), and costs count its rows.
	delta *oreo.Dataset
}

// deltaRows returns the published delta's row count.
func (st repState) deltaRows() int {
	if st.delta == nil {
		return 0
	}
	return st.delta.NumRows()
}

// Decision-update kinds; see DecisionUpdate.Kind.
const (
	// UpdateDecision is a processed observation (a layout decision).
	UpdateDecision = "decision"
	// UpdateAppend is a row batch landed in the delta segment.
	UpdateAppend = "append"
	// UpdateCompact is a delta fold into a new base layout.
	UpdateCompact = "compact"
)

// DecisionUpdate is what the event consumer reports to an attached
// hook after processing one event — the unit of the replication log.
// Epoch is the table's monotonic sequence number (one per processed
// event, starting at 1 for the first event after boot); Snapshot is
// the post-event published state; Switched reports that the serving
// layout changed with this event (the physical swap, so under
// ReorgDelay it fires when the swap lands, not when the switch was
// decided — exactly what a follower mirroring served answers needs).
//
// Kind distinguishes the three event families. Appends carry the
// landed batch in Rows and the delta size after it in DeltaRows;
// compactions carry the folded row count in Folded (their new base and
// layout travel in Snapshot, whose Serving layout is the compacted
// one, and Switched is always true).
type DecisionUpdate struct {
	Kind     string
	Epoch    uint64
	Cost     float64
	Switched bool
	Snapshot oreo.OptimizerSnapshot
	// Rows is the appended batch (Kind == UpdateAppend only).
	Rows *oreo.Dataset
	// DeltaRows is the delta segment's size after this event.
	DeltaRows int
	// Folded is the number of delta rows folded into the base
	// (Kind == UpdateCompact only).
	Folded int
}

// execState pairs a layout with the execution store materialized for
// it and the delta view scans must append. Swapped atomically as one
// unit; see shard.store.
type execState struct {
	layout *oreo.Layout
	store  *exec.Store
	delta  *oreo.Dataset // nil ≡ empty
}

// shardEvent is one unit of the consumer's totally ordered stream.
type shardEvent struct {
	kind evKind
	q    oreo.Query    // evObserve
	rows *oreo.Dataset // evAppend
	// resp acknowledges appends and compactions (buffered, capacity 1).
	resp chan eventAck
}

type evKind int

const (
	evObserve evKind = iota
	evAppend
	evCompact
)

// eventAck is the consumer's acknowledgment of an append or compact
// event, taken after the new state is published — a client that has
// its ack is guaranteed to see its rows on the very next read.
type eventAck struct {
	epoch     uint64
	deltaRows int
	folded    int
	err       error
}

func newShard(name string, ds *oreo.Dataset, opt *oreo.Optimizer, queueSize, scanPar, seedRows, compactThreshold int, reg *metrics.Registry) *shard {
	copt := oreo.NewConcurrent(opt)
	s := &shard{
		table:            name,
		ds:               ds,
		optCfg:           copt.Config(),
		seedRows:         seedRows,
		delta:            table.NewDelta(ds.Schema()),
		compactThreshold: compactThreshold,
		queue:            make(chan shardEvent, queueSize),
		scanPar:          scanPar,
	}
	s.copt.Store(copt)
	s.rep.Store(&repState{epoch: 0, snap: copt.Snapshot(), ds: ds})
	s.registerMetrics(reg)
	s.wg.Add(1)
	go s.consume()
	return s
}

// newReplicaShard builds a shard in replica mode: no optimizer, no
// event loop; state arrives through applyReplica and observations
// leave through forward. It answers unavailable until the first
// snapshot is applied.
func newReplicaShard(name string, ds *oreo.Dataset, forward func(oreo.Query) bool, scanPar int, reg *metrics.Registry) *shard {
	s := &shard{table: name, ds: ds, replica: true, forward: forward, scanPar: scanPar}
	s.registerMetrics(reg)
	return s
}

// registerMetrics resolves the shard's counter instruments and attaches
// the callback series that read live shard state on each scrape. Every
// series carries a {table} label; the full catalog is documented in the
// "# Observability" section of the root package.
func (s *shard) registerMetrics(reg *metrics.Registry) {
	lbl := metrics.Labels{"table": s.table}
	s.served = reg.Counter("oreo_queries_served_total",
		"Queries answered on the read path, including execute requests.", lbl)
	s.observed = reg.Counter("oreo_observations_total",
		"Served queries enqueued for the decision loop (leader) or forwarded upstream (follower).", lbl)
	s.dropped = reg.Counter("oreo_observations_dropped_total",
		"Served queries sampled out of reorganization decisions because the observation queue (or forward buffer) was full.", lbl)
	s.compiles = reg.Counter("oreo_snapshot_compiles_total",
		"Lock-free compile-and-sweep evaluations served against layout snapshots.", lbl)
	s.executions = reg.Counter("oreo_executions_total",
		"Served queries that also ran a row-level scan over their survivor partitions.", lbl)
	s.execRows = reg.Counter("oreo_scan_rows_examined_total",
		"Rows examined by execution scans; rate() of this is scan rows per second.", lbl)
	s.parallelScans = reg.Counter("oreo_parallel_scans_total",
		"Execution scans that ran with more than one worker.", lbl)
	s.rowsAppended = reg.Counter("oreo_rows_appended_total",
		"Rows landed through the live write path (on a follower: applied from the leader's stream).", lbl)
	s.compactions = reg.Counter("oreo_compactions_total",
		"Delta-segment folds into a freshly partitioned base layout.", lbl)
	reg.CounterFunc("oreo_served_cost_total",
		"Cumulative served cost: the sum over answered queries of the scanned table fraction.", lbl,
		func() float64 { return math.Float64frombits(s.costBits.Load()) })
	reg.GaugeFunc("oreo_observation_queue_depth",
		"Observations waiting for the decision loop (always 0 on a follower).", lbl,
		func() float64 { return float64(s.queueDepth()) })
	reg.GaugeFunc("oreo_observation_queue_capacity",
		"Capacity of the decision-observation queue.", lbl,
		func() float64 { return float64(s.queueCap()) })

	// Decision-loop and replication series read the published (epoch,
	// snapshot) pair — nil on a replica before its first snapshot, which
	// scrapes as 0.
	snapFn := func(f func(repState) float64) func() float64 {
		return func() float64 {
			st := s.rep.Load()
			if st == nil {
				return 0
			}
			return f(*st)
		}
	}
	reg.CounterFunc("oreo_decisions_total",
		"Queries processed by the decision loop; on a follower these are the leader's replicated counters.", lbl,
		snapFn(func(st repState) float64 { return float64(st.snap.Stats.Queries) }))
	reg.CounterFunc("oreo_reorganizations_total",
		"Layout reorganizations the optimizer has committed.", lbl,
		snapFn(func(st repState) float64 { return float64(st.snap.Stats.Reorganizations) }))
	reg.CounterFunc("oreo_decision_query_cost_total",
		"Cumulative query cost accounted by the decision loop (the paper's service cost).", lbl,
		snapFn(func(st repState) float64 { return st.snap.Stats.QueryCost }))
	reg.CounterFunc("oreo_decision_reorg_cost_total",
		"Cumulative data-movement cost of committed reorganizations.", lbl,
		snapFn(func(st repState) float64 { return st.snap.Stats.ReorgCost }))
	reg.GaugeFunc("oreo_replication_epoch",
		"Published decision epoch: decisions processed on a leader, last applied epoch on a follower. Leader minus follower is the replication lag.", lbl,
		snapFn(func(st repState) float64 { return float64(st.epoch) }))
	reg.GaugeFunc("oreo_delta_rows",
		"Rows currently in the table's live delta segment (unpartitioned; scanned in full by every query).", lbl,
		snapFn(func(st repState) float64 { return float64(st.deltaRows()) }))
	reg.CounterFunc("oreo_memo_hits_total",
		"Decision-path cost-memo hits for the serving layout.", lbl,
		snapFn(func(st repState) float64 { return float64(st.snap.Serving.Engine().Stats().Hits) }))
	reg.CounterFunc("oreo_memo_misses_total",
		"Decision-path cost-memo misses for the serving layout.", lbl,
		snapFn(func(st repState) float64 { return float64(st.snap.Serving.Engine().Stats().Misses) }))
	reg.GaugeFunc("oreo_memo_entries",
		"Entries in the serving layout's cost memo.", lbl,
		snapFn(func(st repState) float64 { return float64(st.snap.Serving.Engine().Stats().Entries) }))
}

// consume is the single event consumer — the serialization point for
// everything that advances the table's epoch: layout decisions, row
// appends, and compactions. It republishes the (epoch, snapshot, base,
// delta) state after each event and keeps the execution store (if one
// has been materialized) in lockstep. Store rebuilds (full data
// rewrites) run here, on the consumer goroutine — they are the
// physical reorganization cost the optimizer's α models, and they must
// never land on a request. The attached decision hook (if any) runs
// after the publish but before an append/compact acknowledgment, so a
// replication publisher always describes a state the leader itself
// already serves, and an acked writer knows its rows are in-stream.
func (s *shard) consume() {
	defer s.wg.Done()
	prev := s.copt.Load().CurrentLayout()
	for ev := range s.queue {
		switch ev.kind {
		case evObserve:
			copt := s.copt.Load()
			d := copt.ProcessQuery(ev.q)
			snap := s.combinedSnapshot(copt)
			cur := s.rep.Load()
			st := &repState{epoch: cur.epoch + 1, snap: snap, ds: cur.ds, delta: cur.delta}
			s.rep.Store(st)
			switched := snap.Serving != prev
			s.syncStore(st)
			s.notify(DecisionUpdate{
				Kind: UpdateDecision, Epoch: st.epoch, Cost: d.Cost,
				Switched: switched, Snapshot: snap, DeltaRows: st.deltaRows(),
			})
		case evAppend:
			//oreovet:ignore blockingsend reply on the caller-owned cap-1 ack channel; the single send cannot block
			ev.resp <- s.handleAppend(ev.rows)
		case evCompact:
			//oreovet:ignore blockingsend reply on the caller-owned cap-1 ack channel; the single send cannot block
			ev.resp <- s.handleCompact()
		}
		prev = s.rep.Load().snap.Serving
	}
}

// handleAppend lands one row batch in the delta segment, publishes the
// new state, and — when the delta has reached the auto-compaction
// threshold — folds it immediately, all under the same consumer turn.
func (s *shard) handleAppend(rows *oreo.Dataset) eventAck {
	s.delta.AppendDataset(rows)
	s.rowsAppended.Add(uint64(rows.NumRows()))
	view := s.delta.View()
	cur := s.rep.Load()
	st := &repState{epoch: cur.epoch + 1, snap: cur.snap, ds: cur.ds, delta: view.Data}
	s.rep.Store(st)
	s.syncStore(st)
	s.notify(DecisionUpdate{
		Kind: UpdateAppend, Epoch: st.epoch, Snapshot: st.snap,
		Rows: rows, DeltaRows: view.Rows(),
	})
	ack := eventAck{epoch: st.epoch, deltaRows: view.Rows()}
	if s.compactThreshold > 0 && view.Rows() >= s.compactThreshold {
		cack := s.handleCompact()
		ack.epoch, ack.deltaRows, ack.err = cack.epoch, cack.deltaRows, cack.err
	}
	return ack
}

// handleCompact folds the delta into the base: the serving layout's
// assignment is extended over the delta rows by least-widening
// placement, the grown dataset is repartitioned under the extended
// assignment (metadata recomputed exactly), and a fresh optimizer over
// the grown base takes over with the compacted layout as its initial
// state — the optimizer's own machinery (window, candidate generation,
// D-UMTS counters) then reorganizes the compacted table as usual.
// Cumulative stats survive the engine swap via statsBase. An empty
// delta is a no-op that does not advance the epoch.
func (s *shard) handleCompact() eventAck {
	n := s.delta.Rows()
	cur := s.rep.Load()
	if n == 0 {
		return eventAck{epoch: cur.epoch}
	}
	view := s.delta.View()
	newDS := table.Concat(cur.ds, view.Data)
	serving := cur.snap.Serving
	assign := extendAssignment(serving.Part, view.Data)
	part, err := table.BuildPartitioning(newDS, assign, serving.Part.NumPartitions)
	if err != nil {
		return eventAck{epoch: cur.epoch, deltaRows: n, err: fmt.Errorf("repartitioning grown base: %w", err)}
	}
	s.compactSeq++
	newLayout := layout.New(fmt.Sprintf("compact-%d", s.compactSeq), newDS.Schema(), part)

	cfg := s.optCfg
	cfg.Initial = newLayout
	cfg.InitialSort = nil
	opt, err := oreo.New(newDS, cfg)
	if err != nil {
		return eventAck{epoch: cur.epoch, deltaRows: n, err: fmt.Errorf("rebuilding optimizer over grown base: %w", err)}
	}
	s.statsBase = addStats(s.statsBase, s.copt.Load().Stats())
	copt := oreo.NewConcurrent(opt)
	s.copt.Store(copt)
	s.delta.Reset(n)
	s.compactions.Add(1)

	snap := s.combinedSnapshot(copt)
	st := &repState{epoch: cur.epoch + 1, snap: snap, ds: newDS}
	s.rep.Store(st)
	s.syncStore(st)
	s.notify(DecisionUpdate{
		Kind: UpdateCompact, Epoch: st.epoch, Switched: true,
		Snapshot: snap, Folded: n,
	})
	return eventAck{epoch: st.epoch, folded: n}
}

// extendAssignment returns the serving assignment extended over the
// delta rows: each delta row goes to the partition whose metadata it
// widens least — the number of columns whose range (numeric) or value
// set (string) would have to grow to cover the row — tie-broken by
// fewer rows, then lowest partition ID. Placement is judged against
// the pre-compaction metadata only (not updated row by row), which
// keeps it deterministic and cheap; BuildPartitioning recomputes all
// metadata exactly afterwards. Every comparison is exact, so any
// process replaying the same stream places rows identically.
func extendAssignment(part *table.Partitioning, delta *table.Dataset) []int {
	assign := make([]int, 0, len(part.Assign)+delta.NumRows())
	assign = append(assign, part.Assign...)
	for r := 0; r < delta.NumRows(); r++ {
		best, bestWiden, bestRows := 0, delta.Schema().NumCols()+1, int(^uint(0)>>1)
		for pid := 0; pid < part.NumPartitions; pid++ {
			m := part.Meta[pid]
			w := widening(m, delta, r)
			if w < bestWiden || (w == bestWiden && m.NumRows < bestRows) {
				best, bestWiden, bestRows = pid, w, m.NumRows
			}
		}
		assign = append(assign, best)
	}
	return assign
}

// widening counts the columns of delta row r that partition metadata m
// cannot already cover. Empty column stats count zero — a row landing
// in an empty partition gets perfectly tight metadata, so empty
// partitions are preferred absorbers. NaN floats never widen a range,
// matching ColumnStats.AddFloat, whose min/max comparisons a NaN also
// falls through.
func widening(m *table.PartitionMeta, delta *table.Dataset, r int) int {
	w := 0
	schema := delta.Schema()
	for c := 0; c < schema.NumCols(); c++ {
		cs := &m.Stats[c]
		if cs.Empty() {
			continue
		}
		switch schema.Col(c).Type {
		case table.Int64:
			if v := delta.Int64At(c, r); v < cs.MinI || v > cs.MaxI {
				w++
			}
		case table.Float64:
			if v := delta.Float64At(c, r); v < cs.MinF || v > cs.MaxF {
				w++
			}
		case table.String:
			if !cs.ContainsString(delta.StringAt(c, r)) {
				w++
			}
		}
	}
	return w
}

// combinedSnapshot returns the engine's snapshot with the cumulative
// counters of every retired engine folded in, so published stats stay
// monotone across the optimizer rebuilds compaction performs.
// Consumer-owned (reads statsBase).
func (s *shard) combinedSnapshot(copt *oreo.ConcurrentOptimizer) oreo.OptimizerSnapshot {
	snap := copt.Snapshot()
	snap.Stats = addStats(s.statsBase, snap.Stats)
	return snap
}

// addStats folds the cumulative counters of base into cur: monotone
// counters add, high-water marks take the max, and instantaneous
// values (States) keep cur's reading.
func addStats(base, cur oreo.Stats) oreo.Stats {
	cur.Queries += base.Queries
	cur.Reorganizations += base.Reorganizations
	cur.QueryCost += base.QueryCost
	cur.ReorgCost += base.ReorgCost
	cur.Phases += base.Phases
	if base.MaxStates > cur.MaxStates {
		cur.MaxStates = base.MaxStates
	}
	if base.CompetitiveBound > cur.CompetitiveBound {
		cur.CompetitiveBound = base.CompetitiveBound
	}
	return cur
}

// notify invokes the attached decision hook, if any.
func (s *shard) notify(upd DecisionUpdate) {
	if fn := s.onDecision.Load(); fn != nil {
		(*fn)(s.table, upd)
	}
}

// view returns the published state, or an unavailable error on a
// replica shard that has not applied its first snapshot.
func (s *shard) view() (repState, *Error) {
	st := s.rep.Load()
	if st == nil {
		return repState{}, errUnavailable("table %q is replicating and has no snapshot yet", s.table)
	}
	return *st, nil
}

// applyReplica publishes an externally decoded state — the
// replica-mode write path — and keeps a materialized execution store
// in lockstep on this (apply) goroutine so the rebuild cost never
// lands on a request.
func (s *shard) applyReplica(st ReplicaState) {
	rs := &repState{epoch: st.Epoch, snap: st.Snapshot, ds: st.Dataset, delta: st.Delta}
	if rs.delta != nil && rs.delta.NumRows() == 0 {
		rs.delta = nil
	}
	s.rep.Store(rs)
	if st.Appended > 0 {
		s.rowsAppended.Add(uint64(st.Appended))
	}
	if st.Compacted {
		s.compactions.Add(1)
	}
	s.syncStore(rs)
}

// syncStore brings a materialized execution store in line with the
// published state: a layout change rebuilds the per-partition blocks
// from the (possibly grown) base, a delta change swaps just the view.
// No-op until the first execute request materializes a store. Runs on
// the event consumer (leader) or the apply goroutine (replica),
// serialized against lazy materialization by storeMu.
func (s *shard) syncStore(rst *repState) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	st := s.store.Load()
	if st == nil {
		return
	}
	if st.layout != rst.snap.Serving {
		s.store.Store(&execState{layout: rst.snap.Serving, store: exec.MustNewStore(rst.ds, rst.snap.Serving.Part), delta: rst.delta})
	} else if st.delta != rst.delta {
		s.store.Store(&execState{layout: st.layout, store: st.store, delta: rst.delta})
	}
}

// execStore returns the execution state, materializing it on first use
// from the freshest published state. The build is serialized under
// storeMu (concurrent first-execute requests wait rather than each
// copying the table); afterwards loads are lock-free. The state may
// trail the published serving layout until the next lockstep sync —
// serveExecute reports that window as an in-flight reorganization —
// but it is always an internally consistent (layout, data, delta)
// triple.
func (s *shard) execStore() *execState {
	if st := s.store.Load(); st != nil {
		return st
	}
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if st := s.store.Load(); st != nil {
		return st
	}
	rst := s.rep.Load()
	st := &execState{layout: rst.snap.Serving, store: exec.MustNewStore(rst.ds, rst.snap.Serving.Part), delta: rst.delta}
	s.store.Store(st)
	return st
}

// close stops the shard: no further observations or writes are
// accepted, the consumer (leader mode) drains what was already queued
// — including blocked appenders, which receive their acknowledgments —
// and the call returns once the event loop has gone quiet. Idempotent
// — a follower teardown may close the same core twice — and safe to
// call while requests are still in flight: late observations are
// dropped, not panicked on.
func (s *shard) close() {
	s.closeOnce.Do(func() {
		s.obsMu.Lock()
		s.obsClosed = true
		s.obsMu.Unlock()
		if s.queue != nil {
			close(s.queue)
		}
	})
	s.wg.Wait()
}

// The role-dependent fields (replica, forward, queue, and the
// leader-only decision machinery) are written exactly twice in a
// shard's life: at construction, and under the obsMu write lock by
// promote. Every reader that can race a promotion goes through these
// accessors, which take the read side — the same lock discipline the
// observation handoff already uses against close.

// isReplica reports whether the shard's state is externally applied.
func (s *shard) isReplica() bool {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	return s.replica
}

// queueDepth returns the decision queue's current depth (0 on a
// replica, which has no queue).
func (s *shard) queueDepth() int {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	return len(s.queue)
}

// queueCap returns the decision queue's capacity (0 on a replica).
func (s *shard) queueCap() int {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	return cap(s.queue)
}

// bootRows returns the row count of the table's boot source; see
// CoreConfig.SeedRows.
func (s *shard) bootRows() int {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	return s.seedRows
}

// promote flips a replica shard to leader mode in place, continuing
// from the applied replication state exactly the way a compaction
// continues from a retired engine: a fresh optimizer is built over the
// replicated base with the replicated serving layout as its initial
// state (so the first post-promotion decision costs queries against
// the very layout the old leader was serving), the replicated
// cumulative counters become the stats base, the replicated delta
// reseeds a consumer-owned write tail, and the compaction sequence
// resumes from the serving layout's name so post-promotion folds never
// reuse a layout name the stream has already carried. The event queue
// and consumer goroutine start last; the epoch counter continues from
// the applied position because consume derives each epoch from the
// published state.
func (s *shard) promote(cfg oreo.Config, seedRows, queueSize, compactThreshold int) error {
	st := s.rep.Load()
	if st == nil {
		return errUnavailable("table %q is replicating and has no snapshot yet", s.table)
	}
	// Build the new engine before taking the write lock: construction
	// walks the whole base, and reads only ever hold obsMu for an
	// enqueue. The inputs are stable — the caller has detached the
	// replication stream, so nothing republishes rep underneath us.
	cfg.Initial = st.snap.Serving
	cfg.InitialSort = nil
	opt, err := oreo.New(st.ds, cfg)
	if err != nil {
		return fmt.Errorf("serve: rebuilding optimizer for promotion of table %q: %w", s.table, err)
	}
	copt := oreo.NewConcurrent(opt)
	delta := table.NewDelta(s.ds.Schema())
	if st.delta != nil {
		delta.AppendDataset(st.delta)
	}

	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if !s.replica {
		return errInvalid("table %q is already a leader", s.table)
	}
	if s.obsClosed {
		return errUnavailable("table %q is shutting down", s.table)
	}
	s.copt.Store(copt)
	s.optCfg = copt.Config()
	s.seedRows = seedRows
	s.statsBase = st.snap.Stats
	s.delta = delta
	s.compactThreshold = compactThreshold
	s.compactSeq = compactSeqFromName(st.snap.Serving.Name)
	s.queue = make(chan shardEvent, queueSize)
	s.replica = false
	s.forward = nil
	s.wg.Add(1)
	go s.consume()
	return nil
}

// compactSeqFromName recovers the compaction sequence from a layout
// name: "compact-N" yields N, anything else 0. A promoted leader
// resumes the old leader's sequence so stream-visible layout names
// stay unique across the role change.
func compactSeqFromName(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "compact-%d", &n); err == nil && n > 0 {
		return n
	}
	return 0
}

// observe hands the query to the decision loop — or, on a replica,
// to the upstream forwarder — without blocking: false when the queue
// (or forward buffer) is full or the shard is closing.
func (s *shard) observe(q oreo.Query) bool {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	if s.obsClosed {
		return false
	}
	if s.replica {
		return s.forward != nil && s.forward(q)
	}
	select {
	case s.queue <- shardEvent{kind: evObserve, q: q}:
		return true
	default:
		return false
	}
}

// send enqueues an append or compact event and waits for the
// consumer's acknowledgment. Unlike observations these are never
// sampled out: the send blocks when the queue is full (writers get
// backpressure, reads never do). The obsMu read lock is held only
// across the enqueue — close() cannot close the channel mid-send
// because it needs the write lock, and the consumer keeps draining
// during shutdown, so a blocked send always completes and an enqueued
// event is always acknowledged.
func (s *shard) send(ev shardEvent) (eventAck, *Error) {
	s.obsMu.RLock()
	if s.obsClosed {
		s.obsMu.RUnlock()
		return eventAck{}, errUnavailable("table %q is shutting down", s.table)
	}
	ev.resp = make(chan eventAck, 1)
	//oreovet:ignore blockingsend append/compact writes take deliberate backpressure (see doc above); reads never reach this send and shutdown keeps draining
	s.queue <- ev
	s.obsMu.RUnlock()
	return <-ev.resp, nil
}

// record runs the shared read-path bookkeeping — observation handoff
// and serving counters — and returns whether the query was observed.
func (s *shard) record(q oreo.Query, cost float64) bool {
	observed := s.observe(q)
	if observed {
		s.observed.Add(1)
	} else {
		s.dropped.Add(1)
	}
	s.served.Add(1)
	s.compiles.Add(1)
	s.addCost(cost)
	return observed
}

// combinedCost folds the delta segment into a base-layout cost: the
// delta is unpartitioned, so every query scans it in full — it behaves
// as one extra partition that always survives pruning. The combined
// cost is (survivor row mass + delta rows) / (base rows + delta rows),
// computed from integer masses so leaders and followers at the same
// epoch derive bit-identical floats. With an empty delta the base cost
// is returned untouched, bitwise.
func combinedCost(base float64, survivors []int, part *oreo.Partitioning, deltaRows int) float64 {
	if deltaRows == 0 {
		return base
	}
	mass := 0
	for _, pid := range survivors {
		mass += part.RowsInPartition(pid)
	}
	total := part.TotalRows + deltaRows
	if total == 0 {
		return 0
	}
	return float64(mass+deltaRows) / float64(total)
}

// serveQuery answers one routed query: the lock-free snapshot read path
// (OptimizerSnapshot.CostQuery) for cost and skip-list, then a
// non-blocking observation handoff. A live delta rides on the cost as
// an always-surviving extra partition.
func (s *shard) serveQuery(q oreo.Query) (TableResult, error) {
	st, verr := s.view()
	if verr != nil {
		return TableResult{}, verr
	}
	snap := st.snap
	dec := snap.CostQuery(q)
	ids := dec.SurvivorPartitions()
	cost := combinedCost(dec.Cost, ids, snap.Serving.Part, st.deltaRows())
	observed := s.record(q, cost)

	res := TableResult{
		Table:              s.table,
		Cost:               cost,
		Layout:             dec.Layout.Name,
		NumPartitions:      dec.Layout.Part.NumPartitions,
		SurvivorPartitions: ids,
		DeltaRows:          st.deltaRows(),
		Observed:           observed,
		QueryID:            q.ID,
	}
	if snap.Pending != nil {
		res.Reorganizing = true
		res.PendingLayout = snap.Pending.Name
	}
	return res, nil
}

// serveExecute answers one routed query *and* executes it: cost and
// skip-list are evaluated against the execution state's layout (not the
// possibly newer published snapshot, so pruning and data always agree),
// then the store scans exactly the survivor partitions — plus the
// execution state's delta view, in full — re-checking predicates per
// row and folding the requested aggregates. Errors are client errors
// (invalid aggregates) or a canceled context, and leave every counter
// untouched.
func (s *shard) serveExecute(ctx context.Context, q oreo.Query, aggs []exec.AggSpec) (TableResult, error) {
	if _, verr := s.view(); verr != nil {
		return TableResult{}, verr
	}
	// Validate before materializing: on a cold shard the lazy store
	// build is a full second copy of the table, and a request that is
	// going to be rejected must not leave that (permanent) footprint.
	if err := exec.ValidateAggs(s.ds.Schema(), aggs); err != nil {
		return TableResult{}, err
	}
	st := s.execStore()
	baseCost, ids := st.layout.CostSurvivorsSnapshot(q)
	if ids == nil {
		ids = []int{}
	}
	deltaRows := 0
	if st.delta != nil {
		deltaRows = st.delta.NumRows()
	}
	cost := combinedCost(baseCost, ids, st.layout.Part, deltaRows)
	scan, err := st.store.Scan(q, ids, aggs, exec.Options{Context: ctx, Parallelism: s.scanPar, Delta: st.delta})
	if err != nil {
		return TableResult{}, err
	}
	observed := s.record(q, cost)
	s.executions.Add(1)
	s.execRows.Add(uint64(scan.RowsExamined))
	if scan.Workers > 1 {
		s.parallelScans.Add(1)
	}

	res := TableResult{
		Table:              s.table,
		Cost:               cost,
		Layout:             st.layout.Name,
		NumPartitions:      st.layout.Part.NumPartitions,
		SurvivorPartitions: ids,
		DeltaRows:          deltaRows,
		Observed:           observed,
		QueryID:            q.ID,
		Execution: &ExecutionJSON{
			MatchedRows:     scan.Matched,
			PartitionsRead:  scan.PartitionsRead,
			PartitionsTotal: st.layout.Part.NumPartitions,
			RowsExamined:    scan.RowsExamined,
			RowsTotal:       st.store.TotalRows() + scan.DeltaRows,
			DeltaRows:       scan.DeltaRows,
			Aggregates:      encodeAggs(scan.Aggs),
		},
	}
	if snap := s.currentSnap(); snap.Pending != nil {
		res.Reorganizing = true
		res.PendingLayout = snap.Pending.Name
	} else if snap.Serving != st.layout {
		// The published state already switched but the store rebuild has
		// not landed: the physical swap is still in flight, and answers
		// keep coming from the outgoing layout until it does. Report
		// that honestly — a monitor polling for "reorganization done"
		// must not be told done while execution still reads old blocks.
		res.Reorganizing = true
		res.PendingLayout = snap.Serving.Name
	}
	return res, nil
}

// currentSnap returns the freshest published snapshot; callers must
// have already established a snapshot exists (via view).
func (s *shard) currentSnap() oreo.OptimizerSnapshot {
	return s.rep.Load().snap
}

// addCost accumulates a served cost into the float-bits counter.
func (s *shard) addCost(c float64) {
	for {
		old := s.costBits.Load()
		if s.costBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+c)) {
			return
		}
	}
}

// stats assembles the shard's stats response from one snapshot. On a
// replica shard the optimizer counters are the leader's, replicated
// with the decision stream; the serving metrics are the replica's own.
func (s *shard) stats() (StatsResponse, error) {
	rst, verr := s.view()
	if verr != nil {
		return StatsResponse{}, verr
	}
	snap := rst.snap
	st := snap.Stats
	memo := snap.Serving.Engine().Stats()
	return StatsResponse{
		Table: s.table,

		Queries:          st.Queries,
		Reorganizations:  st.Reorganizations,
		QueryCost:        st.QueryCost,
		ReorgCost:        st.ReorgCost,
		States:           st.States,
		MaxStates:        st.MaxStates,
		Phases:           st.Phases,
		CompetitiveBound: st.CompetitiveBound,

		MemoHits:    memo.Hits,
		MemoMisses:  memo.Misses,
		MemoEntries: memo.Entries,

		Served:            s.served.Load(),
		Observed:          s.observed.Load(),
		Dropped:           s.dropped.Load(),
		ServedCostSum:     math.Float64frombits(s.costBits.Load()),
		SnapshotCompiles:  s.compiles.Load(),
		Executions:        s.executions.Load(),
		ExecutionRowsRead: s.execRows.Load(),
		QueueDepth:        s.queueDepth(),
		QueueCapacity:     s.queueCap(),

		DeltaRows:    rst.deltaRows(),
		RowsAppended: s.rowsAppended.Load(),
		Compactions:  s.compactions.Load(),
	}, nil
}

// layoutInfo assembles the layout response from one snapshot.
func (s *shard) layoutInfo() (LayoutResponse, error) {
	rst, verr := s.view()
	if verr != nil {
		return LayoutResponse{}, verr
	}
	snap := rst.snap
	lay := snap.Serving
	rows := make([]int, lay.Part.NumPartitions)
	for pid, m := range lay.Part.Meta {
		if m != nil {
			rows[pid] = m.NumRows
		}
	}
	res := LayoutResponse{
		Table:         s.table,
		Layout:        lay.Name,
		NumPartitions: lay.Part.NumPartitions,
		TotalRows:     lay.Part.TotalRows,
		PartitionRows: rows,
		DeltaRows:     rst.deltaRows(),
	}
	if snap.Pending != nil {
		res.Reorganizing = true
		res.PendingLayout = snap.Pending.Name
	}
	return res, nil
}

// traceEvents returns the decision trace (empty unless the optimizer
// was configured with TraceCapacity). Replica shards run no decisions,
// so their trace is empty by construction — traces are a decision-path
// artifact and live where decisions are made, on the leader. After a
// compaction the trace is the fresh engine's: compaction retires the
// old optimizer, trace and all.
func (s *shard) traceEvents() []TraceEventJSON {
	if s.isReplica() {
		return []TraceEventJSON{}
	}
	events := s.copt.Load().Events()
	out := make([]TraceEventJSON, 0, len(events))
	for _, e := range events {
		out = append(out, TraceEventJSON{
			Seq: e.Seq, Kind: e.Kind.String(), Layout: e.Layout, Detail: e.Detail,
		})
	}
	return out
}
