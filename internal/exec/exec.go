// Package exec is OREO's execution layer: the component that finally
// *reads data*. Everything below it — the cost model, the compiled
// pruning engine, the serving layer's survivor skip-lists — reasons
// about which partitions a scan may skip; this package materializes the
// actual rows arranged per layout and executes scans that read only the
// partitions a skip-list names, re-checking every predicate per row.
//
// A Store holds one column-major block per partition: the dataset's
// rows regrouped by the partitioning's row→partition assignment, each
// block a small columnar table of its partition's rows. Stores are
// immutable once built and cheap to share; when the optimizer
// reorganizes into a new layout the owner builds a fresh Store from the
// same dataset and atomically swaps it in (internal/serve does exactly
// this, in lockstep with its optimizer snapshots).
//
// Scan is the paper's premise made observable: the survivor skip-list
// bounds the partitions touched (c(s, q) is exactly the fraction of
// rows examined), while the per-row predicate re-check filters the
// false positives metadata pruning necessarily admits. False negatives
// are impossible to hide: a partition wrongly pruned upstream would
// change the result set, which is what the pruned-scan ≡ full-scan
// property tests in this package pin down, bitwise.
package exec

import (
	"context"
	"fmt"

	"oreo/internal/query"
	"oreo/internal/table"
)

// Store is a dataset materialized per partitioning: one column-major
// block per partition. Immutable after NewStore and safe for concurrent
// use.
type Store struct {
	schema *table.Schema
	part   *table.Partitioning
	// blocks holds each partition's rows as its own columnar table,
	// indexed by partition ID. Empty partitions hold zero-row blocks.
	blocks []*table.Dataset
	// rowIDs maps each block row back to its original dataset row index,
	// ascending within a block (blocks preserve dataset order).
	rowIDs [][]int
}

// NewStore materializes the dataset's rows into per-partition blocks
// following the partitioning's assignment. The partitioning must cover
// the dataset (same row count); partition IDs were already validated by
// table.BuildPartitioning.
func NewStore(ds *table.Dataset, part *table.Partitioning) (*Store, error) {
	if len(part.Assign) != ds.NumRows() {
		return nil, fmt.Errorf("exec: partitioning covers %d rows, dataset has %d",
			len(part.Assign), ds.NumRows())
	}
	schema := ds.Schema()
	k := part.NumPartitions
	// First pass groups row indices by partition, second bulk-copies
	// each group column by column (Builder.AppendRows) — no per-cell
	// boxing or re-validation, since every block shares the dataset's
	// schema. Rebuilds run on a serve shard's decision goroutine after
	// every reorganization, so this path stays O(cells) with small
	// constants.
	rowIDs := make([][]int, k)
	for pid := 0; pid < k; pid++ {
		rowIDs[pid] = make([]int, 0, part.RowsInPartition(pid))
	}
	for r, pid := range part.Assign {
		rowIDs[pid] = append(rowIDs[pid], r)
	}
	s := &Store{
		schema: schema,
		part:   part,
		blocks: make([]*table.Dataset, k),
		rowIDs: rowIDs,
	}
	for pid := 0; pid < k; pid++ {
		b := table.NewBuilder(schema, len(rowIDs[pid]))
		b.AppendRows(ds, rowIDs[pid])
		s.blocks[pid] = b.Build()
	}
	return s, nil
}

// MustNewStore is NewStore that panics on error, for partitionings
// known to match their dataset.
func MustNewStore(ds *table.Dataset, part *table.Partitioning) *Store {
	s, err := NewStore(ds, part)
	if err != nil {
		panic(err)
	}
	return s
}

// Schema returns the schema the store's blocks share.
func (s *Store) Schema() *table.Schema { return s.schema }

// Partitioning returns the partitioning the store was arranged by.
func (s *Store) Partitioning() *table.Partitioning { return s.part }

// NumPartitions returns the number of blocks.
func (s *Store) NumPartitions() int { return len(s.blocks) }

// TotalRows returns the number of rows across all blocks.
func (s *Store) TotalRows() int { return s.part.TotalRows }

// Block returns partition pid's rows as a columnar table (read-only).
func (s *Store) Block(pid int) *table.Dataset { return s.blocks[pid] }

// AllPartitions returns the ascending list of every partition ID — the
// survivor list of a full scan.
func (s *Store) AllPartitions() []int {
	ids := make([]int, len(s.blocks))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Options tunes a Scan.
type Options struct {
	// CollectRows returns the matched rows' original dataset indices in
	// Result.RowIDs. Rows are emitted in (partition, row) visit order:
	// ascending within a block, blocks in skip-list order. Because
	// skip-lists are ascending and a skipped partition contributes no
	// matches, a pruned scan and a full scan emit the *same sequence*,
	// which is what the equality property tests compare.
	CollectRows bool
	// Context, when non-nil, is checked between partition blocks: a
	// canceled scan stops reading and returns the context's error. Rows
	// inside one block are never interrupted (a block is the unit of
	// I/O), so cancellation granularity is one partition. Serving
	// transports pass the request context here so a disconnected client
	// stops consuming scan time.
	Context context.Context
}

// Result is one scan's outcome.
type Result struct {
	// Matched counts the rows satisfying every predicate.
	Matched int
	// PartitionsRead is the number of blocks visited (the skip-list's
	// length), and RowsExamined the rows they hold — RowsExamined over
	// the table size is exactly the service cost c(s, q) the optimizer
	// predicted for the skip-list.
	PartitionsRead int
	RowsExamined   int
	// Aggs holds one result per requested aggregate, in request order.
	Aggs []AggValue
	// RowIDs holds the matched rows' original dataset indices when
	// Options.CollectRows is set; nil otherwise.
	RowIDs []int
}

// Scan executes the query over exactly the listed partitions: each
// block named by survivors is read in full and every row is re-checked
// against the query's predicates (row semantics identical to
// query.Query.MatchRow), so partitions the metadata admitted wrongly
// are filtered out row by row. survivors must be strictly ascending
// partition IDs within range — the shape Decision.SurvivorPartitions
// produces — so accidental duplicates fail loudly instead of
// double-counting. The query is bound against the schema once; unknown
// columns or type-mismatched predicates match no rows, exactly as
// MatchRow treats them.
func (s *Store) Scan(q query.Query, survivors []int, aggs []AggSpec, opts Options) (Result, error) {
	accs, err := bindAggs(s.schema, aggs)
	if err != nil {
		return Result{}, err
	}
	prev := -1
	for _, pid := range survivors {
		if pid < 0 || pid >= len(s.blocks) {
			return Result{}, fmt.Errorf("exec: survivor partition %d out of range [0,%d)", pid, len(s.blocks))
		}
		if pid <= prev {
			return Result{}, fmt.Errorf("exec: survivor list not strictly ascending at partition %d", pid)
		}
		prev = pid
	}

	f := bindFilter(s.schema, q)
	var res Result
	if opts.CollectRows {
		res.RowIDs = []int{}
	}
	for _, pid := range survivors {
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				return Result{}, fmt.Errorf("exec: scan canceled: %w", err)
			}
		}
		blk := s.blocks[pid]
		n := blk.NumRows()
		res.PartitionsRead++
		res.RowsExamined += n
		if f.never {
			continue
		}
		ids := s.rowIDs[pid]
		for r := 0; r < n; r++ {
			if !f.match(blk, r) {
				continue
			}
			res.Matched++
			for i := range accs {
				accs[i].add(blk, r)
			}
			if opts.CollectRows {
				res.RowIDs = append(res.RowIDs, ids[r])
			}
		}
	}
	res.Aggs = make([]AggValue, len(accs))
	for i := range accs {
		res.Aggs[i] = accs[i].value()
	}
	return res, nil
}

// ScanFull executes the query over every partition — the reference scan
// the pruned-scan equality property compares against, and the fallback
// when no skip-list is available.
func (s *Store) ScanFull(q query.Query, aggs []AggSpec, opts Options) (Result, error) {
	return s.Scan(q, s.AllPartitions(), aggs, opts)
}
