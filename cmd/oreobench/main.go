// Command oreobench regenerates every table and figure of the paper's
// evaluation as text or CSV tables. Experiment IDs follow DESIGN.md:
//
//	oreobench -exp table1
//	oreobench -exp fig3  [-scale small|default] [-dataset tpch|tpcds|telemetry|all]
//	oreobench -exp fig4  [-dataset tpch]
//	oreobench -exp fig5
//	oreobench -exp fig6
//	oreobench -exp table2 [-dataset all]
//	oreobench -exp ablate
//	oreobench -exp all
//
// Add -format csv for machine-readable output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oreo/internal/datagen"
	"oreo/internal/experiments"
	"oreo/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: table1|fig3|fig4|fig5|fig6|table2|ablate|all")
		dataset = flag.String("dataset", "all", "dataset: tpch|tpcds|telemetry|all")
		scale   = flag.String("scale", "default", "scenario scale: small|default")
		format  = flag.String("format", "text", "output format: text|csv")
		seed    = flag.Int64("seed", 1, "scenario seed")
	)
	flag.Parse()

	f, err := report.ParseFormat(*format)
	if err == nil {
		err = run(*exp, *dataset, *scale, *seed, f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oreobench:", err)
		os.Exit(1)
	}
}

func run(exp, dataset, scale string, seed int64, f report.Format) error {
	datasets, err := resolveDatasets(dataset)
	if err != nil {
		return err
	}
	scenario := func(name string) (*experiments.Scenario, error) {
		var cfg experiments.ScenarioConfig
		switch scale {
		case "small":
			cfg = experiments.SmallScenario(name)
		case "default":
			cfg = experiments.DefaultScenario(name)
		default:
			return nil, fmt.Errorf("unknown scale %q", scale)
		}
		cfg.Seed = seed
		return experiments.Build(cfg)
	}
	emit := func(t *report.Table) error { return t.Write(os.Stdout, f) }

	ids := []string{exp}
	if exp == "all" {
		ids = []string{"table1", "fig3", "fig4", "fig5", "fig6", "table2", "ablate", "appendixa", "sweep"}
	}
	for _, id := range ids {
		switch id {
		case "table1":
			if err := emit(table1Table()); err != nil {
				return err
			}
		case "fig3":
			for _, d := range datasets {
				s, err := scenario(d)
				if err != nil {
					return err
				}
				if err := emit(fig3Table(s)); err != nil {
					return err
				}
			}
		case "fig4":
			for _, d := range datasets {
				if d == datagen.Telemetry {
					continue // the paper shows Fig 4 on TPC-H and TPC-DS
				}
				s, err := scenario(d)
				if err != nil {
					return err
				}
				summary, curves := fig4Tables(s)
				if err := emit(summary); err != nil {
					return err
				}
				if err := emit(curves); err != nil {
					return err
				}
			}
		case "fig5":
			s, err := scenario(datagen.TPCH)
			if err != nil {
				return err
			}
			if err := emit(fig5Table(s)); err != nil {
				return err
			}
		case "fig6":
			s, err := scenario(datagen.TPCH)
			if err != nil {
				return err
			}
			if err := emit(fig6Table(s)); err != nil {
				return err
			}
		case "table2":
			for _, d := range datasets {
				s, err := scenario(d)
				if err != nil {
					return err
				}
				if err := emit(table2Table(s)); err != nil {
					return err
				}
			}
		case "ablate":
			s, err := scenario(datagen.TPCH)
			if err != nil {
				return err
			}
			if err := emit(ablationTable(s)); err != nil {
				return err
			}
		case "appendixa":
			s, err := scenario(datagen.TPCH)
			if err != nil {
				return err
			}
			if err := emit(appendixATable(s)); err != nil {
				return err
			}
		case "sweep":
			s, err := scenario(datagen.Telemetry)
			if err != nil {
				return err
			}
			if err := emit(sweepTable(s)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}
	return nil
}

func resolveDatasets(flagVal string) ([]string, error) {
	if flagVal == "all" {
		return datagen.Names(), nil
	}
	for _, n := range datagen.Names() {
		if n == flagVal {
			return []string{n}, nil
		}
	}
	return nil, fmt.Errorf("unknown dataset %q (want %s or all)",
		flagVal, strings.Join(datagen.Names(), "|"))
}

func table1Table() *report.Table {
	t := &report.Table{
		Title:  "Table I: relative cost of reorganization over query (alpha)",
		Header: []string{"file_mb", "query_s", "reorg_s", "alpha"},
	}
	for _, r := range experiments.Table1() {
		t.AddRow(r.FileMB, round2(r.QuerySeconds), round2(r.ReorgSeconds), round2(r.Alpha))
	}
	return t
}

func fig3Table(s *experiments.Scenario) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Figure 3: end-to-end time, dataset=%s (rows=%d queries=%d k=%d)",
			s.Cfg.Dataset, s.Cfg.Rows, s.Cfg.NumQueries, s.Partitions),
		Header: []string{"gen", "policy", "query_h", "reorg_h", "total_h", "qcost", "rcost", "switches"},
	}
	for _, r := range experiments.Fig3(s, experiments.DefaultParams()) {
		t.AddRow(string(r.Generator), r.Policy,
			round2(r.QueryHours), round2(r.ReorgHours), round2(r.TotalHours),
			round0(r.QueryCost), round0(r.ReorgCost), r.Switches)
	}
	return t
}

func fig4Tables(s *experiments.Scenario) (summary, curves *report.Table) {
	series := experiments.Fig4(s, experiments.DefaultParams())
	summary = &report.Table{
		Title:  fmt.Sprintf("Figure 4: totals, dataset=%s", s.Cfg.Dataset),
		Header: []string{"policy", "total", "switches"},
	}
	for _, sr := range series {
		summary.AddRow(sr.Policy, round0(sr.Total), sr.Switches)
	}

	curves = &report.Table{
		Title:  fmt.Sprintf("Figure 4: cumulative total cost vs query number, dataset=%s", s.Cfg.Dataset),
		Header: []string{"query"},
	}
	for _, sr := range series {
		curves.Header = append(curves.Header, sr.Policy)
	}
	if len(series) > 0 && len(series[0].Curve) > 0 {
		n := len(series[0].Curve)
		step := n / 20
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			row := []interface{}{(i + 1) * series[0].Stride}
			for _, sr := range series {
				v := 0.0
				if i < len(sr.Curve) {
					v = sr.Curve[i]
				}
				row = append(row, round0(v))
			}
			curves.AddRow(row...)
		}
	}
	return summary, curves
}

func fig5Table(s *experiments.Scenario) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Figure 5: effect of reorganization cost alpha (dataset=%s, qd-tree)", s.Cfg.Dataset),
		Header: []string{"alpha", "query_cost", "reorg_cost", "total", "switches"},
	}
	for _, r := range experiments.Fig5(s, experiments.DefaultParams(), nil) {
		t.AddRow(r.Alpha, round0(r.QueryCost), round0(r.ReorgCost), round0(r.Total), r.Switches)
	}
	return t
}

func fig6Table(s *experiments.Scenario) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Figure 6: effect of distance threshold epsilon (dataset=%s, qd-tree)", s.Cfg.Dataset),
		Header: []string{"epsilon", "avg_states", "max_states", "query_cost", "reorg_cost", "total"},
	}
	for _, r := range experiments.Fig6(s, experiments.DefaultParams(), nil) {
		t.AddRow(r.Epsilon, round2(r.AvgSpace), r.MaxSpace,
			round0(r.QueryCost), round0(r.ReorgCost), round0(r.Total))
	}
	return t
}

func table2Table(s *experiments.Scenario) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Table II: ablations, dataset=%s (logical costs)", s.Cfg.Dataset),
		Header: []string{"group", "variant", "query_cost", "reorg_cost", "switches", "default"},
	}
	for _, r := range experiments.Table2(s, experiments.DefaultParams()) {
		def := ""
		if r.Default {
			def = "*"
		}
		t.AddRow(r.Group, r.Variant, round0(r.QueryCost), round0(r.ReorgCost), r.Switches, def)
	}
	return t
}

func ablationTable(s *experiments.Scenario) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Ablations: design choices (dataset=%s, qd-tree)", s.Cfg.Dataset),
		Header: []string{"ablation", "variant", "query_cost", "reorg_cost", "reorgs", "default"},
	}
	p := experiments.DefaultParams()
	rows := experiments.AblationStayInPlace(s, p)
	rows = append(rows, experiments.AblationMultiCopy(s, p, nil)...)
	for _, r := range rows {
		def := ""
		if r.Default {
			def = "*"
		}
		t.AddRow(r.Ablation, r.Variant, round0(r.QueryCost), round0(r.ReorgCost), r.Switches, def)
	}
	return t
}

func appendixATable(s *experiments.Scenario) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Appendix A: static-layout degradation under drift (dataset=%s, qd-tree)",
			s.Cfg.Dataset),
		Header: []string{"segment", "template", "first_seg_layout", "own_layout", "default_layout"},
	}
	for _, r := range experiments.AppendixA(s) {
		t.AddRow(r.Segment, r.Template, round2(r.StaticCost), round2(r.OwnCost), round2(r.DefaultCost))
	}
	return t
}

func sweepTable(s *experiments.Scenario) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Column sweep (§V-A): SW vs RS candidates (dataset=%s, qd-tree)",
			s.Cfg.Dataset),
		Header: []string{"source", "query_cost", "reorg_cost", "switches"},
	}
	for _, r := range experiments.ColumnSweep(s, experiments.DefaultParams(), 300) {
		t.AddRow(r.Source, round0(r.QueryCost), round0(r.ReorgCost), r.Switches)
	}
	return t
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round0(v float64) float64 { return float64(int64(v + 0.5)) }
