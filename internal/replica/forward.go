package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"oreo"
)

// atomicUint64 is a tiny alias so counter structs read cleanly.
type atomicUint64 = atomic.Uint64

// forwarder ships follower-answered queries upstream so the leader's
// optimizer keeps learning from edge traffic. It is built to shed, not
// stall: enqueue is non-blocking (overflow is dropped and counted), a
// background loop batches observations by count and time, and an
// upstream failure costs that batch — there is no retry queue that
// could grow without bound or a send that could ever backpressure the
// serving path.
type forwarder struct {
	upstream string
	hc       *http.Client
	ch       chan Observation
	batch    int
	interval time.Duration
	logf     func(format string, args ...any)
	ctx      context.Context
	// gen reports the sender's current leadership fencing term at post
	// time (nil ≡ unfenced), so a leader can 409 batches from followers
	// still living in a deposed leader's worldview.
	gen func() uint64

	forwarded atomic.Uint64 // accepted into a leader decision queue
	dropped   atomic.Uint64 // local overflow, failed posts, leader queue-full
	rejected  atomic.Uint64 // leader-side validation failures (schema skew)
}

func newForwarder(ctx context.Context, upstream string, hc *http.Client, queue, batch int, interval time.Duration, logf func(string, ...any), gen func() uint64, wg *sync.WaitGroup) *forwarder {
	fw := &forwarder{
		upstream: upstream,
		hc:       hc,
		ch:       make(chan Observation, queue),
		batch:    batch,
		interval: interval,
		logf:     logf,
		ctx:      ctx,
		gen:      gen,
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		fw.run()
	}()
	return fw
}

// enqueue hands one answered query to the forwarding loop without
// blocking; false (counted) when the buffer is full or shutdown begun.
func (fw *forwarder) enqueue(table string, q oreo.Query) bool {
	ob := Observation{Table: table, ID: q.ID}
	for _, p := range q.Preds {
		ob.Preds = append(ob.Preds, predToWire(p))
	}
	select {
	case fw.ch <- ob:
		return true
	default:
		fw.dropped.Add(1)
		return false
	}
}

// run batches and posts until the context ends, then flushes what it
// holds with a short grace timeout.
func (fw *forwarder) run() {
	tick := time.NewTicker(fw.interval)
	defer tick.Stop()
	buf := make([]Observation, 0, fw.batch)
	for {
		select {
		case <-fw.ctx.Done():
			// Final flush: the context that carried us is gone, so give
			// the upstream post its own short deadline.
			for {
				select {
				case ob := <-fw.ch:
					buf = append(buf, ob)
					continue
				default:
				}
				break
			}
			if len(buf) > 0 {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				fw.post(ctx, buf)
				cancel()
			}
			return
		case ob := <-fw.ch:
			buf = append(buf, ob)
			if len(buf) >= fw.batch {
				fw.post(fw.ctx, buf)
				buf = buf[:0]
			}
		case <-tick.C:
			if len(buf) > 0 {
				fw.post(fw.ctx, buf)
				buf = buf[:0]
			}
		}
	}
}

// post ships one batch; failures drop the batch (counted), never
// retry — the leader samples under overload anyway, and a retry queue
// is exactly the unbounded buffer this design forbids.
func (fw *forwarder) post(ctx context.Context, obs []Observation) {
	req0 := ObserveRequest{Observations: obs}
	if fw.gen != nil {
		req0.Generation = fw.gen()
	}
	body, err := json.Marshal(&req0)
	if err != nil {
		fw.dropped.Add(uint64(len(obs)))
		fw.logf("replica: encoding observation batch: %v", err)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fw.upstream+"/v2/replication/observe", bytes.NewReader(body))
	if err != nil {
		fw.dropped.Add(uint64(len(obs)))
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := fw.hc.Do(req)
	if err != nil {
		fw.dropped.Add(uint64(len(obs)))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fw.dropped.Add(uint64(len(obs)))
		return
	}
	var or ObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		// The batch reached the leader; the accounting just didn't come
		// back. Count it forwarded rather than double-reporting drops.
		fw.forwarded.Add(uint64(len(obs)))
		return
	}
	fw.forwarded.Add(uint64(or.Observed))
	fw.dropped.Add(uint64(or.Dropped))
	fw.rejected.Add(uint64(or.Rejected))
}
