// Package manager implements the paper's LAYOUT MANAGER: the producer
// side of the dynamic state space. It watches the query stream through
// a sliding window (and, optionally, a time-biased reservoir sample),
// periodically generates new candidate layouts tailored to the recent
// workload, and decides — via the ε-distance rule of Algorithm 5 —
// whether a candidate is different enough from the incumbent states to
// be admitted.
//
// The manager is split into two pieces so that baselines can share
// candidate generation without OREO's admission policy (the paper runs
// Greedy, Regret and OREO over the same candidate stream):
//
//   - Feed: window/reservoir maintenance + periodic candidate generation;
//   - Admit / MostRedundant: the ε-distance admission test and the
//     pruning heuristic over cost vectors measured on the R-TBS sample.
package manager

import (
	"math/rand"

	"oreo/internal/layout"
	"oreo/internal/prune"
	"oreo/internal/query"
	"oreo/internal/sampling"
	"oreo/internal/table"
)

// Source selects which workload sample candidates are generated from.
type Source int

const (
	// SourceWindow generates candidates from the sliding window only
	// (the paper's default and empirically best choice).
	SourceWindow Source = iota
	// SourceReservoir generates candidates from the R-TBS sample only.
	SourceReservoir
	// SourceBoth generates one candidate from each per period (the
	// paper's SW+RS ablation).
	SourceBoth
)

// String returns the ablation label used in Table II.
func (s Source) String() string {
	switch s {
	case SourceWindow:
		return "SW"
	case SourceReservoir:
		return "RS"
	case SourceBoth:
		return "SW+RS"
	default:
		return "Source(?)"
	}
}

// FeedConfig parameterizes candidate generation.
type FeedConfig struct {
	// WindowSize is the sliding-window capacity (paper default: 200).
	WindowSize int
	// Period is how many queries elapse between candidate generations.
	// Zero means WindowSize (regenerate once per full window turnover).
	Period int
	// Partitions is the target partition count k passed to the
	// generator.
	Partitions int
	// Source selects the workload sample(s) candidates come from.
	Source Source
	// ReservoirSize is the R-TBS sample capacity (paper keeps this
	// small; default 100). The reservoir also feeds admission distances.
	ReservoirSize int
	// ReservoirLambda is the R-TBS decay rate; zero selects the default.
	ReservoirLambda float64
	// MinWindowFill is the minimum number of window queries before the
	// first candidate is generated. Zero means WindowSize/2.
	MinWindowFill int
}

// Candidate is one generated layout plus its provenance.
type Candidate struct {
	Layout *layout.Layout
	// FromReservoir records whether the candidate was generated from
	// the R-TBS sample rather than the sliding window.
	FromReservoir bool
}

// Feed watches the stream and emits candidates on a fixed cadence.
type Feed struct {
	cfg    FeedConfig
	gen    layout.Generator
	ds     *table.Dataset
	window *sampling.SlidingWindow
	rtbs   *sampling.RTBS
	seen   int

	// cache avoids rebuilding deterministic layouts (e.g. Z-order over
	// the same column set) that periodic generation would otherwise
	// recompute every period.
	cache map[string]*layout.Layout
}

// KeyedGenerator is implemented by generators whose output is fully
// determined by a cheap-to-compute key (dataset-independent identity,
// e.g. the Z-order column set). The feed uses it to reuse layouts.
type KeyedGenerator interface {
	layout.Generator
	// Key returns the cache key for Generate(d, qs, k), or "" when the
	// output is not cacheable.
	Key(schema *table.Schema, qs []query.Query, k int) string
}

// NewFeed returns a candidate feed over the dataset using the
// generator. rng seeds the R-TBS reservoir.
func NewFeed(ds *table.Dataset, gen layout.Generator, cfg FeedConfig, rng *rand.Rand) *Feed {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 200
	}
	if cfg.Period <= 0 {
		cfg.Period = cfg.WindowSize
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 64
	}
	if cfg.ReservoirSize <= 0 {
		cfg.ReservoirSize = 100
	}
	if cfg.MinWindowFill <= 0 {
		cfg.MinWindowFill = cfg.WindowSize / 2
	}
	return &Feed{
		cfg:    cfg,
		gen:    gen,
		ds:     ds,
		window: sampling.NewSlidingWindow(cfg.WindowSize),
		rtbs:   sampling.NewRTBS(cfg.ReservoirSize, cfg.ReservoirLambda, rng),
		cache:  make(map[string]*layout.Layout),
	}
}

// Observe feeds one query and returns any candidates generated at this
// position (usually zero or one; two under SourceBoth).
func (f *Feed) Observe(q query.Query) []Candidate {
	f.window.Add(q)
	f.rtbs.Add(q)
	f.seen++
	if f.seen%f.cfg.Period != 0 || f.window.Len() < f.cfg.MinWindowFill {
		return nil
	}

	var out []Candidate
	if f.cfg.Source == SourceWindow || f.cfg.Source == SourceBoth {
		if l := f.generate(f.window.Queries()); l != nil {
			out = append(out, Candidate{Layout: l})
		}
	}
	if f.cfg.Source == SourceReservoir || f.cfg.Source == SourceBoth {
		if l := f.generate(f.rtbs.Queries()); l != nil {
			out = append(out, Candidate{Layout: l, FromReservoir: true})
		}
	}
	return out
}

// generate builds (or fetches from cache) a layout for the sample.
func (f *Feed) generate(qs []query.Query) *layout.Layout {
	if len(qs) == 0 {
		return nil
	}
	if kg, ok := f.gen.(KeyedGenerator); ok {
		if key := kg.Key(f.ds.Schema(), qs, f.cfg.Partitions); key != "" {
			if l, hit := f.cache[key]; hit {
				return l
			}
			l := f.gen.Generate(f.ds, qs, f.cfg.Partitions)
			f.cache[key] = l
			return l
		}
	}
	return f.gen.Generate(f.ds, qs, f.cfg.Partitions)
}

// ReservoirQueries returns the current R-TBS sample, the query set
// Algorithm 5 measures layout distances on.
func (f *Feed) ReservoirQueries() []query.Query { return f.rtbs.Queries() }

// WindowQueries returns the current sliding-window contents.
func (f *Feed) WindowQueries() []query.Query { return f.window.Queries() }

// Seen returns the number of queries observed.
func (f *Feed) Seen() int { return f.seen }

// Admit implements Algorithm 5 (ADMIT STATE): the candidate joins the
// state space only if its normalized-L1 cost-vector distance to *every*
// incumbent, measured on the sample, exceeds epsilon. An empty
// incumbent set always admits; an empty sample never does (there is no
// evidence the candidate differs).
func Admit(candidate *layout.Layout, incumbents []*layout.Layout, sample []query.Query, epsilon float64) bool {
	if len(incumbents) == 0 {
		return true
	}
	if len(sample) == 0 {
		return false
	}
	return AdmitCompiled(candidate, incumbents, candidate.CompileWorkload(sample), epsilon)
}

// AdmitCompiled is Admit over a pre-compiled sample: callers testing
// several candidates against the same sample in one period compile it
// once and share the binding across every admission check.
func AdmitCompiled(candidate *layout.Layout, incumbents []*layout.Layout, cqs []*prune.CompiledQuery, epsilon float64) bool {
	if len(incumbents) == 0 {
		return true
	}
	if len(cqs) == 0 {
		return false
	}
	cv := candidate.CostVectorCompiled(cqs)
	for _, inc := range incumbents {
		if layout.Distance(cv, inc.CostVectorCompiled(cqs)) <= epsilon {
			return false
		}
	}
	return true
}

// MostRedundant returns the index of the incumbent whose cost vector is
// closest to some other incumbent on the sample — the pruning victim
// when the state space must shrink. skip marks indices that must not be
// chosen (e.g. the current layout). It returns -1 when no prunable
// state exists.
func MostRedundant(incumbents []*layout.Layout, sample []query.Query, skip func(i int) bool) int {
	if len(incumbents) < 2 || len(sample) == 0 {
		return -1
	}
	return MostRedundantCompiled(incumbents, incumbents[0].CompileWorkload(sample), skip)
}

// MostRedundantCompiled is MostRedundant over a pre-compiled sample.
func MostRedundantCompiled(incumbents []*layout.Layout, cqs []*prune.CompiledQuery, skip func(i int) bool) int {
	if len(incumbents) < 2 || len(cqs) == 0 {
		return -1
	}
	vectors := make([][]float64, len(incumbents))
	for i, l := range incumbents {
		vectors[i] = l.CostVectorCompiled(cqs)
	}
	best := -1
	bestDist := 0.0
	for i := range incumbents {
		if skip != nil && skip(i) {
			continue
		}
		// Distance to nearest other incumbent.
		nearest := -1.0
		for j := range incumbents {
			if j == i {
				continue
			}
			d := layout.Distance(vectors[i], vectors[j])
			if nearest < 0 || d < nearest {
				nearest = d
			}
		}
		if nearest >= 0 && (best == -1 || nearest < bestDist) {
			best = i
			bestDist = nearest
		}
	}
	return best
}
