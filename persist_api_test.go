package oreo

import (
	"bytes"
	"testing"
)

func TestPublicSaveLoadLayout(t *testing.T) {
	ds := buildEventsTable(t, 500)
	opt, err := New(ds, Config{Alpha: 15, Partitions: 8, InitialSort: []string{"ts"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveLayout(&buf, opt.CurrentLayout()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLayout(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded layout can seed a new optimizer: the restart workflow.
	opt2, err := New(ds, Config{Alpha: 15, Partitions: 8, Initial: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if opt2.CurrentLayout().Name != opt.CurrentLayout().Name {
		t.Errorf("restarted layout %q, want %q", opt2.CurrentLayout().Name, opt.CurrentLayout().Name)
	}
	q := Query{Preds: []Predicate{IntRange("ts", 0, 49)}}
	if a, b := opt.CurrentLayout().Cost(q), opt2.CurrentLayout().Cost(q); a != b {
		t.Errorf("cost diverged after save/load: %g vs %g", a, b)
	}
}
