package serve

import (
	"fmt"
	"math"

	"oreo"
	"oreo/internal/exec"
)

// PredicateJSON is the wire form of one predicate. It mirrors the
// query-log encoding in internal/persist: numeric predicates carry both
// the int64 and float64 bound families and the evaluator selects by the
// column's schema type, so every constructible predicate round-trips.
//
// Clients must therefore populate the family matching the target
// column's type (or both, as captured logs do): bounds of the other
// family read as their zero values. This matters most with CSV-booted
// tables, where one fractional cell legally infers an expected-integer
// column as float64 — check GET /v1/tables/{t}/layout or the boot log
// for the inferred types before hand-writing integer-only bounds.
type PredicateJSON struct {
	Col   string   `json:"col"`
	HasLo bool     `json:"has_lo,omitempty"`
	HasHi bool     `json:"has_hi,omitempty"`
	LoI   int64    `json:"lo_i,omitempty"`
	HiI   int64    `json:"hi_i,omitempty"`
	LoF   float64  `json:"lo_f,omitempty"`
	HiF   float64  `json:"hi_f,omitempty"`
	In    []string `json:"in,omitempty"`
}

// QueryRequest is the body of POST /v1/query (and one element of a
// batch). Table restricts the query to one registered table; when empty
// the predicates are routed to every table whose schema contains their
// column, the multi-table rule of multitable.Route.
//
// With Execute set, the server does not stop at the skip-list: it scans
// the survivor partitions of its materialized per-layout store,
// re-checks the predicates per row, and returns matched-row counts (and
// any requested Aggs) in each TableResult.Execution. ID, when set, is
// echoed back on every result so log-replay clients can correlate
// answers with their captured queries.
type QueryRequest struct {
	Table string          `json:"table,omitempty"`
	ID    int             `json:"id,omitempty"`
	Preds []PredicateJSON `json:"preds"`
	// Execute requests row-level execution against the survivor
	// partitions in addition to costing.
	Execute bool `json:"execute,omitempty"`
	// Aggs are the aggregates to fold over the matched rows; only
	// consulted when Execute is set. On a routed (table-less) query each
	// aggregate runs on the queried tables that have its column.
	Aggs []AggregateJSON `json:"aggs,omitempty"`
}

// AggregateJSON requests one execution aggregate.
type AggregateJSON struct {
	// Op is one of "count", "sum", "min", "max".
	Op string `json:"op"`
	// Col names the aggregated column; ignored for "count".
	Col string `json:"col,omitempty"`
}

// AggregateResultJSON is one computed aggregate. Type tells which value
// field carries the result: "int64" → value_i (counts, integer sums and
// extremes), "float64" → value_f, "string" → value_s.
//
// JSON numbers cannot carry NaN or ±Inf, so a non-finite float result
// (a sum folding a NaN cell, or overflowing) is spelled in value_s —
// "NaN", "+Inf", or "-Inf" — with value_f zero. Finite results leave
// value_s empty for float64-typed aggregates.
type AggregateResultJSON struct {
	Op  string `json:"op"`
	Col string `json:"col,omitempty"`
	// Type is the result type: "int64", "float64", or "string".
	Type string `json:"type"`
	// Valid is false for min/max over zero matched rows (no extreme
	// exists) and for an int64 sum that overflowed (no representable
	// result); counts are always valid.
	Valid  bool    `json:"valid"`
	ValueI int64   `json:"value_i"`
	ValueF float64 `json:"value_f"`
	ValueS string  `json:"value_s"`
}

// ExecutionJSON is the row-level half of an executed query's answer:
// what a scan over exactly the survivor partitions found. RowsExamined
// over RowsTotal reproduces the reported Cost — the paper's c(s, q)
// made observable — while MatchedRows counts the rows that actually
// satisfied every predicate after the per-row re-check.
type ExecutionJSON struct {
	MatchedRows     int `json:"matched_rows"`
	PartitionsRead  int `json:"partitions_read"`
	PartitionsTotal int `json:"partitions_total"`
	RowsExamined    int `json:"rows_examined"`
	RowsTotal       int `json:"rows_total"`
	// DeltaRows counts the delta-segment rows this scan examined on top
	// of the survivor partitions (the delta is unpartitioned, so every
	// execution reads all of it). Included in RowsExamined and RowsTotal;
	// omitted while the delta is empty, which keeps pre-live-write
	// responses byte-identical.
	DeltaRows int `json:"delta_rows,omitempty"`
	// Aggregates holds one entry per requested aggregate, in request
	// order (absent aggregates were requested on a column this table
	// does not have — routed queries only).
	Aggregates []AggregateResultJSON `json:"aggregates,omitempty"`
}

// BatchRequest is the body of POST /v1/query/batch.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// TableResult is one table's serving answer for one query.
type TableResult struct {
	Table string `json:"table"`
	// Cost is the fraction of the table scanned: the row mass of
	// SurvivorPartitions over the table size.
	Cost float64 `json:"cost"`
	// Layout names the layout the query was costed on.
	Layout string `json:"layout"`
	// NumPartitions is the layout's partition count, so callers can
	// derive the skipped set as the complement of the survivor list.
	NumPartitions int `json:"num_partitions"`
	// SurvivorPartitions is the skip-list complement: ascending IDs of
	// the partitions an execution layer must actually read. Never null
	// (an unsatisfiable query yields an empty list).
	SurvivorPartitions []int `json:"survivor_partitions"`
	// Reorganizing reports an in-flight background reorganization into
	// PendingLayout as of the answering snapshot.
	Reorganizing  bool   `json:"reorganizing,omitempty"`
	PendingLayout string `json:"pending_layout,omitempty"`
	// DeltaRows is the size of the table's delta segment as of the
	// answering snapshot. The delta is always scanned (it has no
	// partitions to skip), so Cost already folds it in as an extra
	// always-survivor mass; this reports the row count behind that.
	// Omitted while empty, which keeps append-free responses
	// byte-identical to the pre-live-write contract.
	DeltaRows int `json:"delta_rows,omitempty"`
	// Observed reports whether the query was enqueued for the decision
	// loop. False means the observation queue was full and the query was
	// sampled out of reorganization decisions (it was still answered).
	Observed bool `json:"observed"`
	// QueryID echoes the request's ID (absent when the request carried
	// none — an explicit ID of 0 is indistinguishable from no ID, so
	// replay clients should number from 1).
	QueryID int `json:"query_id,omitempty"`
	// Execution reports the row-level scan outcome when the request set
	// Execute. The scan ran against the store snapshot paired with the
	// layout named above, reading only SurvivorPartitions.
	Execution *ExecutionJSON `json:"execution,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query: one result
// per affected table, in table registration order.
type QueryResponse struct {
	Results []TableResult `json:"results"`
}

// BatchItem is one entry of a batch response: either Results or Error
// is set. A batch is never failed wholesale by one bad query — the
// partial-failure contract — so callers must check per-item errors.
type BatchItem struct {
	// Index is the query's position in the request, echoed back so
	// partial failures stay attributable.
	Index int `json:"index"`
	// ID echoes the query's wire ID, so clients replaying captured logs
	// can correlate each answer with its source query even after
	// reordering (absent when the request carried none).
	ID      int           `json:"id,omitempty"`
	Results []TableResult `json:"results,omitempty"`
	Error   string        `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/query/batch.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// LayoutResponse is the body of GET /v1/tables/{table}/layout.
type LayoutResponse struct {
	Table         string `json:"table"`
	Layout        string `json:"layout"`
	NumPartitions int    `json:"num_partitions"`
	TotalRows     int    `json:"total_rows"`
	// PartitionRows maps partition ID to row count — the sizing a
	// caller needs to turn survivor lists into I/O estimates.
	PartitionRows []int  `json:"partition_rows"`
	Reorganizing  bool   `json:"reorganizing,omitempty"`
	PendingLayout string `json:"pending_layout,omitempty"`
	// DeltaRows is the unpartitioned delta segment's current size —
	// rows appended since the last compaction, sitting outside
	// TotalRows/PartitionRows until a fold moves them into the base.
	// Omitted while empty.
	DeltaRows int `json:"delta_rows,omitempty"`
}

// StatsResponse is the body of GET /v1/tables/{table}/stats: the
// optimizer's cumulative counters, the costing memo's effectiveness,
// and the shard's serving metrics, all from one snapshot.
type StatsResponse struct {
	Table string `json:"table"`

	// Optimizer counters (oreo.Stats).
	Queries          int     `json:"queries"`
	Reorganizations  int     `json:"reorganizations"`
	QueryCost        float64 `json:"query_cost"`
	ReorgCost        float64 `json:"reorg_cost"`
	States           int     `json:"states"`
	MaxStates        int     `json:"max_states"`
	Phases           int     `json:"phases"`
	CompetitiveBound float64 `json:"competitive_bound"`

	// Costing-memo effectiveness for the serving layout. These count
	// the *decision path* only: window re-costing, admission checks, and
	// candidate evaluation inside the background decision loop. The
	// request read path deliberately bypasses the memo (it compiles
	// fresh against the immutable snapshot so requests never serialize
	// on the memo lock) and is counted by SnapshotCompiles instead — in
	// a serve-only deployment with a quiet decision loop these stay
	// near zero while SnapshotCompiles tracks the request rate.
	MemoHits    uint64 `json:"memo_hits"`
	MemoMisses  uint64 `json:"memo_misses"`
	MemoEntries int    `json:"memo_entries"`

	// Shard serving metrics (the request read path).
	Served        uint64  `json:"served"`
	Observed      uint64  `json:"observed"`
	Dropped       uint64  `json:"dropped"`
	ServedCostSum float64 `json:"served_cost_sum"`
	// SnapshotCompiles counts the lock-free compile-and-sweep
	// evaluations the read path served against layout snapshots — the
	// memo-bypassing complement of MemoHits/MemoMisses above.
	SnapshotCompiles uint64 `json:"snapshot_compiles"`
	// Executions counts served requests that also ran a row-level scan
	// over their survivor partitions, and ExecutionRowsRead the rows
	// those scans examined.
	Executions        uint64 `json:"executions"`
	ExecutionRowsRead uint64 `json:"execution_rows_read"`
	QueueDepth        int    `json:"queue_depth"`
	QueueCapacity     int    `json:"queue_capacity"`

	// Live write path counters: current delta segment size, rows landed
	// through appends this boot, and compactions folded. All omitted
	// while zero so write-free deployments keep the original body.
	DeltaRows    int    `json:"delta_rows,omitempty"`
	RowsAppended uint64 `json:"rows_appended,omitempty"`
	Compactions  uint64 `json:"compactions,omitempty"`
}

// TraceEventJSON is one decision-trace event.
type TraceEventJSON struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	Layout string `json:"layout"`
	Detail string `json:"detail,omitempty"`
}

// TraceResponse is the body of GET /v1/tables/{table}/trace.
type TraceResponse struct {
	Table  string           `json:"table"`
	Events []TraceEventJSON `json:"events"`
}

// HealthResponse is the body of GET /healthz. The three shard totals
// are the authoritative serving view: Served counts every answered
// request, split into Observed (enqueued for the decision loop, or —
// on a follower — forwarded upstream) and Dropped (sampled out under
// overload). Queries counts what the decision loops have actually
// *processed* so far — it trails Observed while queues drain and
// excludes Dropped entirely, so it understates traffic under load and
// must not be read as a request count.
//
// Unlike the /v1 response shapes, /healthz is an operational endpoint,
// not part of the frozen replay contract: fields are added as the
// topology grows (Role, LayoutEpochs, Upstream/Advertise arrived with
// replication), always additively.
type HealthResponse struct {
	// Status is "ok", or "initializing" on a follower that has not yet
	// applied a first snapshot for every table.
	Status string `json:"status"`
	// Role is "leader" (owns decision loops) or "follower" (replica
	// applying the leader's decision stream).
	Role string `json:"role"`
	// Generation is the monotonic leadership fencing term: on a leader,
	// the term it publishes its decision stream under (0 when no
	// publisher is attached); on a follower, the highest term it has
	// applied. Two curls tell an operator whether a follower is still
	// tracking a deposed leader. Arrived with cluster promotion,
	// additively (see the doc comment above).
	Generation uint64 `json:"generation"`
	// Upstream is the leader URL a follower replicates from; Advertise
	// is the URL a leader told operators to point followers at. Both
	// informational.
	Upstream  string   `json:"upstream,omitempty"`
	Advertise string   `json:"advertise,omitempty"`
	Tables    []string `json:"tables"`
	// LayoutEpochs maps each table to its monotonic decision sequence
	// number — on a leader, decisions processed this boot; on a
	// follower, the last epoch applied from the stream. Replication lag
	// for a table is the difference between the two readings, which is
	// why the same field exists on both sides: two curls give the lag.
	LayoutEpochs map[string]uint64 `json:"layout_epochs"`
	// Served / Observed / Dropped are summed over all table shards.
	Served   uint64 `json:"served"`
	Observed uint64 `json:"observed"`
	Dropped  uint64 `json:"dropped"`
	// Queries is the total processed by the decision loops across all
	// tables (observed queries that have drained, plus any direct use).
	// On a follower it reflects the leader's replicated counters.
	Queries int `json:"queries"`
	// QueueDepth is the observations currently waiting in decision
	// queues across all tables, making the Observed/Queries relation
	// auditable in one reading: Observed = Queries + QueueDepth (up to
	// scrape skew), so a persistent gap is a lagging decision loop, not
	// lost counts. Always 0 on a follower (no local decision queues).
	QueueDepth int `json:"queue_depth"`
	// ScanParallelism is the worker count execute-path scans run with
	// (CoreConfig.ScanParallelism after defaulting/clamping), and
	// ParallelScans counts the executions across all tables that
	// actually used more than one worker. Parallelism never changes
	// results — scans are bit-identical at every setting — so these are
	// capacity-planning signals, not correctness ones.
	ScanParallelism int    `json:"scan_parallelism"`
	ParallelScans   uint64 `json:"parallel_scans"`
	// DeltaRows maps each table to its current delta segment size: rows
	// appended but not yet folded into the base layout. A settle loop
	// watches these drop to zero after a compaction round. Arrived with
	// the live write path, additively (see the doc comment above).
	DeltaRows map[string]int `json:"delta_rows"`
}

// AppendRequest is the body of POST /v2/tables/{table}/append. Each
// row maps every schema column name to its value; numbers are decoded
// with full precision (the server reads them as json.Number), integer
// columns reject fractional values, and extra or missing keys fail the
// whole batch — nothing lands on a partial error.
type AppendRequest struct {
	Rows []map[string]any `json:"rows"`
}

// AppendResponse acknowledges a durable append: as of Epoch, the
// Appended rows are visible to every query on this server (they landed
// in the delta segment, which every scan reads). DeltaRows is the
// delta size after the append — or after the auto-compaction it
// triggered, in which case it is typically 0.
type AppendResponse struct {
	Table     string `json:"table"`
	Epoch     uint64 `json:"epoch"`
	Appended  int    `json:"appended"`
	DeltaRows int    `json:"delta_rows"`
}

// CompactResponse acknowledges POST /v2/tables/{table}/compact: Folded
// delta rows were rewritten into the base layout (0 when the delta was
// already empty — an idempotent no-op that does not advance Epoch).
type CompactResponse struct {
	Table     string `json:"table"`
	Epoch     uint64 `json:"epoch"`
	Folded    int    `json:"folded"`
	DeltaRows int    `json:"delta_rows"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// decodePred validates and converts one wire predicate. The schema
// check (does the column exist on the target table?) happens at routing
// time; this only enforces shape.
func decodePred(p PredicateJSON) (oreo.Predicate, error) {
	if p.Col == "" {
		return oreo.Predicate{}, fmt.Errorf("predicate with empty column")
	}
	numeric := p.HasLo || p.HasHi
	if numeric && len(p.In) > 0 {
		return oreo.Predicate{}, fmt.Errorf("predicate on %q mixes numeric bounds and an IN set", p.Col)
	}
	if !numeric && len(p.In) == 0 {
		return oreo.Predicate{}, fmt.Errorf("predicate on %q has neither bounds nor IN set", p.Col)
	}
	return oreo.Predicate{
		Col: p.Col, HasLo: p.HasLo, HasHi: p.HasHi,
		LoI: p.LoI, HiI: p.HiI, LoF: p.LoF, HiF: p.HiF, In: p.In,
	}, nil
}

// decodeAggs validates and converts the wire aggregates. Column
// existence is checked later, against each answering table's schema.
func decodeAggs(aggs []AggregateJSON) ([]exec.AggSpec, error) {
	out := make([]exec.AggSpec, 0, len(aggs))
	for i, a := range aggs {
		op, err := exec.ParseAggOp(a.Op)
		if err != nil {
			return nil, fmt.Errorf("agg %d: %w", i, err)
		}
		if op != exec.AggCount && a.Col == "" {
			return nil, fmt.Errorf("agg %d: %s requires a column", i, op)
		}
		out = append(out, exec.AggSpec{Op: op, Col: a.Col})
	}
	return out, nil
}

// encodeAggs converts computed aggregates to their wire form. Non-
// finite float results are moved into value_s (encoding/json cannot
// represent them as numbers, and a failed encode after the status line
// would hand the client an empty 200).
func encodeAggs(vals []exec.AggValue) []AggregateResultJSON {
	if len(vals) == 0 {
		return nil
	}
	out := make([]AggregateResultJSON, len(vals))
	for i, v := range vals {
		a := AggregateResultJSON{
			Op: v.Op.String(), Col: v.Col, Type: v.Type.String(),
			Valid: v.Valid, ValueI: v.I, ValueF: v.F, ValueS: v.S,
		}
		if math.IsNaN(a.ValueF) || math.IsInf(a.ValueF, 0) {
			a.ValueS = fmt.Sprintf("%+g", a.ValueF)
			if math.IsNaN(a.ValueF) {
				a.ValueS = "NaN"
			}
			a.ValueF = 0
		}
		out[i] = a
	}
	return out
}

// decodeQuery converts a request into an oreo.Query, validating every
// predicate's shape.
func decodeQuery(req QueryRequest) (oreo.Query, error) {
	q := oreo.Query{ID: req.ID, Template: -1}
	for i, pj := range req.Preds {
		p, err := decodePred(pj)
		if err != nil {
			return oreo.Query{}, fmt.Errorf("pred %d: %w", i, err)
		}
		q.Preds = append(q.Preds, p)
	}
	return q, nil
}
