package persist

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"oreo/internal/layout"
	"oreo/internal/table"
)

// TestRowsDocRoundTrip pins the columnar row-batch framing: every cell
// — including NaN and signed-zero floats — survives a JSON round trip
// bit for bit, and the rebuilt dataset shares the target schema pointer.
func TestRowsDocRoundTrip(t *testing.T) {
	ds, _, _ := stateFixture(t, 120, 9)
	s := ds.Schema()
	b := table.NewBuilder(s, 3)
	b.AppendRow(table.Int(-7), table.Float(math.NaN()), table.Str(""))
	b.AppendRow(table.Int(math.MaxInt64), table.Float(math.Copysign(0, -1)), table.Str("x"))
	b.AppendRow(table.Int(0), table.Float(math.Inf(-1)), table.Str("üñïçödé"))
	weird := b.Build()

	for _, src := range []*table.Dataset{ds, weird} {
		doc, err := CaptureRows(src, 0, src.NumRows())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		var back RowsDoc
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.Dataset(s)
		if err != nil {
			t.Fatal(err)
		}
		if got.Schema() != s {
			t.Fatal("rebuilt dataset does not share the schema pointer")
		}
		if got.NumRows() != src.NumRows() {
			t.Fatalf("rebuilt %d rows, want %d", got.NumRows(), src.NumRows())
		}
		for r := 0; r < src.NumRows(); r++ {
			if got.Int64At(0, r) != src.Int64At(0, r) ||
				math.Float64bits(got.Float64At(1, r)) != math.Float64bits(src.Float64At(1, r)) ||
				got.StringAt(2, r) != src.StringAt(2, r) {
				t.Fatalf("row %d differs after round trip", r)
			}
		}
	}
}

// TestRowsDocRejects covers the shape-validation paths: wrong column
// names, wrong column count, and a column array shorter than the
// declared row count.
func TestRowsDocRejects(t *testing.T) {
	ds, _, _ := stateFixture(t, 40, 9)
	doc, err := CaptureRows(ds, 0, 10)
	if err != nil {
		t.Fatal(err)
	}

	other := table.NewSchema(
		table.Column{Name: "ts", Type: table.Int64},
		table.Column{Name: "v", Type: table.Float64},
		table.Column{Name: "renamed", Type: table.String},
	)
	if _, err := doc.Dataset(other); err == nil {
		t.Error("mismatched column name accepted")
	}
	narrow := table.NewSchema(table.Column{Name: "ts", Type: table.Int64})
	if _, err := doc.Dataset(narrow); err == nil {
		t.Error("mismatched column count accepted")
	}

	short := *doc
	short.Ints = append([][]int64(nil), doc.Ints...)
	short.Ints[0] = doc.Ints[0][:5]
	if _, err := short.Dataset(ds.Schema()); err == nil {
		t.Error("short column array accepted")
	}

	if _, err := CaptureRows(ds, 30, 50); err == nil {
		t.Error("out-of-range capture accepted")
	}
}

// TestStateWithDataRoundTrip saves state for a table whose dataset has
// grown past its boot source (compacted tail) and still carries delta
// rows, then restores it from the boot source alone: BindData must
// reassemble the exact base, Bind must come back warm against it, and
// the delta rows must match bitwise.
func TestStateWithDataRoundTrip(t *testing.T) {
	boot, _, _ := stateFixture(t, 400, 4)

	// Grow the base past the boot source and build a layout over the
	// grown dataset — the state a leader holds after one compaction.
	extra := boot.Sample([]int{1, 3, 5, 7, 9, 11, 13, 15})
	tail := table.NewBuilder(boot.Schema(), extra.NumRows())
	rows := make([]int, extra.NumRows())
	for i := range rows {
		rows[i] = i
	}
	// Rebuild the tail over boot's schema pointer (Sample preserves it,
	// but keep the intent explicit).
	tail.AppendRows(extra, rows)
	base := table.Concat(boot, tail.Build())
	grownLayout := layout.NewSortGenerator("ts").Generate(base, nil, 8)

	delta := boot.Sample([]int{2, 4, 6})
	deltaDS := table.NewBuilder(boot.Schema(), delta.NumRows())
	deltaDS.AppendRows(delta, []int{0, 1, 2})

	doc, err := CaptureStateWithData(grownLayout, base, boot.NumRows(), deltaDS.Build())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != StateFormatVersion || doc.Data == nil || doc.Data.Tail == nil || doc.Data.Delta == nil {
		t.Fatalf("unexpected document shape: version=%d data=%+v", doc.Version, doc.Data)
	}

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(doc); err != nil {
		t.Fatal(err)
	}
	var back StateDoc
	if err := json.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}

	gotBase, gotDelta, err := back.BindData(boot)
	if err != nil {
		t.Fatal(err)
	}
	if gotBase.NumRows() != base.NumRows() {
		t.Fatalf("restored base has %d rows, want %d", gotBase.NumRows(), base.NumRows())
	}
	for r := 0; r < base.NumRows(); r++ {
		if base.Int64At(0, r) != gotBase.Int64At(0, r) ||
			math.Float64bits(base.Float64At(1, r)) != math.Float64bits(gotBase.Float64At(1, r)) ||
			base.StringAt(2, r) != gotBase.StringAt(2, r) {
			t.Fatalf("restored base row %d differs", r)
		}
	}
	if gotDelta == nil || gotDelta.NumRows() != 3 {
		t.Fatalf("restored delta = %v", gotDelta)
	}
	if _, warm, err := back.Bind(gotBase); err != nil || !warm {
		t.Fatalf("Bind against reassembled base: warm=%v err=%v", warm, err)
	}

	// A shrunk/grown boot source must be an explicit error.
	if _, _, err := back.BindData(boot.Sample([]int{0, 1, 2})); err == nil {
		t.Error("mismatched boot source accepted")
	}
}

// TestStateV1StillLoads pins backward compatibility: a version-1 state
// document (no data section) binds cleanly under the version-2 reader,
// and BindData passes the boot dataset through untouched.
func TestStateV1StillLoads(t *testing.T) {
	ds, l, _ := stateFixture(t, 300, 6)
	doc, err := CaptureState(l)
	if err != nil {
		t.Fatal(err)
	}
	doc.Version = stateVersionV1 // what an old build would have written
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}

	got, warm, err := LoadState(bytes.NewReader(data), ds)
	if err != nil {
		t.Fatal(err)
	}
	if !warm || got == nil {
		t.Fatalf("v1 document loaded cold: warm=%v", warm)
	}
	var back StateDoc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	base, delta, err := back.BindData(ds)
	if err != nil {
		t.Fatal(err)
	}
	if base != ds || delta != nil {
		t.Fatal("v1 BindData must pass the boot dataset through")
	}
}

// TestUnknownVersionsRejected pins the explicit forward-compat errors
// on both document types, on every read path (stream Bind included).
func TestUnknownVersionsRejected(t *testing.T) {
	ds, l, _ := stateFixture(t, 200, 8)

	sd, err := CaptureState(l)
	if err != nil {
		t.Fatal(err)
	}
	sd.Version = StateFormatVersion + 1
	if _, _, err := sd.Bind(ds); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future state version: err=%v", err)
	}
	if _, _, err := sd.BindData(ds); err == nil {
		t.Error("future state version accepted by BindData")
	}

	ld, err := CaptureLayout(l)
	if err != nil {
		t.Fatal(err)
	}
	ld.Version = FormatVersion + 1
	if _, err := ld.Bind(ds); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future layout version: err=%v", err)
	}
}

// TestSaveLoadStateWithData pins the file-level wrappers oreoserve's
// shutdown/boot cycle uses: SaveStateWithData then LoadStateWithData
// against the boot source reassembles the grown base, loads warm, and
// returns the delta; a write-free table round-trips with base == boot
// and no delta.
func TestSaveLoadStateWithData(t *testing.T) {
	boot, _, _ := stateFixture(t, 300, 4)

	tailSrc := boot.Sample([]int{10, 20, 30, 40, 50})
	base := table.Concat(boot, tailSrc)
	grown := layout.NewSortGenerator("ts").Generate(base, nil, 6)
	deltaSrc := boot.Sample([]int{60, 70})

	var buf bytes.Buffer
	if err := SaveStateWithData(&buf, grown, base, boot.NumRows(), deltaSrc); err != nil {
		t.Fatal(err)
	}
	l, warm, gotBase, gotDelta, err := LoadStateWithData(&buf, boot)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Error("restore came back cold")
	}
	if l.Part.TotalRows != base.NumRows() || gotBase.NumRows() != base.NumRows() {
		t.Fatalf("restored layout covers %d rows over a %d-row base, want %d",
			l.Part.TotalRows, gotBase.NumRows(), base.NumRows())
	}
	if gotDelta == nil || gotDelta.NumRows() != 2 {
		t.Fatalf("restored delta = %v, want 2 rows", gotDelta)
	}
	for r := 0; r < 2; r++ {
		if gotDelta.Int64At(0, r) != deltaSrc.Int64At(0, r) ||
			math.Float64bits(gotDelta.Float64At(1, r)) != math.Float64bits(deltaSrc.Float64At(1, r)) ||
			gotDelta.StringAt(2, r) != deltaSrc.StringAt(2, r) {
			t.Fatalf("restored delta row %d differs", r)
		}
	}

	// No tail, no delta: the document degrades to the plain state
	// encoding and loads with base == boot.
	ds, lay, _ := stateFixture(t, 200, 4)
	buf.Reset()
	if err := SaveStateWithData(&buf, lay, ds, ds.NumRows(), nil); err != nil {
		t.Fatal(err)
	}
	l2, warm2, base2, delta2, err := LoadStateWithData(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !warm2 || l2 == nil || base2 != ds || delta2 != nil {
		t.Fatalf("write-free round trip: warm=%v base==boot=%v delta=%v", warm2, base2 == ds, delta2)
	}
}
