// Package floatbits seeds violations for the floatbits analyzer:
// float equality, and decimal float text in a package configured as
// an encode boundary.
package floatbits

import (
	"math"
	"strconv"
)

// eq is the classic determinism trap.
func eq(a, b float64) bool {
	return a == b // want "float == is not bitwise-deterministic"
}

// neq on float32 operands is flagged the same way.
func neq(a, b float32) bool {
	return a != b // want "float != is not bitwise-deterministic"
}

// intEq is fine: integer equality is exact.
func intEq(a, b int) bool { return a == b }

// bitsEq is the sanctioned spelling.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// encodeText loses the bit pattern at an encode boundary.
func encodeText(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64) // want "strconv.FormatFloat at an encode boundary"
}

// parseText is the decode half of the same hazard.
func parseText(s string) (float64, error) {
	return strconv.ParseFloat(s, 64) // want "strconv.ParseFloat at an encode boundary"
}

// encodeBits is the sanctioned encode path: the float travels as its
// bit pattern.
func encodeBits(v float64) uint64 {
	return math.Float64bits(v)
}

var _ = []any{eq, neq, intEq, bitsEq, encodeText, parseText, encodeBits}
