package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oreo/internal/query"
)

func qdWorkload(n int, seed int64) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			lo := rng.Int63n(800)
			qs = append(qs, query.Query{ID: i, Preds: []query.Predicate{
				query.IntRange("ts", lo, lo+100)}})
		case 1:
			qs = append(qs, query.Query{ID: i, Preds: []query.Predicate{
				query.StrEq("cat", []string{"a", "b", "c", "d"}[rng.Intn(4)])}})
		default:
			lo := rng.Float64() * 800
			qs = append(qs, query.Query{ID: i, Preds: []query.Predicate{
				query.FloatRange("amount", lo, lo+150)}})
		}
	}
	return qs
}

func TestQdTreePartitionValidity(t *testing.T) {
	d := testDataset(t, 1000, 10)
	qs := qdWorkload(60, 11)
	l := NewQdTreeGenerator().Generate(d, qs, 16)

	if got := len(l.Part.Assign); got != 1000 {
		t.Fatalf("assignment covers %d rows", got)
	}
	counts := make([]int, l.Part.NumPartitions)
	for _, pid := range l.Part.Assign {
		if pid < 0 || pid >= l.Part.NumPartitions {
			t.Fatalf("invalid partition ID %d", pid)
		}
		counts[pid]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("rows lost: %d", total)
	}
	if l.Part.NumPartitions > 16 {
		t.Errorf("tree grew %d leaves, cap was 16", l.Part.NumPartitions)
	}
}

func TestQdTreeRespectsLeafCap(t *testing.T) {
	d := testDataset(t, 500, 12)
	qs := qdWorkload(100, 13)
	for _, k := range []int{1, 2, 4, 64} {
		l := NewQdTreeGenerator().Generate(d, qs, k)
		if l.Part.NumPartitions > k {
			t.Errorf("k=%d produced %d leaves", k, l.Part.NumPartitions)
		}
	}
}

func TestQdTreeEmptyWorkloadSinglePartition(t *testing.T) {
	d := testDataset(t, 100, 14)
	l := NewQdTreeGenerator().Generate(d, nil, 8)
	// No cuts can be harvested: the tree stays a single leaf.
	if l.Part.NumPartitions != 1 {
		t.Errorf("empty workload produced %d partitions, want 1", l.Part.NumPartitions)
	}
}

func TestQdTreeBeatsTimeSortOnItsWorkload(t *testing.T) {
	d := testDataset(t, 3000, 15)
	// Workload dominated by categorical filters, which a time sort
	// cannot skip for.
	qs := make([]query.Query, 0, 80)
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 80; i++ {
		qs = append(qs, query.Query{ID: i, Preds: []query.Predicate{
			query.StrEq("cat", []string{"a", "b", "c", "d"}[rng.Intn(4)])}})
	}
	qd := NewQdTreeGenerator().Generate(d, qs, 16)
	ts := NewSortGenerator("ts").Generate(d, nil, 16)
	if qc, tc := qd.AvgCost(qs), ts.AvgCost(qs); qc >= tc {
		t.Errorf("qd-tree avg cost %g not better than time sort %g on its workload", qc, tc)
	}
}

// The skipping-soundness property applied to Qd-tree layouts: no
// partition containing a matching row is ever skipped.
func TestQdTreeSkippingSound(t *testing.T) {
	f := func(seed int64) bool {
		d := testDataset(t, 400, seed)
		qs := qdWorkload(40, seed+1)
		l := NewQdTreeGenerator().Generate(d, qs, 8)
		for _, q := range qs[:10] {
			for r := 0; r < d.NumRows(); r++ {
				if q.MatchRow(d, r) {
					pid := l.Part.Assign[r]
					if !q.MayMatch(d.Schema(), l.Part.Meta[pid]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestQdTreeDeterministic(t *testing.T) {
	d := testDataset(t, 600, 17)
	qs := qdWorkload(50, 18)
	a := NewQdTreeGenerator().Generate(d, qs, 8)
	b := NewQdTreeGenerator().Generate(d, qs, 8)
	if a.Name != b.Name {
		t.Fatalf("names differ: %q vs %q", a.Name, b.Name)
	}
	for r := range a.Part.Assign {
		if a.Part.Assign[r] != b.Part.Assign[r] {
			t.Fatal("assignments differ across identical inputs")
		}
	}
}

func TestHarvestCutsDedup(t *testing.T) {
	schema := testSchema()
	qs := []query.Query{
		{Preds: []query.Predicate{query.IntRange("ts", 10, 20)}},
		{Preds: []query.Predicate{query.IntRange("ts", 10, 20)}}, // duplicate
		{Preds: []query.Predicate{query.StrIn("cat", "a", "b")}},
		{Preds: []query.Predicate{query.StrIn("cat", "b", "a")}}, // same set, different order
	}
	cuts := harvestCuts(schema, qs)
	// ts lo, ts hi+1, one string set = 3 distinct cuts.
	if len(cuts) != 3 {
		t.Fatalf("harvested %d cuts, want 3: %+v", len(cuts), cuts)
	}
}

func TestCutQueryAvoids(t *testing.T) {
	schema := testSchema()
	ci := schema.MustIndex("ts")
	c := &cut{col: ci, kind: cutIntLT, i: 100}

	q := query.Query{Preds: []query.Predicate{query.IntGE("ts", 100)}}
	aL, aR := c.queryAvoids(schema, q)
	if !aL || aR {
		t.Errorf("q[ts>=100] vs cut ts<100: avoids = (%v,%v), want (true,false)", aL, aR)
	}
	q2 := query.Query{Preds: []query.Predicate{query.IntLE("ts", 99)}}
	aL, aR = c.queryAvoids(schema, q2)
	if aL || !aR {
		t.Errorf("q[ts<=99] vs cut ts<100: avoids = (%v,%v), want (false,true)", aL, aR)
	}
	q3 := query.Query{Preds: []query.Predicate{query.IntRange("ts", 50, 150)}}
	aL, aR = c.queryAvoids(schema, q3)
	if aL || aR {
		t.Errorf("straddling query avoids = (%v,%v), want (false,false)", aL, aR)
	}
}

func TestCutStrInAvoids(t *testing.T) {
	schema := testSchema()
	ci := schema.MustIndex("cat")
	c := &cut{col: ci, kind: cutStrIn, set: map[string]bool{"a": true, "b": true}}

	q := query.Query{Preds: []query.Predicate{query.StrEq("cat", "c")}}
	aL, aR := c.queryAvoids(schema, q)
	if !aL || aR {
		t.Errorf("cat=c vs IN(a,b) cut: (%v,%v), want (true,false)", aL, aR)
	}
	q2 := query.Query{Preds: []query.Predicate{query.StrEq("cat", "a")}}
	aL, aR = c.queryAvoids(schema, q2)
	if aL || !aR {
		t.Errorf("cat=a vs IN(a,b) cut: (%v,%v), want (false,true)", aL, aR)
	}
	q3 := query.Query{Preds: []query.Predicate{query.StrIn("cat", "a", "c")}}
	aL, aR = c.queryAvoids(schema, q3)
	if aL || aR {
		t.Errorf("cat IN (a,c) vs IN(a,b) cut: (%v,%v), want (false,false)", aL, aR)
	}
}

func TestStrideSample(t *testing.T) {
	s := strideSample(10, 20)
	if len(s) != 10 {
		t.Errorf("oversized request returned %d rows", len(s))
	}
	s = strideSample(100, 10)
	if len(s) != 10 {
		t.Fatalf("got %d rows, want 10", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("stride sample not strictly increasing")
		}
	}
	if s[0] != 0 || s[9] != 90 {
		t.Errorf("stride sample = %v", s)
	}
}

func TestWorkloadTag(t *testing.T) {
	if got := workloadTag(nil); got != "empty" {
		t.Errorf("empty tag = %q", got)
	}
	qs := []query.Query{{ID: 5}, {ID: 2}, {ID: 9}}
	if got := workloadTag(qs); got != "q2..9" {
		t.Errorf("tag = %q, want q2..9", got)
	}
}

func TestQdTreeSampleSizeOption(t *testing.T) {
	d := testDataset(t, 2000, 19)
	qs := qdWorkload(40, 20)
	g := &QdTreeGenerator{SampleSize: 100, MinLeafRows: 4}
	l := g.Generate(d, qs, 8)
	if l.Part.NumPartitions < 1 || l.Part.NumPartitions > 8 {
		t.Errorf("partitions = %d", l.Part.NumPartitions)
	}
	if l.Part.TotalRows != 2000 {
		t.Errorf("total rows = %d", l.Part.TotalRows)
	}
}
