package oreo

import (
	"sync"
	"sync/atomic"
)

// OptimizerSnapshot is one consistent view of an optimizer's serving
// state, published atomically at a query boundary: the three fields were
// all true at the same instant (immediately after some ProcessQuery
// returned, or at construction time). Readers holding a snapshot can
// cost queries and read skip-lists against Serving without any lock —
// layouts are immutable once built — while the decision path keeps
// advancing underneath them.
type OptimizerSnapshot struct {
	// Serving is the layout queries were served on as of the snapshot.
	Serving *Layout
	// Pending is the in-flight background reorganization target, or nil.
	Pending *Layout
	// Stats are the cumulative counters as of the snapshot.
	Stats Stats
}

// ConcurrentOptimizer wraps an Optimizer for use from multiple
// goroutines in a read-mostly regime. OREO's decision path is inherently
// sequential (counters advance one query at a time, in order), so
// ProcessQuery calls still serialize on a mutex; but every read —
// CurrentLayout, PendingLayout, Stats, Snapshot, and the CostQuery
// costing/skip-list path — is lock-free against an atomically swapped
// immutable snapshot that ProcessQuery republishes after each decision.
// Readers therefore never contend with each other or with the decision
// path, which is what lets a serving layer fan requests out across
// cores (see internal/serve).
type ConcurrentOptimizer struct {
	mu   sync.Mutex
	opt  *Optimizer
	snap atomic.Pointer[OptimizerSnapshot]
}

// NewConcurrent wraps an optimizer for concurrent use. The wrapped
// optimizer must not be used directly afterwards.
func NewConcurrent(opt *Optimizer) *ConcurrentOptimizer {
	c := &ConcurrentOptimizer{opt: opt}
	c.publishLocked()
	return c
}

// publishLocked swaps in a fresh snapshot of the wrapped optimizer's
// state. Callers must hold mu (or, in NewConcurrent, be the sole owner).
func (c *ConcurrentOptimizer) publishLocked() {
	c.snap.Store(&OptimizerSnapshot{
		Serving: c.opt.CurrentLayout(),
		Pending: c.opt.PendingLayout(),
		Stats:   c.opt.Stats(),
	})
}

// ProcessQuery is the concurrent-safe equivalent of
// Optimizer.ProcessQuery: the full decision path (admission, D-UMTS
// counters, reorganization), serialized with other writers. The
// published snapshot is refreshed before returning.
func (c *ConcurrentOptimizer) ProcessQuery(q Query) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.opt.ProcessQuery(q)
	c.publishLocked()
	return d
}

// Snapshot returns the latest published consistent view. Lock-free; the
// returned value never changes once handed out.
func (c *ConcurrentOptimizer) Snapshot() OptimizerSnapshot { return *c.snap.Load() }

// CurrentLayout returns the serving layout as of the latest snapshot.
// Lock-free. The value is consistent with the snapshot it came from;
// callers needing Serving, Pending, and Stats from the same instant
// should take one Snapshot instead of three reads.
func (c *ConcurrentOptimizer) CurrentLayout() *Layout { return c.snap.Load().Serving }

// PendingLayout returns the in-flight background reorganization target
// as of the latest snapshot, or nil. Lock-free; see CurrentLayout for
// the consistency contract.
func (c *ConcurrentOptimizer) PendingLayout() *Layout { return c.snap.Load().Pending }

// Stats returns the cumulative counters as of the latest snapshot.
// Lock-free; see CurrentLayout for the consistency contract.
func (c *ConcurrentOptimizer) Stats() Stats { return c.snap.Load().Stats }

// CostQuery costs q on the snapshot's serving layout and pre-computes
// the survivor partition skip-list, without advancing any decision
// state: no counters move, no admission runs, and Reorganized is always
// false. The evaluation compiles against the layout's immutable
// statistics block and deliberately bypasses the layout's shared cost
// memo, so concurrent readers scale with cores instead of serializing
// on the memo lock. This is the serving read path (internal/serve calls
// it per request); callers that want the query to also inform
// reorganization decisions feed it to ProcessQuery (directly, or
// through a queue as internal/serve does).
func (s OptimizerSnapshot) CostQuery(q Query) Decision {
	cost, ids := s.Serving.CostSurvivorsSnapshot(q)
	if ids == nil {
		ids = []int{}
	}
	return Decision{Cost: cost, Layout: s.Serving, query: q, survivors: ids}
}

// CostQuery is OptimizerSnapshot.CostQuery on the latest published
// snapshot; entirely lock-free.
func (c *ConcurrentOptimizer) CostQuery(q Query) Decision {
	return c.Snapshot().CostQuery(q)
}

// Config returns the wrapped optimizer's resolved configuration; see
// Optimizer.Config. The Config is immutable after New, so this needs no
// lock and is safe alongside the decision path.
func (c *ConcurrentOptimizer) Config() Config { return c.opt.Config() }

// Events returns the retained trace events. Serialized with the decision
// path (the trace ring buffer is not lock-free).
func (c *ConcurrentOptimizer) Events() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opt.Events()
}
