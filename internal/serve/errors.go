package serve

import "fmt"

// ErrorCode classifies a Core failure so transports can map it without
// parsing message text: HTTP picks a status code, gRPC would pick a
// status, and the client SDK re-materializes a typed error. The message
// strings themselves are part of the /v1 wire contract (golden-tested),
// so codes classify — they never replace — the messages.
type ErrorCode string

const (
	// CodeInvalid marks a malformed or unanswerable request: bad
	// predicate shape, unknown column, empty batch, aggregates without
	// execute. HTTP 400.
	CodeInvalid ErrorCode = "invalid_request"
	// CodeNotFound marks a request addressing an unregistered table.
	// HTTP 404.
	CodeNotFound ErrorCode = "not_found"
	// CodeCanceled marks a request abandoned because its context was
	// canceled (client disconnect, deadline). Transports usually cannot
	// answer these at all; HTTP maps it 499-style to 400.
	CodeCanceled ErrorCode = "canceled"
	// CodeUnavailable marks a request the server cannot answer *yet*: a
	// replica table that has not applied its first snapshot from the
	// leader. The request was well-formed; retrying it after catch-up
	// succeeds. HTTP 503.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInternal marks a server-side failure the client did nothing to
	// cause — a compaction rebuild failing over a grown base. These are
	// impossible by construction today (compaction revalidates inputs the
	// builder already accepted) but get a code so a real one surfaces as
	// HTTP 500, not a misbilled 400. HTTP 500.
	CodeInternal ErrorCode = "internal"
)

// Error is the typed failure every Core method returns. It implements
// error; transports switch on Code and clients on the rebuilt code.
type Error struct {
	Code    ErrorCode
	Message string
}

func (e *Error) Error() string { return e.Message }

func errInvalid(format string, args ...any) *Error {
	return &Error{Code: CodeInvalid, Message: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) *Error {
	return &Error{Code: CodeNotFound, Message: fmt.Sprintf(format, args...)}
}

func errCanceled(err error) *Error {
	return &Error{Code: CodeCanceled, Message: err.Error()}
}

func errUnavailable(format string, args ...any) *Error {
	return &Error{Code: CodeUnavailable, Message: fmt.Sprintf(format, args...)}
}

func errInternal(format string, args ...any) *Error {
	return &Error{Code: CodeInternal, Message: fmt.Sprintf(format, args...)}
}

// httpStatus maps an error coming out of Core to the status the v1
// contract has always used: unknown table 404, everything else a client
// sent wrong 400. Unknown error values (never produced by Core today)
// map to 500 so a future internal failure is not misbilled to the
// client.
func httpStatus(err error) int {
	if e, ok := err.(*Error); ok {
		switch e.Code {
		case CodeNotFound:
			return 404
		case CodeInvalid, CodeCanceled:
			return 400
		case CodeUnavailable:
			return 503
		case CodeInternal:
			return 500
		}
	}
	return 500
}
