package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oreo/internal/table"
)

// randomQuery draws a random conjunction over the test schema.
func randomQuery(rng *rand.Rand) Query {
	var preds []Predicate
	if rng.Intn(2) == 0 {
		lo := rng.Int63n(1000)
		preds = append(preds, IntRange("ts", lo, lo+rng.Int63n(300)))
	}
	if rng.Intn(2) == 0 {
		lo := rng.Float64() * 100
		preds = append(preds, FloatRange("price", lo, lo+rng.Float64()*40))
	}
	if rng.Intn(2) == 0 {
		regions := []string{"east", "north", "south", "west", "absent"}
		preds = append(preds, StrEq("region", regions[rng.Intn(len(regions))]))
	}
	return Query{Preds: preds}
}

// TestMayMatchSoundness is the central safety property of partition
// skipping: a partition that contains a matching row must never be
// skipped (MayMatch must be true for it).
func TestMayMatchSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testDataset(t, 200, seed)
		k := 1 + rng.Intn(8)
		assign := make([]int, d.NumRows())
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		p := table.MustBuildPartitioning(d, assign, k)

		for trial := 0; trial < 10; trial++ {
			q := randomQuery(rng)
			for r := 0; r < d.NumRows(); r++ {
				if q.MatchRow(d, r) && !q.MayMatch(d.Schema(), p.Meta[assign[r]]) {
					return false // skipped a partition holding a match
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFractionScannedBounds checks c(s,q) ∈ [0,1] and that it upper
// bounds the true selectivity (skipping can only be conservative).
func TestFractionScannedBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testDataset(t, 150, seed+99)
		k := 1 + rng.Intn(6)
		assign := make([]int, d.NumRows())
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		p := table.MustBuildPartitioning(d, assign, k)
		for trial := 0; trial < 8; trial++ {
			q := randomQuery(rng)
			frac := FractionScanned(d.Schema(), p, q)
			if frac < 0 || frac > 1 {
				return false
			}
			if sel := Selectivity(d, q); frac < sel-1e-12 {
				return false // scanned less than the matching fraction
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMayMatchEmptyPartition(t *testing.T) {
	d := testDataset(t, 10, 5)
	// Partition 1 gets no rows.
	assign := make([]int, 10)
	p := table.MustBuildPartitioning(d, assign, 2)
	q := Query{} // matches everything
	if q.MayMatch(d.Schema(), p.Meta[1]) {
		t.Error("empty partition reported as possibly matching")
	}
	if !q.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("full partition reported as skippable for match-all query")
	}
}

func TestMayMatchUnknownColumnConservative(t *testing.T) {
	d := testDataset(t, 10, 6)
	p := table.MustBuildPartitioning(d, make([]int, 10), 1)
	q := Query{Preds: []Predicate{IntGE("not_a_column", 5)}}
	if !q.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("unknown column should not allow skipping")
	}
}

func TestMayMatchRangeSkips(t *testing.T) {
	// Two partitions split cleanly by ts: [0..499] and [500..999].
	b := table.NewBuilder(testSchema(), 100)
	for i := 0; i < 100; i++ {
		b.AppendRow(table.Int(int64(i*10)), table.Float(1), table.Str("east"))
	}
	d := b.Build()
	assign := make([]int, 100)
	for i := range assign {
		if i >= 50 {
			assign[i] = 1
		}
	}
	p := table.MustBuildPartitioning(d, assign, 2)

	q := Query{Preds: []Predicate{IntRange("ts", 0, 100)}}
	if !q.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("partition 0 wrongly skipped")
	}
	if q.MayMatch(d.Schema(), p.Meta[1]) {
		t.Error("partition 1 not skipped for disjoint range")
	}
	if got := FractionScanned(d.Schema(), p, q); got != 0.5 {
		t.Errorf("FractionScanned = %g, want 0.5", got)
	}
}

func TestMayMatchStringDistinct(t *testing.T) {
	b := table.NewBuilder(testSchema(), 4)
	b.AppendRow(table.Int(1), table.Float(1), table.Str("east"))
	b.AppendRow(table.Int(2), table.Float(1), table.Str("east"))
	b.AppendRow(table.Int(3), table.Float(1), table.Str("west"))
	b.AppendRow(table.Int(4), table.Float(1), table.Str("west"))
	d := b.Build()
	p := table.MustBuildPartitioning(d, []int{0, 0, 1, 1}, 2)

	q := Query{Preds: []Predicate{StrEq("region", "west")}}
	if q.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("east-only partition not skipped for region=west")
	}
	if !q.MayMatch(d.Schema(), p.Meta[1]) {
		t.Error("west partition wrongly skipped")
	}
	// A value between "east" and "west" lexically but absent: the
	// distinct set should prune it everywhere.
	q2 := Query{Preds: []Predicate{StrEq("region", "north")}}
	if q2.MayMatch(d.Schema(), p.Meta[0]) || q2.MayMatch(d.Schema(), p.Meta[1]) {
		t.Error("absent value not pruned by exact distinct sets")
	}
}

func TestAvgFractionScanned(t *testing.T) {
	d := testDataset(t, 50, 7)
	p := table.MustBuildPartitioning(d, make([]int, 50), 1)
	if got := AvgFractionScanned(d.Schema(), p, nil); got != 0 {
		t.Errorf("empty workload cost = %g", got)
	}
	qs := []Query{{}, {}}
	if got := AvgFractionScanned(d.Schema(), p, qs); got != 1 {
		t.Errorf("match-all workload on single partition = %g, want 1", got)
	}
}
