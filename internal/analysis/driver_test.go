package analysis

import (
	"strings"
	"testing"
)

// TestCleanPackage runs the full production suite over a package that
// follows every sanctioned idiom and demands silence.
func TestCleanPackage(t *testing.T) {
	pkgs := loadTestdata(t, "clean")
	diags := Run(pkgs, Suite())
	for _, d := range diags {
		t.Errorf("clean package produced a diagnostic: %s", d)
	}
}

// TestIgnoreDirectives pins the suppression contract: a reason-less
// ignore is flagged and does not suppress, an ignore naming an unknown
// analyzer is flagged and does not suppress, and a well-formed ignore
// silences its diagnostic without producing one of its own.
func TestIgnoreDirectives(t *testing.T) {
	pkgs := loadTestdata(t, "ignores")
	diags := Run(pkgs, []*Analyzer{Floatbits()})

	var driver, floatbits []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case DriverName:
			driver = append(driver, d)
		case "floatbits":
			floatbits = append(floatbits, d)
		default:
			t.Errorf("diagnostic from unexpected analyzer: %s", d)
		}
	}

	if len(driver) != 2 {
		t.Fatalf("got %d driver diagnostics, want 2: %v", len(driver), driver)
	}
	if !strings.Contains(driver[0].Message, "has no reason") {
		t.Errorf("first driver diagnostic should flag the reason-less ignore, got: %s", driver[0])
	}
	if !strings.Contains(driver[1].Message, "unknown analyzer") {
		t.Errorf("second driver diagnostic should flag the unknown analyzer name, got: %s", driver[1])
	}

	// The reason-less and unknown-name directives must NOT suppress:
	// both float equalities under them still surface. The justified
	// one must.
	if len(floatbits) != 2 {
		t.Fatalf("got %d floatbits diagnostics, want 2 (bad directives must not suppress): %v", len(floatbits), floatbits)
	}
	for _, d := range floatbits {
		if !strings.Contains(d.Message, "not bitwise-deterministic") {
			t.Errorf("unexpected floatbits diagnostic: %s", d)
		}
	}
}

// TestWireManifestRoundTrip checks that a generated manifest parses
// back into the exact shapes it was generated from.
func TestWireManifestRoundTrip(t *testing.T) {
	pkgs := loadTestdata(t, "wirefreeze")
	text, err := WireManifest(pkgs[0], []string{"PinnedOK"})
	if err != nil {
		t.Fatalf("generating manifest: %v", err)
	}
	shapes, err := parseManifest(text)
	if err != nil {
		t.Fatalf("parsing generated manifest: %v", err)
	}
	got, ok := shapes["PinnedOK"]
	if !ok {
		t.Fatalf("generated manifest lacks PinnedOK; text:\n%s", text)
	}
	want := []string{
		"Name json=name required type=string",
		"Count json=count omitempty type=int",
	}
	if len(got) != len(want) {
		t.Fatalf("PinnedOK has %d fields, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("field %d: got %q, want %q", i, got[i].String(), want[i])
		}
	}
}
