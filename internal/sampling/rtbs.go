package sampling

import (
	"container/heap"
	"math"
	"math/rand"

	"oreo/internal/query"
)

// RTBS is a reservoir-based time-biased sample of a query stream: a
// bounded sample in which the probability that an item is retained
// decays exponentially with its age, so the sample "biases towards
// recent events but also keeps memories from the past" (the property
// the paper wants from Hentschel/Haas/Tian's R-TBS).
//
// Implementation: weighted reservoir sampling (Efraimidis–Spirakis
// A-Res) with item weight w(t) = exp(lambda * t), where t is the item's
// arrival index. Item i is kept if its key u_i^(1/w_i) is among the
// capacity largest; equivalently we keep the items with the *smallest*
// score log(-log u_i) - lambda*t_i, which is numerically stable for
// arbitrarily long streams (no exp overflow). The relative retention
// probability of two items then decays exponentially in their age
// difference, which is the R-TBS decay law.
type RTBS struct {
	lambda   float64
	capacity int
	rng      *rand.Rand
	h        scoreHeap // max-heap on score: root is the eviction candidate
	seen     int
}

// DefaultLambda gives a retention half-life of ~2000 queries, several
// sliding windows deep — recent-biased but with long memory.
const DefaultLambda = math.Ln2 / 2000

// NewRTBS returns a time-biased reservoir of the given capacity.
// lambda is the exponential decay rate per arrival; lambda <= 0 selects
// DefaultLambda. lambda == math.Inf? Not supported; use a SlidingWindow
// for pure recency.
func NewRTBS(capacity int, lambda float64, rng *rand.Rand) *RTBS {
	if capacity <= 0 {
		panic("sampling: RTBS capacity must be positive")
	}
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	return &RTBS{lambda: lambda, capacity: capacity, rng: rng}
}

// Add offers a query to the reservoir.
func (r *RTBS) Add(q query.Query) {
	t := float64(r.seen)
	r.seen++
	u := r.rng.Float64()
	//oreovet:ignore floatbits guards log(0): rand.Float64 can return exactly 0, and 0 is the only value that must be rerolled
	for u == 0 { // log(0) guard; Float64 can return 0
		u = r.rng.Float64()
	}
	score := math.Log(-math.Log(u)) - r.lambda*t

	if r.h.Len() < r.capacity {
		heap.Push(&r.h, scoredQuery{score: score, q: q})
		return
	}
	if score < r.h.items[0].score {
		r.h.items[0] = scoredQuery{score: score, q: q}
		heap.Fix(&r.h, 0)
	}
}

// Len returns the current sample size.
func (r *RTBS) Len() int { return r.h.Len() }

// Seen returns the lifetime number of queries offered.
func (r *RTBS) Seen() int { return r.seen }

// Queries returns the sampled queries in arrival order.
func (r *RTBS) Queries() []query.Query {
	out := make([]query.Query, 0, r.h.Len())
	for _, it := range r.h.items {
		out = append(out, it.q)
	}
	// Arrival order (query IDs are stream positions) keeps downstream
	// cost vectors deterministic.
	sortQueriesByID(out)
	return out
}

func sortQueriesByID(qs []query.Query) {
	// Insertion sort: samples are small (tens to low hundreds).
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0 && qs[j].ID < qs[j-1].ID; j-- {
			qs[j], qs[j-1] = qs[j-1], qs[j]
		}
	}
}

type scoredQuery struct {
	score float64
	q     query.Query
}

// scoreHeap is a max-heap by score (largest score = weakest item = next
// eviction candidate).
type scoreHeap struct {
	items []scoredQuery
}

func (h *scoreHeap) Len() int           { return len(h.items) }
func (h *scoreHeap) Less(i, j int) bool { return h.items[i].score > h.items[j].score }
func (h *scoreHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *scoreHeap) Push(x interface{}) { h.items = append(h.items, x.(scoredQuery)) }
func (h *scoreHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
