package replica

import (
	"fmt"

	"oreo/internal/serve"
)

// Promote turns a serving follower into the fleet's new leader — the
// failover hand-off. The follower already holds everything a leader
// needs via the stream: the serving layout, the optimizer's cumulative
// counters, the grown base, and the uncompacted delta, all proven
// bit-identical to the old leader's at its applied epoch. Promotion is
// therefore local: detach the replication loop (nothing may write the
// replicated state while ownership changes), flip the core to leader
// role (serve.Core.Promote rebuilds a decision engine per table from
// the applied state), and attach a fresh Publisher one fencing term
// above the highest term the follower applied — so the moment the new
// leader speaks, every correct follower adopts the higher term and the
// old leader, should it revive, is rejected on sight by both the
// subscribe and observe paths.
//
// cfg.Tables must name every replicated table; PublisherConfig's
// Generation is overridden with the incremented term. The adopted term
// must outlive this process: callers that can persist state should
// record it (SaveTerm on a state directory, or a self-archive) so a
// restart republishes at the same term instead of regressing to 1 and
// being fenced out by the very followers this promotion won over —
// oreoserve persists it through -state. On error the follower's
// replication loop is already stopped (promotion is a one-way door —
// the caller decides whether to rebuild a follower or retry), but the
// core's serving surface is unchanged.
func Promote(f *Follower, cfg serve.PromoteConfig, pubCfg PublisherConfig) (*Publisher, error) {
	f.Detach()
	term := f.Generation() + 1
	if err := f.Core().Promote(cfg); err != nil {
		return nil, fmt.Errorf("replica: promoting follower core: %w", err)
	}
	pubCfg.Generation = term
	pub, err := NewPublisher(f.Core(), pubCfg)
	if err != nil {
		return nil, fmt.Errorf("replica: attaching publisher to promoted leader: %w", err)
	}
	return pub, nil
}
