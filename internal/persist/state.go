package persist

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"oreo/internal/layout"
	"oreo/internal/prune"
	"oreo/internal/table"
)

// State persistence extends the layout format with the warm-start
// payload a long-lived server wants back after a restart: the layout's
// column-major statistics block and the costing engine's memo. A cold
// restart rebuilds metadata in one dataset pass but starts with an
// empty memo, so the first window re-costings after boot pay full
// evaluation cost; LoadState restores the memo so the serving hot path
// restarts hot.
//
// Soundness: partition metadata is still recomputed from the dataset at
// load — nothing read from disk ever feeds partition skipping. The
// saved statistics block is used purely as an integrity gate for the
// memo: it is compared bit-for-bit (floats by their IEEE-754 bit
// patterns, so NaN-poisoned metadata round-trips exactly) against the
// block recomputed from the dataset, and on any mismatch the memo is
// discarded, because its costs describe different data. A stale state
// file therefore degrades to a cold start, never to wrong answers.
//
// The same framing doubles as the replication snapshot: a leader
// captures its serving state with CaptureState, ships the StateDoc
// inside a stream record, and the follower Binds it against its local
// copy of the data. There the statistics-block gate carries a stronger
// meaning — a mismatch proves the follower's data differs from the
// leader's, so replication treats warm=false as a fatal divergence
// rather than a cold start.

// StateFormatVersion identifies the on-disk warm-start encoding.
const StateFormatVersion = 1

// StateDoc is the serialized form of a warm-start snapshot: the layout
// document plus the statistics block and cost memo captured with it.
type StateDoc struct {
	Version int       `json:"version"`
	Layout  LayoutDoc `json:"layout"`
	Stats   StatsDoc  `json:"stats"`
	Memo    []MemoDoc `json:"memo,omitempty"`
}

// StatsDoc mirrors table.StatsBlock's numeric content. Floats are
// stored as IEEE-754 bit patterns: JSON cannot represent NaN (which
// legitimately appears as poisoned float metadata), and bit patterns
// make the load-time comparison exact rather than subject to any
// formatting round trip.
type StatsDoc struct {
	NumParts int      `json:"num_parts"`
	NumCols  int      `json:"num_cols"`
	Rows     []int    `json:"rows"`
	MinI     []int64  `json:"min_i"`
	MaxI     []int64  `json:"max_i"`
	MinFBits []uint64 `json:"min_f_bits"`
	MaxFBits []uint64 `json:"max_f_bits"`
	Seen     []bool   `json:"seen"`
	NonEmpty []uint64 `json:"non_empty"`
}

// MemoDoc is one memo entry: the query's binary structural fingerprint
// (base64, as fingerprints are not valid UTF-8) and its memoized cost.
type MemoDoc struct {
	FP   string  `json:"fp"`
	Cost float64 `json:"cost"`
}

// newStatsDoc snapshots a statistics block.
func newStatsDoc(b *table.StatsBlock) StatsDoc {
	f := StatsDoc{
		NumParts: b.NumParts,
		NumCols:  b.NumCols,
		Rows:     append([]int(nil), b.Rows...),
		MinI:     append([]int64(nil), b.MinI...),
		MaxI:     append([]int64(nil), b.MaxI...),
		MinFBits: make([]uint64, len(b.MinF)),
		MaxFBits: make([]uint64, len(b.MaxF)),
		Seen:     append([]bool(nil), b.Seen...),
		NonEmpty: append([]uint64(nil), b.NonEmpty...),
	}
	for i, v := range b.MinF {
		f.MinFBits[i] = math.Float64bits(v)
	}
	for i, v := range b.MaxF {
		f.MaxFBits[i] = math.Float64bits(v)
	}
	return f
}

// matchesBlock reports whether the saved statistics equal the block
// recomputed from the live dataset, bit for bit.
func (f *StatsDoc) matchesBlock(b *table.StatsBlock) bool {
	if f.NumParts != b.NumParts || f.NumCols != b.NumCols ||
		len(f.Rows) != len(b.Rows) || len(f.MinI) != len(b.MinI) ||
		len(f.MaxI) != len(b.MaxI) || len(f.MinFBits) != len(b.MinF) ||
		len(f.MaxFBits) != len(b.MaxF) || len(f.Seen) != len(b.Seen) ||
		len(f.NonEmpty) != len(b.NonEmpty) {
		return false
	}
	for i, v := range b.Rows {
		if f.Rows[i] != v {
			return false
		}
	}
	for i, v := range b.MinI {
		if f.MinI[i] != v {
			return false
		}
	}
	for i, v := range b.MaxI {
		if f.MaxI[i] != v {
			return false
		}
	}
	for i, v := range b.MinF {
		if f.MinFBits[i] != math.Float64bits(v) {
			return false
		}
	}
	for i, v := range b.MaxF {
		if f.MaxFBits[i] != math.Float64bits(v) {
			return false
		}
	}
	for i, v := range b.Seen {
		if f.Seen[i] != v {
			return false
		}
	}
	for i, v := range b.NonEmpty {
		if f.NonEmpty[i] != v {
			return false
		}
	}
	return true
}

// CaptureState builds a warm-start snapshot of the layout in memory:
// the row→partition assignment, the column-major statistics block, and
// the cost memo (least recently used first, preserving eviction order).
func CaptureState(l *layout.Layout) (*StateDoc, error) {
	lf, err := CaptureLayout(l)
	if err != nil {
		return nil, err
	}
	f := &StateDoc{
		Version: StateFormatVersion,
		Layout:  *lf,
		Stats:   newStatsDoc(l.Part.Stats()),
	}
	if eng := l.Engine(); eng != nil {
		for _, en := range eng.ExportMemo() {
			f.Memo = append(f.Memo, MemoDoc{
				FP:   base64.StdEncoding.EncodeToString([]byte(en.FP)),
				Cost: en.Cost,
			})
		}
	}
	return f, nil
}

// SaveState writes a warm-start snapshot of the layout; see
// CaptureState for what it carries.
func SaveState(w io.Writer, l *layout.Layout) error {
	f, err := CaptureState(l)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(f)
}

// Bind rebinds a state document to the dataset. The layout's partition
// metadata is recomputed from the dataset (as LayoutDoc.Bind does); the
// memo is installed only when the recomputed statistics block matches
// the saved one bit-for-bit. The boolean reports whether the memo was
// installed (a "warm" restart). warm=false with a nil error means the
// layout itself is usable but the saved statistics (or memo) did not
// survive verification — for a restart that is a cold boot, for a
// replication snapshot it is a data divergence the caller must treat as
// fatal.
func (f *StateDoc) Bind(ds *table.Dataset) (*layout.Layout, bool, error) {
	if f.Version != StateFormatVersion {
		return nil, false, fmt.Errorf("persist: unsupported state version %d (want %d)", f.Version, StateFormatVersion)
	}
	l, err := f.Layout.Bind(ds)
	if err != nil {
		return nil, false, err
	}
	if !f.Stats.matchesBlock(l.Part.Stats()) {
		// The saved costs describe different data (dataset changed since
		// the snapshot): fall back to a cold memo.
		return l, false, nil
	}
	entries := make([]prune.MemoEntry, 0, len(f.Memo))
	for _, m := range f.Memo {
		fp, err := base64.StdEncoding.DecodeString(m.FP)
		if err != nil || m.Cost < 0 || m.Cost > 1 || math.IsNaN(m.Cost) {
			// The layout itself passed all its integrity checks; a
			// corrupt memo entry costs us the warm start, not the
			// converged layout. Discard the whole memo (its provenance
			// is now suspect) and boot cold.
			return l, false, nil
		}
		entries = append(entries, prune.MemoEntry{FP: string(fp), Cost: m.Cost})
	}
	l.Engine().SeedMemo(entries)
	return l, true, nil
}

// LoadState reads a warm-start snapshot and rebinds it to the dataset;
// see StateDoc.Bind for the integrity contract.
func LoadState(r io.Reader, ds *table.Dataset) (*layout.Layout, bool, error) {
	var f StateDoc
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, false, fmt.Errorf("persist: decoding state: %w", err)
	}
	return f.Bind(ds)
}
