package workload

import (
	"math/rand"
	"strings"
	"testing"

	"oreo/internal/datagen"
	"oreo/internal/query"
	"oreo/internal/table"
)

func sweepDataset(t *testing.T) *table.Dataset {
	t.Helper()
	schema := table.NewSchema(
		table.Column{Name: "a", Type: table.Int64},
		table.Column{Name: "b", Type: table.Float64},
		table.Column{Name: "c", Type: table.String},
	)
	rng := rand.New(rand.NewSource(1))
	b := table.NewBuilder(schema, 500)
	for i := 0; i < 500; i++ {
		b.AppendRow(
			table.Int(rng.Int63n(1000)),
			table.Float(rng.Float64()*100),
			table.Str([]string{"x", "y", "z"}[rng.Intn(3)]),
		)
	}
	return b.Build()
}

func TestColumnSweepTemplates(t *testing.T) {
	d := sweepDataset(t)
	templates := ColumnSweepTemplates(d)
	if len(templates) != 3 {
		t.Fatalf("templates = %d, want one per column", len(templates))
	}
	rng := rand.New(rand.NewSource(2))
	for _, tmpl := range templates {
		wantCol := strings.TrimPrefix(tmpl.Name, "sweep-")
		for trial := 0; trial < 10; trial++ {
			preds := tmpl.Make(rng)
			if len(preds) != 1 {
				t.Fatalf("%s: %d predicates, want exactly 1", tmpl.Name, len(preds))
			}
			if preds[0].Col != wantCol {
				t.Fatalf("%s filters %q", tmpl.Name, preds[0].Col)
			}
			// Selectivity must be well under 1 (it is a ~10% band or an
			// equality).
			q := query.Query{Preds: preds}
			if sel := query.Selectivity(d, q); sel > 0.6 {
				t.Errorf("%s: selectivity %.2f too weak", tmpl.Name, sel)
			}
		}
	}
}

func TestGenerateColumnSweepStructure(t *testing.T) {
	d := sweepDataset(t)
	s := GenerateColumnSweep(d, 100, rand.New(rand.NewSource(3)))
	if len(s.Queries) != 300 {
		t.Fatalf("queries = %d, want 300 (100 per column)", len(s.Queries))
	}
	if len(s.Segments) != 3 {
		t.Fatalf("segments = %d", len(s.Segments))
	}
	// Columns are visited in schema order, one segment each.
	for i, seg := range s.Segments {
		if seg.Template != i || seg.Length != 100 || seg.Start != i*100 {
			t.Errorf("segment %d = %+v", i, seg)
		}
	}
}

func TestColumnSweepOnRealDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds, err := datagen.Generate(datagen.Telemetry, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	templates := ColumnSweepTemplates(ds)
	if len(templates) < 8 {
		t.Errorf("telemetry sweep has %d templates (12 columns)", len(templates))
	}
}

func TestColumnSweepSkipsConstantColumns(t *testing.T) {
	schema := table.NewSchema(
		table.Column{Name: "const", Type: table.Int64},
		table.Column{Name: "var", Type: table.Int64},
	)
	b := table.NewBuilder(schema, 100)
	for i := 0; i < 100; i++ {
		b.AppendRow(table.Int(7), table.Int(int64(i)))
	}
	d := b.Build()
	templates := ColumnSweepTemplates(d)
	if len(templates) != 1 || templates[0].Name != "sweep-var" {
		t.Errorf("templates = %d (constant column should be skipped)", len(templates))
	}
}
