package replica

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"oreo/client"
	"oreo/internal/serve"
)

// newFollowerServer mounts a follower's core behind the standard HTTP
// codec, exactly as oreoserve -follow does.
func newFollowerServer(t *testing.T, fol *Follower) *httptest.Server {
	t.Helper()
	srv := serve.NewServer(fol.Core(), serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// replayQueries builds n closed-form shifted-window queries over
// order_ts: each matches exactly 100 rows of the fixture, so totals
// are checkable arithmetic, not measurements.
func replayQueries(n, rows int, execute bool) []client.Query {
	qs := make([]client.Query, n)
	for i := range qs {
		lo := int64((i * 37) % (rows - 100))
		qs[i] = client.Query{
			Table:   "orders",
			ID:      i + 1,
			Execute: execute,
			Preds:   []client.Predicate{client.IntRange("order_ts", lo, lo+99)},
		}
	}
	return qs
}

// TestFollowerStreamReplaySDK drives the public client SDK's stream
// replay against a FOLLOWER: the follower answers the full
// /v2/query/stream surface with correct closed-form executed results,
// forwards every observation upstream, and ends up reporting the
// leader's layout epoch.
func TestFollowerStreamReplaySDK(t *testing.T) {
	const rows, n = 3000, 300
	leader, _, ts := newLeader(t, rows, 80, 0)
	fol := newFollowerFixture(t, rows, ts.URL, true)
	fts := newFollowerServer(t, fol)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	c, err := client.New(fts.URL)
	if err != nil {
		t.Fatal(err)
	}
	items, err := c.Replay(ctx, replayQueries(n, rows, true), nil)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for i, it := range items {
		if it.Error != "" {
			t.Fatalf("item %d failed: %s", i, it.Error)
		}
		for _, r := range it.Results {
			if r.Execution == nil {
				t.Fatalf("item %d: no execution", i)
			}
			matched += r.Execution.MatchedRows
		}
	}
	if want := n * 100; matched != want {
		t.Fatalf("matched %d rows, want %d", matched, want)
	}

	// The observations must reach the leader's decision loop and the
	// resulting epoch must come back: both /healthz readings converge.
	waitFor(t, "leader processed forwarded replay", func() bool {
		pos, _ := leader.ReplicaPosition("orders")
		return pos.Epoch == uint64(n)
	})
	waitFor(t, "follower reports leader epoch", func() bool {
		h, err := c.Health(ctx)
		return err == nil && h.LayoutEpochs["orders"] == uint64(n) && h.Role == "follower"
	})
}

// TestReplicaScaleOutBar is the scale-out acceptance bar: aggregate
// read throughput across leader + one follower must be at least 1.7x
// the leader alone on the same 1k-query stream replay. Each stream is
// processed sequentially per connection, so the second replica buys
// near-linear aggregate throughput when cores are available.
func TestReplicaScaleOutBar(t *testing.T) {
	if testing.Short() {
		t.Skip("scale bar skipped in -short")
	}
	// Two concurrent streams each keep a server handler and a client
	// send/recv pair busy; below four CPUs the bar measures scheduler
	// contention, not scale-out.
	if runtime.NumCPU() < 4 {
		t.Skip("scale bar needs >= 4 CPUs")
	}
	const rows, n = 3000, 1000
	_, _, ts := newLeader(t, rows, 80, 0)
	// Forwarding off: the bar measures the read path, not the
	// observation plumbing (which is sampled under load anyway).
	fol := newFollowerFixture(t, rows, ts.URL, false)
	fts := newFollowerServer(t, fol)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	lc, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := client.New(fts.URL)
	if err != nil {
		t.Fatal(err)
	}
	queries := replayQueries(n, rows, false)
	replay := func(c *client.Client) error {
		items, err := c.Replay(ctx, queries, nil)
		if err != nil {
			return err
		}
		if len(items) != n {
			return fmt.Errorf("answered %d of %d", len(items), n)
		}
		return nil
	}

	// Warm both paths (connections, snapshot compiles) off the clock.
	if err := replay(lc); err != nil {
		t.Fatal(err)
	}
	if err := replay(fc); err != nil {
		t.Fatal(err)
	}

	// Best-of-3 on both measurements: the ceiling of this bar is only
	// ~2x (two serving processes), so on a shared CI runner a single
	// noisy run could eat the whole margin. The fastest of three is the
	// least-contended measurement on each side.
	const attempts = 3
	leaderAlone := time.Duration(1<<63 - 1)
	for a := 0; a < attempts; a++ {
		start := time.Now()
		if err := replay(lc); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < leaderAlone {
			leaderAlone = d
		}
	}
	baseQPS := float64(n) / leaderAlone.Seconds()

	// Aggregate: both replicas concurrently, one stream each.
	combined := time.Duration(1<<63 - 1)
	for a := 0; a < attempts; a++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		start := time.Now()
		for i, c := range []*client.Client{lc, fc} {
			wg.Add(1)
			go func(i int, c *client.Client) {
				defer wg.Done()
				errs[i] = replay(c)
			}(i, c)
		}
		wg.Wait()
		d := time.Since(start)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if d < combined {
			combined = d
		}
	}
	aggQPS := float64(2*n) / combined.Seconds()

	t.Logf("leader alone: %d queries in %v (%.0f qps)", n, leaderAlone, baseQPS)
	t.Logf("leader+follower: %d queries in %v (%.0f qps aggregate, %.2fx)", 2*n, combined, aggQPS, aggQPS/baseQPS)
	if aggQPS < 1.7*baseQPS {
		t.Fatalf("aggregate %.0f qps < 1.7x leader-alone %.0f qps (%.2fx)", aggQPS, baseQPS, aggQPS/baseQPS)
	}
}
