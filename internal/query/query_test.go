package query

import (
	"math/rand"
	"testing"

	"oreo/internal/table"
)

func testSchema() *table.Schema {
	return table.NewSchema(
		table.Column{Name: "ts", Type: table.Int64},
		table.Column{Name: "price", Type: table.Float64},
		table.Column{Name: "region", Type: table.String},
	)
}

func testDataset(t testing.TB, n int, seed int64) *table.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := table.NewBuilder(testSchema(), n)
	regions := []string{"east", "north", "south", "west"}
	for i := 0; i < n; i++ {
		b.AppendRow(
			table.Int(rng.Int63n(1000)),
			table.Float(rng.Float64()*100),
			table.Str(regions[rng.Intn(len(regions))]),
		)
	}
	return b.Build()
}

func TestPredicateConstructors(t *testing.T) {
	p := IntRange("ts", 5, 10)
	if !p.HasLo || !p.HasHi || p.LoI != 5 || p.HiI != 10 || !p.IsNumeric() {
		t.Errorf("IntRange = %+v", p)
	}
	if p := IntGE("ts", 5); !p.HasLo || p.HasHi {
		t.Errorf("IntGE = %+v", p)
	}
	if p := IntLE("ts", 5); p.HasLo || !p.HasHi {
		t.Errorf("IntLE = %+v", p)
	}
	if p := FloatRange("price", 1, 2); p.LoF != 1 || p.HiF != 2 {
		t.Errorf("FloatRange = %+v", p)
	}
	if p := StrEq("region", "east"); p.IsNumeric() || len(p.In) != 1 {
		t.Errorf("StrEq = %+v", p)
	}
	if p := StrIn("region", "a", "b"); len(p.In) != 2 {
		t.Errorf("StrIn = %+v", p)
	}
}

func TestMatchRowInt(t *testing.T) {
	b := table.NewBuilder(testSchema(), 3)
	b.AppendRow(table.Int(5), table.Float(1), table.Str("east"))
	b.AppendRow(table.Int(10), table.Float(2), table.Str("west"))
	b.AppendRow(table.Int(15), table.Float(3), table.Str("east"))
	d := b.Build()

	q := Query{Preds: []Predicate{IntRange("ts", 6, 12)}}
	want := []bool{false, true, false}
	for r, w := range want {
		if got := q.MatchRow(d, r); got != w {
			t.Errorf("row %d: MatchRow = %v, want %v", r, got, w)
		}
	}
}

func TestMatchRowConjunction(t *testing.T) {
	b := table.NewBuilder(testSchema(), 2)
	b.AppendRow(table.Int(5), table.Float(50), table.Str("east"))
	b.AppendRow(table.Int(5), table.Float(50), table.Str("west"))
	d := b.Build()
	q := Query{Preds: []Predicate{
		IntGE("ts", 5),
		FloatLE("price", 50),
		StrEq("region", "east"),
	}}
	if !q.MatchRow(d, 0) {
		t.Error("row 0 should match full conjunction")
	}
	if q.MatchRow(d, 1) {
		t.Error("row 1 should fail the region predicate")
	}
}

func TestMatchRowMissingColumn(t *testing.T) {
	d := testDataset(t, 5, 1)
	q := Query{Preds: []Predicate{IntGE("nope", 0)}}
	for r := 0; r < 5; r++ {
		if q.MatchRow(d, r) {
			t.Fatal("query on missing column matched a row")
		}
	}
}

func TestMatchRowTypeMismatch(t *testing.T) {
	d := testDataset(t, 5, 1)
	// String predicate on a numeric column never matches.
	q := Query{Preds: []Predicate{StrEq("ts", "5")}}
	if q.MatchRow(d, 0) {
		t.Error("string predicate on int column matched")
	}
	// Numeric predicate on a string column never matches.
	q2 := Query{Preds: []Predicate{IntGE("region", 0)}}
	if q2.MatchRow(d, 0) {
		t.Error("numeric predicate on string column matched")
	}
}

func TestEmptyQueryMatchesEverything(t *testing.T) {
	d := testDataset(t, 10, 2)
	q := Query{}
	for r := 0; r < 10; r++ {
		if !q.MatchRow(d, r) {
			t.Fatal("empty conjunction should match all rows")
		}
	}
	if got := Selectivity(d, q); got != 1 {
		t.Errorf("Selectivity(empty) = %g, want 1", got)
	}
}

func TestQueryColumns(t *testing.T) {
	q := Query{Preds: []Predicate{
		IntGE("a", 1), StrEq("b", "x"), IntLE("a", 5),
	}}
	cols := q.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestSelectivity(t *testing.T) {
	b := table.NewBuilder(testSchema(), 4)
	for i := 0; i < 4; i++ {
		b.AppendRow(table.Int(int64(i)), table.Float(0), table.Str("east"))
	}
	d := b.Build()
	q := Query{Preds: []Predicate{IntLE("ts", 1)}}
	if got := Selectivity(d, q); got != 0.5 {
		t.Errorf("Selectivity = %g, want 0.5", got)
	}
}

func TestPredicateString(t *testing.T) {
	if s := StrEq("r", "x").String(); s != `r = "x"` {
		t.Errorf("StrEq String = %q", s)
	}
	if s := StrIn("r", "a", "b").String(); s != "r IN (a,b)" {
		t.Errorf("StrIn String = %q", s)
	}
	if s := IntRange("c", 1, 2).String(); s == "" {
		t.Error("IntRange String empty")
	}
}
