package exec

import (
	"fmt"
	"testing"

	"oreo/internal/prune"
	"oreo/internal/query"
	"oreo/internal/table"
)

// benchStore builds a ts-sorted store: `rows` rows over (ts int64,
// val float64) range-partitioned into k equal partitions, so a ts range
// of width w/k of the domain survives exactly w partitions.
func benchStore(rows, k int) (*table.Dataset, *Store) {
	schema := table.NewSchema(
		table.Column{Name: "ts", Type: table.Int64},
		table.Column{Name: "val", Type: table.Float64},
	)
	b := table.NewBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(table.Int(int64(i)), table.Float(float64(i%997)))
	}
	ds := b.Build()
	assign := make([]int, rows)
	per := rows / k
	for i := range assign {
		pid := i / per
		if pid >= k {
			pid = k - 1
		}
		assign[i] = pid
	}
	return ds, MustNewStore(ds, table.MustBuildPartitioning(ds, assign, k))
}

// BenchmarkScanBySurvivorCount is the execution layer's scaling
// contract: with the table and partition count fixed, executed-scan
// time is proportional to the *survivor* count the skip-list names, not
// to the total partition count. Each sub-benchmark executes a ts range
// spanning the given number of partitions out of 64.
func BenchmarkScanBySurvivorCount(b *testing.B) {
	const rows, k = 131072, 64
	ds, store := benchStore(rows, k)
	per := int64(rows / k)
	for _, nsurv := range []int{1, 4, 16, 64} {
		q := query.Query{Preds: []query.Predicate{
			query.IntRange("ts", 0, per*int64(nsurv)-1),
		}}
		ids, _ := prune.Compile(ds.Schema(), q).Survivors(store.Partitioning())
		if len(ids) != nsurv {
			b.Fatalf("expected %d survivors, got %d", nsurv, len(ids))
		}
		aggs := []AggSpec{{Op: AggCount}, {Op: AggSum, Col: "val"}}
		b.Run(fmt.Sprintf("survivors=%d", nsurv), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := store.Scan(q, ids, aggs, Options{})
				if err != nil || res.Matched != int(per)*nsurv {
					b.Fatalf("scan: %v (matched %d)", err, res.Matched)
				}
			}
		})
	}
}

// BenchmarkScanByPartitionCount fixes the survivor row mass (1/16 of
// the table) while the total partition count grows 64 → 1024: executed
// time must stay flat, pinning that cost follows data read, not
// partitions that exist.
func BenchmarkScanByPartitionCount(b *testing.B) {
	const rows = 131072
	for _, k := range []int{64, 256, 1024} {
		ds, store := benchStore(rows, k)
		q := query.Query{Preds: []query.Predicate{
			query.IntRange("ts", 0, rows/16-1),
		}}
		ids, _ := prune.Compile(ds.Schema(), q).Survivors(store.Partitioning())
		b.Run(fmt.Sprintf("partitions=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := store.Scan(q, ids, nil, Options{})
				if err != nil || res.Matched != rows/16 {
					b.Fatalf("scan: %v (matched %d)", err, res.Matched)
				}
			}
		})
	}
}

// BenchmarkStoreRebuild measures what a reorganization costs the
// decision consumer: a full per-partition rematerialization.
func BenchmarkStoreRebuild(b *testing.B) {
	const rows, k = 131072, 64
	ds, store := benchStore(rows, k)
	part := store.Partitioning()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewStore(ds, part); err != nil {
			b.Fatal(err)
		}
	}
}
