package metrics

import (
	"bytes"
	"flag"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// TestWriteTextGolden pins the exposition format byte-for-byte: HELP
// and TYPE lines, sample spelling, histogram _bucket/_sum/_count
// expansion with a terminating +Inf, label escaping, and the
// deterministic family/series ordering. If this test fails after an
// encoder change, the bytes are the contract — fix the encoder, or
// deliberately regenerate with -update-golden and review the diff.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("test_requests_total", "Requests answered.", Labels{"endpoint": "query", "code": "200"})
	c.Add(42)
	r.Counter("test_requests_total", "Requests answered.", Labels{"endpoint": "query", "code": "400"}).Inc()
	r.Counter("test_requests_total", "Requests answered.", Labels{"endpoint": "batch", "code": "200"}).Add(7)

	g := r.Gauge("test_queue_depth", "Observations waiting.", Labels{"table": "orders"})
	g.Set(3)
	r.GaugeFunc("test_epoch", "Current epoch.", Labels{"table": "orders"}, func() float64 { return 1234 })
	r.CounterFunc("test_cost_total", "Cumulative served cost.", nil, func() float64 { return 12.5 })

	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.001, 0.01, 0.1, 1}, Labels{"endpoint": "query"})
	for _, v := range []float64{0.0004, 0.002, 0.002, 0.05, 0.05, 0.05, 0.2, 5} {
		h.Observe(v)
	}

	// Label values carrying every escapable byte; help text with a
	// backslash and a newline.
	r.Gauge("test_escapes", "Escape \\ coverage\nsecond line.", Labels{"v": "a\\b\"c\nd"}).Set(1)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// Two encodes of untouched state are identical — the determinism the
	// golden depends on.
	var again bytes.Buffer
	if err := r.WriteText(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two encodes of identical state differ")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "A counter.", nil).Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_total 3\n") {
		t.Errorf("scrape missing sample:\n%s", buf.String())
	}
}

func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels{"t": "a"})
	b := r.Counter("x_total", "", Labels{"t": "a"})
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	if c := r.Counter("x_total", "", Labels{"t": "b"}); c == a {
		t.Error("distinct labels returned the same counter")
	}
	h1 := r.Histogram("h_seconds", "", []float64{1, 2}, Labels{"t": "a"})
	h2 := r.Histogram("h_seconds", "", nil, Labels{"t": "a"})
	if h1 != h2 {
		t.Error("same histogram series returned distinct histograms")
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "", nil)
	mustPanic("kind conflict", func() { r.Gauge("ok_total", "", nil) })
	mustPanic("bad metric name", func() { r.Counter("bad-name", "", nil) })
	mustPanic("bad label name", func() { r.Counter("ok2_total", "", Labels{"bad-label": "x"}) })
	mustPanic("reserved le label", func() { r.Counter("ok3_total", "", Labels{"le": "x"}) })
	mustPanic("unordered buckets", func() { r.Histogram("h_seconds", "", []float64{2, 1}, nil) })
	r.Histogram("h2_seconds", "", []float64{1, 2}, nil)
	mustPanic("bucket conflict", func() { r.Histogram("h2_seconds", "", []float64{1, 3}, nil) })
	r.CounterFunc("fn_total", "", nil, func() float64 { return 1 })
	mustPanic("cell over callback", func() { r.Counter("fn_total", "", nil) })
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(0.001, 2, 12)) // 1ms .. ~2s
	// 1000 observations uniform over (0, 0.1]: p50 ≈ 0.05, p99 ≈ 0.099.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 0.0001)
	}
	if p50 := h.Quantile(0.50); p50 < 0.03 || p50 > 0.07 {
		t.Errorf("p50 = %v, want ≈0.05", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.08 || p99 > 0.11 {
		t.Errorf("p99 = %v, want ≈0.099", p99)
	}
	if got, want := h.Max(), 0.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("Max = %v, want %v", got, want)
	}
	if got, want := h.Count(), uint64(1000); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), 50.05; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	// An outlier past the last bound lands in +Inf and the tail quantile
	// clamps to the exact max rather than inventing a bound.
	h.Observe(30)
	if p := h.Quantile(0.9999); p != 30 {
		t.Errorf("tail quantile = %v, want the exact max 30", p)
	}

	if q := NewHistogram([]float64{1}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

// TestConcurrentScrape hammers every instrument kind from many
// goroutines while scraping concurrently — the -race witness that the
// hot path takes no locks and the encoder reads safely.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "", Labels{"t": "x"})
	g := r.Gauge("stress_depth", "", nil)
	h := r.Histogram("stress_seconds", "", LatencyBuckets(), Labels{"t": "x"})
	r.GaugeFunc("stress_fn", "", nil, func() float64 { return float64(c.Load()) })

	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.WriteText(&buf); err != nil {
					t.Error(err)
					return
				}
				// New series appearing mid-stress must not corrupt encoding.
				r.Counter("stress_total", "", Labels{"t": "x"}).Load()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(seed*perWriter+i) * 1e-6)
				h.ObserveDuration(time.Microsecond)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got, want := c.Load(), uint64(writers*perWriter); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Load(), float64(writers*perWriter); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), uint64(2*writers*perWriter); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}
