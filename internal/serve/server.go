// Package serve is OREO's online serving layer, split into a
// transport-neutral core and thin wire codecs over it.
//
// Core owns every request semantic: validation, predicate routing
// across tables, costing and survivor skip-list extraction against
// lock-free layout snapshots, row-level execution, and the observation
// hand-off into each table's decision loop. It speaks typed
// request/response structs and typed errors (*Error with an ErrorCode),
// takes a context.Context, and knows nothing about HTTP — which is what
// lets one implementation sit behind multiple transports: the v1 and v2
// HTTP surfaces here today, a gRPC surface or replica fan-out tomorrow,
// and direct in-process embedding always.
//
// Requests are handled per table on independent shards. Each shard runs
// in a read-mostly regime: costing and survivor skip-list extraction —
// the per-request work — run lock-free against an atomically swapped
// immutable layout snapshot (oreo.ConcurrentOptimizer), while decision-
// state updates (admission, D-UMTS counters, reorganization) drain
// through a single background consumer fed by a bounded queue. The
// request path therefore scales with cores and is never stalled by a
// layout generation in progress; under overload, observations are
// sampled (and counted) instead of applying backpressure to queries.
//
// With "execute": true a query request goes past costing: each shard
// keeps an execution store (internal/exec) — the table's rows
// materialized into one columnar block per partition of the serving
// layout, built lazily on the first execute request so costing-only
// deployments never pay for it — snapshot-swapped by the decision
// consumer in lockstep with the optimizer snapshot whenever a
// reorganization lands. The request scans exactly the survivor
// partitions, re-checks predicates per row, and returns matched-row
// counts plus requested aggregates (count, sum, min, max) next to the
// cost, closing the loop the cost model predicts.
//
// # Wire surfaces
//
// Server mounts two versioned HTTP surfaces over one Core.
//
// /v1 is the original, frozen contract — byte-for-byte, golden-tested:
//
//	POST /v1/query                  predicates in → cost, decision state,
//	                                and the survivor partition skip-list,
//	                                per affected table; "execute" adds
//	                                row counts and aggregates
//	POST /v1/query/batch            the same for many queries in one round
//	                                trip, with per-item (partial) failures
//	GET  /v1/tables                 registered tables
//	GET  /v1/tables/{table}/layout  serving layout, partition row counts
//	GET  /v1/tables/{table}/stats   optimizer counters + memo + shard metrics
//	GET  /v1/tables/{table}/trace   decision trace (needs TraceCapacity)
//	GET  /healthz                   liveness + per-table registry
//
// /v2 carries the same request/response shapes on the same paths, plus
// the streaming bulk endpoint built for log replay and the live write
// path:
//
//	POST /v2/query/stream           NDJSON in → NDJSON out: one
//	                                QueryRequest per line, one BatchItem
//	                                per line back, answered in order from
//	                                the lock-free snapshot path;
//	                                ?flush_every=N controls flushing
//	POST /v2/tables/{table}/append  rows in → durable append into the
//	                                table's delta segment; visible to
//	                                every subsequent query on return
//	POST /v2/tables/{table}/compact fold the delta into the base layout
//	                                now (auto-compaction covers the
//	                                steady state)
//
// A replay client streams a captured query log through one connection
// and one encoder, amortizing the per-request HTTP and JSON overhead
// that dominates POST /v1/query at volume (see BenchmarkStreamVsUnary).
//
// The wire predicate encoding matches the query-log format of
// internal/persist, so captured production logs replay against the
// server unchanged. The public client package speaks both surfaces
// with stdlib-only dependencies.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"oreo"
	"oreo/internal/metrics"
)

// DefaultQueueSize bounds each shard's observation queue when Config
// leaves it zero. One window's worth of headroom per the paper's
// defaults, times a safety factor for bursts.
const DefaultQueueSize = 1024

// DefaultMaxBodyBytes caps request bodies when Config leaves
// MaxBodyBytes zero. 1 MiB holds tens of thousands of wire predicates —
// far beyond any legitimate batch — while keeping a single hostile
// client from buffering unbounded JSON into server memory. On the
// stream endpoint the same figure caps each NDJSON line instead of the
// (unbounded, by design) body.
const DefaultMaxBodyBytes = 1 << 20

// Config parameterizes a Server.
type Config struct {
	// QueueSize bounds each table's decision-observation queue; zero
	// selects DefaultQueueSize. When a shard's queue is full, new
	// queries are answered normally but sampled out of reorganization
	// decisions (the Dropped metric counts them).
	QueueSize int
	// MaxBodyBytes caps each request body; oversized requests are
	// answered 413 with the standard error shape. Zero selects
	// DefaultMaxBodyBytes; negative disables the cap (trusted
	// single-tenant deployments only). Stream requests are capped per
	// line, not per body.
	MaxBodyBytes int64
	// Advertise is the URL this server is reachable at for replication
	// subscribers, surfaced on /healthz (see CoreConfig.Advertise).
	Advertise string
	// ScanParallelism is the execute-path scan worker count; zero
	// selects runtime.NumCPU() (see CoreConfig.ScanParallelism).
	ScanParallelism int
	// CompactThreshold is the delta row count that triggers automatic
	// compaction after an append; zero selects DefaultCompactThreshold,
	// negative disables auto-compaction (see CoreConfig.CompactThreshold).
	CompactThreshold int
	// SeedRows maps tables to their boot-source row counts for
	// warm-started hosts whose datasets already include appended tail
	// rows (see CoreConfig.SeedRows).
	SeedRows map[string]int
}

// Server is the HTTP codec over a serving Core: it decodes bytes,
// calls Core, and encodes the answer — no request semantics live here.
// Construct with New, mount Handler, and Close on shutdown.
type Server struct {
	core    *Core
	mux     *http.ServeMux
	maxBody int64
}

// New builds an HTTP server over the registered tables. The
// MultiOptimizer (and its per-table Optimizers) must not be used
// directly afterwards: every shard owns its table's decision path.
func New(m *oreo.MultiOptimizer, cfg Config) (*Server, error) {
	core, err := NewCore(m, CoreConfig{
		QueueSize:        cfg.QueueSize,
		Advertise:        cfg.Advertise,
		ScanParallelism:  cfg.ScanParallelism,
		CompactThreshold: cfg.CompactThreshold,
		SeedRows:         cfg.SeedRows,
	})
	if err != nil {
		return nil, err
	}
	return NewServer(core, cfg), nil
}

// NewServer mounts the HTTP codec over an existing Core — the path for
// hosts that share one Core between transports. The Server does not
// take ownership: closing it is the caller's Close on the Core.
func NewServer(core *Core, cfg Config) *Server {
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{core: core, mux: http.NewServeMux(), maxBody: cfg.MaxBodyBytes}

	// Both versions are codecs over the same Core. v1 is the frozen
	// compatibility surface; v2 adds the streaming bulk endpoint. Every
	// route is wrapped in the metrics middleware (request counter per
	// status code plus a latency histogram, labeled by endpoint; v1 and
	// v2 share series — same Core, same semantics).
	for _, v := range []string{"/v1", "/v2"} {
		s.mux.HandleFunc("POST "+v+"/query", s.instrument("query", s.handleQuery))
		s.mux.HandleFunc("POST "+v+"/query/batch", s.instrument("batch", s.handleBatch))
		s.mux.HandleFunc("GET "+v+"/tables", s.instrument("tables", s.handleTables))
		s.mux.HandleFunc("GET "+v+"/tables/{table}/layout", s.instrument("layout", s.handleLayout))
		s.mux.HandleFunc("GET "+v+"/tables/{table}/stats", s.instrument("stats", s.handleStats))
		s.mux.HandleFunc("GET "+v+"/tables/{table}/trace", s.instrument("trace", s.handleTrace))
	}
	// The stream histogram measures whole-stream wall time (one sample
	// per connection, not per NDJSON line); per-query stream latency is
	// a client-side measurement (oreoload, oreoreplay).
	s.mux.HandleFunc("POST /v2/query/stream", s.instrument("stream", s.handleStream))
	// The live write path is /v2-only: /v1 is the frozen read-replay
	// contract and gains no routes.
	s.mux.HandleFunc("POST /v2/tables/{table}/append", s.instrument("append", s.handleAppend))
	s.mux.HandleFunc("POST /v2/tables/{table}/compact", s.instrument("compact", s.handleCompact))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	reg := core.Metrics()
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", func(w http.ResponseWriter, r *http.Request) {
		reg.Handler().ServeHTTP(w, r)
	}))
	return s
}

// instrument wraps a handler in the per-endpoint middleware: an
// oreo_http_requests_total{endpoint,code} counter and an
// oreo_http_request_duration_seconds{endpoint} histogram. The 200
// counter and the histogram are resolved once at registration so the
// common path records with two atomic adds; non-200 counters go
// through the registry's get-or-create (rare by construction).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	const (
		reqHelp = "HTTP requests answered, by endpoint and status code."
		durHelp = "HTTP request latency in seconds, by endpoint; the stream endpoint measures whole-stream wall time."
	)
	reg := s.core.Metrics()
	hist := reg.Histogram("oreo_http_request_duration_seconds", durHelp,
		metrics.LatencyBuckets(), metrics.Labels{"endpoint": endpoint})
	ok := reg.Counter("oreo_http_requests_total", reqHelp,
		metrics.Labels{"endpoint": endpoint, "code": "200"})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.code == 0 || rec.code == http.StatusOK {
			ok.Inc()
		} else {
			reg.Counter("oreo_http_requests_total", reqHelp,
				metrics.Labels{"endpoint": endpoint, "code": strconv.Itoa(rec.code)}).Inc()
		}
		hist.ObserveDuration(time.Since(start))
	}
}

// statusRecorder captures the response status for the middleware.
// Unwrap keeps http.ResponseController working through the wrapper —
// the stream handler flushes per line via the controller, which
// unwraps to reach the real connection.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// Core returns the serving core behind the HTTP codec, for hosts that
// want to answer in-process requests or mount additional transports
// over the same shards.
func (s *Server) Core() *Core { return s.core }

// Handler returns the server's HTTP handler, for mounting into an
// http.Server (the caller owns listening and TLS).
func (s *Server) Handler() http.Handler { return s.mux }

// Mount registers an additional handler on the server's mux — the hook
// a host uses to attach transports this package does not know about,
// such as the replication endpoints of internal/replica
// (POST /v2/replication/subscribe, POST /v2/replication/observe).
// Patterns use net/http mux syntax and must not collide with the
// built-in routes.
func (s *Server) Mount(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Close shuts the core's shards down gracefully: observation queues
// stop accepting, their consumers drain what was already queued, and
// the call returns when every decision loop is quiet. Call after the
// HTTP listener has stopped accepting requests.
func (s *Server) Close() { s.core.Close() }

// Snapshot returns the named table's current optimizer snapshot — the
// hook a host process uses to persist serving state at shutdown.
func (s *Server) Snapshot(table string) (oreo.OptimizerSnapshot, bool) {
	return s.core.Snapshot(table)
}

// decodeBody decodes a JSON request body under the configured size cap,
// writing the error response itself on failure. An oversized body is
// 413 with the standard error shape; everything else malformed is 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return s.decode(w, r, v, false)
}

// decodeBodyNumber is decodeBody with json.Number decoding, for bodies
// carrying row data where float64 coercion would lose int64 precision.
func (s *Server) decodeBodyNumber(w http.ResponseWriter, r *http.Request, v any) bool {
	return s.decode(w, r, v, true)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any, useNumber bool) bool {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	dec := json.NewDecoder(body)
	if useNumber {
		dec.UseNumber()
	}
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	results, err := s.core.Answer(r.Context(), req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Results: results})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp, err := s.core.Batch(r.Context(), req)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tables": s.core.Tables()})
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	resp, err := s.core.Layout(r.PathValue("table"))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp, err := s.core.Stats(r.PathValue("table"))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	resp, err := s.core.Trace(r.PathValue("table"))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAppend decodes with json.Number enabled: append rows carry
// arbitrary client numbers, and the default float64 decode would
// silently round int64 cells above 2⁵³ before the typed conversion
// could reject them.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if !s.decodeBodyNumber(w, r, &req) {
		return
	}
	resp, err := s.core.Append(r.Context(), r.PathValue("table"), req.Rows)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	resp, err := s.core.Compact(r.Context(), r.PathValue("table"))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.core.Health())
}

// writeJSON marshals before writing the status line, so an
// unencodable value becomes an honest 500 instead of an empty body
// under an already-committed 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, status = []byte(`{"error":"response not encodable"}`), http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data = append(data, '\n')
	_, _ = w.Write(data)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
