package layout

import (
	"fmt"
	"sort"
	"strings"

	"oreo/internal/query"
	"oreo/internal/table"
)

// SortGenerator produces the default layout: sort the dataset by one or
// more predefined columns (typically the arrival-time column) and chop
// it into k equal-sized partitions. This is the "partition by arrival
// time" baseline every system starts from and the initial state of
// OREO's dynamic state space.
type SortGenerator struct {
	// Columns are the sort keys in major-to-minor order.
	Columns []string
}

// NewSortGenerator returns a generator sorting by the given columns.
func NewSortGenerator(columns ...string) *SortGenerator {
	if len(columns) == 0 {
		panic("layout: SortGenerator needs at least one column")
	}
	return &SortGenerator{Columns: columns}
}

// Name implements Generator.
func (g *SortGenerator) Name() string { return "sort" }

// Generate implements Generator. The workload argument is ignored: sort
// layouts are workload-oblivious.
func (g *SortGenerator) Generate(d *table.Dataset, _ []query.Query, k int) *Layout {
	cols := make([]int, 0, len(g.Columns))
	for _, name := range g.Columns {
		ci, ok := d.Schema().Index(name)
		if !ok {
			panic(fmt.Sprintf("layout: sort column %q not in schema", name))
		}
		cols = append(cols, ci)
	}

	order := make([]int, d.NumRows())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		for _, c := range cols {
			cmp := d.ValueAt(c, ra).Compare(d.ValueAt(c, rb))
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})

	assign := chopSorted(order, d.NumRows(), k)
	part := table.MustBuildPartitioning(d, assign, k)
	return New(fmt.Sprintf("sort(%s)", strings.Join(g.Columns, ",")), d.Schema(), part)
}

// chopSorted assigns the rows (listed in sorted order) to k contiguous
// equal-sized partitions and returns the row→partition vector.
func chopSorted(order []int, numRows, k int) []int {
	assign := make([]int, numRows)
	for pos, row := range order {
		pid := pos * k / numRows
		if pid >= k {
			pid = k - 1
		}
		assign[row] = pid
	}
	return assign
}
