package mts

import (
	"fmt"
	"math/rand"
	"sort"
)

// MultiCopy implements the storage-budget variant the paper sketches in
// Appendix D: when there is budget to keep B materialized copies of the
// dataset under different layouts simultaneously, the system serves
// every query on the *cheapest resident copy*, and only pays the
// reorganization cost α when it materializes a layout that is not
// currently resident (evicting another copy to stay within budget).
//
// The decision rule is the same counter machinery as the single-copy
// algorithm, applied to the resident set: each state in S accumulates
// the cost it would have incurred; the resident set is judged by the
// cost of its best member. When the best resident state saturates, the
// algorithm materializes a random (γ-biased) unsaturated state —
// preferring already-resident ones, which are free to "switch" to — and
// evicts the resident copy with the fullest counter if over budget.
// With B = 1 this degenerates exactly to the single-copy algorithm's
// move pattern.
type MultiCopy struct {
	cfg    Config
	budget int
	rng    *rand.Rand

	states   map[StateID]bool // S; value = active (counter < alpha)
	counter  map[StateID]float64
	resident map[StateID]bool
	pending  map[StateID]bool

	started       bool
	materializedN int // reorganizations paid (non-resident materializations)
	phases        int
	maxSpace      int
}

// NewMultiCopy returns a multi-copy decision maker with the given
// storage budget (number of simultaneously resident layouts, >= 1).
func NewMultiCopy(cfg Config, budget int, rng *rand.Rand) *MultiCopy {
	if cfg.Alpha <= 1 {
		panic(fmt.Sprintf("mts: Alpha must be > 1, got %g", cfg.Alpha))
	}
	if budget < 1 {
		panic(fmt.Sprintf("mts: budget must be >= 1, got %d", budget))
	}
	return &MultiCopy{
		cfg:      cfg,
		budget:   budget,
		rng:      rng,
		states:   make(map[StateID]bool),
		counter:  make(map[StateID]float64),
		resident: make(map[StateID]bool),
		pending:  make(map[StateID]bool),
	}
}

// AddState introduces a state; mid-stream additions defer to the next
// phase, as in the single-copy algorithm.
func (m *MultiCopy) AddState(id StateID) {
	if _, ok := m.states[id]; ok || m.pending[id] {
		return
	}
	if !m.started {
		m.states[id] = true
		m.counter[id] = 0
	} else {
		m.pending[id] = true
	}
	if n := len(m.states) + len(m.pending); n > m.maxSpace {
		m.maxSpace = n
	}
}

// MakeResident marks a state as initially materialized (before
// processing starts). It panics over budget or for unknown states.
func (m *MultiCopy) MakeResident(id StateID) {
	if m.started {
		panic("mts: MakeResident after processing started")
	}
	if _, ok := m.states[id]; !ok {
		panic(fmt.Sprintf("mts: MakeResident of unknown state %d", id))
	}
	if len(m.resident) >= m.budget {
		panic("mts: resident set exceeds budget")
	}
	m.resident[id] = true
}

// Observe processes one query. cost returns c(s, q) for any state. It
// reports which resident state served the query (the cheapest), and
// whether a new layout was materialized (one reorganization of cost α).
func (m *MultiCopy) Observe(cost func(StateID) float64) (serveIn StateID, materialized bool) {
	m.start()

	for id, active := range m.states {
		if !active {
			continue
		}
		c := cost(id)
		if c < 0 || c > 1 {
			//oreovet:ignore maporder panic formats the one violating cost; any violating member aborts the run identically
			panic(fmt.Sprintf("mts: cost %g outside [0,1]", c))
		}
		m.counter[id] += c
		if m.counter[id] >= m.cfg.Alpha {
			m.states[id] = false
		}
	}

	// Serve on the cheapest resident copy.
	serveIn = m.bestResident(cost)

	// If every resident copy has saturated, bring in an unsaturated
	// state (phase bookkeeping mirrors the single-copy algorithm).
	if !m.anyResidentActive() {
		if m.activeCount() == 0 {
			m.resetPhase()
			return serveIn, false // stay-in-place across the phase edge
		}
		target := m.pickActive()
		if !m.resident[target] {
			m.evictIfNeeded()
			m.resident[target] = true
			m.materializedN++
			return m.bestResident(cost), true
		}
	}
	return serveIn, false
}

func (m *MultiCopy) start() {
	if m.started {
		return
	}
	if len(m.states) == 0 {
		panic("mts: Observe with empty state space")
	}
	if len(m.resident) == 0 {
		// Default: the smallest state ID starts resident.
		ids := m.sortedIDs()
		m.resident[ids[0]] = true
	}
	m.started = true
	m.phases = 1
}

func (m *MultiCopy) resetPhase() {
	for id := range m.pending {
		m.states[id] = true
		delete(m.pending, id)
	}
	for id := range m.states {
		m.states[id] = true
		m.counter[id] = 0
	}
	m.phases++
	if n := len(m.states); n > m.maxSpace {
		m.maxSpace = n
	}
}

// bestResident returns the resident state with the lowest current cost.
func (m *MultiCopy) bestResident(cost func(StateID) float64) StateID {
	best := StateID(-1)
	bestCost := 0.0
	for _, id := range m.sortedResidentIDs() {
		c := cost(id)
		if best == -1 || c < bestCost {
			best, bestCost = id, c
		}
	}
	return best
}

func (m *MultiCopy) anyResidentActive() bool {
	for id := range m.resident {
		if m.states[id] {
			return true
		}
	}
	return false
}

func (m *MultiCopy) activeCount() int {
	n := 0
	for _, a := range m.states {
		if a {
			n++
		}
	}
	return n
}

// pickActive selects a uniformly random active state, preferring
// resident ones (switching to a resident copy is free).
func (m *MultiCopy) pickActive() StateID {
	var residentActive, otherActive []StateID
	for _, id := range m.sortedIDs() {
		if !m.states[id] {
			continue
		}
		if m.resident[id] {
			residentActive = append(residentActive, id)
		} else {
			otherActive = append(otherActive, id)
		}
	}
	if len(residentActive) > 0 {
		return residentActive[m.rng.Intn(len(residentActive))]
	}
	return otherActive[m.rng.Intn(len(otherActive))]
}

// evictIfNeeded drops the resident copy with the fullest counter when
// the budget is exhausted.
func (m *MultiCopy) evictIfNeeded() {
	if len(m.resident) < m.budget {
		return
	}
	victim := StateID(-1)
	worst := -1.0
	for _, id := range m.sortedResidentIDs() {
		if c := m.counter[id]; c > worst {
			victim, worst = id, c
		}
	}
	delete(m.resident, victim)
}

func (m *MultiCopy) sortedIDs() []StateID {
	ids := make([]StateID, 0, len(m.states))
	for id := range m.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (m *MultiCopy) sortedResidentIDs() []StateID {
	ids := make([]StateID, 0, len(m.resident))
	for id := range m.resident {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Resident returns the resident state IDs in sorted order.
func (m *MultiCopy) Resident() []StateID { return m.sortedResidentIDs() }

// Materializations returns how many reorganizations (cost α each) have
// been paid.
func (m *MultiCopy) Materializations() int { return m.materializedN }

// Phases returns the number of phases started.
func (m *MultiCopy) Phases() int { return m.phases }

// Budget returns the configured resident-copy budget.
func (m *MultiCopy) Budget() int { return m.budget }
