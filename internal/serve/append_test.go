package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"oreo"
)

func mustUnmarshal(t *testing.T, data []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
}

// buildOrdersDet builds a deterministic closed-form orders table so an
// append-grown store and a from-scratch rebuild can be proven to hold
// exactly the same rows.
func buildOrdersDet(rows int) *oreo.Dataset {
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	b := oreo.NewDatasetBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(ordersCells(i)...)
	}
	return b.Build()
}

// ordersCells is the shared row formula: row i of the logical table,
// whether it arrives at boot or through an append.
func ordersCells(i int) []oreo.Value {
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	return []oreo.Value{
		oreo.Int(int64(i)),
		oreo.Str(statuses[i%4]),
		oreo.Float(float64(i%500) + 0.25),
	}
}

// ordersWireRow is the same row in the append wire shape.
func ordersWireRow(i int) map[string]any {
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	return map[string]any{
		"order_ts": i,
		"status":   statuses[i%4],
		"amount":   float64(i%500) + 0.25,
	}
}

// newOrdersCore boots a single-table leader core over a deterministic
// orders fixture with the given auto-compaction threshold.
func newOrdersCore(t *testing.T, rows, partitions, threshold int) *Core {
	t.Helper()
	m := oreo.NewMulti()
	if err := m.AddTable("orders", buildOrdersDet(rows), oreo.Config{
		Partitions: partitions, InitialSort: []string{"order_ts"}, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Config{CompactThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s.Core()
}

var appendProbeAggs = []AggregateJSON{
	{Op: "count"},
	{Op: "sum", Col: "amount"},
	{Op: "min", Col: "order_ts"},
	{Op: "max", Col: "order_ts"},
	{Op: "max", Col: "status"},
}

// appendProbes exercises range, open-range, categorical, conjunctive,
// unsatisfiable, and appended-region-only query shapes over a logical
// table of n rows of which the last n-boot arrived via append.
func appendProbes(boot, n int) []QueryRequest {
	probes := []QueryRequest{
		{Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, HasHi: true, LoI: 100, HiI: 899}}},
		{Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, LoI: int64(boot - 50)}}},
		{Preds: []PredicateJSON{{Col: "amount", HasLo: true, HasHi: true, LoF: 120.5, HiF: 250}}},
		{Preds: []PredicateJSON{{Col: "status", In: []string{"pending", "returned"}}}},
		{Preds: []PredicateJSON{
			{Col: "order_ts", HasLo: true, HasHi: true, LoI: 0, HiI: int64(n)},
			{Col: "status", In: []string{"delivered"}},
		}},
		{Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, LoI: int64(n + 10)}}},
		{Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, LoI: int64(boot)}}}, // appended region only
	}
	for i := range probes {
		probes[i].Table = "orders"
		probes[i].Execute = true
		probes[i].Aggs = appendProbeAggs
	}
	return probes
}

// TestAppendCompactEquivalentToRebuild is the live-write soundness
// property: a store grown by appends and compactions — ending with a
// NON-empty delta, so the always-scanned segment is genuinely in play —
// answers every executed probe bitwise-identically to a store built
// from scratch over the same logical rows with a different partitioning
// (which also makes it a pruned-vs-differently-pruned equivalence).
func TestAppendCompactEquivalentToRebuild(t *testing.T) {
	const boot, appended, batch = 3000, 240, 40
	ctx := context.Background()

	grown := newOrdersCore(t, boot, 8, -1) // explicit compaction only
	next := boot
	for b := 0; b < appended/batch; b++ {
		rows := make([]map[string]any, batch)
		for j := range rows {
			rows[j] = ordersWireRow(next)
			next++
		}
		ack, err := grown.Append(ctx, "orders", rows)
		if err != nil {
			t.Fatalf("append batch %d: %v", b, err)
		}
		if ack.Appended != batch {
			t.Fatalf("append batch %d: appended %d, want %d", b, ack.Appended, batch)
		}
		// Fold the first half in two compactions; the second half stays
		// in the delta.
		if b == 1 || b == 2 {
			if _, err := grown.Compact(ctx, "orders"); err != nil {
				t.Fatalf("compact after batch %d: %v", b, err)
			}
		}
	}
	pos, _ := grown.ReplicaPosition("orders")
	if pos.Delta == nil || pos.Delta.NumRows() == 0 {
		t.Fatal("test must end with a non-empty delta to exercise the live segment")
	}

	rebuilt := newOrdersCore(t, boot+appended, 5, -1) // same rows, different layout

	for pi, q := range appendProbes(boot, boot+appended) {
		ga, err := grown.Answer(ctx, q)
		if err != nil {
			t.Fatalf("probe %d on grown store: %v", pi, err)
		}
		ra, err := rebuilt.Answer(ctx, q)
		if err != nil {
			t.Fatalf("probe %d on rebuilt store: %v", pi, err)
		}
		ge, re := ga[0].Execution, ra[0].Execution
		if ge.MatchedRows != re.MatchedRows {
			t.Fatalf("probe %d: grown matched %d, rebuilt matched %d", pi, ge.MatchedRows, re.MatchedRows)
		}
		if ge.RowsTotal != re.RowsTotal {
			t.Fatalf("probe %d: grown sees %d total rows, rebuilt %d", pi, ge.RowsTotal, re.RowsTotal)
		}
		for ai := range ge.Aggregates {
			g, r := ge.Aggregates[ai], re.Aggregates[ai]
			if g.Type != r.Type || g.Valid != r.Valid || g.ValueI != r.ValueI ||
				math.Float64bits(g.ValueF) != math.Float64bits(r.ValueF) || g.ValueS != r.ValueS {
				t.Fatalf("probe %d agg %d (%s %s): grown %+v, rebuilt %+v", pi, ai, g.Op, g.Col, g, r)
			}
		}
	}
}

// TestAppendImmediatelyQueryable pins the leader visibility contract
// over the HTTP surface: once the append acknowledges, the rows answer
// queries, and the delta surfaces on execution results, layout, stats,
// and /healthz.
func TestAppendImmediatelyQueryable(t *testing.T) {
	_, ts := newFixtureServer(t, DefaultQueueSize)

	rows := make([]map[string]any, 25)
	for i := range rows {
		rows[i] = map[string]any{"order_ts": 5000 + i, "status": "appended", "amount": 1.5}
	}
	resp, body := postJSON(t, ts.URL+"/v2/tables/orders/append", map[string]any{"rows": rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d: %s", resp.StatusCode, body)
	}

	var qr struct {
		Results []TableResult `json:"results"`
	}
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"table": "orders", "execute": true,
		"preds": []map[string]any{{"col": "order_ts", "has_lo": true, "lo_i": 5000}},
		"aggs":  []map[string]any{{"op": "count"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &qr)
	ex := qr.Results[0].Execution
	if ex == nil || ex.MatchedRows != 25 {
		t.Fatalf("appended rows not queryable: %+v", qr.Results[0])
	}
	if ex.DeltaRows != 25 || qr.Results[0].DeltaRows != 25 {
		t.Fatalf("delta not surfaced on execution: %+v", qr.Results[0])
	}

	var lay LayoutResponse
	getJSON(t, ts.URL+"/v1/tables/orders/layout", &lay)
	if lay.DeltaRows != 25 || lay.TotalRows != 4000 {
		t.Fatalf("layout delta=%d total=%d, want 25/4000", lay.DeltaRows, lay.TotalRows)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/tables/orders/stats", &st)
	if st.RowsAppended != 25 || st.DeltaRows != 25 {
		t.Fatalf("stats rows_appended=%d delta=%d, want 25/25", st.RowsAppended, st.DeltaRows)
	}
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.DeltaRows["orders"] != 25 || h.DeltaRows["events"] != 0 {
		t.Fatalf("healthz delta_rows = %v", h.DeltaRows)
	}
}

// TestCompactEndpoint folds an explicit delta over HTTP and checks the
// layout grew, the delta drained, and an empty-delta fold is a no-op.
func TestCompactEndpoint(t *testing.T) {
	_, ts := newFixtureServer(t, DefaultQueueSize)

	rows := make([]map[string]any, 30)
	for i := range rows {
		rows[i] = map[string]any{"order_ts": 5000 + i, "status": "appended", "amount": 2.5}
	}
	if resp, body := postJSON(t, ts.URL+"/v2/tables/orders/append", map[string]any{"rows": rows}); resp.StatusCode != 200 {
		t.Fatalf("append: %d: %s", resp.StatusCode, body)
	}

	var cr CompactResponse
	resp, body := postJSON(t, ts.URL+"/v2/tables/orders/compact", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &cr)
	if cr.Folded != 30 || cr.DeltaRows != 0 {
		t.Fatalf("compact folded=%d delta=%d, want 30/0", cr.Folded, cr.DeltaRows)
	}
	var lay LayoutResponse
	getJSON(t, ts.URL+"/v1/tables/orders/layout", &lay)
	if lay.TotalRows != 4030 || lay.DeltaRows != 0 {
		t.Fatalf("post-compact layout total=%d delta=%d, want 4030/0", lay.TotalRows, lay.DeltaRows)
	}

	// Folding an empty delta is a success and a no-op.
	resp, body = postJSON(t, ts.URL+"/v2/tables/orders/compact", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty compact: status %d: %s", resp.StatusCode, body)
	}
	mustUnmarshal(t, body, &cr)
	if cr.Folded != 0 {
		t.Fatalf("empty compact folded %d rows", cr.Folded)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/tables/orders/stats", &st)
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1 (empty fold must not count)", st.Compactions)
	}
}

// TestAutoCompaction pins the threshold trigger: an append that carries
// the delta to the threshold folds it in the same acknowledged epoch.
func TestAutoCompaction(t *testing.T) {
	core := newOrdersCore(t, 1000, 4, 64)
	ctx := context.Background()

	rows := make([]map[string]any, 63)
	for i := range rows {
		rows[i] = ordersWireRow(1000 + i)
	}
	ack, err := core.Append(ctx, "orders", rows)
	if err != nil {
		t.Fatal(err)
	}
	if ack.DeltaRows != 63 {
		t.Fatalf("below threshold: delta %d, want 63", ack.DeltaRows)
	}
	ack, err = core.Append(ctx, "orders", []map[string]any{ordersWireRow(1063)})
	if err != nil {
		t.Fatal(err)
	}
	if ack.DeltaRows != 0 {
		t.Fatalf("at threshold: delta %d, want 0 (auto-compacted)", ack.DeltaRows)
	}
	lay, err := core.Layout("orders")
	if err != nil {
		t.Fatal(err)
	}
	if lay.TotalRows != 1064 || lay.DeltaRows != 0 {
		t.Fatalf("post-auto-compaction layout total=%d delta=%d, want 1064/0", lay.TotalRows, lay.DeltaRows)
	}
}

// TestAppendValidation walks the rejection surface: unknown tables,
// malformed rows, and type mismatches must answer typed client errors
// without landing any rows.
func TestAppendValidation(t *testing.T) {
	_, ts := newFixtureServer(t, DefaultQueueSize)

	cases := []struct {
		name string
		url  string
		body any
		code int
		frag string
	}{
		{"unknown table", "/v2/tables/nope/append",
			map[string]any{"rows": []map[string]any{{"x": 1}}}, 404, `unknown table`},
		{"no rows", "/v2/tables/orders/append",
			map[string]any{"rows": []map[string]any{}}, 400, "no rows"},
		{"missing column", "/v2/tables/orders/append",
			map[string]any{"rows": []map[string]any{{"order_ts": 1, "status": "x"}}}, 400, `missing column`},
		{"unknown column", "/v2/tables/orders/append",
			map[string]any{"rows": []map[string]any{{"order_ts": 1, "status": "x", "amount": 1.0, "extra": 2}}}, 400, `no column`},
		{"fractional int", "/v2/tables/orders/append",
			map[string]any{"rows": []map[string]any{{"order_ts": 1.5, "status": "x", "amount": 1.0}}}, 400, "order_ts"},
		{"type mismatch", "/v2/tables/orders/append",
			map[string]any{"rows": []map[string]any{{"order_ts": 1, "status": 7, "amount": 1.0}}}, 400, "status"},
		{"compact unknown table", "/v2/tables/nope/compact",
			map[string]any{}, 404, `unknown table`},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
		if !strings.Contains(string(body), tc.frag) {
			t.Errorf("%s: body %s, want substring %q", tc.name, body, tc.frag)
		}
	}

	// Nothing above may have landed a row.
	var lay LayoutResponse
	getJSON(t, ts.URL+"/v1/tables/orders/layout", &lay)
	if lay.DeltaRows != 0 || lay.TotalRows != 4000 {
		t.Fatalf("rejected appends landed rows: %+v", lay)
	}
}

// TestAppendInt64Precision pins the json.Number decode path: an int64
// key above 2^53 must land exactly, not rounded through float64.
func TestAppendInt64Precision(t *testing.T) {
	_, ts := newFixtureServer(t, DefaultQueueSize)
	const big = int64(1)<<53 + 1 // 9007199254740993: unrepresentable in float64

	body := fmt.Sprintf(`{"rows":[{"order_ts":%d,"status":"big","amount":0.5}]}`, big)
	resp, err := http.Post(ts.URL+"/v2/tables/orders/append", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d", resp.StatusCode)
	}

	var qr struct {
		Results []TableResult `json:"results"`
	}
	_, data := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"table": "orders", "execute": true,
		"preds": []map[string]any{{"col": "order_ts", "has_lo": true, "lo_i": 1 << 52}},
		"aggs":  []map[string]any{{"op": "max", "col": "order_ts"}},
	})
	mustUnmarshal(t, data, &qr)
	ex := qr.Results[0].Execution
	if ex.MatchedRows != 1 {
		t.Fatalf("matched %d rows, want 1", ex.MatchedRows)
	}
	if got := ex.Aggregates[0].ValueI; got != big {
		t.Fatalf("max(order_ts) = %d, want %d (float64 round-trip would lose the low bit)", got, big)
	}
}

// TestAppendOnReplicaRejected pins write routing: a follower core must
// refuse appends and compactions with a client error naming the rule.
func TestAppendOnReplicaRejected(t *testing.T) {
	ds := buildOrdersDet(500)
	rc, err := NewReplicaCore([]ReplicaTable{{Name: "orders", Dataset: ds}}, CoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)

	_, err = rc.Append(context.Background(), "orders", []map[string]any{ordersWireRow(500)})
	if e, ok := err.(*Error); !ok || e.Code != CodeInvalid || !strings.Contains(e.Message, "replica") {
		t.Fatalf("append on replica: err = %v, want invalid/replica", err)
	}
	_, err = rc.Compact(context.Background(), "orders")
	if e, ok := err.(*Error); !ok || e.Code != CodeInvalid || !strings.Contains(e.Message, "replica") {
		t.Fatalf("compact on replica: err = %v, want invalid/replica", err)
	}
}
