package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Archiver is the third kind of replication subscriber (after serving
// followers and debugging taps): it subscribes to a leader's decision
// stream and persists every record to disk, verbatim, as NDJSON
// segment files. The archive is a durable copy of the stream itself —
// snapshot, decision, append, and compact records in arrival order —
// which buys two things:
//
//   - New followers bootstrap from it: FollowerConfig.ArchiveDir
//     replays the archive through the normal apply path, so a fresh
//     follower reaches the archive's tail epoch entirely offline and
//     its first subscription resumes from there instead of forcing the
//     leader to cut and ship a full snapshot per new replica.
//   - Point-in-time replay: ReplayArchiveUpTo rebuilds the fleet's
//     exact state at any archived epoch, for debugging — the stream is
//     deterministic, so the replayed state is bit-identical to what
//     the fleet served at that epoch.
//
// # Segment format
//
// A segment is a plain NDJSON file named segment-NNNNNNNN.ndjson; each
// line is one stream Record exactly as the leader sent it (the
// archiver never re-encodes). The archiver starts one new segment per
// subscription session, numbered above every existing segment, so an
// archive directory is an append-only sequence of sessions and replay
// order is lexical file order. A crash can truncate only the final
// line of the newest segment; replay detects and skips exactly that
// (an unparseable line with nothing after it), while garbage earlier
// in a segment still fails loudly.
//
// On (re)start the archiver scans the existing segments to recover its
// positions and fencing term, and resubscribes with them — when
// nothing was missed the leader answers with a cheap resume record and
// the archive continues seamlessly across archiver restarts.
type Archiver struct {
	cfg  ArchiverConfig
	hc   *http.Client
	logf func(format string, args ...any)

	mu        sync.Mutex
	gen       uint64
	boot      string
	positions map[string]uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	stats struct {
		records, segments, reconnects, resumes atomicUint64
	}
}

// ArchiverConfig parameterizes an Archiver.
type ArchiverConfig struct {
	// Upstream is the leader's base URL.
	Upstream string
	// Dir is the archive directory; created if missing.
	Dir string
	// Tables restricts the subscription; empty archives every table the
	// leader serves.
	Tables []string
	// HTTPClient substitutes the transport; the default is a dedicated
	// client with no global timeout (the stream is long-lived).
	HTTPClient *http.Client
	// ReconnectMin/Max bound the backoff between subscription attempts;
	// zeros select the follower defaults.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Logf receives operational messages; nil selects log.Printf.
	Logf func(format string, args ...any)
}

// ArchiverStats is a point-in-time view of the archiver's counters.
type ArchiverStats struct {
	// Records is stream records written this run; Segments is segment
	// files started this run; Reconnects counts subscription attempts
	// after the first; Resumes counts cheap resume acknowledgements.
	Records    uint64
	Segments   uint64
	Reconnects uint64
	Resumes    uint64
}

// archiveSyncEvery is how many archived records may accumulate between
// segment fsyncs: small enough that a power loss costs at most a
// moment of stream tail, large enough that syncing never paces a bulk
// replay.
const archiveSyncEvery = 256

// recordMeta is the cheap projection of a stream record that position
// recovery and archival bookkeeping decode — skipping State and Rows,
// which dominate snapshot and append record sizes.
type recordMeta struct {
	Type       string `json:"type"`
	Table      string `json:"table"`
	Epoch      uint64 `json:"epoch"`
	Generation uint64 `json:"generation"`
	Boot       string `json:"boot"`
}

// NewArchiver builds an archiver and starts its subscription loop. The
// directory is created if missing; existing segments are scanned to
// recover the resume position.
func NewArchiver(cfg ArchiverConfig) (*Archiver, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("replica: archiver needs an upstream URL")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica: archiver needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: creating archive directory: %w", err)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = DefaultReconnectMin
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = DefaultReconnectMax
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	cfg.Upstream = strings.TrimRight(cfg.Upstream, "/")

	a := &Archiver{
		cfg:       cfg,
		hc:        cfg.HTTPClient,
		logf:      cfg.Logf,
		positions: make(map[string]uint64),
	}
	if err := a.recover(); err != nil {
		return nil, err
	}
	a.ctx, a.cancel = context.WithCancel(context.Background())
	a.wg.Add(1)
	go a.run()
	return a, nil
}

// Close stops the subscription loop and waits for the current segment
// to be written out and fsynced, so a clean Close never loses an
// acknowledged record. Between the periodic syncs of a live session an
// OS crash or power loss can still drop the unsynced tail; recovery
// then sees only what reached the disk, so the recovered positions are
// always consistent with the archive's durable contents and the next
// subscription simply re-fetches what was lost.
func (a *Archiver) Close() {
	a.cancel()
	a.wg.Wait()
}

// Stats returns the archiver's counters for this run.
func (a *Archiver) Stats() ArchiverStats {
	return ArchiverStats{
		Records:    a.stats.records.Load(),
		Segments:   a.stats.segments.Load(),
		Reconnects: a.stats.reconnects.Load(),
		Resumes:    a.stats.resumes.Load(),
	}
}

// Position returns the newest archived epoch for the table.
func (a *Archiver) Position(table string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.positions[table]
}

// Generation returns the highest fencing term seen in the archive.
func (a *Archiver) Generation() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen
}

// ArchiveGeneration scans an archive directory's record headers and
// returns the highest fencing term recorded in it. A missing or empty
// archive is term 0, not an error — the caller is asking "what term
// has this fleet provably reached?", and an absent archive proves
// nothing. A leader that archives its own stream restores its term
// from here at boot (oreoserve -archive does), so a restart after a
// promotion never republishes at a term its followers have already
// moved past.
func ArchiveGeneration(dir string) (uint64, error) {
	segs, err := segments(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("replica: %w", err)
	}
	var gen uint64
	for _, seg := range segs {
		err := scanSegment(seg, func(line []byte) error {
			var m recordMeta
			if err := json.Unmarshal(line, &m); err != nil {
				return err
			}
			if m.Generation > gen {
				gen = m.Generation
			}
			return nil
		})
		if err != nil {
			return 0, fmt.Errorf("replica: recovering generation from %s: %w", seg, err)
		}
	}
	return gen, nil
}

// segments lists the archive's segment files in replay (lexical)
// order.
func segments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading archive directory: %w", err)
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "segment-") && strings.HasSuffix(name, ".ndjson") {
			segs = append(segs, filepath.Join(dir, name))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// recover scans the existing archive and rebuilds the per-table
// positions and fencing term, so a restarted archiver resumes instead
// of re-snapshotting. Only the cheap record header is decoded.
func (a *Archiver) recover() error {
	segs, err := segments(a.cfg.Dir)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	for _, seg := range segs {
		err := scanSegment(seg, func(line []byte) error {
			var m recordMeta
			if err := json.Unmarshal(line, &m); err != nil {
				return err
			}
			a.note(&m)
			return nil
		})
		if err != nil {
			return fmt.Errorf("replica: recovering archive positions from %s: %w", seg, err)
		}
	}
	if len(segs) > 0 {
		a.logf("replica: archive %s: recovered positions %v at generation %d from %d segments",
			a.cfg.Dir, a.positions, a.gen, len(segs))
	}
	return nil
}

// note folds one record header into the recovered positions. A
// snapshot resets the table's position (it may regress after a leader
// restart); everything else advances it monotonically.
func (a *Archiver) note(m *recordMeta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m.Table != "" {
		if m.Type == RecordSnapshot {
			a.positions[m.Table] = m.Epoch
		} else if m.Epoch > a.positions[m.Table] {
			a.positions[m.Table] = m.Epoch
		}
	}
	if m.Generation > a.gen {
		a.gen = m.Generation
	}
	if m.Boot != "" {
		a.boot = m.Boot
	}
}

// run is the subscription loop: subscribe, archive until the stream
// breaks, back off, repeat. Unlike a serving follower nothing here is
// terminal — an archiver pointed at a deposed leader archives nothing
// new once the real leader fences it, and repointing it is an
// operator action; meanwhile retrying is harmless because the archive
// only ever appends records the leader actually sent.
func (a *Archiver) run() {
	defer a.wg.Done()
	backoff := a.cfg.ReconnectMin
	first := true
	for {
		if a.ctx.Err() != nil {
			return
		}
		if !first {
			a.stats.reconnects.Add(1)
		}
		n, err := a.subscribeOnce()
		if a.ctx.Err() != nil {
			return
		}
		if err != nil {
			a.logf("replica: archiver stream from %s ended: %v (retrying in %v)", a.cfg.Upstream, err, backoff)
		}
		if n > 0 {
			backoff = a.cfg.ReconnectMin
		} else if backoff *= 2; backoff > a.cfg.ReconnectMax {
			backoff = a.cfg.ReconnectMax
		}
		first = false
		select {
		case <-a.ctx.Done():
			return
		case <-time.After(backoff):
		}
	}
}

// subscribeOnce opens one subscription session and archives its
// records into one fresh segment (created lazily on the first record,
// so failed connects do not litter the directory with empty files).
func (a *Archiver) subscribeOnce() (archived int, err error) {
	a.mu.Lock()
	req := SubscribeRequest{
		Version:    ProtocolVersion,
		Tables:     append([]string(nil), a.cfg.Tables...),
		Generation: a.gen,
		Boot:       a.boot,
		Positions:  make(map[string]uint64, len(a.positions)),
	}
	for t, e := range a.positions {
		req.Positions[t] = e
	}
	a.mu.Unlock()

	body, err := json.Marshal(&req)
	if err != nil {
		return 0, fmt.Errorf("encoding subscribe request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(a.ctx, http.MethodPost,
		a.cfg.Upstream+"/v2/replication/subscribe", strings.NewReader(string(body)))
	if err != nil {
		return 0, fmt.Errorf("building subscribe request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(hreq)
	if err != nil {
		return 0, fmt.Errorf("subscribing: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
		return 0, fmt.Errorf("subscribe answered %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}

	var seg *os.File
	defer func() {
		if seg != nil {
			// Fsync before close: the session's tail must be durable by
			// the time Close (which joins this loop) returns.
			seg.Sync()
			seg.Close()
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxStreamLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m recordMeta
		if err := json.Unmarshal(line, &m); err != nil {
			return archived, fmt.Errorf("decoding stream record: %w", err)
		}
		if seg == nil {
			if seg, err = a.newSegment(); err != nil {
				return archived, err
			}
		}
		if _, err := seg.Write(append(line, '\n')); err != nil {
			return archived, fmt.Errorf("writing archive segment: %w", err)
		}
		a.note(&m)
		a.stats.records.Add(1)
		if m.Type == RecordResume {
			a.stats.resumes.Add(1)
		}
		archived++
		// Periodic fsync bounds how much a power loss can take with it;
		// a torn or missing tail is exactly what recovery tolerates.
		if archived%archiveSyncEvery == 0 {
			if err := seg.Sync(); err != nil {
				return archived, fmt.Errorf("syncing archive segment: %w", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return archived, fmt.Errorf("reading stream: %w", err)
	}
	return archived, nil
}

// newSegment creates the next segment file, numbered above everything
// already in the directory.
func (a *Archiver) newSegment() (*os.File, error) {
	segs, err := segments(a.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	next := 1
	if len(segs) > 0 {
		last := filepath.Base(segs[len(segs)-1])
		var n int
		if _, err := fmt.Sscanf(last, "segment-%d.ndjson", &n); err == nil {
			next = n + 1
		}
	}
	path := filepath.Join(a.cfg.Dir, fmt.Sprintf("segment-%08d.ndjson", next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replica: creating archive segment: %w", err)
	}
	a.stats.segments.Add(1)
	a.logf("replica: archiving to %s", path)
	return f, nil
}

// scanSegment streams one segment's lines through fn. A final line
// that fn rejects AND that nothing follows is treated as a
// crash-truncated tail and skipped silently; a rejected line with more
// data after it is real corruption and fails.
func scanSegment(path string, fn func(line []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxStreamLine)
	var pending []byte
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			return fmt.Errorf("line before segment end: %w", pendingErr)
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		pending = append(pending[:0], line...)
		pendingErr = fn(pending)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if pendingErr != nil {
		var abort *replayAbort
		if errors.As(pendingErr, &abort) {
			// The callback itself failed on the last line — a real apply
			// error, not a torn write. Surface it.
			return pendingErr
		}
		// The very last line failed to decode: a torn write from a crash
		// mid-append. Everything before it is intact, so the archive
		// remains usable.
		return nil
	}
	return nil
}

// ReplayArchive streams every record of the archive, in order, through
// fn — the full replay a bootstrapping follower performs. It returns
// the number of records delivered. fn errors abort the replay.
func ReplayArchive(dir string, fn func(*Record) error) (int, error) {
	return ReplayArchiveUpTo(dir, 0, fn)
}

// ReplayArchiveUpTo is ReplayArchive bounded to a point in time:
// records with an epoch above maxEpoch are skipped (0 means
// unbounded). Because every table's records carry that table's own
// monotonic epoch, replaying up to E rebuilds exactly the state the
// fleet served when each table was at min(E, its tail) — the
// debugging time machine the archive exists for.
func ReplayArchiveUpTo(dir string, maxEpoch uint64, fn func(*Record) error) (int, error) {
	segs, err := segments(dir)
	if err != nil {
		return 0, fmt.Errorf("replica: %w", err)
	}
	n := 0
	for _, seg := range segs {
		err := scanSegment(seg, func(line []byte) error {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				return err
			}
			if maxEpoch != 0 && rec.Epoch > maxEpoch {
				return nil
			}
			if err := fn(&rec); err != nil {
				// fn errors must abort, not be mistaken for a torn tail:
				// wrap distinctively and unwrap below.
				return &replayAbort{err}
			}
			n++
			return nil
		})
		if err != nil {
			var abort *replayAbort
			if errors.As(err, &abort) {
				return n, abort.err
			}
			return n, fmt.Errorf("replica: replaying archive segment %s: %w", seg, err)
		}
	}
	return n, nil
}

// replayAbort distinguishes a replay callback's own error from a
// decode failure, so scanSegment's torn-tail tolerance never swallows
// an apply failure on the archive's last line.
type replayAbort struct{ err error }

func (a *replayAbort) Error() string { return a.err.Error() }
func (a *replayAbort) Unwrap() error { return a.err }
