// Package clean contains code every analyzer in the suite accepts:
// the driver test's proof that a well-behaved package yields zero
// diagnostics.
package clean

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

type stats struct {
	served atomic.Uint64
}

func (s *stats) bump() { s.served.Add(1) }

// render iterates a map the sanctioned way: sorted keys.
func render(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d\n", k, math.Float64bits(m[k]))
	}
	return out
}

// sameBits compares floats the sanctioned way.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// offer drops instead of blocking.
func offer(ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

var _ = []any{(*stats).bump, render, sameBits, offer}
