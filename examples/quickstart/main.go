// Quickstart: build a small table, stream queries through OREO, and
// watch it admit candidate layouts and reorganize as the workload
// drifts — all through the public oreo package.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"oreo"
)

func main() {
	// A small "orders" table: arrival-ordered, with a status dimension.
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	const rows = 20000
	rng := rand.New(rand.NewSource(1))
	b := oreo.NewDatasetBuilder(schema, rows)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	for i := 0; i < rows; i++ {
		b.AppendRow(
			oreo.Int(int64(i)), // arrival-ordered timestamp
			oreo.Str(statuses[rng.Intn(len(statuses))]),
			oreo.Float(rng.Float64()*500),
		)
	}
	ds := b.Build()

	// OREO with the paper's defaults: alpha=80, gamma=1, epsilon=0.08.
	// The initial layout partitions by arrival time — the layout every
	// ingest pipeline starts with.
	opt, err := oreo.New(ds, oreo.Config{
		Partitions:  16,
		WindowSize:  100,
		Alpha:       40, // reorganization ≈ 40 full scans on this setup
		InitialSort: []string{"order_ts"},
		Seed:        7,
	})
	if err != nil {
		panic(err)
	}

	// Phase 1: a dashboard scans recent time windows. The default
	// layout already skips almost everything; OREO should hold still.
	fmt.Println("phase 1: time-range queries (default layout is ideal)")
	for i := 0; i < 600; i++ {
		lo := rng.Int63n(rows - 1000)
		dec := opt.ProcessQuery(oreo.Query{ID: i, Preds: []oreo.Predicate{
			oreo.IntRange("order_ts", lo, lo+1000),
		}})
		if dec.Reorganized {
			fmt.Printf("  query %4d: switched to %s\n", i, dec.Layout.Name)
		}
	}
	report(opt)

	// Phase 2: the workload drifts to status investigations, which the
	// time layout cannot skip for. OREO generates a status-aware layout
	// from its sliding window and switches once the counters say the
	// move pays for itself.
	fmt.Println("phase 2: status-filter queries (workload drift)")
	for i := 600; i < 2000; i++ {
		dec := opt.ProcessQuery(oreo.Query{ID: i, Preds: []oreo.Predicate{
			oreo.StrEq("status", statuses[i%2]), // cancelled / delivered
		}})
		if dec.Reorganized {
			fmt.Printf("  query %4d: switched to %s\n", i, dec.Layout.Name)
		}
	}
	report(opt)
}

func report(opt *oreo.Optimizer) {
	st := opt.Stats()
	fmt.Printf("  stats: %d queries, query cost %.1f, %d reorgs (cost %.0f), |S|=%d, bound 2H(|Smax|)=%.2f\n\n",
		st.Queries, st.QueryCost, st.Reorganizations, st.ReorgCost, st.States, st.CompetitiveBound)
}
