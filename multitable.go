package oreo

import (
	"fmt"
	"sort"
)

// MultiOptimizer manages one OREO instance per table, implementing the
// multi-table configuration the paper describes (§VIII): "each table
// can maintain its own instance of OREO and make decisions based on a
// subset of query predicates relevant to the table." A multi-table
// query (e.g. a join with filters on several tables) is routed by
// predicate: each table's optimizer sees only the predicates on its own
// columns and independently decides whether to reorganize that table.
type MultiOptimizer struct {
	names      []string // insertion order, for deterministic iteration
	optimizers map[string]*Optimizer
	datasets   map[string]*Dataset
}

// NewMulti returns an empty multi-table optimizer.
func NewMulti() *MultiOptimizer {
	return &MultiOptimizer{
		optimizers: make(map[string]*Optimizer),
		datasets:   make(map[string]*Dataset),
	}
}

// AddTable registers a table with its own OREO configuration. Table
// names must be unique.
func (m *MultiOptimizer) AddTable(name string, ds *Dataset, cfg Config) error {
	if name == "" {
		return fmt.Errorf("oreo: empty table name")
	}
	if _, dup := m.optimizers[name]; dup {
		return fmt.Errorf("oreo: table %q already registered", name)
	}
	opt, err := New(ds, cfg)
	if err != nil {
		return fmt.Errorf("oreo: table %q: %w", name, err)
	}
	m.names = append(m.names, name)
	m.optimizers[name] = opt
	m.datasets[name] = ds
	return nil
}

// Tables returns the registered table names in registration order.
func (m *MultiOptimizer) Tables() []string {
	return append([]string(nil), m.names...)
}

// Optimizer returns the per-table optimizer, or nil if the table is
// not registered.
func (m *MultiOptimizer) Optimizer(table string) *Optimizer {
	return m.optimizers[table]
}

// Engine returns the named table's optimizer as an Engine — the
// uniform in-process serving surface — or nil if the table is not
// registered. Each table's shard is an independent engine: feeding it
// a routed sub-query (see Route) advances only that table's decisions,
// which is the paper's multi-table configuration (§VIII) expressed in
// the interface.
func (m *MultiOptimizer) Engine(table string) Engine {
	opt, ok := m.optimizers[table]
	if !ok {
		return nil // typed-nil *Optimizer must not leak as a non-nil Engine
	}
	return opt
}

// Dataset returns the registered table's dataset, or nil if the table
// is not registered.
func (m *MultiOptimizer) Dataset(table string) *Dataset {
	return m.datasets[table]
}

// Route splits the query's predicates by table: each table whose schema
// contains a predicate's column receives that predicate in its
// sub-query. Tables receiving no predicates are absent from the result
// (they would be full scans regardless of layout, so their
// reorganization decisions should not be polluted by them). Predicates
// on columns no table knows are dropped from the routing and reported
// in unrouted (distinct columns, first-appearance order) so callers —
// serving layers in particular — can reject rather than silently answer
// a different question. This is the routing rule of the paper's
// multi-table configuration (§VIII), exposed so serving layers can fan
// a request out across per-table shards.
func (m *MultiOptimizer) Route(q Query) (routed map[string]Query, unrouted []string) {
	return RouteQuery(q, m.names, func(name string) *Schema { return m.datasets[name].Schema() })
}

// RouteQuery is the predicate-routing rule itself, parameterized over
// an ordered table registry: the single implementation behind
// MultiOptimizer.Route and every serving surface that must route
// identically without holding a MultiOptimizer (a replication
// follower's replica core, most importantly — leader/follower answer
// bit-identity depends on one routing rule existing, not two copies).
// schemaOf is called only with names from the list.
func RouteQuery(q Query, names []string, schemaOf func(table string) *Schema) (routed map[string]Query, unrouted []string) {
	perTable := make(map[string][]Predicate)
	seenUnrouted := make(map[string]bool)
	for _, p := range q.Preds {
		found := false
		for _, name := range names {
			if _, ok := schemaOf(name).Index(p.Col); ok {
				perTable[name] = append(perTable[name], p)
				found = true
			}
		}
		if !found && !seenUnrouted[p.Col] {
			seenUnrouted[p.Col] = true
			unrouted = append(unrouted, p.Col)
		}
	}
	routed = make(map[string]Query, len(perTable))
	for name, preds := range perTable {
		routed[name] = Query{ID: q.ID, Template: q.Template, Preds: preds}
	}
	return routed, unrouted
}

// ProcessQuery routes the query's predicates to every table whose
// schema contains the predicate column (see Route), and feeds each
// affected table's optimizer the relevant sub-query. The result maps
// table name to that table's decision.
func (m *MultiOptimizer) ProcessQuery(q Query) map[string]Decision {
	routed, _ := m.Route(q)
	out := make(map[string]Decision, len(routed))
	for _, name := range m.names {
		sub, touched := routed[name]
		if !touched {
			continue
		}
		out[name] = m.optimizers[name].ProcessQuery(sub)
	}
	return out
}

// Stats returns the per-table statistics, keyed by table name.
func (m *MultiOptimizer) Stats() map[string]Stats {
	out := make(map[string]Stats, len(m.optimizers))
	for name, opt := range m.optimizers {
		out[name] = opt.Stats()
	}
	return out
}

// TotalCost sums query and reorganization costs across all tables —
// the combined bill the paper's multi-table experiments report.
func (m *MultiOptimizer) TotalCost() (queryCost, reorgCost float64) {
	names := append([]string(nil), m.names...)
	sort.Strings(names)
	for _, name := range names {
		st := m.optimizers[name].Stats()
		queryCost += st.QueryCost
		reorgCost += st.ReorgCost
	}
	return queryCost, reorgCost
}
