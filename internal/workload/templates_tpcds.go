package workload

import (
	"math/rand"

	"oreo/internal/datagen"
	"oreo/internal/query"
)

// TPCDSTemplates returns 17 template analogues for the denormalized
// store_sales table, mirroring the paper's selection (q3, q7, q13, q19,
// q27, q28, q34, q36, q46, q48, q53, q68, q79, q88, q89, q96, q98):
// filters over item dimensions (category/class/brand), customer
// demographics, store geography, calendar columns, and fact-column
// bands (quantity, prices, profit).
func TPCDSTemplates() []Template {
	yearMin, yearMax := datagen.TPCDSYearMin, datagen.TPCDSYearMax
	dateMin, dateMax := datagen.TPCDSDateMin, datagen.TPCDSDateMax
	span := dateMax - dateMin

	randYear := func(rng *rand.Rand) int64 { return yearMin + rng.Int63n(yearMax-yearMin+1) }

	return []Template{
		{
			// q3: brand + month across years.
			Name: "q3-brand-month",
			Make: func(rng *rand.Rand) []query.Predicate {
				b := datagen.TPCDSBrandsDS[rng.Intn(len(datagen.TPCDSBrandsDS))]
				m := int64(1 + rng.Intn(12))
				return []query.Predicate{
					query.StrEq("i_brand", b),
					query.IntRange("d_moy", m, m),
				}
			},
		},
		{
			// q7: demographics + year.
			Name: "q7-demographics-year",
			Make: func(rng *rand.Rand) []query.Predicate {
				return []query.Predicate{
					query.StrEq("cd_gender", datagen.TPCDSGenders[rng.Intn(2)]),
					query.StrEq("cd_marital_status", datagen.TPCDSMarital[rng.Intn(len(datagen.TPCDSMarital))]),
					query.StrEq("cd_education_status", datagen.TPCDSEducation[rng.Intn(len(datagen.TPCDSEducation))]),
					query.IntRange("d_year", randYear(rng), randYear(rng)+1),
				}
			},
		},
		{
			// q13: marital/education + sales-price band.
			Name: "q13-price-demographics",
			Make: func(rng *rand.Rand) []query.Predicate {
				lo := 20 + rng.Float64()*80
				return []query.Predicate{
					query.StrEq("cd_marital_status", datagen.TPCDSMarital[rng.Intn(len(datagen.TPCDSMarital))]),
					query.FloatRange("ss_sales_price", lo, lo+50),
				}
			},
		},
		{
			// q19: brand + category + month + year.
			Name: "q19-brand-category-month",
			Make: func(rng *rand.Rand) []query.Predicate {
				cat := datagen.TPCDSCategories[rng.Intn(len(datagen.TPCDSCategories))]
				m := int64(1 + rng.Intn(12))
				y := randYear(rng)
				return []query.Predicate{
					query.StrEq("i_category", cat),
					query.IntRange("d_moy", m, m),
					query.IntRange("d_year", y, y),
				}
			},
		},
		{
			// q27: state + year (store-level rollup).
			Name: "q27-state-year",
			Make: func(rng *rand.Rand) []query.Predicate {
				st := datagen.TPCDSStates[rng.Intn(len(datagen.TPCDSStates))]
				y := randYear(rng)
				return []query.Predicate{
					query.StrEq("s_state", st),
					query.IntRange("d_year", y, y),
				}
			},
		},
		{
			// q28: quantity bucket + list-price band.
			Name: "q28-quantity-buckets",
			Make: func(rng *rand.Rand) []query.Predicate {
				q0 := int64(rng.Intn(80))
				p0 := 10 + rng.Float64()*150
				return []query.Predicate{
					query.IntRange("ss_quantity", q0, q0+20),
					query.FloatRange("ss_list_price", p0, p0+60),
				}
			},
		},
		{
			// q34: county + dependent count + a month band.
			Name: "q34-county-deps",
			Make: func(rng *rand.Rand) []query.Predicate {
				county := datagen.TPCDSCounties[rng.Intn(len(datagen.TPCDSCounties))]
				m := int64(1 + rng.Intn(10))
				return []query.Predicate{
					query.StrEq("s_county", county),
					query.IntRange("d_moy", m, m+2),
					query.IntGE("cd_dep_count", 3),
				}
			},
		},
		{
			// q36: category + class + year.
			Name: "q36-category-class-year",
			Make: func(rng *rand.Rand) []query.Predicate {
				cat := datagen.TPCDSCategories[rng.Intn(len(datagen.TPCDSCategories))]
				cl := datagen.TPCDSClasses[rng.Intn(len(datagen.TPCDSClasses))]
				y := randYear(rng)
				return []query.Predicate{
					query.StrEq("i_category", cat),
					query.StrEq("i_class", cl),
					query.IntRange("d_year", y, y),
				}
			},
		},
		{
			// q46: county + dom band (customers by day-of-month).
			Name: "q46-county-dom",
			Make: func(rng *rand.Rand) []query.Predicate {
				county := datagen.TPCDSCounties[rng.Intn(len(datagen.TPCDSCounties))]
				d0 := int64(1 + rng.Intn(20))
				return []query.Predicate{
					query.StrEq("s_county", county),
					query.IntRange("d_dom", d0, d0+9),
				}
			},
		},
		{
			// q48: quantity band + state IN-list.
			Name: "q48-quantity-states",
			Make: func(rng *rand.Rand) []query.Predicate {
				q0 := int64(rng.Intn(60))
				s1 := datagen.TPCDSStates[rng.Intn(len(datagen.TPCDSStates))]
				s2 := datagen.TPCDSStates[rng.Intn(len(datagen.TPCDSStates))]
				s3 := datagen.TPCDSStates[rng.Intn(len(datagen.TPCDSStates))]
				return []query.Predicate{
					query.IntRange("ss_quantity", q0, q0+20),
					query.StrIn("s_state", s1, s2, s3),
				}
			},
		},
		{
			// q53: brand band + specific months.
			Name: "q53-manufacturer-months",
			Make: func(rng *rand.Rand) []query.Predicate {
				b := datagen.TPCDSBrandsDS[rng.Intn(len(datagen.TPCDSBrandsDS))]
				y := randYear(rng)
				return []query.Predicate{
					query.StrEq("i_brand", b),
					query.IntRange("d_year", y, y),
				}
			},
		},
		{
			// q68: county + coupon amount threshold.
			Name: "q68-coupon-county",
			Make: func(rng *rand.Rand) []query.Predicate {
				county := datagen.TPCDSCounties[rng.Intn(len(datagen.TPCDSCounties))]
				return []query.Predicate{
					query.StrEq("s_county", county),
					query.FloatGE("ss_coupon_amt", 1+rng.Float64()*20),
				}
			},
		},
		{
			// q79: profit threshold + state.
			Name: "q79-profit-state",
			Make: func(rng *rand.Rand) []query.Predicate {
				st := datagen.TPCDSStates[rng.Intn(len(datagen.TPCDSStates))]
				return []query.Predicate{
					query.StrEq("s_state", st),
					query.FloatGE("ss_net_profit", 100+rng.Float64()*2000),
				}
			},
		},
		{
			// q88: time-of-day bands.
			Name: "q88-time-of-day",
			Make: func(rng *rand.Rand) []query.Predicate {
				h := int64(8 + rng.Intn(10))
				return []query.Predicate{
					query.IntRange("ss_sold_time", h*3600, (h+1)*3600),
					query.IntLE("cd_dep_count", 5),
				}
			},
		},
		{
			// q89: category trio + year (rolling class comparison).
			Name: "q89-categories-year",
			Make: func(rng *rand.Rand) []query.Predicate {
				c1 := datagen.TPCDSCategories[rng.Intn(len(datagen.TPCDSCategories))]
				c2 := datagen.TPCDSCategories[rng.Intn(len(datagen.TPCDSCategories))]
				y := randYear(rng)
				return []query.Predicate{
					query.StrIn("i_category", c1, c2),
					query.IntRange("d_year", y, y),
				}
			},
		},
		{
			// q96: time band + dependents (store traffic probe).
			Name: "q96-store-traffic",
			Make: func(rng *rand.Rand) []query.Predicate {
				h := int64(9 + rng.Intn(9))
				return []query.Predicate{
					query.IntRange("ss_sold_time", h*3600, h*3600+1800),
				}
			},
		},
		{
			// q98: category + a 30-day sold-date window.
			Name: "q98-category-window",
			Make: func(rng *rand.Rand) []query.Predicate {
				cat := datagen.TPCDSCategories[rng.Intn(len(datagen.TPCDSCategories))]
				d := dateMin + rng.Int63n(span-30)
				return []query.Predicate{
					query.StrEq("i_category", cat),
					query.IntRange("ss_sold_date", d, d+30),
				}
			},
		},
	}
}
