// Package blockingsend seeds violations for the blockingsend
// analyzer: sends that can stall a request goroutine, next to the
// sanctioned select-with-default shape and a justified suppression.
package blockingsend

// bare is the canonical violation: an unconditional send.
func bare(ch chan int) {
	ch <- 1 // want "blocking channel send"
}

// selectNoDefault still blocks: some case must fire.
func selectNoDefault(a, b chan int) {
	select {
	case a <- 1: // want "blocking channel send"
	case b <- 2: // want "blocking channel send"
	}
}

// nestedInCaseBody: the select was non-blocking but the send in the
// chosen case's body is not.
func nestedInCaseBody(ch chan int, done chan struct{}) {
	select {
	case <-done:
		ch <- 1 // want "blocking channel send"
	default:
	}
}

// nonBlocking is the sanctioned shape: queue-full is an observable
// drop, not a stall.
func nonBlocking(ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// justified demonstrates the suppression contract: the send is
// exempted with a written reason, so it must NOT be reported.
func justified(ch chan int) {
	//oreovet:ignore blockingsend seeded justification: the channel is buffered cap-1 and owned by this call
	ch <- 1
}

var _ = []any{bare, selectNoDefault, nestedInCaseBody, nonBlocking, justified}
