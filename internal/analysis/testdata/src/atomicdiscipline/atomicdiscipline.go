// Package atomicdiscipline seeds violations for the atomicdiscipline
// analyzer: direct access to function-API atomics, and value copies
// of typed atomics.
package atomicdiscipline

import "sync/atomic"

type counters struct {
	// hits is published through the sync/atomic function API (see
	// bump), so every access must go through sync/atomic.
	hits uint64
	// ctr and snap use the typed API, which makes direct access a
	// compile error — but copying the value still forks the state.
	ctr  atomic.Uint64
	snap atomic.Pointer[int]
}

// bump is the atomic publisher that puts hits under the discipline.
func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

// atomicRead is the sanctioned read.
func (c *counters) atomicRead() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// racyRead bypasses the atomic API.
func (c *counters) racyRead() uint64 {
	return c.hits // want "published via sync/atomic"
}

// racyWrite is the racing increment next to an atomic adder.
func (c *counters) racyWrite() {
	c.hits++ // want "published via sync/atomic"
}

// typedUse is fine: the methods are the only access path.
func (c *counters) typedUse() uint64 {
	c.snap.Store(new(int))
	return c.ctr.Load()
}

// typedCopyReturn copies the atomic's state out.
func (c *counters) typedCopyReturn() atomic.Uint64 {
	return c.ctr // want "copying"
}

// typedCopyAssign forks the state into a local.
func typedCopyAssign(c *counters) {
	x := c.ctr // want "copying"
	_ = x
}

// pointerShare is the sanctioned way to hand the atomic around.
func pointerShare(c *counters) *atomic.Uint64 {
	return &c.ctr
}

var _ = []any{
	(*counters).bump, (*counters).atomicRead, (*counters).racyRead,
	(*counters).racyWrite, (*counters).typedUse, (*counters).typedCopyReturn,
	typedCopyAssign, pointerShare,
}
