package workload

import (
	"math/rand"
	"testing"

	"oreo/internal/datagen"
	"oreo/internal/query"
)

func fakeTemplates(n int) []Template {
	out := make([]Template, n)
	for i := 0; i < n; i++ {
		i := i
		out[i] = Template{
			Name: "t",
			Make: func(rng *rand.Rand) []query.Predicate {
				return []query.Predicate{query.IntGE("c", int64(i))}
			},
		}
	}
	return out
}

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := Generate(fakeTemplates(5), Config{NumQueries: 1000, NumSegments: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Queries) != 1000 {
		t.Fatalf("got %d queries, want 1000", len(s.Queries))
	}
	if len(s.Segments) != 10 {
		t.Fatalf("got %d segments, want 10", len(s.Segments))
	}
	if s.NumSwitches() != 9 {
		t.Errorf("NumSwitches = %d, want 9", s.NumSwitches())
	}
}

func TestGenerateSegmentStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := Generate(fakeTemplates(6), Config{NumQueries: 2000, NumSegments: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for i, seg := range s.Segments {
		if seg.Start != pos {
			t.Fatalf("segment %d starts at %d, want %d", i, seg.Start, pos)
		}
		if seg.Length <= 0 {
			t.Fatalf("segment %d has length %d", i, seg.Length)
		}
		// Every query in the segment carries the segment's template.
		for j := seg.Start; j < seg.Start+seg.Length; j++ {
			if s.Queries[j].Template != seg.Template {
				t.Fatalf("query %d template %d, segment says %d", j, s.Queries[j].Template, seg.Template)
			}
			if s.Queries[j].ID != j {
				t.Fatalf("query %d has ID %d", j, s.Queries[j].ID)
			}
		}
		if i > 0 && s.Segments[i-1].Template == seg.Template {
			t.Fatalf("segments %d and %d share template %d; switches must change the workload", i-1, i, seg.Template)
		}
		pos += seg.Length
	}
	if pos != 2000 {
		t.Fatalf("segments cover %d queries, want 2000", pos)
	}
}

func TestGenerateMinSegmentLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := Generate(fakeTemplates(4), Config{NumQueries: 1000, NumSegments: 10, MinSegmentFrac: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, seg := range s.Segments {
		if seg.Length < 50 {
			t.Errorf("segment %d length %d below half the mean", i, seg.Length)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(nil, Config{NumQueries: 10, NumSegments: 2}, rng); err == nil {
		t.Error("empty template library accepted")
	}
	if _, err := Generate(fakeTemplates(2), Config{NumQueries: 0, NumSegments: 2}, rng); err == nil {
		t.Error("zero queries accepted")
	}
	if _, err := Generate(fakeTemplates(2), Config{NumQueries: 10, NumSegments: 20}, rng); err == nil {
		t.Error("more segments than queries accepted")
	}
}

func TestQueriesByTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := MustGenerate(fakeTemplates(3), Config{NumQueries: 300, NumSegments: 6}, rng)
	byT := s.QueriesByTemplate()
	total := 0
	for tmpl, qs := range byT {
		total += len(qs)
		for _, q := range qs {
			if q.Template != tmpl {
				t.Fatalf("query %d grouped under wrong template", q.ID)
			}
		}
	}
	if total != 300 {
		t.Fatalf("grouped %d queries, want 300", total)
	}
}

func TestSegmentLengthsSumExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ total, n int }{{100, 3}, {101, 3}, {7, 7}, {1000, 1}} {
		lengths := segmentLengths(tc.total, tc.n, 0.3, rng)
		sum := 0
		for _, l := range lengths {
			sum += l
		}
		if sum != tc.total {
			t.Errorf("lengths for (%d,%d) sum to %d", tc.total, tc.n, sum)
		}
	}
}

func TestEqualSplit(t *testing.T) {
	lengths := equalSplit(10, 3)
	if lengths[0]+lengths[1]+lengths[2] != 10 {
		t.Errorf("equalSplit sums wrong: %v", lengths)
	}
	if lengths[0] != 4 || lengths[1] != 3 || lengths[2] != 3 {
		t.Errorf("equalSplit = %v", lengths)
	}
}

// All template libraries must produce predicates that reference only
// columns present in the corresponding dataset schema, with matching
// types — otherwise they would silently match nothing.
func TestTemplateLibrariesReferenceSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, name := range datagen.Names() {
		ds, err := datagen.Generate(name, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		templates := TemplatesFor(name)
		if len(templates) == 0 {
			t.Fatalf("no templates for %s", name)
		}
		for _, tmpl := range templates {
			for trial := 0; trial < 20; trial++ {
				for _, p := range tmpl.Make(rng) {
					ci, ok := ds.Schema().Index(p.Col)
					if !ok {
						t.Fatalf("%s/%s references unknown column %q", name, tmpl.Name, p.Col)
					}
					colType := ds.Schema().Col(ci).Type
					if p.IsNumeric() && colType == 2 { // String
						t.Fatalf("%s/%s numeric predicate on string column %q", name, tmpl.Name, p.Col)
					}
					if !p.IsNumeric() && colType != 2 {
						t.Fatalf("%s/%s string predicate on numeric column %q", name, tmpl.Name, p.Col)
					}
				}
			}
		}
	}
}

// Template libraries must be predominantly selective on their dataset:
// at least half of each library's templates should match well under
// half the table on average, or the workload has no skipping structure
// to exploit. (Individual templates like the TPC-H q1 analogue are
// intentionally scan-heavy, as in the real benchmark.)
func TestTemplateSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, name := range datagen.Names() {
		ds, err := datagen.Generate(name, 3000, rng)
		if err != nil {
			t.Fatal(err)
		}
		templates := TemplatesFor(name)
		selective := 0
		for _, tmpl := range templates {
			sum := 0.0
			const trials = 10
			for trial := 0; trial < trials; trial++ {
				q := query.Query{Preds: tmpl.Make(rng)}
				sum += query.Selectivity(ds, q)
			}
			if sum/trials < 0.5 {
				selective++
			}
		}
		if selective*2 < len(templates) {
			t.Errorf("%s: only %d/%d templates are selective", name, selective, len(templates))
		}
	}
}

func TestTemplatesForUnknown(t *testing.T) {
	if TemplatesFor("nope") != nil {
		t.Error("unknown dataset returned templates")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic on bad config")
		}
	}()
	MustGenerate(nil, Config{NumQueries: 1, NumSegments: 1}, rand.New(rand.NewSource(1)))
}
