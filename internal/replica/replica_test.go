package replica

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"oreo"
	"oreo/internal/exec"
	"oreo/internal/serve"
	"oreo/internal/testleak"
)

// buildOrders builds the deterministic fixture table both sides of a
// cluster load independently: closed-form values, no RNG, so two calls
// yield byte-identical datasets — the precondition replication
// verifies through the statistics-block gate.
func buildOrders(rows int) *oreo.Dataset {
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	b := oreo.NewDatasetBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(
			oreo.Int(int64(i)),
			oreo.Str(statuses[i%4]),
			oreo.Float(float64(i%500)+0.25),
		)
	}
	return b.Build()
}

// newLeader boots a leader core over one orders table tuned to
// reorganize eagerly (low alpha, small window), with its publisher and
// an HTTP server exposing both the serving surface and the
// replication endpoints.
func newLeader(t *testing.T, rows int, alpha float64, reorgDelay int) (*serve.Core, *Publisher, *httptest.Server) {
	t.Helper()
	m := oreo.NewMulti()
	if err := m.AddTable("orders", buildOrders(rows), oreo.Config{
		Alpha:       alpha,
		WindowSize:  40,
		Partitions:  16,
		InitialSort: []string{"order_ts"},
		Seed:        7,
		ReorgDelay:  reorgDelay,
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(m, serve.Config{QueueSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(srv.Core(), PublisherConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	pub.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv.Core(), pub, ts
}

// newFollowerFixture boots a follower over its own copy of the fixture
// data, replicating from the leader URL.
func newFollowerFixture(t *testing.T, rows int, upstream string, forward bool) *Follower {
	t.Helper()
	cfg := FollowerConfig{
		Upstream:        upstream,
		Tables:          []TableData{{Name: "orders", Dataset: buildOrders(rows)}},
		Logf:            t.Logf,
		ReconnectMin:    5 * time.Millisecond,
		ReconnectMax:    50 * time.Millisecond,
		ForwardInterval: 5 * time.Millisecond,
	}
	if !forward {
		cfg.ForwardQueue = -1
	}
	fol, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	return fol
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// workloadQuery generates a drifting workload: a time-range phase,
// then a value-range phase, then a categorical phase — the drift that
// makes a low-alpha optimizer reorganize repeatedly.
func workloadQuery(i, rows int) serve.QueryRequest {
	switch (i / 45) % 3 {
	case 0:
		lo := int64((i * 131) % (rows - 200))
		return serve.QueryRequest{Table: "orders", Preds: []serve.PredicateJSON{
			{Col: "order_ts", HasLo: true, HasHi: true, LoI: lo, HiI: lo + 199},
		}}
	case 1:
		lo := float64((i * 37) % 400)
		return serve.QueryRequest{Table: "orders", Preds: []serve.PredicateJSON{
			{Col: "amount", HasLo: true, HasHi: true, LoF: lo, HiF: lo + 60},
		}}
	default:
		st := []string{"cancelled", "delivered", "pending", "returned"}[i%4]
		return serve.QueryRequest{Table: "orders", Preds: []serve.PredicateJSON{
			{Col: "status", In: []string{st}},
			{Col: "order_ts", HasLo: true, LoI: int64((i * 53) % rows)},
		}}
	}
}

// probeQueries is the fixed probe set bit-identity is asserted on:
// range, open-range, categorical, conjunctive, and unsatisfiable
// shapes.
func probeQueries(rows int) []oreo.Query {
	return []oreo.Query{
		{Preds: []oreo.Predicate{oreo.IntRange("order_ts", 100, 899)}},
		{Preds: []oreo.Predicate{oreo.IntGE("order_ts", int64(rows-300))}},
		{Preds: []oreo.Predicate{oreo.FloatRange("amount", 120.5, 250)}},
		{Preds: []oreo.Predicate{oreo.StrIn("status", "pending", "returned")}},
		{Preds: []oreo.Predicate{oreo.IntRange("order_ts", 0, int64(rows/2)), oreo.StrEq("status", "delivered")}},
		{Preds: []oreo.Predicate{oreo.IntRange("order_ts", int64(rows+10), int64(rows+20))}},
	}
}

var probeAggs = []exec.AggSpec{
	{Op: exec.AggCount},
	{Op: exec.AggSum, Col: "amount"},
	{Op: exec.AggMin, Col: "status"},
	{Op: exec.AggMax, Col: "order_ts"},
}

// assertBitIdentical asserts the follower's published state answers
// every probe bit-identically to the leader's: same epoch, same
// layout, same stats, bitwise-equal costs, identical survivor
// skip-lists — and, when checkExec is set, bitwise-equal executed
// aggregates over freshly materialized stores on each side.
func assertBitIdentical(t *testing.T, leader, follower *serve.Core, dsL, dsF *oreo.Dataset, rows int, checkExec bool) {
	t.Helper()
	lpos, ok := leader.ReplicaPosition("orders")
	if !ok {
		t.Fatal("leader has no position")
	}
	fpos, ok := follower.ReplicaPosition("orders")
	if !ok {
		t.Fatal("follower has no position")
	}
	le, ls := lpos.Epoch, lpos.Snapshot
	fe, fs := fpos.Epoch, fpos.Snapshot
	if le != fe {
		t.Fatalf("epoch mismatch: leader %d, follower %d", le, fe)
	}
	if ls.Serving.Name != fs.Serving.Name {
		t.Fatalf("epoch %d: serving layout %q on leader, %q on follower", le, ls.Serving.Name, fs.Serving.Name)
	}
	if ls.Stats != fs.Stats {
		t.Fatalf("epoch %d: stats diverge: leader %+v, follower %+v", le, ls.Stats, fs.Stats)
	}
	lp, fp := "", ""
	if ls.Pending != nil {
		lp = ls.Pending.Name
	}
	if fs.Pending != nil {
		fp = fs.Pending.Name
	}
	if lp != fp {
		t.Fatalf("epoch %d: pending layout %q on leader, %q on follower", le, lp, fp)
	}

	for pi, q := range probeQueries(rows) {
		ld := ls.CostQuery(q)
		fd := fs.CostQuery(q)
		if math.Float64bits(ld.Cost) != math.Float64bits(fd.Cost) {
			t.Fatalf("epoch %d probe %d: cost %v on leader, %v on follower", le, pi, ld.Cost, fd.Cost)
		}
		lsv, fsv := ld.SurvivorPartitions(), fd.SurvivorPartitions()
		if !reflect.DeepEqual(lsv, fsv) {
			t.Fatalf("epoch %d probe %d: survivors %v on leader, %v on follower", le, pi, lsv, fsv)
		}
		if !checkExec {
			continue
		}
		lst := exec.MustNewStore(dsL, ls.Serving.Part)
		fst := exec.MustNewStore(dsF, fs.Serving.Part)
		lr, err := lst.Scan(q, lsv, probeAggs, exec.Options{})
		if err != nil {
			t.Fatalf("epoch %d probe %d: leader scan: %v", le, pi, err)
		}
		fr, err := fst.Scan(q, fsv, probeAggs, exec.Options{})
		if err != nil {
			t.Fatalf("epoch %d probe %d: follower scan: %v", le, pi, err)
		}
		if lr.Matched != fr.Matched || lr.RowsExamined != fr.RowsExamined || lr.PartitionsRead != fr.PartitionsRead {
			t.Fatalf("epoch %d probe %d: scan shape diverges: leader %+v, follower %+v", le, pi, lr, fr)
		}
		for ai := range lr.Aggs {
			la, fa := lr.Aggs[ai], fr.Aggs[ai]
			if la.Op != fa.Op || la.Col != fa.Col || la.Type != fa.Type || la.Valid != fa.Valid ||
				la.I != fa.I || math.Float64bits(la.F) != math.Float64bits(fa.F) || la.S != fa.S {
				t.Fatalf("epoch %d probe %d agg %d: %+v on leader, %+v on follower", le, pi, ai, la, fa)
			}
		}
	}
}

// TestFollowerBitIdentityEveryEpoch is the load-bearing property of
// the replication design: replaying a reorganizing workload on the
// leader, the follower's costs, survivor skip-lists, and executed
// aggregates are bitwise equal to the leader's at EVERY epoch —
// including across a forced in-stream re-snapshot (publisher gap
// repair) and a severed-connection reconnect.
func TestFollowerBitIdentityEveryEpoch(t *testing.T) {
	testleak.Check(t)
	const rows = 3000
	const total = 220
	dsL := buildOrders(rows) // shadow copies for execution probes
	dsF := buildOrders(rows)

	leader, pub, ts := newLeader(t, rows, 3 /* reorganize eagerly */, 2)
	fol := newFollowerFixture(t, rows, ts.URL, false)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	resyncAt, dropAt := total/3, 2*total/3
	for i := 0; i < total; i++ {
		if _, err := leader.Answer(ctx, workloadQuery(i, rows)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := uint64(i + 1)
		waitFor(t, fmt.Sprintf("leader epoch %d", want), func() bool {
			pos, _ := leader.ReplicaPosition("orders")
			return pos.Epoch == want
		})
		waitFor(t, fmt.Sprintf("follower epoch %d", want), func() bool {
			pos, _ := fol.Core().ReplicaPosition("orders")
			return pos.Epoch == want
		})
		// Full bit-identity at every epoch; the (costlier) execution
		// probes every 10 epochs and around the fault injections.
		checkExec := i%10 == 0 || i == resyncAt+1 || i == dropAt+1 || i == total-1
		assertBitIdentical(t, leader, fol.Core(), dsL, dsF, rows, checkExec)

		switch i {
		case resyncAt:
			// Forced gap repair: the publisher discards the subscriber's
			// backlog and re-snapshots in-stream.
			before := fol.Stats().Snapshots
			pub.Resync()
			waitFor(t, "in-stream re-snapshot", func() bool { return fol.Stats().Snapshots > before })
		case dropAt:
			// Severed stream: the follower reconnects and negotiates
			// resume-or-snapshot from its current position.
			before := fol.Stats().Reconnects
			pub.DropSubscribers()
			waitFor(t, "reconnect", func() bool { return fol.Stats().Reconnects > before })
			waitFor(t, "re-sync after reconnect", func() bool {
				pos, _ := fol.Core().ReplicaPosition("orders")
				return pos.Epoch == want && fol.Err() == nil
			})
		}
	}

	st := fol.Stats()
	if st.Snapshots < 2 {
		t.Errorf("snapshots applied = %d, want >= 2 (initial + forced)", st.Snapshots)
	}
	if st.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", st.Reconnects)
	}
	// The workload must actually have reorganized, or the property is
	// vacuous.
	lp, _ := leader.ReplicaPosition("orders")
	snap := lp.Snapshot
	if snap.Stats.Reorganizations == 0 {
		t.Error("workload never reorganized; property not exercised")
	}
	if fol.Err() != nil {
		t.Errorf("follower failed: %v", fol.Err())
	}
}

// TestSubscribeResume pins the resubscribe-with-resume negotiation: a
// follower reconnecting at the leader's exact position gets a cheap
// resume record, not a snapshot.
func TestSubscribeResume(t *testing.T) {
	testleak.Check(t)
	const rows = 1200
	leader, pub, ts := newLeader(t, rows, 80, 0)
	fol := newFollowerFixture(t, rows, ts.URL, false)
	ctx := context.Background()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := leader.Answer(ctx, workloadQuery(i, rows)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "catch-up", func() bool { return fol.Position("orders") == 10 })

	snapsBefore := fol.Stats().Snapshots
	pub.DropSubscribers()
	waitFor(t, "resume", func() bool { return fol.Stats().Resumes >= 1 })
	if got := fol.Stats().Snapshots; got != snapsBefore {
		t.Errorf("reconnect at matching position re-sent a snapshot (%d -> %d)", snapsBefore, got)
	}

	// And the stream keeps working after the resume.
	if _, err := leader.Answer(ctx, workloadQuery(11, rows)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-resume decision", func() bool { return fol.Position("orders") == 11 })
}

// subscribeFirstRecord opens one raw subscription against a leader URL
// and returns the first record of the stream — the leader's
// resume-or-snapshot verdict on the request's claimed position.
func subscribeFirstRecord(t *testing.T, url string, req SubscribeRequest) *Record {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v2/replication/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxStreamLine)
	if !sc.Scan() {
		t.Fatalf("subscribe stream ended before the first record: %v", sc.Err())
	}
	var rec Record
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatalf("decoding first stream record: %v", err)
	}
	return &rec
}

// TestResumeRequiresBootIdentity pins the resume gate to the boot ID:
// a matching term and position alone must NOT earn a resume, because a
// restarted leader re-reaching old epochs under the same term is a
// forked history — only the exact publisher instance that produced the
// claimed position (same boot ID) may resume a subscriber onto it.
func TestResumeRequiresBootIdentity(t *testing.T) {
	const rows = 1200
	leader, pub, ts := newLeader(t, rows, 80, 0)
	defer pub.DropSubscribers()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := leader.Answer(ctx, workloadQuery(i, rows)); err != nil {
			t.Fatal(err)
		}
	}
	// The decision loop is asynchronous; let every answer's decision
	// land so the claimed position can't drift mid-test.
	waitFor(t, "decisions applied", func() bool {
		pos, _ := leader.ReplicaPosition("orders")
		return pos.Epoch == 5
	})
	pos, _ := leader.ReplicaPosition("orders")
	base := SubscribeRequest{
		Version:   ProtocolVersion,
		Tables:    []string{"orders"},
		Positions: map[string]uint64{"orders": pos.Epoch},
	}

	// The exact publisher instance at the exact position: resume, and
	// the resume record carries the identity for the next reconnect.
	match := base
	match.Generation, match.Boot = pub.Generation(), pub.BootID()
	if rec := subscribeFirstRecord(t, ts.URL, match); rec.Type != RecordResume {
		t.Fatalf("matching term+boot+position got %q, want resume", rec.Type)
	} else if rec.Boot != pub.BootID() {
		t.Fatalf("resume record boot = %q, want the publisher's %q", rec.Boot, pub.BootID())
	}

	// Same term and position but another process's boot ID — the
	// restarted-leader case: must re-snapshot, not resume onto a fork.
	forked := base
	forked.Generation, forked.Boot = pub.Generation(), "0000000000000000"
	if rec := subscribeFirstRecord(t, ts.URL, forked); rec.Type != RecordSnapshot {
		t.Fatalf("matching term+position with a foreign boot got %q, want snapshot", rec.Type)
	}

	// A subscriber that never learned a boot ID (fresh, or replaying a
	// pre-boot-ID archive) is re-snapshotted too, never trusted blind.
	legacy := base
	legacy.Generation = pub.Generation()
	if rec := subscribeFirstRecord(t, ts.URL, legacy); rec.Type != RecordSnapshot {
		t.Fatalf("matching term+position with no boot got %q, want snapshot", rec.Type)
	}
}

// TestObservationForwarding closes the upstream loop: queries answered
// only at the follower still reach the leader's decision loop, drive
// reorganizations there, and the resulting layout changes come back to
// the follower — which converges to bit-identity again.
func TestObservationForwarding(t *testing.T) {
	const rows = 3000
	dsL, dsF := buildOrders(rows), buildOrders(rows)
	leader, _, ts := newLeader(t, rows, 3, 0)
	fol := newFollowerFixture(t, rows, ts.URL, true)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	const total = 150
	for i := 0; i < total; i++ {
		if _, err := fol.Core().Answer(ctx, workloadQuery(i, rows)); err != nil {
			t.Fatalf("follower query %d: %v", i, err)
		}
	}
	// Every query was answered locally and forwarded; the leader's
	// decision loop must see them all (the queue is big enough that
	// none sample out in this test).
	waitFor(t, "leader processed forwarded observations", func() bool {
		pos, _ := leader.ReplicaPosition("orders")
		return pos.Epoch == uint64(total)
	})
	waitFor(t, "follower converged", func() bool {
		return fol.Position("orders") == uint64(total)
	})
	assertBitIdentical(t, leader, fol.Core(), dsL, dsF, rows, true)

	lp, _ := leader.ReplicaPosition("orders")
	snap := lp.Snapshot
	if snap.Stats.Reorganizations == 0 {
		t.Error("forwarded workload never reorganized the leader; loop not exercised")
	}
	if st := fol.Stats(); st.Forwarded != total {
		t.Errorf("forwarded = %d, want %d (dropped %d, rejected %d)", st.Forwarded, total, st.ForwardDropped, st.ForwardRejected)
	}
}

// TestFollowerDataMismatchFailsLoudly pins the integrity gate: a
// follower whose local data differs from the leader's must refuse to
// serve, not answer bit-different costs.
func TestFollowerDataMismatchFailsLoudly(t *testing.T) {
	const rows = 1200
	_, _, ts := newLeader(t, rows, 80, 0)

	// Same shape, one divergent cell (an extreme that moves a
	// partition max) — the statistics block cannot match.
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	b := oreo.NewDatasetBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		amount := float64(i%500) + 0.25
		if i == rows/2 {
			amount = 1e9
		}
		b.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[i%4]), oreo.Float(amount))
	}

	fol, err := NewFollower(FollowerConfig{
		Upstream:     ts.URL,
		Tables:       []TableData{{Name: "orders", Dataset: b.Build()}},
		Logf:         t.Logf,
		ReconnectMin: time.Millisecond,
		ForwardQueue: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	err = fol.WaitReady(ctx)
	if err == nil {
		t.Fatal("WaitReady succeeded on divergent data")
	}
	if fol.Err() == nil {
		t.Fatal("Err() is nil after divergence")
	}

	// The serving surface must still answer unavailable, never a cost
	// computed from divergent state.
	_, aerr := fol.Core().Answer(ctx, serve.QueryRequest{
		Table: "orders",
		Preds: []serve.PredicateJSON{{Col: "order_ts", HasLo: true, LoI: 1}},
	})
	if aerr == nil {
		t.Fatal("follower served queries despite divergence")
	}
}

// TestFollowerRejectedSubscriptionIsTerminal pins the loud-failure
// contract for unfixable configurations: a leader that permanently
// rejects the subscription (here: a table it does not serve) must fail
// WaitReady promptly, not retry a hopeless subscribe forever.
func TestFollowerRejectedSubscriptionIsTerminal(t *testing.T) {
	const rows = 1200
	_, _, ts := newLeader(t, rows, 80, 0)
	fol, err := NewFollower(FollowerConfig{
		Upstream:     ts.URL,
		Tables:       []TableData{{Name: "not_served", Dataset: buildOrders(rows)}},
		Logf:         t.Logf,
		ReconnectMin: time.Millisecond,
		ForwardQueue: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fol.WaitReady(ctx); err == nil {
		t.Fatal("WaitReady succeeded for a table the leader does not serve")
	} else if ctx.Err() != nil {
		t.Fatalf("rejection was retried until the context expired instead of failing terminally: %v", err)
	}
}

// TestFollowerHealthAndStats pins the operator surface: role,
// upstream, layout epochs on /healthz semantics via Core.Health, and
// replicated optimizer counters on table stats.
func TestFollowerHealthAndStats(t *testing.T) {
	const rows = 1200
	leader, _, ts := newLeader(t, rows, 80, 0)
	fol := newFollowerFixture(t, rows, ts.URL, true)
	ctx := context.Background()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := leader.Answer(ctx, workloadQuery(i, rows)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "follower at epoch 7", func() bool { return fol.Position("orders") == 7 })

	lh, fh := leader.Health(), fol.Core().Health()
	if lh.Role != serve.RoleLeader || fh.Role != serve.RoleFollower {
		t.Fatalf("roles = %q / %q", lh.Role, fh.Role)
	}
	if fh.Upstream != ts.URL {
		t.Fatalf("follower upstream = %q, want %q", fh.Upstream, ts.URL)
	}
	if lh.LayoutEpochs["orders"] != 7 || fh.LayoutEpochs["orders"] != 7 {
		t.Fatalf("layout epochs: leader %d, follower %d, want 7 both", lh.LayoutEpochs["orders"], fh.LayoutEpochs["orders"])
	}
	if fh.Status != "ok" {
		t.Fatalf("follower status = %q", fh.Status)
	}

	// Follower table stats carry the leader's decision counters next to
	// the follower's own serving counters.
	fstats, err := fol.Core().Stats("orders")
	if err != nil {
		t.Fatal(err)
	}
	if fstats.Queries != 7 {
		t.Errorf("follower stats.queries = %d, want leader's 7", fstats.Queries)
	}
	if fstats.Served != 0 {
		t.Errorf("follower served = %d, want 0 (no local traffic yet)", fstats.Served)
	}

	// A query answered at the follower counts locally and is forwarded.
	if _, err := fol.Core().Answer(ctx, workloadQuery(1, rows)); err != nil {
		t.Fatal(err)
	}
	fstats, _ = fol.Core().Stats("orders")
	if fstats.Served != 1 || fstats.Observed != 1 {
		t.Errorf("follower served/observed = %d/%d, want 1/1", fstats.Served, fstats.Observed)
	}
	// Follower trace is empty by design (decisions live on the leader).
	tr, err := fol.Core().Trace("orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 0 {
		t.Errorf("follower trace has %d events, want 0", len(tr.Events))
	}
}
