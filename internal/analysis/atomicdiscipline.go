package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicdiscipline enforces that a variable published through
// sync/atomic is *only* touched through sync/atomic.
//
// Two patterns are policed:
//
//  1. Function-API atomics: if any code in the package does
//     atomic.LoadUint64(&x.f) / atomic.StoreInt64(&x.f) / ..., then
//     every other read or write of that same field or variable must
//     also go through a sync/atomic call. A direct `x.f++` or
//     `if x.f == 0` next to an atomic publisher is a data race the
//     race detector only catches when the schedule cooperates; this
//     catches it on every build.
//
//  2. Typed atomics (atomic.Uint64, atomic.Pointer[T], ...): the
//     method API makes direct access impossible, but copying the
//     value (`c := s.ctr`, passing s.ctr by value) silently forks the
//     state. Copies in value contexts are flagged.
//
// Initialization before publication is the one legitimate direct
// access; it gets an //oreovet:ignore atomicdiscipline annotation
// stating that the object is not yet shared.
func Atomicdiscipline() *Analyzer {
	a := &Analyzer{
		Name: "atomicdiscipline",
		Doc:  "variables published via sync/atomic must never be accessed directly",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info

		// Pass 1: every object that appears as &obj in a sync/atomic
		// function call, and the exact identifier uses that are part
		// of those sanctioned calls.
		published := make(map[types.Object]token.Pos)
		sanctioned := make(map[token.Pos]bool)
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFuncCall(info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					if obj, use := referencedObject(info, un.X); obj != nil {
						published[obj] = call.Pos()
						sanctioned[use] = true
					}
				}
				return true
			})
		}

		// Pass 2: any other use of a published object, and any value
		// copy of a typed atomic.
		for _, f := range pass.Pkg.Files {
			walkParents(f, func(n ast.Node, parents []ast.Node) {
				switch n := n.(type) {
				case *ast.Ident:
					obj := info.Uses[n]
					if obj == nil {
						return
					}
					pubPos, ok := published[obj]
					if !ok || sanctioned[n.NamePos] || withinAtomicCall(info, parents) {
						return
					}
					pass.Reportf(n.Pos(), "%s is published via sync/atomic (e.g. at %s); direct access races with the atomic users", n.Name, pass.Pkg.Fset.Position(pubPos))
				case *ast.SelectorExpr:
					checkTypedAtomicCopy(pass, n, parents)
				}
			})
		}
	}
	return a
}

// referencedObject resolves the variable behind `&expr` in an atomic
// call: `&x` yields x's object, `&s.f` the field's object. It also
// returns the position of the identifier naming it, so pass 2 can
// recognize this exact use as sanctioned.
func referencedObject(info *types.Info, e ast.Expr) (types.Object, token.Pos) {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj, e.NamePos
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			return obj, e.Sel.NamePos
		}
	}
	return nil, token.NoPos
}

// isAtomicFuncCall reports whether call invokes a function from
// sync/atomic (Load*, Store*, Add*, Swap*, CompareAndSwap*).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// withinAtomicCall reports whether some ancestor is a sync/atomic
// function call — covers the `&x.f` argument subtree itself.
func withinAtomicCall(info *types.Info, parents []ast.Node) bool {
	for _, p := range parents {
		if call, ok := p.(*ast.CallExpr); ok && isAtomicFuncCall(info, call) {
			return true
		}
	}
	return false
}

// checkTypedAtomicCopy flags value copies of typed sync/atomic
// values: assignment/argument/return/composite-literal contexts where
// the selector is neither the receiver of a method call nor behind &.
func checkTypedAtomicCopy(pass *Pass, sel *ast.SelectorExpr, parents []ast.Node) {
	info := pass.Pkg.Info
	tv, ok := info.Types[sel]
	// Type expressions (field declarations, new(atomic.Uint64),
	// conversions) are not copies — only value uses are.
	if !ok || !tv.IsValue() || !isTypedAtomic(tv.Type) {
		return
	}
	if len(parents) == 0 {
		return
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.SelectorExpr:
		// s.ctr.Load() — sel is the X of a method selector: fine.
		if p.X == ast.Expr(sel) {
			return
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return
		}
	case *ast.AssignStmt:
		// Writing *to* it is impossible (no direct assign compiles
		// only for whole-struct copies, which we do want to flag on
		// the RHS); sel on the LHS is a compile error for methods-only
		// types' fields, so only flag RHS appearances.
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(sel) {
				pass.Reportf(sel.Pos(), "assigning over %s, an atomic-typed value, replaces it non-atomically; use its Store method", types.ExprString(sel))
				return
			}
		}
	}
	// Any remaining value context copies the atomic's state.
	if inValueContext(parents) {
		pass.Reportf(sel.Pos(), "copying %s, an atomic-typed value, forks its state; share a pointer or call Load", types.ExprString(sel))
	}
}

// inValueContext reports whether the innermost relevant parent uses
// the expression as a value (assignment RHS, call argument, return,
// composite literal element).
func inValueContext(parents []ast.Node) bool {
	switch parents[len(parents)-1].(type) {
	case *ast.AssignStmt, *ast.CallExpr, *ast.ReturnStmt, *ast.CompositeLit, *ast.ValueSpec, *ast.KeyValueExpr:
		return true
	}
	return false
}

// isTypedAtomic reports whether t is one of sync/atomic's typed
// values (Uint64, Int64, Uint32, Int32, Bool, Value, Uintptr, or the
// generic Pointer[T]).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch {
	case strings.HasPrefix(obj.Name(), "Pointer"):
		return true
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Value":
		return true
	}
	return false
}
