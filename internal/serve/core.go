package serve

import (
	"context"
	"errors"
	"sort"

	"oreo"
	"oreo/internal/exec"
)

// CoreConfig parameterizes a Core.
type CoreConfig struct {
	// QueueSize bounds each table's decision-observation queue; zero
	// selects DefaultQueueSize. When a shard's queue is full, new
	// queries are answered normally but sampled out of reorganization
	// decisions (the Dropped metric counts them).
	QueueSize int
}

// Core is the transport-neutral serving core: one place that owns
// request validation, predicate routing, costing, execution, and the
// observation hand-off into the decision loops. Transports — the HTTP
// codecs in this package (v1 and v2), a future gRPC surface, or an
// embedding process calling it directly — decode bytes into the typed
// request structs, call Core, and encode the typed responses back out.
// No request semantics live in any codec.
//
// All failure returns are *Error values carrying an ErrorCode, so a
// transport maps outcomes without parsing message text. Methods taking
// a context honor cancellation between units of work (per query in a
// batch, per partition block in an execution scan); a canceled request
// is abandoned without feeding the decision loop.
//
// Construct with NewCore, or let New build one inside an HTTP Server.
type Core struct {
	multi  *oreo.MultiOptimizer
	names  []string
	shards map[string]*shard
}

// NewCore builds a serving core over the registered tables. The
// MultiOptimizer (and its per-table Optimizers) must not be used
// directly afterwards: every shard owns its table's decision path.
func NewCore(m *oreo.MultiOptimizer, cfg CoreConfig) (*Core, error) {
	names := m.Tables()
	if len(names) == 0 {
		return nil, errInvalid("serve: no tables registered")
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.QueueSize < 0 {
		return nil, errInvalid("serve: QueueSize must be positive, got %d", cfg.QueueSize)
	}
	c := &Core{
		multi:  m,
		names:  names,
		shards: make(map[string]*shard, len(names)),
	}
	for _, name := range names {
		c.shards[name] = newShard(name, m.Dataset(name), m.Optimizer(name), cfg.QueueSize)
	}
	return c, nil
}

// Tables returns the served table names in registration order.
func (c *Core) Tables() []string { return append([]string(nil), c.names...) }

// Close shuts the shards down gracefully: observation queues stop
// accepting, their consumers drain what was already queued, and the
// call returns when every decision loop is quiet. Call after the
// transport has stopped accepting requests.
func (c *Core) Close() {
	for _, name := range c.names {
		c.shards[name].close()
	}
}

// Snapshot returns the named table's current optimizer snapshot — the
// hook a host process uses to persist serving state at shutdown.
func (c *Core) Snapshot(table string) (oreo.OptimizerSnapshot, bool) {
	sh, ok := c.shards[table]
	if !ok {
		return oreo.OptimizerSnapshot{}, false
	}
	return sh.copt.Snapshot(), true
}

// Answer resolves one decoded query to per-table results. With an
// explicit table, every predicate must name a column of that table's
// schema; with routing, every predicate must land on at least one
// table. Violations are client errors, not silent drops — a serving
// API must not quietly answer a different question than it was asked.
// The same discipline applies to execution aggregates: a requested
// aggregate whose column no queried table has is an error, never a
// silently missing result.
func (c *Core) Answer(ctx context.Context, req QueryRequest) ([]TableResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, errCanceled(err)
	}
	q, err := decodeQuery(req)
	if err != nil {
		return nil, errInvalid("%s", err)
	}
	if len(q.Preds) == 0 {
		// A predicate-free query is a full scan on every layout; it
		// carries no signal for reorganization (Route excludes such
		// queries for exactly that reason) and is almost certainly a
		// client bug. Reject it in both addressing modes.
		return nil, errInvalid("query has no predicates")
	}
	var aggs []exec.AggSpec
	if req.Execute {
		if aggs, err = decodeAggs(req.Aggs); err != nil {
			return nil, errInvalid("%s", err)
		}
	} else if len(req.Aggs) > 0 {
		return nil, errInvalid("aggs require execute")
	}

	if req.Table != "" {
		sh, ok := c.shards[req.Table]
		if !ok {
			return nil, errNotFound("unknown table %q", req.Table)
		}
		schema := sh.ds.Schema()
		for _, p := range q.Preds {
			if _, ok := schema.Index(p.Col); !ok {
				return nil, errInvalid("table %q has no column %q", req.Table, p.Col)
			}
		}
		if !req.Execute {
			return []TableResult{sh.serveQuery(q)}, nil
		}
		res, err := sh.serveExecute(ctx, q, aggs)
		if err != nil {
			return nil, coreErr(err)
		}
		return []TableResult{res}, nil
	}

	routed, unrouted := c.multi.Route(q)
	if len(unrouted) > 0 {
		return nil, errInvalid("no table has column %q", unrouted[0])
	}
	var perTableAggs map[string][]exec.AggSpec
	if req.Execute {
		var err error
		if perTableAggs, err = c.routeAggs(aggs, routed); err != nil {
			return nil, coreErr(err)
		}
	}
	out := make([]TableResult, 0, len(routed))
	for _, name := range c.names {
		sub, touched := routed[name]
		if !touched {
			continue
		}
		sh := c.shards[name]
		if !req.Execute {
			out = append(out, sh.serveQuery(sub))
			continue
		}
		res, err := sh.serveExecute(ctx, sub, perTableAggs[name])
		if err != nil {
			return nil, coreErr(err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Batch answers many queries in one call with the partial-failure
// contract: a bad query fails its item, never the batch. The only
// whole-batch failures are an empty request and a canceled context —
// cancellation is checked between items, so a transport whose client
// disconnected stops burning shard time mid-batch.
func (c *Core) Batch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	if len(req.Queries) == 0 {
		return BatchResponse{}, errInvalid("empty batch")
	}
	resp := BatchResponse{Results: make([]BatchItem, 0, len(req.Queries))}
	for i, qr := range req.Queries {
		if err := ctx.Err(); err != nil {
			return BatchResponse{}, errCanceled(err)
		}
		item := BatchItem{Index: i, ID: qr.ID}
		results, err := c.Answer(ctx, qr)
		if err != nil {
			item.Error = err.Error()
		} else {
			item.Results = results
		}
		resp.Results = append(resp.Results, item)
	}
	return resp, nil
}

// Layout reports the named table's serving layout and partition sizes.
func (c *Core) Layout(table string) (LayoutResponse, error) {
	sh, ok := c.shards[table]
	if !ok {
		return LayoutResponse{}, errNotFound("unknown table %q", table)
	}
	return sh.layoutInfo(), nil
}

// Stats reports the named table's optimizer counters, memo
// effectiveness, and shard serving metrics from one snapshot.
func (c *Core) Stats(table string) (StatsResponse, error) {
	sh, ok := c.shards[table]
	if !ok {
		return StatsResponse{}, errNotFound("unknown table %q", table)
	}
	return sh.stats(), nil
}

// Trace reports the named table's decision trace (empty unless the
// optimizer was configured with TraceCapacity).
func (c *Core) Trace(table string) (TraceResponse, error) {
	sh, ok := c.shards[table]
	if !ok {
		return TraceResponse{}, errNotFound("unknown table %q", table)
	}
	return TraceResponse{Table: sh.table, Events: sh.traceEvents()}, nil
}

// Health reports liveness and the cross-table serving totals.
func (c *Core) Health() HealthResponse {
	names := append([]string(nil), c.names...)
	sort.Strings(names)
	resp := HealthResponse{Status: "ok", Tables: names}
	for _, name := range names {
		sh := c.shards[name]
		// Shard counters are the serving truth: they count every
		// answered request, including the ones overload sampled out of
		// the decision loop. The decision-loop total (Queries) is kept
		// alongside, explicitly labeled — summing only it undercounts
		// under load, the exact bug this endpoint used to have.
		resp.Served += sh.served.Load()
		resp.Observed += sh.observed.Load()
		resp.Dropped += sh.dropped.Load()
		resp.Queries += sh.copt.Stats().Queries
	}
	return resp
}

// routeAggs narrows the aggregates to each queried table (counts apply
// everywhere, column aggregates only where the column exists) and
// validates the whole routing: every column-bearing aggregate must land
// on at least one queried table (mirroring the unrouted-predicate rule)
// and each narrowed list must be legal for its table's schema. Running
// the full validation up front means a bad aggregate fails the request
// before *any* shard has executed, counted, or fed its decision loop —
// partial side effects on a 400 would skew metrics and teach the
// optimizer from a query that was never answered.
func (c *Core) routeAggs(aggs []exec.AggSpec, routed map[string]oreo.Query) (map[string][]exec.AggSpec, error) {
	perTable := make(map[string][]exec.AggSpec, len(routed))
	landed := make([]bool, len(aggs))
	for name := range routed {
		schema := c.shards[name].ds.Schema()
		narrowed := make([]exec.AggSpec, 0, len(aggs))
		for i, a := range aggs {
			if a.Op != exec.AggCount {
				if _, ok := schema.Index(a.Col); !ok {
					continue
				}
			}
			narrowed = append(narrowed, a)
			landed[i] = true
		}
		if err := exec.ValidateAggs(schema, narrowed); err != nil {
			return nil, errInvalid("%s", err)
		}
		perTable[name] = narrowed
	}
	for i, ok := range landed {
		if !ok {
			return nil, errInvalid("no queried table has aggregate column %q", aggs[i].Col)
		}
	}
	return perTable, nil
}

// coreErr wraps an error from a lower layer as a typed *Error,
// preserving one that already is. Execution-path failures (invalid
// aggregates, canceled scans) surface through here.
func coreErr(err error) *Error {
	if e, ok := err.(*Error); ok {
		return e
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return errCanceled(err)
	}
	return errInvalid("%s", err)
}
