package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oreo"
	"oreo/internal/serve"
	"oreo/internal/testleak"
)

// ordersPromoteConfig is the per-table engine config a promotion
// rebuilds the optimizer with — it must match what newLeader boots so
// the promoted node's decisions stay comparable to a control leader's
// (promote itself overrides Initial and drops InitialSort).
func ordersPromoteConfig(alpha float64) oreo.Config {
	return oreo.Config{Alpha: alpha, WindowSize: 40, Partitions: 16, Seed: 7}
}

// newControlLeader boots a leader core identical to newLeader's but
// with no publisher or HTTP surface: the never-failed control run the
// promotion property is asserted against.
func newControlLeader(t *testing.T, rows int, alpha float64) *serve.Core {
	t.Helper()
	m := oreo.NewMulti()
	if err := m.AddTable("orders", buildOrders(rows), oreo.Config{
		Alpha:       alpha,
		WindowSize:  40,
		Partitions:  16,
		InitialSort: []string{"order_ts"},
		Seed:        7,
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(m, serve.Config{QueueSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv.Core()
}

// promoteOp is one step of the deterministic promotion workload,
// precomputed so the same schedule can be replayed on independent
// cores without shared counters.
type promoteOp struct {
	query   bool
	qi      int // query index (drives workload drift phases)
	base    int // first logical row of an append batch
	compact bool
}

func promoteSchedule(total, rows, batch int, compactAt map[int]bool) []promoteOp {
	ops := make([]promoteOp, total)
	qi, next := 0, rows
	for i := range ops {
		if i%5 == 4 {
			ops[i] = promoteOp{base: next}
			next += batch
		} else {
			ops[i] = promoteOp{query: true, qi: qi}
			qi++
		}
		ops[i].compact = compactAt[i]
	}
	return ops
}

// applyOp replays one scheduled op on a core and returns how many
// epochs it advanced the table.
func applyOp(ctx context.Context, t *testing.T, core *serve.Core, op promoteOp, rows, batch int) uint64 {
	t.Helper()
	if op.query {
		if _, err := core.Answer(ctx, workloadQuery(op.qi, rows)); err != nil {
			t.Fatalf("query %d: %v", op.qi, err)
		}
	} else {
		batchRows := make([]map[string]any, batch)
		for j := range batchRows {
			batchRows[j] = appendRow(op.base + j)
		}
		if _, err := core.Append(ctx, "orders", batchRows); err != nil {
			t.Fatalf("append at row %d: %v", op.base, err)
		}
	}
	advanced := uint64(1)
	if op.compact {
		ack, err := core.Compact(ctx, "orders")
		if err != nil {
			t.Fatalf("compact: %v", err)
		}
		if ack.Folded == 0 {
			t.Fatal("compact folded nothing; schedule broken")
		}
		advanced++
	}
	return advanced
}

// TestPromotionBitIdentityEveryEpoch is the failover half of the
// replication property: replay a reorganizing + appending workload on
// two independent identical leaders — one with a follower attached —
// kill the followed leader mid-stream at a compaction boundary,
// promote the follower, and keep replaying the same ops on the
// promoted leader and the never-failed control. Costs, survivor
// skip-lists, stats, and executed aggregates must be bitwise identical
// at EVERY epoch, before and after the failover: the promoted node's
// rebuilt decision engine continues exactly the run the dead leader
// would have had.
func TestPromotionBitIdentityEveryEpoch(t *testing.T) {
	testleak.Check(t)
	const rows = 2000
	const batch = 7
	const preOps = 130  // ops before the leader dies
	const postOps = 150 // ops the promoted leader serves
	const total = preOps + postOps

	// Compactions: one early on each side of the kill (exercising
	// compaction under replication and again on the promoted leader,
	// while leaving each engine a long uninterrupted run — a compaction
	// rebuild restarts the candidate window, and reorganizations need
	// full windows to trigger), plus one at the kill boundary itself,
	// which synchronizes both sides' engine rebuild with the promotion
	// rebuild.
	compactAt := map[int]bool{14: true, preOps - 1: true, preOps + 9: true}
	ops := promoteSchedule(total, rows, batch, compactAt)

	leader, _, ts := newLeader(t, rows, 1.5 /* reorganize eagerly */, 0)
	control := newControlLeader(t, rows, 1.5)
	fol := newFollowerFixture(t, rows, ts.URL, false)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	var want uint64
	syncTo := func(name string, pos func() (serve.Position, bool)) {
		t.Helper()
		waitFor(t, fmt.Sprintf("%s epoch %d", name, want), func() bool {
			p, _ := pos()
			return p.Epoch == want
		})
	}

	for i := 0; i < preOps; i++ {
		want += applyOp(ctx, t, leader, ops[i], rows, batch)
		applyOp(ctx, t, control, ops[i], rows, batch)
		syncTo("leader", func() (serve.Position, bool) { return leader.ReplicaPosition("orders") })
		syncTo("control", func() (serve.Position, bool) { return control.ReplicaPosition("orders") })
		syncTo("follower", func() (serve.Position, bool) { return fol.Core().ReplicaPosition("orders") })
		// Control vs follower covers both halves: the two leaders run
		// bit-identically, and the follower replicates bit-identically.
		assertLiveBitIdentical(t, control, fol.Core(), rows, i%10 == 0 || i == preOps-1)
	}
	cpos, _ := control.ReplicaPosition("orders")
	if cpos.Snapshot.Stats.Reorganizations == 0 {
		t.Fatal("workload never reorganized before the kill; property not exercised")
	}
	preReorgs := cpos.Snapshot.Stats.Reorganizations

	// Kill the leader mid-stream: sever every live connection (ending
	// the in-flight subscribe stream) and tear the HTTP surface down so
	// the follower's reconnect loop finds nobody, then promote.
	ts.CloseClientConnections()
	ts.Close()
	if err := fol.Err(); err != nil {
		t.Fatalf("follower failed before promotion: %v", err)
	}
	pub, err := Promote(fol, serve.PromoteConfig{
		QueueSize: 4096,
		Advertise: "promoted-orders",
		Tables: map[string]serve.PromoteTable{
			"orders": {Config: ordersPromoteConfig(1.5), SeedRows: rows},
		},
	}, PublisherConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("promotion: %v", err)
	}
	if got := pub.Generation(); got != 2 {
		t.Fatalf("promoted publisher generation = %d, want 2", got)
	}
	promoted := fol.Core()
	h := promoted.Health()
	if h.Role != serve.RoleLeader || h.Generation != 2 {
		t.Fatalf("promoted health = role %q generation %d, want leader/2", h.Role, h.Generation)
	}

	for i := preOps; i < total; i++ {
		want += applyOp(ctx, t, promoted, ops[i], rows, batch)
		applyOp(ctx, t, control, ops[i], rows, batch)
		syncTo("promoted", func() (serve.Position, bool) { return promoted.ReplicaPosition("orders") })
		syncTo("control", func() (serve.Position, bool) { return control.ReplicaPosition("orders") })
		assertLiveBitIdentical(t, control, promoted, rows, i%10 == 0 || compactAt[i] || i == total-1)
	}

	// The post-failover run must itself have exercised the interesting
	// machinery: the scheduled compaction folded appends on the promoted
	// leader, and the drifting workload kept reorganizing.
	ppos, _ := promoted.ReplicaPosition("orders")
	if ppos.Dataset.NumRows() <= rows {
		t.Error("promoted leader never grew its base by compaction")
	}
	if ppos.Snapshot.Stats.Reorganizations <= preReorgs {
		t.Errorf("promoted leader never reorganized after failover (reorgs %d, pre-kill %d); property weakened",
			ppos.Snapshot.Stats.Reorganizations, preReorgs)
	}
}

// TestSubscribeFencedByGeneration pins the subscribe-side fence: a
// subscription claiming a term above the leader's own proves the
// leader has been superseded, and is refused outright.
func TestSubscribeFencedByGeneration(t *testing.T) {
	testleak.Check(t)
	_, _, ts := newLeader(t, 600, 80, 0) // publisher at generation 1

	body, _ := json.Marshal(SubscribeRequest{Version: ProtocolVersion, Generation: 2})
	resp, err := http.Post(ts.URL+"/v2/replication/subscribe", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("subscribe from the future answered %d, want %d", resp.StatusCode, http.StatusBadRequest)
	}
}

// TestObserveFencedWithoutStateChange pins the observe-side fence: a
// forwarded observation batch pinned to a different leader term is
// refused whole — 409, counted, and no epoch advances.
func TestObserveFencedWithoutStateChange(t *testing.T) {
	testleak.Check(t)
	const rows = 600
	leader, _, ts := newLeader(t, rows, 80, 0)
	ctx := context.Background()
	if _, err := leader.Answer(ctx, workloadQuery(0, rows)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "epoch 1", func() bool {
		pos, _ := leader.ReplicaPosition("orders")
		return pos.Epoch == 1
	})

	stale, _ := json.Marshal(ObserveRequest{
		Generation: 7, // leader is at term 1
		Observations: []Observation{{
			Table: "orders",
			Preds: []serve.PredicateJSON{{Col: "order_ts", HasLo: true, LoI: 5}},
		}},
	})
	resp, err := http.Post(ts.URL+"/v2/replication/observe", "application/json", strings.NewReader(string(stale)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fenced observe answered %d, want %d", resp.StatusCode, http.StatusConflict)
	}
	// No state change: the batch never reached a decision loop.
	time.Sleep(20 * time.Millisecond)
	pos, _ := leader.ReplicaPosition("orders")
	if pos.Epoch != 1 {
		t.Fatalf("fenced batch advanced the epoch to %d", pos.Epoch)
	}
	body := scrapeURL(t, ts.URL)
	if got := metricValue(t, body, `oreo_replication_observations_received_total{result="fenced"}`); got != 1 {
		t.Fatalf("fenced counter = %v, want 1", got)
	}
}

// TestFollowerFencesStaleStream pins the record-level fence: a
// follower that has applied term-5 state and later finds itself fed a
// lower-term stream (a revived deposed leader) must reject it
// terminally, with no state change — not apply it, not retry into it.
func TestFollowerFencesStaleStream(t *testing.T) {
	testleak.Check(t)
	const rows = 600
	m := oreo.NewMulti()
	if err := m.AddTable("orders", buildOrders(rows), oreo.Config{
		Alpha: 80, WindowSize: 40, Partitions: 16, InitialSort: []string{"order_ts"}, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(m, serve.Config{QueueSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(srv.Core(), PublisherConfig{Generation: 5, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	pub.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// The follower's upstream is a switchable front: first a transparent
	// proxy to the real term-5 leader, then a fake deposed leader that
	// accepts any subscription and streams a term-2 record.
	leaderURL, _ := url.Parse(ts.URL)
	var staleMode atomic.Bool
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !staleMode.Load() {
			rp := httputil.NewSingleHostReverseProxy(leaderURL)
			rp.FlushInterval = -1
			rp.ServeHTTP(w, r)
			return
		}
		pos, _ := srv.Core().ReplicaPosition("orders")
		rec, _ := json.Marshal(Record{Type: RecordResume, Table: "orders", Epoch: pos.Epoch, Generation: 2})
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		w.Write(append(rec, '\n'))
	}))
	t.Cleanup(front.Close)

	fol := newFollowerFixture(t, rows, front.URL, false)
	ctx := context.Background()
	if err := fol.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Core().Answer(ctx, workloadQuery(0, rows)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower at epoch 1, term 5", func() bool {
		pos, _ := fol.Core().ReplicaPosition("orders")
		return pos.Epoch == 1 && fol.Generation() == 5
	})

	staleMode.Store(true)
	pub.DropSubscribers()
	waitFor(t, "terminal fencing error", func() bool { return fol.Err() != nil })
	if !errors.Is(fol.Err(), errFenced) {
		t.Fatalf("follower error = %v, want errFenced", fol.Err())
	}
	// Fenced, not corrupted: the stale record changed nothing and the
	// follower still serves its last-applied state.
	pos, _ := fol.Core().ReplicaPosition("orders")
	if pos.Epoch != 1 {
		t.Fatalf("stale stream moved the follower to epoch %d", pos.Epoch)
	}
	if fol.Generation() != 5 {
		t.Fatalf("stale stream regressed the follower's term to %d", fol.Generation())
	}
}

// TestSubscriberMetricsUnregisteredOnDisconnect pins the per-subscriber
// series lifecycle: a connected subscriber gets its own labeled
// queue-depth gauge, and a dropped subscriber takes the series with it
// — a churning fleet must not accrete dead label series.
func TestSubscriberMetricsUnregisteredOnDisconnect(t *testing.T) {
	testleak.Check(t)
	const rows = 600
	const series = "oreo_replication_subscriber_queue_depth"
	_, _, ts := newLeader(t, rows, 80, 0)

	fol := newFollowerFixture(t, rows, ts.URL, false)
	if err := fol.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscriber series registered", func() bool {
		return strings.Contains(scrapeURL(t, ts.URL), series+`{subscriber="`)
	})

	fol.Close()
	waitFor(t, "subscriber series unregistered", func() bool {
		return !strings.Contains(scrapeURL(t, ts.URL), series)
	})
}
