package experiments

import (
	"sort"

	"oreo/internal/layout"
	"oreo/internal/mts"
	"oreo/internal/query"
)

// CostMatrix builds the [query][state] service-cost matrix that the
// exact offline paths (mts.OfflineOptimal, competitive-ratio
// measurements) consume. Each query is compiled once against the shared
// schema and evaluated across every state, so building a T×n matrix
// costs T compilations instead of T·n map-lookup-per-partition
// interpretations.
func CostMatrix(states []*layout.Layout, qs []query.Query) [][]float64 {
	costs := make([][]float64, len(qs))
	if len(states) == 0 {
		return costs
	}
	for t, q := range qs {
		cq := states[0].Compile(q)
		row := make([]float64, len(states))
		for s, l := range states {
			row[s] = l.CostCompiled(cq)
		}
		costs[t] = row
	}
	return costs
}

// OfflineDPResult is the exact optimal offline schedule over a fixed
// state space, computed by dynamic programming (mts.OfflineOptimal).
type OfflineDPResult struct {
	// States names the state space the DP ran over, initial first.
	States []string
	// Total is the minimal total cost (service + α per move).
	Total float64
	// Moves is the number of layout switches an optimal schedule makes.
	Moves int
}

// OfflineDP computes the exact offline optimum over the scenario's
// per-template layouts plus the default layout (the same state space
// MTS Optimal runs on, but with full lookahead and exact DP instead of
// an online algorithm). It lower-bounds every policy confined to that
// state space and is the tightest reference Figure 4's gap can be
// measured against.
func OfflineDP(s *Scenario, p RunParams) OfflineDPResult {
	gen := s.Generator(GenQdTree)
	perTemplate := s.PerTemplateLayouts(gen)

	states := []*layout.Layout{s.Default}
	// Deterministic state order: template index ascending.
	tmpls := make([]int, 0, len(perTemplate))
	for t := range perTemplate {
		tmpls = append(tmpls, t)
	}
	sort.Ints(tmpls)
	for _, t := range tmpls {
		if l := perTemplate[t]; l != nil {
			states = append(states, l)
		}
	}

	costs := CostMatrix(states, s.Stream.Queries)
	total, moves := mts.OfflineOptimal(costs, p.Alpha, 0)

	names := make([]string, len(states))
	for i, l := range states {
		names[i] = l.Name
	}
	return OfflineDPResult{States: names, Total: total, Moves: moves}
}
