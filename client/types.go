package client

// Wire types. These mirror the server's JSON shapes field for field —
// the same query-log predicate encoding internal/persist writes, so a
// captured production log IS a valid request stream. They are defined
// here rather than imported so the SDK depends on nothing but the
// standard library: a downstream service embedding this client pulls
// in zero OREO internals.

// Predicate is one single-column filter in the query-log wire
// encoding: numeric predicates carry an int64 and/or float64 bound
// family and the server selects by the target column's schema type;
// string predicates carry an IN set. Use the typed constructors
// (IntRange, FloatGE, StrIn, ...) rather than filling fields by hand.
type Predicate struct {
	Col   string   `json:"col"`
	HasLo bool     `json:"has_lo,omitempty"`
	HasHi bool     `json:"has_hi,omitempty"`
	LoI   int64    `json:"lo_i,omitempty"`
	HiI   int64    `json:"hi_i,omitempty"`
	LoF   float64  `json:"lo_f,omitempty"`
	HiF   float64  `json:"hi_f,omitempty"`
	In    []string `json:"in,omitempty"`
}

// IntRange returns a closed int64 range predicate lo <= col <= hi.
func IntRange(col string, lo, hi int64) Predicate {
	return Predicate{Col: col, LoI: lo, HiI: hi, HasLo: true, HasHi: true}
}

// IntGE returns an int64 lower-bound predicate col >= lo.
func IntGE(col string, lo int64) Predicate {
	return Predicate{Col: col, LoI: lo, HasLo: true}
}

// IntLE returns an int64 upper-bound predicate col <= hi.
func IntLE(col string, hi int64) Predicate {
	return Predicate{Col: col, HiI: hi, HasHi: true}
}

// FloatRange returns a closed float64 range predicate lo <= col <= hi.
func FloatRange(col string, lo, hi float64) Predicate {
	return Predicate{Col: col, LoF: lo, HiF: hi, HasLo: true, HasHi: true}
}

// FloatGE returns a float64 lower-bound predicate col >= lo.
func FloatGE(col string, lo float64) Predicate {
	return Predicate{Col: col, LoF: lo, HasLo: true}
}

// FloatLE returns a float64 upper-bound predicate col <= hi.
func FloatLE(col string, hi float64) Predicate {
	return Predicate{Col: col, HiF: hi, HasHi: true}
}

// StrEq returns an equality predicate col == v.
func StrEq(col, v string) Predicate { return Predicate{Col: col, In: []string{v}} }

// StrIn returns a membership predicate col IN (vs...).
func StrIn(col string, vs ...string) Predicate { return Predicate{Col: col, In: vs} }

// Query is one serving request. Table restricts it to one registered
// table; when empty the server routes each predicate to every table
// whose schema has its column. Execute asks for row-level execution
// (matched rows + Aggs) in addition to costing. ID, when set, is
// echoed on every result — replay clients should number from 1, since
// an explicit 0 is indistinguishable from "no ID" on the wire.
type Query struct {
	Table   string      `json:"table,omitempty"`
	ID      int         `json:"id,omitempty"`
	Preds   []Predicate `json:"preds"`
	Execute bool        `json:"execute,omitempty"`
	Aggs    []Aggregate `json:"aggs,omitempty"`
}

// Aggregate requests one execution aggregate.
type Aggregate struct {
	// Op is one of "count", "sum", "min", "max".
	Op string `json:"op"`
	// Col names the aggregated column; ignored for "count".
	Col string `json:"col,omitempty"`
}

// Count / Sum / Min / Max build Aggregates.
func Count() Aggregate         { return Aggregate{Op: "count"} }
func Sum(col string) Aggregate { return Aggregate{Op: "sum", Col: col} }
func Min(col string) Aggregate { return Aggregate{Op: "min", Col: col} }
func Max(col string) Aggregate { return Aggregate{Op: "max", Col: col} }

// AggregateResult is one computed aggregate. Type selects the value
// field: "int64" → ValueI, "float64" → ValueF, "string" → ValueS.
// Non-finite float results are spelled in ValueS ("NaN", "+Inf",
// "-Inf") with ValueF zero, since JSON numbers cannot carry them.
type AggregateResult struct {
	Op     string  `json:"op"`
	Col    string  `json:"col,omitempty"`
	Type   string  `json:"type"`
	Valid  bool    `json:"valid"`
	ValueI int64   `json:"value_i"`
	ValueF float64 `json:"value_f"`
	ValueS string  `json:"value_s"`
}

// Execution is the row-level half of an executed query's answer.
// DeltaRows counts delta-segment rows the scan examined on top of the
// survivor partitions (servers predating live writes omit it).
type Execution struct {
	MatchedRows     int               `json:"matched_rows"`
	PartitionsRead  int               `json:"partitions_read"`
	PartitionsTotal int               `json:"partitions_total"`
	RowsExamined    int               `json:"rows_examined"`
	RowsTotal       int               `json:"rows_total"`
	DeltaRows       int               `json:"delta_rows,omitempty"`
	Aggregates      []AggregateResult `json:"aggregates,omitempty"`
}

// TableResult is one table's answer for one query.
type TableResult struct {
	Table              string     `json:"table"`
	Cost               float64    `json:"cost"`
	Layout             string     `json:"layout"`
	NumPartitions      int        `json:"num_partitions"`
	SurvivorPartitions []int      `json:"survivor_partitions"`
	Reorganizing       bool       `json:"reorganizing,omitempty"`
	PendingLayout      string     `json:"pending_layout,omitempty"`
	DeltaRows          int        `json:"delta_rows,omitempty"`
	Observed           bool       `json:"observed"`
	QueryID            int        `json:"query_id,omitempty"`
	Execution          *Execution `json:"execution,omitempty"`
}

// BatchItem is one answer of a batch or stream: either Results or
// Error is set. Index echoes the query's position (batch) or input
// line (stream); ID echoes the query's wire ID.
type BatchItem struct {
	Index   int           `json:"index"`
	ID      int           `json:"id,omitempty"`
	Results []TableResult `json:"results,omitempty"`
	Error   string        `json:"error,omitempty"`
}

// Layout is GET /tables/{t}/layout.
type Layout struct {
	Table         string `json:"table"`
	Layout        string `json:"layout"`
	NumPartitions int    `json:"num_partitions"`
	TotalRows     int    `json:"total_rows"`
	PartitionRows []int  `json:"partition_rows"`
	Reorganizing  bool   `json:"reorganizing,omitempty"`
	PendingLayout string `json:"pending_layout,omitempty"`
	// DeltaRows is the unpartitioned delta segment's size: rows appended
	// since the last compaction, outside TotalRows until a fold.
	DeltaRows int `json:"delta_rows,omitempty"`
}

// TableStats is GET /tables/{t}/stats.
type TableStats struct {
	Table string `json:"table"`

	Queries          int     `json:"queries"`
	Reorganizations  int     `json:"reorganizations"`
	QueryCost        float64 `json:"query_cost"`
	ReorgCost        float64 `json:"reorg_cost"`
	States           int     `json:"states"`
	MaxStates        int     `json:"max_states"`
	Phases           int     `json:"phases"`
	CompetitiveBound float64 `json:"competitive_bound"`

	MemoHits    uint64 `json:"memo_hits"`
	MemoMisses  uint64 `json:"memo_misses"`
	MemoEntries int    `json:"memo_entries"`

	Served            uint64  `json:"served"`
	Observed          uint64  `json:"observed"`
	Dropped           uint64  `json:"dropped"`
	ServedCostSum     float64 `json:"served_cost_sum"`
	SnapshotCompiles  uint64  `json:"snapshot_compiles"`
	Executions        uint64  `json:"executions"`
	ExecutionRowsRead uint64  `json:"execution_rows_read"`
	QueueDepth        int     `json:"queue_depth"`
	QueueCapacity     int     `json:"queue_capacity"`

	// Live write path counters (servers predating live writes omit all
	// three): current delta size, rows appended this boot, delta folds.
	DeltaRows    int    `json:"delta_rows,omitempty"`
	RowsAppended uint64 `json:"rows_appended,omitempty"`
	Compactions  uint64 `json:"compactions,omitempty"`
}

// TraceEvent is one decision-trace event.
type TraceEvent struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	Layout string `json:"layout"`
	Detail string `json:"detail,omitempty"`
}

// Trace is GET /tables/{t}/trace.
type Trace struct {
	Table  string       `json:"table"`
	Events []TraceEvent `json:"events"`
}

// Health is GET /healthz. It is follower-aware: Role distinguishes a
// leader (owns the decision loops) from a follower (replicates the
// leader's decision stream), Upstream names a follower's leader, and
// LayoutEpochs carries each table's monotonic decision sequence
// number on both sides — replication lag for a table is the leader's
// reading minus the follower's.
type Health struct {
	// Status is "ok", or "initializing" on a follower that has not yet
	// applied a first snapshot for every table.
	Status string `json:"status"`
	// Role is "leader" or "follower". Servers predating replication
	// leave it empty.
	Role string `json:"role"`
	// Generation is the monotonic leadership fencing term: the term a
	// leader publishes under (0 with no publisher attached), or the
	// highest term a follower has applied. Servers predating cluster
	// promotion omit it (reads as 0).
	Generation uint64 `json:"generation,omitempty"`
	// Upstream is the leader URL a follower replicates from; Advertise
	// is the URL a leader tells operators to point followers at.
	Upstream  string   `json:"upstream,omitempty"`
	Advertise string   `json:"advertise,omitempty"`
	Tables    []string `json:"tables"`
	// LayoutEpochs maps table name to its decision epoch: decisions
	// processed on a leader, last applied epoch on a follower.
	LayoutEpochs map[string]uint64 `json:"layout_epochs"`
	Served       uint64            `json:"served"`
	Observed     uint64            `json:"observed"`
	Dropped      uint64            `json:"dropped"`
	Queries      int               `json:"queries"`
	// QueueDepth is the observations waiting in decision queues across
	// all tables: Observed = Queries + QueueDepth up to scrape skew.
	// Servers predating the /metrics layer omit it (reads as 0).
	QueueDepth int `json:"queue_depth"`
	// DeltaRows maps each table to its uncompacted delta segment size.
	// Watch these drop to zero to know a compaction round has settled.
	// Servers predating live writes omit the map (reads as nil).
	DeltaRows map[string]int `json:"delta_rows,omitempty"`
}

// Row is one append-row: schema column name → value. Every schema
// column must be present; ints, floats, and strings matching the
// column types. Integer columns reject fractional values.
type Row map[string]any

// AppendResult acknowledges a durable append: as of Epoch the rows are
// visible to every query on the answering server. DeltaRows is the
// delta segment's size afterwards (0 right after an auto-compaction).
type AppendResult struct {
	Table     string `json:"table"`
	Epoch     uint64 `json:"epoch"`
	Appended  int    `json:"appended"`
	DeltaRows int    `json:"delta_rows"`
}

// CompactResult acknowledges an explicit compaction: Folded delta rows
// were rewritten into the base layout (0 when the delta was empty).
type CompactResult struct {
	Table     string `json:"table"`
	Epoch     uint64 `json:"epoch"`
	Folded    int    `json:"folded"`
	DeltaRows int    `json:"delta_rows"`
}
