package table

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildPartitioning(t *testing.T) {
	d := buildTestDataset(t, 12)
	assign := make([]int, 12)
	for i := range assign {
		assign[i] = i % 3
	}
	p, err := BuildPartitioning(d, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPartitions != 3 || p.TotalRows != 12 {
		t.Fatalf("partitioning = %+v", p)
	}
	for pid := 0; pid < 3; pid++ {
		if got := p.RowsInPartition(pid); got != 4 {
			t.Errorf("partition %d rows = %d, want 4", pid, got)
		}
	}
	if p.NonEmptyPartitions() != 3 {
		t.Errorf("NonEmptyPartitions = %d", p.NonEmptyPartitions())
	}
}

func TestBuildPartitioningErrors(t *testing.T) {
	d := buildTestDataset(t, 5)
	if _, err := BuildPartitioning(d, []int{0, 0, 0}, 2); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := BuildPartitioning(d, []int{0, 0, 0, 0, 0}, 0); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := BuildPartitioning(d, []int{0, 0, 0, 0, 9}, 2); err == nil {
		t.Error("out-of-range partition ID accepted")
	}
	if _, err := BuildPartitioning(d, []int{0, 0, 0, 0, -1}, 2); err == nil {
		t.Error("negative partition ID accepted")
	}
}

func TestMustBuildPartitioningPanics(t *testing.T) {
	d := buildTestDataset(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuildPartitioning on invalid input did not panic")
		}
	}()
	MustBuildPartitioning(d, []int{5, 5}, 2)
}

func TestEmptyPartitionsMetadata(t *testing.T) {
	d := buildTestDataset(t, 4)
	p := MustBuildPartitioning(d, []int{0, 0, 0, 0}, 3)
	if p.NonEmptyPartitions() != 1 {
		t.Fatalf("NonEmptyPartitions = %d, want 1", p.NonEmptyPartitions())
	}
	if !p.Meta[1].Stats[0].Empty() || p.Meta[1].NumRows != 0 {
		t.Error("empty partition has non-empty metadata")
	}
}

// Property: per-partition row counts always sum to the dataset size, and
// every partition's metadata covers exactly its rows' value ranges.
func TestPartitioningConservationProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 40
		k := int(kRaw%7) + 1
		b := NewBuilder(testSchema(), rows)
		for i := 0; i < rows; i++ {
			b.AppendRow(Int(rng.Int63n(100)), Float(rng.Float64()), Str("t"))
		}
		d := b.Build()
		assign := make([]int, rows)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		p := MustBuildPartitioning(d, assign, k)
		sum := 0
		for pid := 0; pid < k; pid++ {
			sum += p.RowsInPartition(pid)
		}
		if sum != rows {
			return false
		}
		for r := 0; r < rows; r++ {
			m := p.Meta[assign[r]]
			if v := d.Int64At(0, r); v < m.Stats[0].MinI || v > m.Stats[0].MaxI {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
