package oreo

import "testing"

// TestReorganizedOnlyOnRealSwitch is the regression test for
// Decision.Reorganized: the policy can surface a target layout equal to
// the one already serving (e.g. switching back to the serving layout
// while a delayed reorganization is in flight), and that must not be
// reported as a reorganization — Reorganized has to track the switches
// counter exactly.
func TestReorganizedOnlyOnRealSwitch(t *testing.T) {
	ds := buildEventsTable(t, 400)
	opt, err := New(ds, Config{
		Alpha: 10, Partitions: 4, InitialSort: []string{"ts"}, ReorgDelay: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := opt.CurrentLayout()
	b := NewZOrderGenerator(1, "user").Generate(ds, nil, 4)
	if a.Name == b.Name {
		t.Fatalf("fixture layouts share a name: %s", a.Name)
	}

	// No decision: no reorganization.
	if opt.applyTarget(nil) {
		t.Error("applyTarget(nil) reported a switch")
	}
	// Real decision away from the serving layout.
	if !opt.applyTarget(b) {
		t.Error("switch to a different layout not reported")
	}
	if opt.PendingLayout() != b {
		t.Fatal("switch did not become pending under ReorgDelay")
	}
	// The policy targets the serving layout again while the delayed swap
	// is still in flight: target != nil but it is NOT a reorganization,
	// and the abandoned pending swap must not land later.
	if opt.applyTarget(a) {
		t.Error("target equal to serving layout reported as a switch")
	}
	if opt.PendingLayout() != nil {
		t.Error("abandoned pending reorganization was not cancelled")
	}
	for i := 0; i < 5; i++ {
		opt.applyTarget(nil)
	}
	if opt.CurrentLayout() != a {
		t.Errorf("serving layout drifted to %s after cancelled swap", opt.CurrentLayout().Name)
	}
	if got := opt.Stats().Reorganizations; got != 1 {
		t.Errorf("Reorganizations = %d, want 1", got)
	}
}

// TestReorganizedMatchesSwitchCounter drives the full public path and
// checks the per-decision flags sum to the aggregate counter.
func TestReorganizedMatchesSwitchCounter(t *testing.T) {
	ds := buildEventsTable(t, 4000)
	for _, delay := range []int{0, 7} {
		opt, err := New(ds, Config{
			Alpha: 4, Partitions: 8, WindowSize: 40, Period: 40,
			InitialSort: []string{"ts"}, Seed: 11, ReorgDelay: delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		flagged := 0
		for i := 0; i < 4000; i++ {
			var q Query
			switch (i / 400) % 2 {
			case 0:
				lo := int64(i % 3000)
				q = Query{ID: i, Preds: []Predicate{IntRange("ts", lo, lo+200)}}
			default:
				q = Query{ID: i, Preds: []Predicate{StrEq("user", "alice")}}
			}
			if opt.ProcessQuery(q).Reorganized {
				flagged++
			}
		}
		if got := opt.Stats().Reorganizations; got != flagged {
			t.Errorf("delay=%d: Reorganizations=%d but %d decisions flagged", delay, got, flagged)
		}
		if flagged == 0 {
			t.Errorf("delay=%d: workload drove no switches; regression test is vacuous", delay)
		}
	}
}
