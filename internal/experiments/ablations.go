package experiments

import (
	"fmt"
	"math/rand"

	"oreo/internal/layout"
	"oreo/internal/manager"
	"oreo/internal/mts"
)

// AblationRow is one variant of a design-choice ablation.
type AblationRow struct {
	// Ablation names the design choice ("stay-in-place", "multi-copy").
	Ablation string
	// Variant labels the setting.
	Variant string
	// Default marks the configuration the paper (and this repo) ships.
	Default bool

	QueryCost float64
	ReorgCost float64
	Switches  int
}

// AblationStayInPlace quantifies the paper's §IV-A optimization: at a
// phase start, keep the current state rather than jumping to a random
// one (the original BLS behaviour). The paper reports the optimization
// "significantly improves the reorganization cost"; this ablation
// regenerates that comparison on a scenario.
func AblationStayInPlace(s *Scenario, p RunParams) []AblationRow {
	gen := s.Generator(GenQdTree)
	var rows []AblationRow
	for _, disable := range []bool{false, true} {
		pp := p
		pp.DisableStayInPlace = disable
		r := s.Run(s.NewOREO(gen, pp), pp)
		variant := "stay-in-place"
		if disable {
			variant = "random-restart"
		}
		rows = append(rows, AblationRow{
			Ablation:  "stay-in-place",
			Variant:   variant,
			Default:   !disable,
			QueryCost: r.QueryCost,
			ReorgCost: r.ReorgCost,
			Switches:  r.Switches,
		})
	}
	return rows
}

// AblationMultiCopy evaluates the Appendix D variant: keeping up to B
// materialized copies of the dataset under different layouts, serving
// every query on the cheapest resident copy, and paying α only to
// materialize a non-resident layout. B = 1 approximates the single-copy
// algorithm; larger budgets trade storage for reorganization cost.
func AblationMultiCopy(s *Scenario, p RunParams, budgets []int) []AblationRow {
	if budgets == nil {
		budgets = []int{1, 2, 4}
	}
	gen := s.Generator(GenQdTree)
	rows := make([]AblationRow, 0, len(budgets))
	for _, b := range budgets {
		q, r, mats := runMultiCopy(s, gen, b, p)
		rows = append(rows, AblationRow{
			Ablation:  "multi-copy",
			Variant:   fmt.Sprintf("B=%d", b),
			Default:   b == 1,
			QueryCost: q,
			ReorgCost: r,
			Switches:  mats,
		})
	}
	return rows
}

// runMultiCopy drives the multi-copy decision maker over the scenario
// stream with the same candidate feed and ε-admission as OREO.
func runMultiCopy(s *Scenario, gen layout.Generator, budget int, p RunParams) (queryCost, reorgCost float64, materializations int) {
	feedRng := rand.New(rand.NewSource(p.Seed))
	mtsRng := rand.New(rand.NewSource(p.Seed + 1))
	feed := manager.NewFeed(s.Data, gen, p.feedConfig(s.Partitions), feedRng)
	mc := mts.NewMultiCopy(mts.Config{Alpha: p.Alpha, Gamma: p.Gamma}, budget, mtsRng)

	states := map[mts.StateID]*layout.Layout{0: s.Default}
	nextID := mts.StateID(1)
	mc.AddState(0)
	mc.MakeResident(0)

	hasName := func(name string) bool {
		for _, l := range states {
			if l.Name == name {
				return true
			}
		}
		return false
	}
	incumbents := func() []*layout.Layout {
		out := make([]*layout.Layout, 0, len(states))
		for _, l := range states {
			//oreovet:ignore maporder incumbent set is consumed as an unordered set (redundancy extremum over members); no ordered output
			out = append(out, l)
		}
		return out
	}

	for _, q := range s.Stream.Queries {
		for _, c := range feed.Observe(q) {
			if hasName(c.Layout.Name) {
				continue
			}
			if !manager.Admit(c.Layout, incumbents(), feed.ReservoirQueries(), p.Epsilon) {
				continue
			}
			states[nextID] = c.Layout
			mc.AddState(nextID)
			nextID++
		}
		// One compilation serves the resident-copy scan and the final
		// serving-cost charge.
		cq := s.Default.Compile(q)
		serveIn, materialized := mc.Observe(func(id mts.StateID) float64 {
			return states[id].CostCompiled(cq)
		})
		if materialized {
			reorgCost += p.Alpha
			materializations++
		}
		queryCost += states[serveIn].CostCompiled(cq)
	}
	return queryCost, reorgCost, materializations
}
