package table

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func deltaTestSchema() *Schema {
	return NewSchema(
		Column{Name: "ts", Type: Int64},
		Column{Name: "amount", Type: Float64},
		Column{Name: "status", Type: String},
	)
}

func deltaBatch(s *Schema, rng *rand.Rand, n int) *Dataset {
	b := NewBuilder(s, n)
	statuses := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < n; i++ {
		f := rng.Float64() * 100
		if rng.Intn(20) == 0 {
			f = math.NaN()
		}
		b.AppendRow(Int(rng.Int63n(1000)), Float(f),
			Str(statuses[rng.Intn(len(statuses))]+fmt.Sprint(rng.Intn(16))))
	}
	return b.Build()
}

// statsByRescan recomputes column stats from scratch over a dataset —
// the oracle the incremental delta stats must match.
func statsByRescan(d *Dataset) []ColumnStats {
	out := make([]ColumnStats, d.Schema().NumCols())
	for c := range out {
		out[c] = newColumnStats(d.Schema().Col(c).Type)
	}
	for r := 0; r < d.NumRows(); r++ {
		for c := 0; c < d.Schema().NumCols(); c++ {
			switch d.Schema().Col(c).Type {
			case Int64:
				out[c].AddInt(d.Int64At(c, r))
			case Float64:
				out[c].AddFloat(d.Float64At(c, r))
			case String:
				out[c].AddString(d.StringAt(c, r))
			}
		}
	}
	return out
}

func statsEqual(t *testing.T, got, want ColumnStats) {
	t.Helper()
	if got.Type != want.Type || got.seen != want.seen {
		t.Fatalf("stats shape mismatch: got %+v want %+v", got, want)
	}
	switch got.Type {
	case Int64:
		if got.MinI != want.MinI || got.MaxI != want.MaxI {
			t.Fatalf("int range: got [%d,%d] want [%d,%d]", got.MinI, got.MaxI, want.MinI, want.MaxI)
		}
	case Float64:
		if math.Float64bits(got.MinF) != math.Float64bits(want.MinF) ||
			math.Float64bits(got.MaxF) != math.Float64bits(want.MaxF) {
			t.Fatalf("float range: got [%v,%v] want [%v,%v]", got.MinF, got.MaxF, want.MinF, want.MaxF)
		}
	case String:
		if got.MinS != want.MinS || got.MaxS != want.MaxS {
			t.Fatalf("string range: got [%q,%q] want [%q,%q]", got.MinS, got.MaxS, want.MinS, want.MaxS)
		}
		if !reflect.DeepEqual(got.Distinct, want.Distinct) {
			t.Fatalf("distinct sets differ: got %v want %v", got.Distinct, want.Distinct)
		}
		if (got.Bloom == nil) != (want.Bloom == nil) {
			t.Fatalf("bloom presence differs: got %v want %v", got.Bloom != nil, want.Bloom != nil)
		}
	}
}

// TestDeltaIncrementalStatsMatchRescan holds the incrementally-kept
// delta stats to a full recomputation over the accumulated rows, across
// several append batches (including distinct-set overflow into Bloom).
func TestDeltaIncrementalStatsMatchRescan(t *testing.T) {
	s := deltaTestSchema()
	rng := rand.New(rand.NewSource(7))
	d := NewDelta(s)
	for batch := 0; batch < 6; batch++ {
		d.AppendDataset(deltaBatch(s, rng, 50))
		v := d.View()
		want := statsByRescan(v.Data)
		for c := range want {
			statsEqual(t, v.Stats[c], want[c])
		}
	}
	if d.Rows() != 300 {
		t.Fatalf("Rows() = %d, want 300", d.Rows())
	}
}

// TestDeltaViewImmutable pins the snapshot contract: a view taken
// before further appends keeps its row count, cell values, and stats.
func TestDeltaViewImmutable(t *testing.T) {
	s := deltaTestSchema()
	rng := rand.New(rand.NewSource(11))
	d := NewDelta(s)
	d.AppendDataset(deltaBatch(s, rng, 40))

	v1 := d.View()
	if v2 := d.View(); v2 != v1 {
		t.Fatal("View() not cached across quiet calls")
	}
	wantRows := v1.Rows()
	wantCell := v1.Data.Int64At(0, 0)
	wantMaxI := v1.Stats[0].MaxI

	d.AppendDataset(deltaBatch(s, rng, 500)) // large enough to force reallocation
	if v1.Rows() != wantRows {
		t.Fatalf("view rows changed after append: %d -> %d", wantRows, v1.Rows())
	}
	if v1.Data.Int64At(0, 0) != wantCell {
		t.Fatal("view cell changed after append")
	}
	if v1.Stats[0].MaxI != wantMaxI {
		t.Fatal("view stats changed after append")
	}
	if v2 := d.View(); v2 == v1 || v2.Rows() != 540 {
		t.Fatalf("fresh view wrong: same=%v rows=%d", v2 == v1, v2.Rows())
	}
}

// TestDeltaReset pins the fold guard: resetting with a stale count
// panics, resetting with the snapshot count empties the delta.
func TestDeltaReset(t *testing.T) {
	s := deltaTestSchema()
	rng := rand.New(rand.NewSource(3))
	d := NewDelta(s)
	d.AppendDataset(deltaBatch(s, rng, 10))

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Reset with stale count did not panic")
			}
		}()
		d.Reset(7)
	}()

	d.Reset(10)
	if d.Rows() != 0 {
		t.Fatalf("Rows() = %d after Reset, want 0", d.Rows())
	}
	v := d.View()
	if v.Rows() != 0 || !v.Stats[0].Empty() {
		t.Fatal("view after Reset not empty")
	}
	d.AppendDataset(deltaBatch(s, rng, 5))
	if d.Rows() != 5 {
		t.Fatalf("Rows() = %d after re-append, want 5", d.Rows())
	}
}

// TestConcat checks row order and independence of the concatenated
// dataset.
func TestConcat(t *testing.T) {
	s := deltaTestSchema()
	rng := rand.New(rand.NewSource(5))
	base := deltaBatch(s, rng, 30)
	tail := deltaBatch(s, rng, 12)

	got := Concat(base, tail)
	if got.NumRows() != 42 {
		t.Fatalf("NumRows = %d, want 42", got.NumRows())
	}
	if got.Schema() != s {
		t.Fatal("Concat changed schema pointer")
	}
	for r := 0; r < base.NumRows(); r++ {
		if got.Int64At(0, r) != base.Int64At(0, r) ||
			math.Float64bits(got.Float64At(1, r)) != math.Float64bits(base.Float64At(1, r)) ||
			got.StringAt(2, r) != base.StringAt(2, r) {
			t.Fatalf("base row %d differs", r)
		}
	}
	for r := 0; r < tail.NumRows(); r++ {
		if got.Int64At(0, base.NumRows()+r) != tail.Int64At(0, r) {
			t.Fatalf("tail row %d differs", r)
		}
	}
}

// TestColumnStatsClone pins deep-copy semantics, including the Bloom
// filter after distinct-set overflow.
func TestColumnStatsClone(t *testing.T) {
	cs := newColumnStats(String)
	for i := 0; i < MaxTrackedDistinct+10; i++ {
		cs.AddString(fmt.Sprintf("v%03d", i))
	}
	if cs.Bloom == nil || cs.Distinct != nil {
		t.Fatal("expected overflowed stats")
	}
	cl := cs.Clone()
	if !cl.Bloom.MayContain("v000") {
		t.Fatal("clone lost bloom contents")
	}
	cs.AddString("zzz-only-original")
	if cl.MaxS == "zzz-only-original" {
		t.Fatal("clone shares range with original")
	}

	cs2 := newColumnStats(String)
	cs2.AddString("a")
	cl2 := cs2.Clone()
	cs2.AddString("b")
	if _, ok := cl2.Distinct["b"]; ok {
		t.Fatal("clone shares distinct map with original")
	}
}
