package exec

import (
	"fmt"
	"math"

	"oreo/internal/table"
)

// AggOp enumerates the aggregates a scan can fold over its matched
// rows.
type AggOp uint8

const (
	// AggCount counts matched rows; it takes no column.
	AggCount AggOp = iota
	// AggSum sums a numeric column over matched rows. An int64 sum that
	// overflows has no representable result and is reported invalid —
	// never a silently wrapped value. Float sums follow IEEE semantics
	// (they may go non-finite; the serving layer spells that out on the
	// wire).
	AggSum
	// AggMin / AggMax track a column's extreme over matched rows
	// (lexicographic for string columns). NaN cells of a float column
	// do not participate — they can neither seed nor beat an extreme —
	// so the result is a deterministic function of the matched set,
	// independent of the visit order a particular layout induces.
	AggMin
	AggMax
)

// String returns the wire name of the op.
func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggOp(%d)", int(op))
	}
}

// ParseAggOp resolves a wire name ("count", "sum", "min", "max").
func ParseAggOp(s string) (AggOp, error) {
	switch s {
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("exec: unknown aggregate op %q (have: count, sum, min, max)", s)
	}
}

// AggSpec requests one aggregate. Col is ignored for AggCount and names
// the aggregated column otherwise.
type AggSpec struct {
	Op  AggOp
	Col string
}

// AggValue is one computed aggregate. Type selects which of I/F/S holds
// the result: counts and int64 sums/extremes in I, float64 results in
// F, string extremes in S.
type AggValue struct {
	Op  AggOp
	Col string
	// Type is the result's type: Int64 for counts and int-column
	// aggregates, the column's type otherwise.
	Type table.ColType
	// Valid is false for MIN/MAX over zero matched rows (no extreme
	// exists) and for an int64 SUM that overflowed (no representable
	// result); counts are always valid, and an empty sum is a valid
	// zero.
	Valid bool
	I     int64
	F     float64
	S     string
}

// ValidateAggs reports whether the requested aggregates are legal for
// the schema — the same checks a Scan performs before touching data
// (column exists, sums are numeric, ops known). Callers answering for
// several stores at once (the serving layer's routed execute) validate
// every target up front so a bad aggregate fails the whole request
// before any store has executed or any counter moved.
func ValidateAggs(schema *table.Schema, aggs []AggSpec) error {
	_, err := bindAggs(schema, aggs)
	return err
}

// aggAcc folds one aggregate while a scan walks matched rows.
type aggAcc struct {
	op    AggOp
	col   string
	ci    int
	typ   table.ColType
	valid bool
	// overflowed latches an int64 sum overflow: the result is
	// unrepresentable and stays invalid no matter what follows.
	overflowed bool
	i          int64
	f          float64
	s          string
}

// bindAggs validates the requested aggregates against the schema: the
// column must exist (except for count) and sums must target numeric
// columns. Violations are client errors — an execution API must not
// silently drop an aggregate it was asked for.
func bindAggs(schema *table.Schema, aggs []AggSpec) ([]aggAcc, error) {
	return bindAggsInto(nil, schema, aggs)
}

// bindAggsInto is bindAggs appending into a caller-provided slice (the
// pooled per-scan scratch), so steady-state scans bind without
// allocating. The returned slice shares dst's backing array whenever
// capacity suffices.
func bindAggsInto(dst []aggAcc, schema *table.Schema, aggs []AggSpec) ([]aggAcc, error) {
	if len(aggs) == 0 {
		return dst, nil
	}
	accs := dst
	for _, a := range aggs {
		acc := aggAcc{op: a.Op, col: a.Col}
		switch a.Op {
		case AggCount:
			acc.ci = -1
			acc.typ = table.Int64
			acc.valid = true
		case AggSum, AggMin, AggMax:
			ci, ok := schema.Index(a.Col)
			if !ok {
				return nil, fmt.Errorf("exec: aggregate %s on unknown column %q", a.Op, a.Col)
			}
			acc.ci = ci
			acc.typ = schema.Col(ci).Type
			if a.Op == AggSum {
				if acc.typ == table.String {
					return nil, fmt.Errorf("exec: cannot sum string column %q", a.Col)
				}
				acc.valid = true // an empty sum is a valid zero
			}
		default:
			return nil, fmt.Errorf("exec: unknown aggregate op %v", a.Op)
		}
		accs = append(accs, acc)
	}
	return accs, nil
}

// add folds row r of the block into the accumulator. The caller has
// already established that the row matches the query.
func (a *aggAcc) add(blk *table.Dataset, r int) {
	switch a.op {
	case AggCount:
		a.i++
		return
	case AggSum:
		switch a.typ {
		case table.Int64:
			if a.overflowed {
				return
			}
			v := blk.Int64Col(a.ci)[r]
			sum := a.i + v
			// Two's-complement overflow: same-signed operands whose sum
			// flips sign. A wrapped value with valid:true would be
			// silent corruption; latch invalid instead.
			if (a.i > 0 && v > 0 && sum < 0) || (a.i < 0 && v < 0 && sum >= 0) {
				a.overflowed = true
				a.i = 0
				return
			}
			a.i = sum
		case table.Float64:
			a.f += blk.Float64Col(a.ci)[r]
		}
		return
	}
	// MIN / MAX: the first matched row seeds the extreme.
	switch a.typ {
	case table.Int64:
		v := blk.Int64Col(a.ci)[r]
		if !a.valid || (a.op == AggMin && v < a.i) || (a.op == AggMax && v > a.i) {
			a.i = v
		}
	case table.Float64:
		// NaN cells do not participate: an unorderable value must not
		// seed or poison the extreme, or the result would depend on
		// which matched row a scan happens to visit first — and visit
		// order changes with every reorganization. A min/max whose
		// matched rows are all NaN stays invalid.
		v := blk.Float64Col(a.ci)[r]
		if math.IsNaN(v) {
			return
		}
		if !a.valid || (a.op == AggMin && v < a.f) || (a.op == AggMax && v > a.f) {
			a.f = v
		}
	case table.String:
		v := blk.StringCol(a.ci)[r]
		if !a.valid || (a.op == AggMin && v < a.s) || (a.op == AggMax && v > a.s) {
			a.s = v
		}
	}
	a.valid = true
}

// value finalizes the accumulator.
func (a *aggAcc) value() AggValue {
	return AggValue{Op: a.op, Col: a.col, Type: a.typ, Valid: a.valid && !a.overflowed, I: a.i, F: a.f, S: a.s}
}
