package layout

import (
	"testing"

	"oreo/internal/query"
)

func BenchmarkQdTreeGenerate(b *testing.B) {
	d := testDataset(b, 20000, 99)
	qs := qdWorkload(200, 100)
	g := NewQdTreeGenerator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(d, qs, 32)
	}
}

func BenchmarkZOrderGenerate(b *testing.B) {
	d := testDataset(b, 20000, 99)
	qs := qdWorkload(200, 100)
	g := NewZOrderGenerator(3, "ts")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(d, qs, 32)
	}
}

func BenchmarkBottomUpGenerate(b *testing.B) {
	d := testDataset(b, 20000, 99)
	qs := qdWorkload(200, 100)
	g := NewBottomUpGenerator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(d, qs, 32)
	}
}

func BenchmarkLayoutCost(b *testing.B) {
	d := testDataset(b, 20000, 99)
	qs := qdWorkload(64, 100)
	l := NewQdTreeGenerator().Generate(d, qs, 64)
	q := query.Query{Preds: []query.Predicate{query.IntRange("ts", 100, 5000)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Cost(q)
	}
}

func BenchmarkCostVectorDistance(b *testing.B) {
	d := testDataset(b, 10000, 99)
	qs := qdWorkload(100, 100)
	l1 := NewQdTreeGenerator().Generate(d, qs, 32)
	l2 := NewSortGenerator("ts").Generate(d, nil, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Distance(l1.CostVector(qs), l2.CostVector(qs))
	}
}
