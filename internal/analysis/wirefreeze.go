package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// WirefreezeConfig names the package whose wire types are frozen, the
// manifest file pinning their shapes, and the frozen type set.
type WirefreezeConfig struct {
	// PackagePath is the import path (exact, or matched as a /suffix)
	// of the package holding the wire types.
	PackagePath string
	// ManifestRel locates the manifest file relative to the package
	// directory.
	ManifestRel string
	// Types are the frozen type names. The manifest must cover
	// exactly this set; shape drift in either direction is a
	// diagnostic.
	Types []string
}

// Wirefreeze extracts the JSON struct-tag shape of every frozen /v1
// wire type and diffs it against the checked-in manifest, so a /v1
// compatibility break — a deleted tag, a reordered field, a changed
// Go type, a new omitempty — is a compile-time diagnostic at the
// type's declaration, not a golden-file surprise three test layers
// later.
//
// The shape of a type is the ordered list of its JSON-visible fields:
// Go name, wire name, omitempty flag, and Go type (field order
// matters — it is encoding/json's output order, and /v1 is frozen
// byte-for-byte). The manifest is regenerated only for an
// intentional, reviewed change via `oreovet -update-wire-manifest`;
// editing it by hand to silence this analyzer is the moral equivalent
// of refreshing a golden file to hide a break.
func Wirefreeze(cfg WirefreezeConfig) *Analyzer {
	a := &Analyzer{
		Name: "wirefreeze",
		Doc:  "frozen /v1 wire-type shapes must match the checked-in manifest",
	}
	a.Run = func(pass *Pass) {
		if !pathMatch(pass.Pkg, []string{cfg.PackagePath}) {
			return
		}
		pkgPos := pass.Pkg.Files[0].Name.Pos()
		manifestPath := filepath.Join(pass.Pkg.Dir, cfg.ManifestRel)
		data, err := os.ReadFile(manifestPath)
		if err != nil {
			pass.Reportf(pkgPos, "wire manifest %s unreadable (%v); run `oreovet -update-wire-manifest` and review the diff", cfg.ManifestRel, err)
			return
		}
		want, err := parseManifest(string(data))
		if err != nil {
			pass.Reportf(pkgPos, "wire manifest %s: %v", cfg.ManifestRel, err)
			return
		}

		// The union of configured and manifest-listed types: a type
		// dropped from either side is drift, not silence.
		names := append([]string(nil), cfg.Types...)
		for name := range want {
			if !containsString(names, name) {
				names = append(names, name)
			}
		}
		sort.Strings(names)

		for _, name := range names {
			wantShape, inManifest := want[name]
			gotShape, pos, err := typeShape(pass.Pkg, name)
			if !inManifest {
				pass.Reportf(pos, "wire type %s is frozen but missing from %s; run `oreovet -update-wire-manifest` to pin it", name, cfg.ManifestRel)
				continue
			}
			if err != nil {
				pass.Reportf(pkgPos, "wire type %s is pinned in %s but %v — deleting a /v1 type is a compatibility break", name, cfg.ManifestRel, err)
				continue
			}
			if diff := shapeDiff(wantShape, gotShape); diff != "" {
				pass.Reportf(pos, "wire type %s drifted from its frozen shape (%s); /v1 is frozen byte-for-byte — revert, or regenerate the manifest only for a reviewed, intentional change", name, diff)
			}
		}
	}
	return a
}

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// fieldShape is one JSON-visible struct field, in declaration order.
type fieldShape struct {
	GoName    string
	JSONName  string
	OmitEmpty bool
	Type      string
}

func (f fieldShape) String() string {
	opt := "required"
	if f.OmitEmpty {
		opt = "omitempty"
	}
	return fmt.Sprintf("%s json=%s %s type=%s", f.GoName, f.JSONName, opt, f.Type)
}

// typeShape extracts the current shape of a named struct type,
// returning its declaration position for diagnostics.
func typeShape(pkg *Package, name string) ([]fieldShape, token.Pos, error) {
	pkgPos := pkg.Files[0].Name.Pos()
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil, pkgPos, fmt.Errorf("no longer exists in package %s", pkg.ImportPath)
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, obj.Pos(), fmt.Errorf("is no longer a struct")
	}
	qual := types.RelativeTo(pkg.Types)
	var fields []fieldShape
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		jsonName := f.Name()
		omit := false
		if tag != "" {
			parts := strings.Split(tag, ",")
			if parts[0] == "-" && len(parts) == 1 {
				continue
			}
			if parts[0] != "" {
				jsonName = parts[0]
			}
			for _, p := range parts[1:] {
				if p == "omitempty" {
					omit = true
				}
			}
		}
		fields = append(fields, fieldShape{
			GoName:    f.Name(),
			JSONName:  jsonName,
			OmitEmpty: omit,
			Type:      types.TypeString(f.Type(), qual),
		})
	}
	return fields, obj.Pos(), nil
}

// shapeDiff returns "" when the shapes match, or a one-line
// description of the first divergence.
func shapeDiff(want, got []fieldShape) string {
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("field %d: manifest pins %q, source has %q", i+1, want[i], got[i])
		}
	}
	switch {
	case len(got) < len(want):
		return fmt.Sprintf("field %d %q was removed", len(got)+1, want[len(got)])
	case len(got) > len(want):
		return fmt.Sprintf("field %d %q was added", len(want)+1, got[len(want)])
	}
	return ""
}

// parseManifest reads the manifest format WireManifest writes:
// '#'-comments, "type <Name>" headers, one tab-indented field line
// per JSON-visible field.
func parseManifest(text string) (map[string][]fieldShape, error) {
	out := make(map[string][]fieldShape)
	var cur string
	for ln, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "type "); ok {
			cur = strings.TrimSpace(rest)
			if _, dup := out[cur]; dup {
				return nil, fmt.Errorf("line %d: duplicate type %s", ln+1, cur)
			}
			out[cur] = nil
			continue
		}
		if !strings.HasPrefix(line, "\t") || cur == "" {
			return nil, fmt.Errorf("line %d: expected 'type <Name>' or tab-indented field line", ln+1)
		}
		f, err := parseFieldLine(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		out[cur] = append(out[cur], f)
	}
	return out, nil
}

func parseFieldLine(s string) (fieldShape, error) {
	// <GoName> json=<name> <required|omitempty> type=<go type with spaces>
	parts := strings.SplitN(s, " ", 4)
	if len(parts) != 4 ||
		!strings.HasPrefix(parts[1], "json=") || !strings.HasPrefix(parts[3], "type=") ||
		(parts[2] != "required" && parts[2] != "omitempty") {
		return fieldShape{}, fmt.Errorf("malformed field line %q", s)
	}
	return fieldShape{
		GoName:    parts[0],
		JSONName:  strings.TrimPrefix(parts[1], "json="),
		OmitEmpty: parts[2] == "omitempty",
		Type:      strings.TrimPrefix(parts[3], "type="),
	}, nil
}

// WireManifest renders the current shapes of the named types in pkg
// as manifest text — the generator behind `oreovet
// -update-wire-manifest` and the bootstrap for new frozen types.
func WireManifest(pkg *Package, typeNames []string) (string, error) {
	var b strings.Builder
	b.WriteString("# oreovet wirefreeze manifest — the frozen /v1 wire shapes.\n")
	b.WriteString("# A diff here IS a /v1 compatibility break. Regenerate only for an\n")
	b.WriteString("# intentional, reviewed change:  go run ./cmd/oreovet -update-wire-manifest\n")
	names := append([]string(nil), typeNames...)
	sort.Strings(names)
	for _, name := range names {
		fields, _, err := typeShape(pkg, name)
		if err != nil {
			return "", fmt.Errorf("%s: %v", name, err)
		}
		fmt.Fprintf(&b, "type %s\n", name)
		for _, f := range fields {
			fmt.Fprintf(&b, "\t%s\n", f)
		}
	}
	return b.String(), nil
}
