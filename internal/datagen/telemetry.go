package datagen

import (
	"math/rand"

	"oreo/internal/table"
)

// Telemetry models the SuperCollider ingestion-monitoring table the
// paper studies: six months of per-job log records, where the dominant
// predicates are ranges on the record arrival time (hours to months
// wide) and filters on the collector that sent the data.
//
// Times are encoded as int64 seconds since an arbitrary epoch start.
const (
	// TelemetryTimeMin is the start of the six-month window (seconds).
	TelemetryTimeMin int64 = 0
	// TelemetryTimeMax is ~183 days later (seconds).
	TelemetryTimeMax int64 = 183 * 24 * 3600
	// TelemetryNumCollectors is the collector-name cardinality.
	TelemetryNumCollectors = 50
)

// Telemetry dimension vocabularies.
var (
	TelemetryCollectors = seq("collector-", TelemetryNumCollectors)
	TelemetryTeams      = seq("team-", 20)
	TelemetryStatuses   = []string{"FAILED", "OK", "RETRIED", "TIMEOUT"}
	TelemetryRegions    = []string{"ap-south", "eu-central", "eu-west", "us-east", "us-west"}
)

// TelemetrySchema returns the ingestion-log schema.
func TelemetrySchema() *table.Schema {
	return table.NewSchema(
		table.Column{Name: "arrival_time", Type: table.Int64},
		table.Column{Name: "collector", Type: table.String},
		table.Column{Name: "team", Type: table.String},
		table.Column{Name: "job_id", Type: table.Int64},
		table.Column{Name: "status", Type: table.String},
		table.Column{Name: "region", Type: table.String},
		table.Column{Name: "duration_ms", Type: table.Int64},
		table.Column{Name: "bytes_ingested", Type: table.Int64},
		table.Column{Name: "record_count", Type: table.Int64},
		table.Column{Name: "error_code", Type: table.Int64},
		table.Column{Name: "retry_count", Type: table.Int64},
		table.Column{Name: "lag_seconds", Type: table.Float64},
	)
}

// GenerateTelemetry builds the ingestion-log table with `rows` rows.
// Rows are strictly arrival-time ordered (it is an append-only log), so
// the default time layout skips perfectly for time-range queries — the
// realistic starting point the paper's default layout represents.
// Collectors are sticky: each collector reports in bursts, so collector
// values cluster in time, which gives workload-aware layouts something
// to exploit.
func GenerateTelemetry(rows int, rng *rand.Rand) *table.Dataset {
	schema := TelemetrySchema()
	b := table.NewBuilder(schema, rows)

	span := TelemetryTimeMax - TelemetryTimeMin
	// Sticky collector state: switch collectors every ~200 rows.
	collector := uniformStrings(rng, TelemetryCollectors)
	team := uniformStrings(rng, TelemetryTeams)
	for i := 0; i < rows; i++ {
		if rng.Float64() < 1.0/200 {
			collector = zipfStrings(rng, TelemetryCollectors)
			team = uniformStrings(rng, TelemetryTeams)
		}
		t := TelemetryTimeMin + int64(float64(i)/float64(rows)*float64(span))

		status := "OK"
		errCode := int64(0)
		retries := int64(0)
		r := rng.Float64()
		switch {
		case r < 0.02:
			status = "FAILED"
			errCode = int64(400 + rng.Intn(200))
			retries = int64(rng.Intn(5))
		case r < 0.05:
			status = "RETRIED"
			retries = int64(1 + rng.Intn(4))
		case r < 0.06:
			status = "TIMEOUT"
			errCode = 504
		}

		recs := int64(100 + rng.Intn(1_000_000))
		b.AppendRow(
			table.Int(t),
			table.Str(collector),
			table.Str(team),
			table.Int(int64(i)),
			table.Str(status),
			table.Str(zipfStrings(rng, TelemetryRegions)),
			table.Int(int64(50+rng.Intn(600_000))),
			table.Int(recs*int64(80+rng.Intn(200))),
			table.Int(recs),
			table.Int(errCode),
			table.Int(retries),
			table.Float(rng.Float64()*3600),
		)
	}
	return b.Build()
}
