package query

import (
	"fmt"
	"testing"

	"oreo/internal/table"
)

// Edge cases around metadata evaluation that the main tests do not
// reach: distinct-set overflow, float ranges, half-open bounds, and
// predicates whose types disagree with the column.

func TestMayMatchAfterDistinctOverflow(t *testing.T) {
	schema := table.NewSchema(table.Column{Name: "s", Type: table.String})
	b := table.NewBuilder(schema, 0)
	// Exceed MaxTrackedDistinct so the partition falls back to range
	// metadata [v000, v199].
	for i := 0; i < 200; i++ {
		b.AppendRow(table.Str(fmt.Sprintf("v%03d", i)))
	}
	d := b.Build()
	p := table.MustBuildPartitioning(d, make([]int, 200), 1)

	// Soundness: every present value must stay scannable after the
	// exact set degrades to Bloom-filter metadata.
	for i := 0; i < 200; i++ {
		q := Query{Preds: []Predicate{StrEq("s", fmt.Sprintf("v%03d", i))}}
		if !q.MayMatch(d.Schema(), p.Meta[0]) {
			t.Fatalf("present value v%03d ruled out after overflow", i)
		}
	}
	// Out of range: prunable regardless of the Bloom filter.
	if (Query{Preds: []Predicate{StrEq("s", "zzz")}}).MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("out-of-range value not pruned")
	}
	// Absent in-range values are usually pruned by the Bloom filter;
	// allow false positives but not a 100% pass-through.
	passed := 0
	for i := 0; i < 200; i++ {
		q := Query{Preds: []Predicate{StrEq("s", fmt.Sprintf("v%03dx", i))}}
		if q.MayMatch(d.Schema(), p.Meta[0]) {
			passed++
		}
	}
	if passed > 60 {
		t.Errorf("bloom metadata passed %d/200 absent values; filter ineffective", passed)
	}
}

func TestMayMatchFloatRanges(t *testing.T) {
	schema := table.NewSchema(table.Column{Name: "f", Type: table.Float64})
	b := table.NewBuilder(schema, 4)
	for _, v := range []float64{1.5, 2.5, 3.5, 4.5} {
		b.AppendRow(table.Float(v))
	}
	d := b.Build()
	p := table.MustBuildPartitioning(d, []int{0, 0, 1, 1}, 2)

	q := Query{Preds: []Predicate{FloatRange("f", 3.0, 4.0)}}
	if q.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("partition [1.5,2.5] not skipped for [3,4]")
	}
	if !q.MayMatch(d.Schema(), p.Meta[1]) {
		t.Error("partition [3.5,4.5] wrongly skipped for [3,4]")
	}
	// Boundary touch: [2.5, 2.6] overlaps partition 0 at its max.
	q2 := Query{Preds: []Predicate{FloatRange("f", 2.5, 2.6)}}
	if !q2.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("inclusive boundary not treated as overlap")
	}
}

func TestMayMatchHalfOpenBounds(t *testing.T) {
	schema := table.NewSchema(table.Column{Name: "i", Type: table.Int64})
	b := table.NewBuilder(schema, 3)
	for _, v := range []int64{10, 20, 30} {
		b.AppendRow(table.Int(v))
	}
	d := b.Build()
	p := table.MustBuildPartitioning(d, []int{0, 0, 0}, 1)
	if !(Query{Preds: []Predicate{IntGE("i", 30)}}).MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("GE at exact max skipped")
	}
	if (Query{Preds: []Predicate{IntGE("i", 31)}}).MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("GE above max not skipped")
	}
	if !(Query{Preds: []Predicate{IntLE("i", 10)}}).MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("LE at exact min skipped")
	}
	if (Query{Preds: []Predicate{IntLE("i", 9)}}).MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("LE below min not skipped")
	}
}

func TestTypeMismatchMetadata(t *testing.T) {
	d := testDataset(t, 20, 50)
	p := table.MustBuildPartitioning(d, make([]int, 20), 1)
	// String predicate on numeric column can never match: the partition
	// is skippable.
	if (Query{Preds: []Predicate{StrEq("ts", "5")}}).MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("string predicate on int column not pruned")
	}
	// Numeric predicate on string column likewise.
	if (Query{Preds: []Predicate{IntGE("region", 0)}}).MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("numeric predicate on string column not pruned")
	}
	// MayMatch and MatchRow must agree on emptiness for mismatches.
	if Selectivity(d, Query{Preds: []Predicate{StrEq("ts", "5")}}) != 0 {
		t.Error("row evaluation disagrees with metadata evaluation")
	}
}

func TestFractionScannedEmptyTable(t *testing.T) {
	schema := table.NewSchema(table.Column{Name: "i", Type: table.Int64})
	d := table.NewBuilder(schema, 0).Build()
	p := &table.Partitioning{NumPartitions: 1, Assign: nil,
		Meta: []*table.PartitionMeta{table.NewPartitionMeta(0, schema)}, TotalRows: 0}
	if got := FractionScanned(schema, p, Query{}); got != 0 {
		t.Errorf("empty table fraction = %g", got)
	}
	if got := Selectivity(d, Query{}); got != 0 {
		t.Errorf("empty table selectivity = %g", got)
	}
}

func TestStrInMixedPresence(t *testing.T) {
	d := testDataset(t, 50, 51)
	p := table.MustBuildPartitioning(d, make([]int, 50), 1)
	// IN with one present and one absent value must match.
	q := Query{Preds: []Predicate{StrIn("region", "east", "nowhere")}}
	if !q.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("IN with a present member pruned")
	}
	// IN with only absent values must prune.
	q2 := Query{Preds: []Predicate{StrIn("region", "nowhere", "elsewhere")}}
	if q2.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("IN with no present members not pruned")
	}
}

func TestContradictoryConjunction(t *testing.T) {
	d := testDataset(t, 50, 52)
	p := table.MustBuildPartitioning(d, make([]int, 50), 1)
	// lo > hi can match nothing; metadata evaluation prunes it because
	// the partition range cannot satisfy both bounds.
	q := Query{Preds: []Predicate{IntGE("ts", 2000), IntLE("ts", -1)}}
	if Selectivity(d, q) != 0 {
		t.Error("contradictory range matched rows")
	}
	if q.MayMatch(d.Schema(), p.Meta[0]) {
		t.Error("contradictory range not pruned by metadata")
	}
}
