package replica

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// termFile is the name of the fencing-term file inside a state
// directory. The file holds one decimal number: the highest leadership
// term this process has published at.
const termFile = "leader.term"

// LoadTerm reads the persisted fencing term from a state directory. A
// missing file (or directory) is term 0, not an error — a fleet that
// has never failed over has nothing to restore. Anything else
// unreadable or unparseable is an error: silently booting at term 1 on
// a corrupt file is exactly the self-fencing accident the persisted
// term exists to prevent.
func LoadTerm(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, termFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("replica: reading fencing term: %w", err)
	}
	gen, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: parsing fencing term file %s: %w", filepath.Join(dir, termFile), err)
	}
	return gen, nil
}

// SaveTerm durably records the fencing term in a state directory
// (created if missing): write-to-temp, fsync, rename, so a crash never
// leaves a torn file, and a reboot restores the exact term the process
// last published at instead of regressing to 1 and being fenced out by
// its own followers.
func SaveTerm(dir string, gen uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("replica: creating state directory: %w", err)
	}
	path := filepath.Join(dir, termFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("replica: writing fencing term: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", gen); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("replica: writing fencing term: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replica: writing fencing term: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replica: writing fencing term: %w", err)
	}
	return nil
}
