package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Parallel scan driver: a bounded worker pool claims survivor blocks
// off an atomic counter, scans each block independently (selection +
// per-block aggregate partials, using pooled per-worker scratch), and
// the driver merges the per-block outputs strictly in skip-list order
// after all workers drain. Because aggregate partials are merged in
// the same block order the sequential path uses — and blocks with zero
// matched rows are skipped by both — the parallel result is
// bit-identical to the sequential one: same Result.RowIDs sequence,
// same aggregate IEEE-754 bits, regardless of worker count or
// scheduling.

// blockOut is one survivor block's scan output, indexed by position in
// the survivor list.
type blockOut struct {
	matched  int
	partials []aggAcc
	rowIDs   []int
}

// scanParallel executes the bound scan over the survivor blocks with
// the given worker count (>= 2, <= len(survivors)). Workers check
// opts.Context between blocks: on cancellation every worker stops
// claiming blocks and the scan returns the context error once the pool
// has drained — no goroutine outlives the call.
func (s *Store) scanParallel(res *Result, preds []kernPred, survivors []int, accs []aggAcc, workers int, opts Options) error {
	outs := make([]blockOut, len(survivors))
	var parts []aggAcc
	if len(accs) > 0 {
		parts = make([]aggAcc, len(survivors)*len(accs))
	}
	var (
		next     atomic.Int64
		canceled atomic.Bool
		wg       sync.WaitGroup
	)
	ctx := opts.Context
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wsc := getScratch()
			defer putScratch(wsc)
			for {
				if canceled.Load() {
					return
				}
				idx := int(next.Add(1)) - 1
				if idx >= len(survivors) {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				pid := survivors[idx]
				blk := s.blocks[pid]
				if blk.NumRows() == 0 {
					continue
				}
				sel := s.selectBlock(preds, pid, &wsc.sel)
				if len(sel) == 0 {
					continue
				}
				out := &outs[idx]
				out.matched = len(sel)
				if len(accs) > 0 {
					out.partials = parts[idx*len(accs) : (idx+1)*len(accs)]
					for i := range accs {
						out.partials[i] = foldBlockAgg(blk, sel, &accs[i])
					}
				}
				if opts.CollectRows {
					ids := s.rowIDs[pid]
					rids := make([]int, len(sel))
					for j, r := range sel {
						rids[j] = ids[r]
					}
					out.rowIDs = rids
				}
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return fmt.Errorf("exec: scan canceled: %w", ctx.Err())
	}
	// Deterministic merge in skip-list order.
	for idx, pid := range survivors {
		res.PartitionsRead++
		res.RowsExamined += s.blocks[pid].NumRows()
		out := &outs[idx]
		if out.matched == 0 {
			continue
		}
		res.Matched += out.matched
		for i := range accs {
			mergeAgg(&accs[i], &out.partials[i])
		}
		if opts.CollectRows {
			res.RowIDs = append(res.RowIDs, out.rowIDs...)
		}
	}
	res.Workers = workers
	return nil
}
