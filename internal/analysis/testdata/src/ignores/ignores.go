// Package ignores seeds suppression-directive misuse for the driver
// test: a reason-less ignore (flagged, and it must NOT suppress), an
// ignore naming an unknown analyzer (flagged), and a well-formed one
// (silent).
package ignores

func reasonless(a, b float64) bool {
	//oreovet:ignore floatbits
	return a == b
}

func unknown(a, b float64) bool {
	//oreovet:ignore nosuchanalyzer the analyzer name is a typo
	return a == b
}

func justified(a, b float64) bool {
	//oreovet:ignore floatbits seeded: this equality is the driver test's well-formed suppression
	return a == b
}

var _ = []any{reasonless, unknown, justified}
