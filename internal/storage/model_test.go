package storage

import (
	"testing"
	"testing/quick"
)

func TestDefaultAlphaBand(t *testing.T) {
	// The paper measures alpha in the 60x–100x band across 16MB–4GB
	// (Table I); the simulator must stay in that band.
	m := DefaultDiskModel()
	for _, r := range m.MeasureAlpha(nil) {
		if r.Alpha < 55 || r.Alpha > 105 {
			t.Errorf("alpha(%gMB) = %.1f outside the paper's 60-100x band", r.FileMB, r.Alpha)
		}
	}
}

func TestAlphaDipsAtLargeFiles(t *testing.T) {
	// Table I's characteristic shape: alpha rises with file size, then
	// drops once the scan itself starts spilling (4096MB row).
	m := DefaultDiskModel()
	rows := m.MeasureAlpha(nil)
	if rows[3].Alpha <= rows[0].Alpha {
		t.Errorf("alpha not rising: %v vs %v", rows[3].Alpha, rows[0].Alpha)
	}
	last := rows[len(rows)-1]
	if last.Alpha >= rows[3].Alpha {
		t.Errorf("alpha(4096) = %.1f did not dip below alpha(1024) = %.1f", last.Alpha, rows[3].Alpha)
	}
}

func TestScanSecondsMonotone(t *testing.T) {
	m := DefaultDiskModel()
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		return m.ScanSeconds(a) <= m.ScanSeconds(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReorgSecondsMonotone(t *testing.T) {
	m := DefaultDiskModel()
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		return m.ReorgSeconds(a) <= m.ReorgSeconds(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeVolumeClamped(t *testing.T) {
	m := DefaultDiskModel()
	if got := m.ScanSeconds(-5); got != m.ScanSeconds(0) {
		t.Errorf("negative scan volume = %g", got)
	}
	if got := m.ReorgSeconds(-5); got != m.ReorgSeconds(0) {
		t.Errorf("negative reorg volume = %g", got)
	}
}

func TestSpillKink(t *testing.T) {
	m := DefaultDiskModel()
	// Marginal cost per MB above the spill threshold must exceed the
	// marginal cost below it.
	below := m.ScanSeconds(m.SpillThresholdMB) - m.ScanSeconds(m.SpillThresholdMB-100)
	above := m.ScanSeconds(m.SpillThresholdMB+200) - m.ScanSeconds(m.SpillThresholdMB+100)
	if above <= below {
		t.Errorf("no spill kink: marginal below=%g above=%g", below, above)
	}
}

func TestMeasureAlphaCustomSizes(t *testing.T) {
	m := DefaultDiskModel()
	rows := m.MeasureAlpha([]float64{100, 200})
	if len(rows) != 2 || rows[0].FileMB != 100 || rows[1].FileMB != 200 {
		t.Fatalf("MeasureAlpha rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Alpha != r.ReorgSeconds/r.QuerySeconds {
			t.Errorf("alpha not consistent with components: %+v", r)
		}
	}
}

func TestAlphaZeroScan(t *testing.T) {
	m := DiskModel{ReadMBps: 1, DecompressMBps: 1, CompressMBps: 1, WriteMBps: 1, ShuffleMBps: 1, SpillMBps: 1}
	if got := m.Alpha(0); got == 0 {
		// QueryStartup is 0 here so scan(0)=0; Alpha must return 0, not NaN.
		t.Skip("scan(0) nonzero in this configuration")
	}
}

func TestTable1SizesMatchPaper(t *testing.T) {
	want := []float64{16, 64, 256, 1024, 4096}
	if len(Table1Sizes) != len(want) {
		t.Fatalf("Table1Sizes = %v", Table1Sizes)
	}
	for i := range want {
		if Table1Sizes[i] != want[i] {
			t.Fatalf("Table1Sizes = %v, want %v", Table1Sizes, want)
		}
	}
}
