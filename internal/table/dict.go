package table

// StringDict is a dictionary encoding for one string column: every
// distinct value is assigned a dense uint32 code in first-appearance
// order, so a column of strings becomes a column of codes and string
// comparisons become integer comparisons. Immutable after construction
// and safe for concurrent use.
//
// The execution layer builds one shared dictionary per string column of
// a dataset at store-build time: because the dictionary covers the
// whole dataset, every per-partition block encodes against the same
// code space, and an IN-set predicate becomes a one-time translation of
// its members into a code set followed by a single integer-set probe
// per row — no string hashing on the scan hot path. A value absent from
// the dictionary is, by construction, absent from every row, so an
// IN set that translates to no codes matches nothing anywhere.
type StringDict struct {
	codes  map[string]uint32
	values []string
}

// BuildStringDict scans vals once, assigning each distinct value a code
// in first-appearance order, and returns the dictionary together with
// the column encoded as codes (encoded[i] is the code of vals[i]).
func BuildStringDict(vals []string) (*StringDict, []uint32) {
	d := &StringDict{codes: make(map[string]uint32)}
	encoded := make([]uint32, len(vals))
	for i, v := range vals {
		c, ok := d.codes[v]
		if !ok {
			c = uint32(len(d.values))
			d.codes[v] = c
			d.values = append(d.values, v)
		}
		encoded[i] = c
	}
	return d, encoded
}

// Code returns the code of v and whether v occurs in the dictionary.
func (d *StringDict) Code(v string) (uint32, bool) {
	c, ok := d.codes[v]
	return c, ok
}

// Value returns the string a code stands for. Codes come from Code or
// from an encoded column, so out-of-range codes are programming errors.
func (d *StringDict) Value(c uint32) string { return d.values[c] }

// Len returns the number of distinct values (the code space size:
// valid codes are [0, Len)).
func (d *StringDict) Len() int { return len(d.values) }
