package exec

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"oreo/internal/prune"
	"oreo/internal/query"
	"oreo/internal/table"
)

// TestWriteBenchExecJSON is the repeatable harness step behind the
// checked-in BENCH_exec.json trajectory artifact. It is inert unless
// OREO_BENCH_OUT names an output path:
//
//	OREO_BENCH_OUT=BENCH_exec.json go test ./internal/exec -run TestWriteBenchExecJSON -v
//
// "before" is the interpreted row-at-a-time engine (the pre-kernel
// Scan), "after" is the vectorized kernel engine; both run the
// BenchmarkScanBySurvivorCount and BenchmarkScanByPartitionCount
// shapes, plus the parallel scaling curve and the store-rebuild /
// dictionary-build costs, through testing.Benchmark.
func TestWriteBenchExecJSON(t *testing.T) {
	out := os.Getenv("OREO_BENCH_OUT")
	if out == "" {
		t.Skip("set OREO_BENCH_OUT=<path> to write the bench artifact")
	}

	type shape struct {
		Survivors  int     `json:"survivors,omitempty"`
		Partitions int     `json:"partitions,omitempty"`
		Workers    int     `json:"workers,omitempty"`
		BeforeNs   float64 `json:"before_ns_per_op,omitempty"`
		AfterNs    float64 `json:"after_ns_per_op,omitempty"`
		Ns         float64 `json:"ns_per_op,omitempty"`
		Speedup    float64 `json:"speedup,omitempty"`
	}
	report := struct {
		Benchmark        string  `json:"benchmark"`
		Date             string  `json:"date"`
		GOOS             string  `json:"goos"`
		GOARCH           string  `json:"goarch"`
		NumCPU           int     `json:"num_cpu"`
		Rows             int     `json:"rows"`
		Note             string  `json:"note"`
		BySurvivorCount  []shape `json:"scan_by_survivor_count"`
		ByPartitionCount []shape `json:"scan_by_partition_count"`
		ParallelScaling  []shape `json:"parallel_scaling"`
		StringIn         shape   `json:"scan_string_in"`
		StoreRebuildNs   float64 `json:"store_rebuild_ns_per_op"`
		DictBuildNs      float64 `json:"dict_build_ns_per_op"`
		TaggedRebuildNs  float64 `json:"store_rebuild_tagged_ns_per_op"`
	}{
		Benchmark: "internal/exec scan kernels",
		Date:      os.Getenv("OREO_BENCH_DATE"),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Rows:      131072,
		Note: "before = interpreted row-at-a-time engine (pre-kernel Scan); " +
			"after = vectorized selection-vector kernels, single-threaded unless workers set",
	}

	const rows, k = 131072, 64
	ds, store := benchStore(rows, k)
	per := int64(rows / k)
	aggs := []AggSpec{{Op: AggCount}, {Op: AggSum, Col: "val"}}

	scanNs := func(q query.Query, ids []int, ag []AggSpec, opts Options, want int, interpreted bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var res Result
				var err error
				if interpreted {
					res, err = store.ScanInterpreted(q, ids, ag, opts)
				} else {
					res, err = store.Scan(q, ids, ag, opts)
				}
				if err != nil || res.Matched != want {
					b.Fatalf("scan: %v (matched %d)", err, res.Matched)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}

	for _, nsurv := range []int{1, 4, 16, 64} {
		q := query.Query{Preds: []query.Predicate{
			query.IntRange("ts", 0, per*int64(nsurv)-1),
		}}
		ids, _ := prune.Compile(ds.Schema(), q).Survivors(store.Partitioning())
		want := int(per) * nsurv
		before := scanNs(q, ids, aggs, Options{}, want, true)
		after := scanNs(q, ids, aggs, Options{Parallelism: 1}, want, false)
		report.BySurvivorCount = append(report.BySurvivorCount, shape{
			Survivors: nsurv, BeforeNs: before, AfterNs: after, Speedup: before / after,
		})
		t.Logf("survivors=%d: before %.0f ns/op, after %.0f ns/op (%.2fx)", nsurv, before, after, before/after)
	}

	for _, parts := range []int{64, 256, 1024} {
		pds, pstore := benchStore(rows, parts)
		q := query.Query{Preds: []query.Predicate{query.IntRange("ts", 0, rows/16-1)}}
		ids, _ := prune.Compile(pds.Schema(), q).Survivors(pstore.Partitioning())
		bench := func(interpreted bool) float64 {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var res Result
					var err error
					if interpreted {
						res, err = pstore.ScanInterpreted(q, ids, nil, Options{})
					} else {
						res, err = pstore.Scan(q, ids, nil, Options{})
					}
					if err != nil || res.Matched != rows/16 {
						b.Fatalf("scan: %v (matched %d)", err, res.Matched)
					}
				}
			})
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
		before, after := bench(true), bench(false)
		report.ByPartitionCount = append(report.ByPartitionCount, shape{
			Partitions: parts, BeforeNs: before, AfterNs: after, Speedup: before / after,
		})
		t.Logf("partitions=%d: before %.0f ns/op, after %.0f ns/op (%.2fx)", parts, before, after, before/after)
	}

	{
		q := query.Query{Preds: []query.Predicate{query.IntRange("ts", 0, rows-1)}}
		ids, _ := prune.Compile(ds.Schema(), q).Survivors(store.Partitioning())
		var seq float64
		for _, workers := range []int{1, 2, 4, 8} {
			ns := scanNs(q, ids, aggs, Options{Parallelism: workers}, rows, false)
			sh := shape{Workers: workers, Ns: ns}
			if workers == 1 {
				seq = ns
			} else {
				sh.Speedup = seq / ns
			}
			report.ParallelScaling = append(report.ParallelScaling, sh)
			t.Logf("workers=%d: %.0f ns/op", workers, ns)
		}
	}

	{
		tds, tstore := benchStoreTagged(rows, k)
		q := query.Query{Preds: []query.Predicate{query.StrIn("tag", "t00", "t03", "t07", "t11")}}
		ids := tstore.AllPartitions()
		inNs := func(interpreted bool) float64 {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var res Result
					var err error
					if interpreted {
						res, err = tstore.ScanInterpreted(q, ids, nil, Options{})
					} else {
						res, err = tstore.Scan(q, ids, nil, Options{})
					}
					if err != nil || res.Matched != rows/4 {
						b.Fatalf("scan: %v (matched %d)", err, res.Matched)
					}
				}
			})
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
		before, after := inNs(true), inNs(false)
		report.StringIn = shape{BeforeNs: before, AfterNs: after, Speedup: before / after}
		t.Logf("string IN: before %.0f ns/op, after %.0f ns/op (%.2fx)", before, after, before/after)

		part := tstore.Partitioning()
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewStore(tds, part); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.TaggedRebuildNs = float64(r.T.Nanoseconds()) / float64(r.N)

		col := tds.StringCol(2)
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if d, enc := table.BuildStringDict(col); d.Len() != 16 || len(enc) != rows {
					b.Fatalf("dict %d values, %d codes", d.Len(), len(enc))
				}
			}
		})
		report.DictBuildNs = float64(r.T.Nanoseconds()) / float64(r.N)
	}

	{
		part := store.Partitioning()
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewStore(ds, part); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.StoreRebuildNs = float64(r.T.Nanoseconds()) / float64(r.N)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
