// Package prune implements OREO's compiled pruning engine: the fast
// path for the service cost c(s, q) that the whole online loop is built
// on (query.FractionScanned in the interpreted model).
//
// The interpreted path re-resolves every predicate's column name via a
// map lookup per partition per predicate and walks pointer-chased
// per-partition metadata. That is fine for a single evaluation but the
// layout manager re-costs every candidate layout against the full
// sliding window each period, and the admission rule (Algorithm 5)
// recomputes cost vectors for every incumbent — thousands of
// evaluations per period over identical (layout, query) pairs.
//
// This package splits the work into three stages:
//
//   - Compile binds each predicate once against a *table.Schema: column
//     index, type-resolved kind, typed bounds, and an interned IN-set
//     with precomputed Bloom hash pairs. Unknown columns compile to
//     "cannot prune" and type mismatches to "never matches", mirroring
//     Predicate.MayMatch exactly.
//   - CompiledQuery.FractionScanned evaluates against the partitioning's
//     column-major statistics block (table.StatsBlock): each numeric
//     predicate sweeps two contiguous min/max arrays and clears bits in
//     a partition survivor mask, with zero map lookups and zero heap
//     allocations on the hot path.
//   - Engine memoizes per-(layout, query) costs under a bounded LRU
//     keyed by the query's structural fingerprint, so window
//     re-evaluations and admission distance checks stop recomputing
//     identical pairs.
//
// The engine is an optimization, not a new cost model: for every
// schema, partitioning, and query, the compiled cost is bit-for-bit
// equal to the interpreted query.FractionScanned (enforced by the
// equivalence property tests in this package). The row-exact
// query.MatchRow path is untouched and remains the soundness oracle.
package prune

import (
	"math/bits"

	"oreo/internal/bloom"
	"oreo/internal/query"
	"oreo/internal/table"
)

// predKind is the type-resolved shape of a compiled predicate.
type predKind uint8

const (
	// kindNever marks a predicate no partition can satisfy (a type
	// mismatch between the predicate shape and the column type). The
	// whole conjunction compiles to "never matches".
	kindNever predKind = iota
	// kindInt is a numeric range evaluated on int64 column stats.
	kindInt
	// kindFloat is a numeric range evaluated on float64 column stats.
	kindFloat
	// kindString is an IN-set membership test on string column stats.
	kindString
	// kindSeen only requires the partition to have observed the column
	// (a predicate on a column of unrecognized type; MayMatch admits it
	// after the emptiness check).
	kindSeen
)

// inValue is one interned IN-set member: the value plus its precomputed
// Bloom double-hash pair, so overflowed distinct sets are probed without
// re-hashing per partition.
type inValue struct {
	v      string
	h1, h2 uint64
}

// compiledPred is one schema-bound predicate.
type compiledPred struct {
	kind         predKind
	ci           int
	hasLo, hasHi bool
	loI, hiI     int64
	loF, hiF     float64
	in           []inValue
}

// CompiledQuery is a query bound against one schema, ready for repeated
// metadata evaluation. It is immutable after Compile and safe for
// concurrent use. A CompiledQuery may be evaluated against any
// partitioning of the schema it was compiled for; Engine.CostCompiled
// transparently rebinds when handed a query compiled for another schema.
type CompiledQuery struct {
	schema *table.Schema
	src    query.Query
	fp     string
	// preds holds the bound predicates. Predicates on unknown columns
	// are elided at compile time (they can never prune).
	preds []compiledPred
	// never is set when some predicate can never match: the query scans
	// nothing regardless of the partitioning.
	never bool
}

// Compile binds the query's predicates against the schema. It never
// fails: unknown columns stay conservative (unprunable) and
// type-mismatched predicates make the query unsatisfiable, exactly as
// Predicate.MayMatch treats them.
func Compile(schema *table.Schema, q query.Query) *CompiledQuery {
	return compileFP(schema, q, Fingerprint(q))
}

// compileFP is Compile with the fingerprint already computed.
func compileFP(schema *table.Schema, q query.Query, fp string) *CompiledQuery {
	cq := &CompiledQuery{schema: schema, src: q, fp: fp}
	for _, p := range q.Preds {
		ci, ok := schema.Index(p.Col)
		if !ok {
			// Unknown column: metadata can never rule a partition out.
			continue
		}
		cp := compiledPred{ci: ci}
		switch schema.Col(ci).Type {
		case table.Int64:
			if !p.IsNumeric() {
				cq.never = true
				continue
			}
			cp.kind = kindInt
			cp.hasLo, cp.hasHi = p.HasLo, p.HasHi
			cp.loI, cp.hiI = p.LoI, p.HiI
		case table.Float64:
			if !p.IsNumeric() {
				cq.never = true
				continue
			}
			cp.kind = kindFloat
			cp.hasLo, cp.hasHi = p.HasLo, p.HasHi
			cp.loF, cp.hiF = p.LoF, p.HiF
		case table.String:
			if p.IsNumeric() {
				cq.never = true
				continue
			}
			cp.kind = kindString
			cp.in = internIn(p.In)
		default:
			cp.kind = kindSeen
		}
		cq.preds = append(cq.preds, cp)
	}
	return cq
}

// internIn dedupes the IN list (first occurrence wins) and precomputes
// each member's Bloom hash pair.
func internIn(in []string) []inValue {
	out := make([]inValue, 0, len(in))
	var seen map[string]bool
	if len(in) > 8 {
		seen = make(map[string]bool, len(in))
	}
	for _, v := range in {
		if seen != nil {
			if seen[v] {
				continue
			}
			seen[v] = true
		} else {
			dup := false
			for i := range out {
				if out[i].v == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		h1, h2 := bloom.HashPair(v)
		out = append(out, inValue{v: v, h1: h1, h2: h2})
	}
	return out
}

// Fingerprint returns the query's structural identity over the compiled
// cost model: two queries share a fingerprint iff they have the same
// predicate sequence (column, flags, bounds, IN list). ID and Template
// are deliberately excluded — they do not affect cost. The encoding is
// injective (length-prefixed), so fingerprint equality is exact, never a
// hash collision.
func (cq *CompiledQuery) Fingerprint() string { return cq.fp }

// Query returns the source query the compilation was built from.
func (cq *CompiledQuery) Query() query.Query { return cq.src }

// Schema returns the schema the query was bound against.
func (cq *CompiledQuery) Schema() *table.Schema { return cq.schema }

// NeverMatches reports whether compilation proved the query matches no
// partition (some predicate is type-mismatched against the schema).
func (cq *CompiledQuery) NeverMatches() bool { return cq.never }

// stackMaskWords bounds the survivor mask kept on the stack: 16 words
// cover 1024 partitions, far above the default partition-count clamp.
const stackMaskWords = 16

// FractionScanned returns the paper's service cost c(s, q) on the
// partitioning: the fraction of rows in partitions the compiled query
// cannot skip. The result is bit-for-bit equal to the interpreted
// query.FractionScanned for the same schema, partitioning, and query.
func (cq *CompiledQuery) FractionScanned(part *table.Partitioning) float64 {
	if part.TotalRows == 0 {
		return 0
	}
	if cq.never {
		return 0
	}
	b := part.Stats()
	np := b.NumParts

	// Survivor mask, seeded with the non-empty partitions: a partition
	// with no rows can never be scanned (Query.MayMatch's NumRows gate).
	var stack [stackMaskWords]uint64
	words := (np + 63) / 64
	var mask []uint64
	if words <= stackMaskWords {
		mask = stack[:words]
	} else {
		mask = make([]uint64, words)
	}
	copy(mask, b.NonEmpty)
	cq.applyPreds(b, mask)

	scanned := 0
	for w := 0; w < words; w++ {
		m := mask[w]
		for m != 0 {
			pid := w<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			scanned += b.Rows[pid]
		}
	}
	return float64(scanned) / float64(part.TotalRows)
}

// AppendSurvivors appends to dst the IDs of partitions the compiled
// query cannot skip on the partitioning — the skip-list complement an
// execution layer must actually read — in ascending order, and returns
// the extended slice together with the fraction scanned. A partition is
// a survivor exactly when the interpreted Query.MayMatch admits its
// metadata, so the returned fraction is bit-for-bit equal to
// FractionScanned. A caller holding a scratch buffer can pass it as dst
// to amortize the list allocation; Survivors allocates fresh.
func (cq *CompiledQuery) AppendSurvivors(dst []int, part *table.Partitioning) ([]int, float64) {
	if part.TotalRows == 0 || cq.never {
		return dst, 0
	}
	b := part.Stats()
	np := b.NumParts

	var stack [stackMaskWords]uint64
	words := (np + 63) / 64
	var mask []uint64
	if words <= stackMaskWords {
		mask = stack[:words]
	} else {
		mask = make([]uint64, words)
	}
	copy(mask, b.NonEmpty)
	cq.applyPreds(b, mask)

	scanned := 0
	for w := 0; w < words; w++ {
		m := mask[w]
		for m != 0 {
			pid := w<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			dst = append(dst, pid)
			scanned += b.Rows[pid]
		}
	}
	return dst, float64(scanned) / float64(part.TotalRows)
}

// Survivors is AppendSurvivors into a fresh slice.
func (cq *CompiledQuery) Survivors(part *table.Partitioning) ([]int, float64) {
	return cq.AppendSurvivors(nil, part)
}

// applyPreds clears the bits of partitions some compiled predicate rules
// out. mask must span the block's partitions and be seeded with
// b.NonEmpty before the call.
func (cq *CompiledQuery) applyPreds(b *table.StatsBlock, mask []uint64) {
	np := b.NumParts
	words := len(mask)
	for i := range cq.preds {
		p := &cq.preds[i]
		base := p.ci * np
		switch p.kind {
		case kindInt:
			// Dense sweep over the column's contiguous min/max arrays.
			seen := b.Seen[base : base+np]
			minI := b.MinI[base : base+np]
			maxI := b.MaxI[base : base+np]
			for pid := 0; pid < np; pid++ {
				ok := seen[pid]
				if p.hasLo && maxI[pid] < p.loI {
					ok = false
				}
				if p.hasHi && minI[pid] > p.hiI {
					ok = false
				}
				if !ok {
					mask[pid>>6] &^= 1 << uint(pid&63)
				}
			}
		case kindFloat:
			seen := b.Seen[base : base+np]
			minF := b.MinF[base : base+np]
			maxF := b.MaxF[base : base+np]
			for pid := 0; pid < np; pid++ {
				// NaN-poisoned metadata compares false on both bounds and
				// stays scannable, matching the interpreted path.
				ok := seen[pid]
				if p.hasLo && maxF[pid] < p.loF {
					ok = false
				}
				if p.hasHi && minF[pid] > p.hiF {
					ok = false
				}
				if !ok {
					mask[pid>>6] &^= 1 << uint(pid&63)
				}
			}
		case kindString:
			// Membership tests cost a map/Bloom probe each; visit only
			// the partitions still alive in the mask.
			for w := 0; w < words; w++ {
				m := mask[w]
				for m != 0 {
					bit := uint(bits.TrailingZeros64(m))
					m &= m - 1
					pid := w<<6 + int(bit)
					if !stringPredMayMatch(p, b, base+pid) {
						mask[w] &^= 1 << bit
					}
				}
			}
		case kindSeen:
			seen := b.Seen[base : base+np]
			for pid := 0; pid < np; pid++ {
				if !seen[pid] {
					mask[pid>>6] &^= 1 << uint(pid&63)
				}
			}
		}
	}
}

// stringPredMayMatch mirrors ColumnStats.ContainsString over the interned
// IN-set, probing Bloom filters with precomputed hash pairs.
func stringPredMayMatch(p *compiledPred, b *table.StatsBlock, idx int) bool {
	if !b.Seen[idx] {
		return false
	}
	cs := b.Col[idx]
	for i := range p.in {
		iv := &p.in[i]
		if cs.Distinct != nil {
			if _, ok := cs.Distinct[iv.v]; ok {
				return true
			}
			continue
		}
		if iv.v < cs.MinS || iv.v > cs.MaxS {
			continue
		}
		if cs.Bloom != nil {
			if cs.Bloom.MayContainHash(iv.h1, iv.h2) {
				return true
			}
			continue
		}
		return true
	}
	return false
}

// CompileAll binds every query of a workload sample against the schema.
// Callers evaluating one sample across many layouts (admission checks,
// window re-costing) compile once and reuse the result.
func CompileAll(schema *table.Schema, qs []query.Query) []*CompiledQuery {
	out := make([]*CompiledQuery, len(qs))
	for i, q := range qs {
		out[i] = Compile(schema, q)
	}
	return out
}
