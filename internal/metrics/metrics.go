// Package metrics is OREO's stdlib-only instrumentation layer: a
// registry of counters, gauges, and fixed-bucket histograms with a
// Prometheus text-format (v0.0.4) encoder behind an http.Handler.
//
// The design point is the serving hot path: recording must never take a
// lock or allocate. A Counter increment is one atomic add; a Histogram
// observation is one binary search over an immutable bound slice plus
// one atomic bucket add and one CAS float accumulate for the sum.
// Registration (get-or-create of an instrument) takes the registry
// lock, so callers resolve their instruments once at construction and
// hold the pointers — exactly how internal/serve wires its shards.
//
// Two instrument flavors exist for values the system already tracks
// elsewhere: CounterFunc and GaugeFunc register a read callback instead
// of a cell, so a scrape reads live state (queue depths, decision-loop
// counters, replication epochs) without a second copy drifting from the
// first. Callbacks run on the scrape path only and must be safe to call
// concurrently with anything.
//
// Encoding is deterministic — families sorted by name, series sorted by
// label signature — so the exposition format can itself be golden-
// tested. See Registry.WriteText for the exact wire rules.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is one series' label set. Keys and values are copied at
// registration; the map can be reused or mutated afterwards.
type Labels map[string]string

// Kind discriminates instrument families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the TYPE line spelling.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing uint64 cell. The zero value is
// usable, but instruments obtained from a Registry are what a scrape
// sees. Method names mirror atomic.Uint64 so call sites migrating from
// raw atomics keep reading naturally.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable float64 cell (stored as float bits).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates delta with a CAS loop (no lock).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are the inclusive
// upper edges of each bucket ("le" semantics), ascending; an implicit
// +Inf bucket catches the rest. Counts are stored per bucket
// (non-cumulative) and cumulated at encode time, so Observe touches
// exactly one bucket cell. The sum and the exact max are CAS float
// accumulators — max makes the tail honest in load reports where the
// p99 interpolation would otherwise hide outliers past the last bound.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

// NewHistogram builds a standalone histogram (not attached to any
// registry) over the given bucket bounds — the form load generators
// use for client-side latency. Bounds must be ascending and non-empty;
// they are copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d (%g <= %g)", i, b[i], b[i-1]))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value: one binary search, one atomic add, one
// CAS sum accumulate, one CAS max.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			return
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds — the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank, the standard
// histogram_quantile estimate. The first bucket interpolates from 0
// (latencies are non-negative); a rank landing in the +Inf bucket — or
// an interpolation overshooting it — clamps to the exact observed Max.
// Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.bounds {
		cnt := h.counts[i].Load()
		n := float64(cnt)
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if cnt == 0 {
				return hi
			}
			est := lo + (hi-lo)*(rank-cum)/n
			if max := h.Max(); max > 0 && est > max {
				est = max
			}
			return est
		}
		cum += n
	}
	return h.Max()
}

// snapshot returns cumulative bucket counts, total, and sum — one
// consistent-enough read for encoding. (Scrapes race recording by
// design; each cell is read once, and the cumulation keeps buckets
// monotone within the scrape.)
func (h *Histogram) snapshot() (cum []uint64, total uint64, sum float64) {
	cum = make([]uint64, len(h.bounds)+1)
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return cum, total, math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n exponentially spaced bounds start, start*factor,
// start*factor², … — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default latency histogram shape, in seconds:
// 50µs to ~52s in 40 exponential steps (factor 1.425), fine enough for
// sub-millisecond in-memory serving and wide enough for a stalled
// follower re-snapshot. Shared by the HTTP middleware, oreoload, and
// oreoreplay so every latency figure in the system is bucketed the
// same way.
func LatencyBuckets() []float64 { return ExpBuckets(50e-6, 1.425, 40) }

// series is one registered (labels, cell) pair inside a family.
type series struct {
	sig     string // canonical rendered label signature, encode sort key
	labels  []labelPair
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // CounterFunc / GaugeFunc callback
	hist    *Histogram
}

type labelPair struct{ k, v string }

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histograms only; shared by every series
	series map[string]*series
}

// Registry holds instrument families and encodes them on demand.
// Construct with NewRegistry. All methods are safe for concurrent use;
// instrument lookups lock, recording on a resolved instrument does not.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for (name, labels), creating the family
// and series on first use. Panics on a name/label spelling the text
// format cannot carry or on a kind conflict with an existing family —
// instrument registration is programmer error territory, not runtime
// error territory.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.register(name, help, KindCounter, labels, nil)
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.register(name, help, KindGauge, labels, nil)
	return s.gauge
}

// CounterFunc registers fn as the value source for a counter series —
// for cumulative values the system already tracks elsewhere. fn runs on
// every scrape and must be concurrency-safe. Re-registering the same
// (name, labels) replaces the callback (last wins), so a re-attached
// component does not panic the process.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, KindCounter, labels, fn)
}

// GaugeFunc registers fn as the value source for a gauge series.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, KindGauge, labels, fn)
}

// Histogram returns the histogram for (name, labels), creating it on
// first use with the given bucket bounds. Every series of one family
// shares the first registration's bounds; a later caller's differing
// bounds are a programmer error (panic).
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindHistogram)
	if f.bounds == nil {
		h := NewHistogram(bounds) // validates
		f.bounds = h.bounds
	} else if len(bounds) != 0 && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("metrics: histogram %q re-registered with different buckets", name))
	}
	sig, pairs := renderLabels(labels)
	if s, ok := f.series[sig]; ok {
		return s.hist
	}
	s := &series{sig: sig, labels: pairs, hist: &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}}
	f.series[sig] = s
	return s.hist
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//oreovet:ignore floatbits bucket bounds are operator-supplied constants compared for re-registration identity, never computed values
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// register is the shared counter/gauge/func path.
func (r *Registry) register(name, help string, kind Kind, labels Labels, fn func() float64) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kind)
	sig, pairs := renderLabels(labels)
	if s, ok := f.series[sig]; ok {
		if fn != nil {
			if s.counter != nil || s.gauge != nil {
				panic(fmt.Sprintf("metrics: %s%s already registered as a cell, not a callback", name, sig))
			}
			s.fn = fn // last wins; see CounterFunc
		} else if s.fn != nil {
			panic(fmt.Sprintf("metrics: %s%s already registered as a callback, not a cell", name, sig))
		}
		return s
	}
	s := &series{sig: sig, labels: pairs, fn: fn}
	if fn == nil {
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		}
	}
	f.series[sig] = s
	return s
}

// Unregister removes the series for (name, labels) from the registry
// and reports whether it existed. When the last series of a family is
// removed, the family goes with it, so a scrape shows no orphaned
// # TYPE header. This is the lifecycle counterpart to per-connection
// instruments — a subscriber that registers
// oreo_replication_subscriber_queue_depth{subscriber="7"} on attach
// must remove it on drop, or a churning fleet grows the scrape without
// bound. A handle obtained before Unregister stays safe to record on;
// it just no longer appears in the exposition.
func (r *Registry) Unregister(name string, labels Labels) bool {
	sig, _ := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return false
	}
	if _, ok := f.series[sig]; !ok {
		return false
	}
	delete(f.series, sig)
	if len(f.series) == 0 {
		delete(r.families, name)
	}
	return true
}

// family gets or creates the named family, enforcing name validity and
// kind/help consistency.
func (r *Registry) family(name, help string, kind Kind) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// renderLabels canonicalizes a label set: keys sorted, rendered once
// into the exact exposition spelling, reused as both map key and
// encoder output.
func renderLabels(labels Labels) (sig string, pairs []labelPair) {
	if len(labels) == 0 {
		return "", nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validLabelName(k) {
			//oreovet:ignore maporder formats only the single invalid key for a panic; no ordered output survives the abort
			panic(fmt.Sprintf("metrics: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs = make([]labelPair, len(keys))
	for i, k := range keys {
		pairs[i] = labelPair{k: k, v: labels[k]}
	}
	return labelSig(pairs, ""), pairs
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
