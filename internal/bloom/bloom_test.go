package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 4)
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = fmt.Sprintf("value-%04d", i)
		f.Add(vals[i])
	}
	for _, v := range vals {
		if !f.MayContain(v) {
			t.Fatalf("false negative for %q — breaks skipping soundness", v)
		}
	}
}

// Property: anything added is always found, for arbitrary strings.
func TestNoFalseNegativesProperty(t *testing.T) {
	f := New(2048, 4)
	check := func(s string) bool {
		f.Add(s)
		return f.MayContain(s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := New(1024, 4)
	for i := 0; i < 100; i++ {
		f.Add(fmt.Sprintf("member-%04d", i))
	}
	rng := rand.New(rand.NewSource(1))
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("absent-%d", rng.Int63())) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.08 {
		t.Errorf("false-positive rate %.3f too high for 100 values in 1024 bits", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(512, 3)
	for i := 0; i < 100; i++ {
		if f.MayContain(fmt.Sprintf("x%d", i)) {
			t.Fatal("empty filter claims membership")
		}
	}
	if f.FillRatio() != 0 {
		t.Errorf("empty fill ratio = %g", f.FillRatio())
	}
}

func TestFillRatioGrows(t *testing.T) {
	f := New(512, 3)
	prev := 0.0
	for i := 0; i < 50; i++ {
		f.Add(fmt.Sprintf("v%d", i))
		if r := f.FillRatio(); r < prev {
			t.Fatal("fill ratio decreased")
		} else {
			prev = r
		}
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("fill ratio = %g", prev)
	}
}

func TestValidation(t *testing.T) {
	for _, tc := range []struct{ bits, hashes int }{{0, 3}, {64, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) accepted", tc.bits, tc.hashes)
				}
			}()
			New(tc.bits, tc.hashes)
		}()
	}
}

func TestBitRounding(t *testing.T) {
	f := New(65, 2) // rounds up to 128 bits
	if f.nbits != 128 {
		t.Errorf("nbits = %d, want 128", f.nbits)
	}
}
