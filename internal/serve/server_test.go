package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oreo"
	"oreo/internal/testleak"
)

// newFixtureServer builds a two-table server (orders, events) whose
// column sets are disjoint, so predicate routing is unambiguous. Alpha
// stays at the paper default (80): the handful of queries a test fires
// can never saturate the counters, so the serving layouts are stable
// for reference checks.
func newFixtureServer(t *testing.T, queueSize int) (*Server, *httptest.Server) {
	t.Helper()
	return newFixtureServerCfg(t, Config{QueueSize: queueSize})
}

// newFixtureServerCfg is newFixtureServer with an explicit
// serve.Config, for tests that need a non-default body cap.
func newFixtureServerCfg(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))

	orders := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	ob := oreo.NewDatasetBuilder(orders, 4000)
	statuses := []string{"cancelled", "delivered", "pending"}
	for i := 0; i < 4000; i++ {
		ob.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[rng.Intn(3)]), oreo.Float(rng.Float64()*100))
	}

	events := oreo.NewSchema(
		oreo.Column{Name: "ts", Type: oreo.Int64},
		oreo.Column{Name: "user", Type: oreo.String},
	)
	eb := oreo.NewDatasetBuilder(events, 2000)
	users := []string{"alice", "bob", "carol"}
	for i := 0; i < 2000; i++ {
		eb.AppendRow(oreo.Int(int64(i)), oreo.Str(users[rng.Intn(3)]))
	}

	m := oreo.NewMulti()
	if err := m.AddTable("orders", ob.Build(), oreo.Config{
		Partitions: 16, InitialSort: []string{"order_ts"}, Seed: 1, TraceCapacity: 64,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTable("events", eb.Build(), oreo.Config{
		Partitions: 8, InitialSort: []string{"ts"}, Seed: 2, TraceCapacity: 64,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthAndTables(t *testing.T) {
	_, ts := newFixtureServer(t, 64)

	var health HealthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || len(health.Tables) != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	var tables map[string][]string
	if resp := getJSON(t, ts.URL+"/v1/tables", &tables); resp.StatusCode != http.StatusOK {
		t.Fatalf("tables status %d", resp.StatusCode)
	}
	if len(tables["tables"]) != 2 || tables["tables"][0] != "orders" {
		t.Fatalf("tables = %v", tables)
	}
}

func TestQueryEndpointSurvivorsMatchReference(t *testing.T) {
	s, ts := newFixtureServer(t, 64)

	req := QueryRequest{Table: "orders", Preds: []PredicateJSON{
		{Col: "order_ts", HasLo: true, HasHi: true, LoI: 500, HiI: 900},
	}}
	resp, data := postJSON(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 1 || qr.Results[0].Table != "orders" {
		t.Fatalf("results = %+v", qr.Results)
	}
	res := qr.Results[0]

	// Reference: the interpreted per-partition prunable checks on the
	// layout the server reports having served on.
	snap, ok := s.Snapshot("orders")
	if !ok || snap.Serving.Name != res.Layout {
		t.Fatalf("snapshot layout %q, served on %q", snap.Serving.Name, res.Layout)
	}
	q := oreo.Query{Preds: []oreo.Predicate{oreo.IntRange("order_ts", 500, 900)}}
	var want []int
	rows := 0
	for pid, m := range snap.Serving.Part.Meta {
		if q.MayMatch(snap.Serving.Schema(), m) {
			want = append(want, pid)
			rows += m.NumRows
		}
	}
	if len(res.SurvivorPartitions) != len(want) {
		t.Fatalf("survivors %v, want %v", res.SurvivorPartitions, want)
	}
	for i := range want {
		if res.SurvivorPartitions[i] != want[i] {
			t.Fatalf("survivors %v, want %v", res.SurvivorPartitions, want)
		}
	}
	if wantCost := float64(rows) / float64(snap.Serving.Part.TotalRows); res.Cost != wantCost {
		t.Fatalf("cost %v, want %v", res.Cost, wantCost)
	}
	if !res.Observed {
		t.Error("query not observed with an empty queue")
	}
	if res.NumPartitions != snap.Serving.Part.NumPartitions {
		t.Errorf("num_partitions %d, want %d", res.NumPartitions, snap.Serving.Part.NumPartitions)
	}
}

func TestQueryRouting(t *testing.T) {
	_, ts := newFixtureServer(t, 64)

	// A cross-table query: order_ts lives on orders, user on events.
	req := QueryRequest{Preds: []PredicateJSON{
		{Col: "order_ts", HasLo: true, LoI: 1000},
		{Col: "user", In: []string{"alice"}},
	}}
	resp, data := postJSON(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 2 {
		t.Fatalf("routed to %d tables, want 2: %+v", len(qr.Results), qr.Results)
	}
	if qr.Results[0].Table != "orders" || qr.Results[1].Table != "events" {
		t.Fatalf("routing order = %+v", qr.Results)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newFixtureServer(t, 64)

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{"table": orders}`, http.StatusBadRequest},
		{"unknown table", `{"table":"nope","preds":[{"col":"order_ts","has_lo":true,"lo_i":1}]}`, http.StatusNotFound},
		{"unknown column on table", `{"table":"orders","preds":[{"col":"user","in":["alice"]}]}`, http.StatusBadRequest},
		{"unknown column routed", `{"preds":[{"col":"ghost","has_lo":true,"lo_i":1}]}`, http.StatusBadRequest},
		{"empty column", `{"table":"orders","preds":[{"col":"","has_lo":true,"lo_i":1}]}`, http.StatusBadRequest},
		{"no constraints", `{"table":"orders","preds":[{"col":"order_ts"}]}`, http.StatusBadRequest},
		{"mixed shapes", `{"table":"orders","preds":[{"col":"status","has_lo":true,"lo_i":1,"in":["x"]}]}`, http.StatusBadRequest},
		{"no predicates no table", `{}`, http.StatusBadRequest},
		{"no predicates with table", `{"table":"orders","preds":[]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, data)
		}
	}
}

func TestBatchPartialFailure(t *testing.T) {
	_, ts := newFixtureServer(t, 64)

	req := BatchRequest{Queries: []QueryRequest{
		{Table: "orders", Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, LoI: 100}}},
		{Table: "nope", Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, LoI: 100}}},
		{Table: "orders", Preds: []PredicateJSON{{Col: "ghost", HasLo: true, LoI: 1}}},
		{Preds: []PredicateJSON{{Col: "user", In: []string{"bob"}}}},
	}}
	resp, data := postJSON(t, ts.URL+"/v1/query/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with partial failures must answer 200, got %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("%d batch items, want 4", len(br.Results))
	}
	for i, item := range br.Results {
		if item.Index != i {
			t.Errorf("item %d echoes index %d", i, item.Index)
		}
	}
	if br.Results[0].Error != "" || len(br.Results[0].Results) != 1 {
		t.Errorf("item 0 should succeed: %+v", br.Results[0])
	}
	if br.Results[1].Error == "" || !strings.Contains(br.Results[1].Error, "unknown table") {
		t.Errorf("item 1 should fail on unknown table: %+v", br.Results[1])
	}
	if br.Results[2].Error == "" {
		t.Errorf("item 2 should fail on unknown column: %+v", br.Results[2])
	}
	if br.Results[3].Error != "" || len(br.Results[3].Results) != 1 || br.Results[3].Results[0].Table != "events" {
		t.Errorf("item 3 should route to events: %+v", br.Results[3])
	}

	// An empty batch is a client error, not an empty success.
	resp, data = postJSON(t, ts.URL+"/v1/query/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400 (%s)", resp.StatusCode, data)
	}
}

func TestLayoutEndpoint(t *testing.T) {
	_, ts := newFixtureServer(t, 64)

	var lr LayoutResponse
	if resp := getJSON(t, ts.URL+"/v1/tables/events/layout", &lr); resp.StatusCode != http.StatusOK {
		t.Fatalf("layout status %d", resp.StatusCode)
	}
	if lr.Table != "events" || lr.NumPartitions != 8 || len(lr.PartitionRows) != 8 {
		t.Fatalf("layout = %+v", lr)
	}
	sum := 0
	for _, n := range lr.PartitionRows {
		sum += n
	}
	if sum != lr.TotalRows || lr.TotalRows != 2000 {
		t.Fatalf("partition rows sum %d, total %d", sum, lr.TotalRows)
	}

	if resp := getJSON(t, ts.URL+"/v1/tables/nope/layout", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table layout status %d", resp.StatusCode)
	}
}

func TestStatsEndpointAndQueueDrain(t *testing.T) {
	testleak.Check(t)
	s, ts := newFixtureServer(t, 64)

	const n = 20
	for i := 0; i < n; i++ {
		req := QueryRequest{Table: "orders", Preds: []PredicateJSON{
			{Col: "order_ts", HasLo: true, HasHi: true, LoI: int64(i * 100), HiI: int64(i*100 + 300)},
		}}
		if resp, data := postJSON(t, ts.URL+"/v1/query", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, data)
		}
	}

	// The decision consumer drains asynchronously; poll until it has
	// caught up with every observed query.
	deadline := time.Now().Add(5 * time.Second)
	var st StatsResponse
	for {
		if resp := getJSON(t, ts.URL+"/v1/tables/orders/stats", &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", resp.StatusCode)
		}
		if uint64(st.Queries) == st.Observed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("decision loop never drained: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Served != n || st.Observed != n || st.Dropped != 0 {
		t.Fatalf("served %d observed %d dropped %d, want %d/%d/0", st.Served, st.Observed, st.Dropped, n, n)
	}
	if st.ServedCostSum <= 0 || st.ServedCostSum > float64(n) {
		t.Errorf("served cost sum %v out of range", st.ServedCostSum)
	}
	if st.QueueCapacity != 64 {
		t.Errorf("queue capacity %d, want 64", st.QueueCapacity)
	}

	// Graceful close drains the queue completely; the decision loop
	// must have seen exactly the observed queries.
	s.Close()
	snap, _ := s.Snapshot("orders")
	if uint64(snap.Stats.Queries) != st.Observed {
		t.Errorf("after close: optimizer saw %d queries, observed %d", snap.Stats.Queries, st.Observed)
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newFixtureServer(t, 64)

	// Fire a few queries so the decision loop runs (it may or may not
	// record events this early; the endpoint must answer either way).
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/v1/query", QueryRequest{Table: "events", Preds: []PredicateJSON{
			{Col: "user", In: []string{"alice"}},
		}})
	}
	var tr TraceResponse
	if resp := getJSON(t, ts.URL+"/v1/tables/events/trace", &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if tr.Table != "events" || tr.Events == nil {
		t.Fatalf("trace = %+v", tr)
	}
	for _, e := range tr.Events {
		if e.Kind == "" {
			t.Fatalf("event without kind: %+v", e)
		}
	}
}

func TestQueueOverloadSamples(t *testing.T) {
	s, ts := newFixtureServer(t, 1)
	_ = ts

	// Saturate a size-1 queue directly through the shard: with the
	// consumer racing, at least one of a burst must be sampled out, and
	// every one must still be answered.
	sh := s.core.shards["orders"]
	const burst = 200
	for i := 0; i < burst; i++ {
		res, err := sh.serveQuery(oreo.Query{ID: i, Preds: []oreo.Predicate{oreo.IntRange("order_ts", 0, 10)}})
		if err != nil {
			t.Fatalf("burst query %d: %v", i, err)
		}
		if res.Cost < 0 || res.Cost > 1 {
			t.Fatalf("burst query %d: bad cost %v", i, res.Cost)
		}
	}
	if got := sh.served.Load(); got != burst {
		t.Fatalf("served %d, want %d", got, burst)
	}
	if obs, drop := sh.observed.Load(), sh.dropped.Load(); obs+drop != burst {
		t.Fatalf("observed %d + dropped %d != %d", obs, drop, burst)
	}
}

// TestServeAfterCloseDoesNotPanic pins the shutdown race: a request
// still in flight when the shards close must be answered (and counted
// as dropped), never panic on the closed observation queue.
func TestServeAfterCloseDoesNotPanic(t *testing.T) {
	s, _ := newFixtureServer(t, 8)
	s.Close()
	sh := s.core.shards["orders"]
	res, err := sh.serveQuery(oreo.Query{Preds: []oreo.Predicate{oreo.IntRange("order_ts", 0, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Observed {
		t.Error("query observed after close")
	}
	if res.Cost < 0 || res.Cost > 1 || len(res.SurvivorPartitions) == 0 {
		t.Errorf("late request not answered properly: %+v", res)
	}
	if sh.dropped.Load() != 1 {
		t.Errorf("dropped = %d, want 1", sh.dropped.Load())
	}
}

// TestCloseIdempotent pins the teardown contract replication hosts
// rely on: a follower process closes its replication follower (which
// closes the replica core) and then its HTTP server (which closes the
// same core again), so Core.Close — and Server.Close over it — must be
// safe to call any number of times, including concurrently with late
// requests.
func TestCloseIdempotent(t *testing.T) {
	testleak.Check(t)
	s, _ := newFixtureServer(t, 8)
	s.Close()
	s.Close()
	s.core.Close() // third pass, through the core directly

	// A replica core with no decision loops must honor the same
	// contract: double-close during follower teardown must not panic.
	rc, err := NewReplicaCore([]ReplicaTable{
		{Name: "orders", Dataset: s.core.shards["orders"].ds},
	}, CoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	rc.Close()
}

// TestReplicaCoreUnavailableBeforeSnapshot pins the replica cold-start
// contract: every read surface answers 503/unavailable — never a wrong
// or empty answer — until the first snapshot is applied.
func TestReplicaCoreUnavailableBeforeSnapshot(t *testing.T) {
	base, _ := newFixtureServer(t, 8)
	rc, err := NewReplicaCore([]ReplicaTable{
		{Name: "orders", Dataset: base.core.shards["orders"].ds},
	}, CoreConfig{Upstream: "http://leader:8080"})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	req := QueryRequest{Table: "orders", Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, LoI: 1}}}
	if _, err := rc.Answer(context.Background(), req); err == nil {
		t.Fatal("Answer before snapshot: want unavailable error")
	} else if e, ok := err.(*Error); !ok || e.Code != CodeUnavailable {
		t.Fatalf("Answer before snapshot: err = %v, want CodeUnavailable", err)
	} else if httpStatus(e) != 503 {
		t.Fatalf("unavailable maps to %d, want 503", httpStatus(e))
	}
	if _, err := rc.Layout("orders"); err == nil {
		t.Fatal("Layout before snapshot: want unavailable error")
	}
	if _, err := rc.Stats("orders"); err == nil {
		t.Fatal("Stats before snapshot: want unavailable error")
	}
	h := rc.Health()
	if h.Status != "initializing" || h.Role != RoleFollower || h.Upstream != "http://leader:8080" {
		t.Fatalf("health = %+v, want initializing follower", h)
	}
	if h.LayoutEpochs["orders"] != 0 {
		t.Fatalf("layout epoch before snapshot = %d, want 0", h.LayoutEpochs["orders"])
	}

	// Applying a snapshot flips the whole surface on.
	pos, ok := base.core.ReplicaPosition("orders")
	if !ok {
		t.Fatal("leader has no position")
	}
	epoch, snap := pos.Epoch, pos.Snapshot
	if err := rc.ApplyReplica("orders", ReplicaState{Epoch: epoch + 1, Snapshot: snap, Dataset: pos.Dataset}); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Answer(context.Background(), req); err != nil {
		t.Fatalf("Answer after snapshot: %v", err)
	}
	h = rc.Health()
	if h.Status != "ok" || h.LayoutEpochs["orders"] != epoch+1 {
		t.Fatalf("health after snapshot = %+v", h)
	}
}

// TestLeaderHealthEpochs pins the leader half of the lag read: the
// layout epoch is the count of decisions the table's loop processed.
func TestLeaderHealthEpochs(t *testing.T) {
	s, ts := newFixtureServer(t, 64)
	for i := 0; i < 5; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/query", QueryRequest{
			Table: "orders",
			Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, LoI: int64(i * 100)}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %s", i, data)
		}
	}
	waitDrained(t, ts.URL, "orders")
	h := s.core.Health()
	if h.Role != RoleLeader {
		t.Fatalf("role = %q", h.Role)
	}
	if h.LayoutEpochs["orders"] != 5 {
		t.Fatalf("orders epoch = %d, want 5", h.LayoutEpochs["orders"])
	}
	if h.LayoutEpochs["events"] != 0 {
		t.Fatalf("events epoch = %d, want 0", h.LayoutEpochs["events"])
	}
}

// TestMethodNotAllowed pins the mux's method discipline: the query
// endpoints are POST-only.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newFixtureServer(t, 64)
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status %d, want 405", resp.StatusCode)
	}
}
