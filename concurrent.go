package oreo

import "sync"

// ConcurrentOptimizer wraps an Optimizer for use from multiple
// goroutines. OREO's decision path is inherently sequential (counters
// advance one query at a time, in order), so the wrapper serializes
// ProcessQuery calls with a mutex rather than attempting lock-free
// trickery; the cost model work per query is microseconds, far below
// any real query's execution time, so the lock is not a bottleneck in
// the serving path it models.
type ConcurrentOptimizer struct {
	mu  sync.Mutex
	opt *Optimizer
}

// NewConcurrent wraps an optimizer for concurrent use. The wrapped
// optimizer must not be used directly afterwards.
func NewConcurrent(opt *Optimizer) *ConcurrentOptimizer {
	return &ConcurrentOptimizer{opt: opt}
}

// ProcessQuery is the concurrent-safe equivalent of
// Optimizer.ProcessQuery.
func (c *ConcurrentOptimizer) ProcessQuery(q Query) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opt.ProcessQuery(q)
}

// CurrentLayout returns the serving layout.
func (c *ConcurrentOptimizer) CurrentLayout() *Layout {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opt.CurrentLayout()
}

// PendingLayout returns the in-flight background reorganization target.
func (c *ConcurrentOptimizer) PendingLayout() *Layout {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opt.PendingLayout()
}

// Stats returns cumulative counters.
func (c *ConcurrentOptimizer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opt.Stats()
}

// Events returns the retained trace events.
func (c *ConcurrentOptimizer) Events() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opt.Events()
}
