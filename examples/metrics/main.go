// Observability: scrape a leader + follower pair under load and watch
// replication lag move.
//
// Every serving role mounts GET /metrics — Prometheus text rendered
// from the same atomic counters the serving path increments, so the
// scrape, /stats, and /healthz can never disagree. The example boots a
// leader and one follower, drives an open-loop load at the follower
// through the load generator (internal/load, the library behind
// cmd/oreoload), and scrapes both sides: request-latency histograms and
// served counters on the follower, forwarded-observation counters and
// the decision loop on the leader, and oreo_replication_epoch on both —
// the same series name on every role, so lag is a subtraction across
// scrapes. A slow-apply window is then simulated by sampling
// oreo_replication_lag_epochs while a burst drains.
//
// Run with:
//
//	go run ./examples/metrics
package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"oreo"
	"oreo/internal/load"
	"oreo/internal/replica"
	"oreo/internal/serve"
	"oreo/internal/workload"
)

const rows = 20000

func buildOrders() *oreo.Dataset {
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	b := oreo.NewDatasetBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[i%4]), oreo.Float(float64(i%500)+0.25))
	}
	return b.Build()
}

func serveOn(h http.Handler) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }
}

// scrape fetches url/metrics and returns the value of each series whose
// name (with labels) is asked for, NaN-free because every instrument
// starts at zero.
func scrape(url string, series ...string) map[string]float64 {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	out := make(map[string]float64, len(series))
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, s := range series {
			if rest, ok := strings.CutPrefix(line, s+" "); ok {
				v, _ := strconv.ParseFloat(rest, 64)
				out[s] = v
			}
		}
	}
	return out
}

func main() {
	ctx := context.Background()

	// --- Leader with its decision-stream publisher. ---
	m := oreo.NewMulti()
	if err := m.AddTable("orders", buildOrders(), oreo.Config{
		Alpha: 40, WindowSize: 200, Partitions: 16,
		InitialSort: []string{"order_ts"}, Seed: 7,
	}); err != nil {
		panic(err)
	}
	leaderSrv, err := serve.New(m, serve.Config{})
	if err != nil {
		panic(err)
	}
	defer leaderSrv.Close()
	pub, err := replica.NewPublisher(leaderSrv.Core(), replica.PublisherConfig{
		Logf: func(string, ...any) {},
	})
	if err != nil {
		panic(err)
	}
	pub.Mount(leaderSrv)
	leaderURL, stopLeader := serveOn(leaderSrv.Handler())
	defer stopLeader()

	// --- Follower: same data, subscribed, serving its own /metrics. ---
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Upstream: leaderURL,
		Tables:   []replica.TableData{{Name: "orders", Dataset: buildOrders()}},
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		panic(err)
	}
	defer fol.Close()
	folSrv := serve.NewServer(fol.Core(), serve.Config{})
	folURL, stopFol := serveOn(folSrv.Handler())
	defer stopFol()
	if err := fol.WaitReady(ctx); err != nil {
		panic(err)
	}
	fmt.Printf("leader on %s, follower on %s — both serve GET /metrics\n\n", leaderURL, folURL)

	// --- Open-loop load at the FOLLOWER: 300 qps for 2 seconds. Every
	// answered query is also forwarded upstream into the leader's
	// decision loop, which is what moves the epochs. ---
	pool, err := load.BuildPool(workload.FixtureTemplates("orders", rows), "orders", 128, 4, true, 3)
	if err != nil {
		panic(err)
	}
	rep, err := load.Run(ctx, load.Spec{
		URL: folURL, Queries: pool,
		Duration: 2 * time.Second, QPS: 300, Concurrency: 8,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("load at follower: %s\n\n", rep)

	// --- Scrape the follower: its own serving surface. ---
	fm := scrape(folURL,
		`oreo_queries_served_total{table="orders"}`,
		`oreo_scan_rows_examined_total{table="orders"}`,
		`oreo_http_request_duration_seconds_count{endpoint="query"}`,
		`oreo_replication_forwarded_total`,
		`oreo_replication_decisions_applied_total`,
		`oreo_replication_epoch{table="orders"}`,
	)
	fmt.Println("follower scrape:")
	fmt.Printf("  served %.0f queries (%.0f http samples), scanned %.0f rows\n",
		fm[`oreo_queries_served_total{table="orders"}`],
		fm[`oreo_http_request_duration_seconds_count{endpoint="query"}`],
		fm[`oreo_scan_rows_examined_total{table="orders"}`])
	fmt.Printf("  forwarded %.0f observations upstream, applied %.0f decisions back\n",
		fm[`oreo_replication_forwarded_total`],
		fm[`oreo_replication_decisions_applied_total`])

	// --- Scrape the leader: the forwarded traffic arrived as decision
	// work, without the leader serving a single query itself. ---
	lm := scrape(leaderURL,
		`oreo_queries_served_total{table="orders"}`,
		`oreo_decisions_total{table="orders"}`,
		`oreo_replication_observations_received_total{result="observed"}`,
		`oreo_replication_subscribers`,
		`oreo_replication_epoch{table="orders"}`,
	)
	fmt.Println("leader scrape:")
	fmt.Printf("  served %.0f queries locally, yet decided %.0f (received %.0f forwarded, %.0f subscriber)\n",
		lm[`oreo_queries_served_total{table="orders"}`],
		lm[`oreo_decisions_total{table="orders"}`],
		lm[`oreo_replication_observations_received_total{result="observed"}`],
		lm[`oreo_replication_subscribers`])

	// --- Lag is a subtraction across scrapes of the SAME series. ---
	fmt.Printf("\nreplication epoch: leader %.0f, follower %.0f → lag %.0f epochs\n",
		lm[`oreo_replication_epoch{table="orders"}`],
		fm[`oreo_replication_epoch{table="orders"}`],
		lm[`oreo_replication_epoch{table="orders"}`]-fm[`oreo_replication_epoch{table="orders"}`])

	// --- Watch the lag gauges while a burst drains: answer a burst at
	// the follower, then sample both sides' oreo_replication_lag_epochs
	// until the follower catches back up. ---
	for i := 0; i < 200; i++ {
		if _, err := fol.Core().Answer(ctx, serve.QueryRequest{
			Table: "orders",
			Preds: []serve.PredicateJSON{{Col: "order_ts", HasLo: true, HasHi: true,
				LoI: int64(i * 7 % (rows - 500)), HiI: int64(i*7%(rows-500) + 499)}},
		}); err != nil {
			panic(err)
		}
	}
	fmt.Println("\nburst of 200 at the follower; sampling both sides while it drains")
	fmt.Println("(observations batch inside the forwarder until its 200ms flush, then land upstream in one POST):")
	target := rep.Sent + 200
	for {
		l := scrape(leaderURL, `oreo_replication_lag_epochs{table="orders"}`, `oreo_replication_epoch{table="orders"}`)
		f := scrape(folURL, `oreo_replication_epoch{table="orders"}`, `oreo_replication_forward_queue_depth`)
		lag := l[`oreo_replication_epoch{table="orders"}`] - f[`oreo_replication_epoch{table="orders"}`]
		fmt.Printf("  forward queue %3.0f | leader epoch %.0f, follower epoch %.0f, cross-scrape lag %.0f (leader-side gauge %.0f)\n",
			f[`oreo_replication_forward_queue_depth`],
			l[`oreo_replication_epoch{table="orders"}`], f[`oreo_replication_epoch{table="orders"}`],
			lag, l[`oreo_replication_lag_epochs{table="orders"}`])
		if lag <= 0 && f[`oreo_replication_epoch{table="orders"}`] >= float64(target) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("caught up at epoch %d: every epoch decided upstream is applied downstream\n", target)
}
