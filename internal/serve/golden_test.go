package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oreo"
)

// updateGolden rewrites the golden wire fixtures from the current
// implementation: go test ./internal/serve -run TestV1WireGolden -update-golden
//
// The fixtures pin the exact /v1 response bytes. They were generated
// before the Core/v2 redesign and must NOT be regenerated to paper over
// a diff — a failing golden means a captured-log replay client would
// see different bytes, which is a compatibility break, not a test to
// refresh.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden wire fixtures")

// newGoldenServer builds a fully deterministic two-table server: row
// values come from closed-form formulas (no RNG), seeds and partition
// counts are pinned, and the observation queue is far larger than the
// scenario so every query is observed. Any change to this fixture
// invalidates the goldens by construction — don't touch it.
func newGoldenServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()

	orders := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	ob := oreo.NewDatasetBuilder(orders, 4000)
	for i := 0; i < 4000; i++ {
		ob.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[i%4]), oreo.Float(float64(i%500)+0.25))
	}

	events := oreo.NewSchema(
		oreo.Column{Name: "ts", Type: oreo.Int64},
		oreo.Column{Name: "user", Type: oreo.String},
	)
	users := []string{"alice", "bob", "carol", "dave", "erin"}
	eb := oreo.NewDatasetBuilder(events, 2000)
	for i := 0; i < 2000; i++ {
		eb.AppendRow(oreo.Int(int64(i)), oreo.Str(users[i%5]))
	}

	m := oreo.NewMulti()
	if err := m.AddTable("orders", ob.Build(), oreo.Config{
		Partitions: 16, InitialSort: []string{"order_ts"}, Seed: 1, TraceCapacity: 64,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTable("events", eb.Build(), oreo.Config{
		Partitions: 8, InitialSort: []string{"ts"}, Seed: 2, TraceCapacity: 64,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Config{QueueSize: 64, MaxBodyBytes: 2048, ScanParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func goldenCheck(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v (regenerate with -update-golden ONLY on a pre-redesign tree)", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire bytes changed — /v1 compatibility break.\n got: %s\nwant: %s", name, got, want)
	}
}

// goldenStep is one request of the pinned scenario. Bodies are raw
// strings (not marshaled structs) so the requests themselves cannot
// drift with Go's encoder.
type goldenStep struct {
	name   string
	method string
	path   string
	body   string
	status int
}

func TestV1WireGolden(t *testing.T) {
	_, ts := newGoldenServer(t)

	steps := []goldenStep{
		{"query.json", "POST", "/v1/query",
			`{"table":"orders","id":7,"preds":[{"col":"order_ts","has_lo":true,"has_hi":true,"lo_i":500,"hi_i":900}]}`,
			http.StatusOK},
		{"query_routed.json", "POST", "/v1/query",
			`{"preds":[{"col":"order_ts","has_lo":true,"lo_i":3000},{"col":"user","in":["alice","bob"]}]}`,
			http.StatusOK},
		{"query_execute.json", "POST", "/v1/query",
			`{"table":"orders","execute":true,"preds":[{"col":"order_ts","has_lo":true,"has_hi":true,"lo_i":100,"hi_i":199}],"aggs":[{"op":"count"},{"op":"sum","col":"amount"},{"op":"min","col":"status"}]}`,
			http.StatusOK},
		{"batch.json", "POST", "/v1/query/batch",
			`{"queries":[` +
				`{"id":1,"table":"orders","preds":[{"col":"order_ts","has_lo":true,"lo_i":3500}]},` +
				`{"id":2,"table":"nope","preds":[{"col":"order_ts","has_lo":true,"lo_i":1}]},` +
				`{"id":3,"table":"orders","preds":[{"col":"ghost","has_lo":true,"lo_i":1}]},` +
				`{"id":4,"preds":[{"col":"user","in":["bob"]}]}]}`,
			http.StatusOK},
		{"error_unknown_table.json", "POST", "/v1/query",
			`{"table":"nope","preds":[{"col":"order_ts","has_lo":true,"lo_i":1}]}`,
			http.StatusNotFound},
		{"error_unknown_column.json", "POST", "/v1/query",
			`{"table":"orders","preds":[{"col":"user","in":["alice"]}]}`,
			http.StatusBadRequest},
		{"error_bad_predicate.json", "POST", "/v1/query",
			`{"table":"orders","preds":[{"col":"order_ts"}]}`,
			http.StatusBadRequest},
		{"error_empty_batch.json", "POST", "/v1/query/batch",
			`{"queries":[]}`,
			http.StatusBadRequest},
		{"error_too_large.json", "POST", "/v1/query",
			`{"table":"orders","preds":[{"col":"status","in":["` + strings.Repeat("x", 4096) + `"]}]}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, st := range steps {
		resp, err := http.Post(ts.URL+st.path, "application/json", strings.NewReader(st.body))
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		if resp.StatusCode != st.status {
			t.Fatalf("%s: status %d, want %d (%s)", st.name, resp.StatusCode, st.status, data)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", st.name, ct)
		}
		goldenCheck(t, st.name, data)
	}

	// Drain both decision loops so the counter-bearing GET responses are
	// deterministic: every observed query processed, no queue depth.
	waitDrained(t, ts.URL, "orders")
	waitDrained(t, ts.URL, "events")

	gets := []goldenStep{
		{"tables.json", "GET", "/v1/tables", "", http.StatusOK},
		{"layout.json", "GET", "/v1/tables/orders/layout", "", http.StatusOK},
		{"stats.json", "GET", "/v1/tables/orders/stats", "", http.StatusOK},
		{"trace.json", "GET", "/v1/tables/events/trace", "", http.StatusOK},
		{"healthz.json", "GET", "/healthz", "", http.StatusOK},
		{"error_layout_unknown_table.json", "GET", "/v1/tables/nope/layout", "", http.StatusNotFound},
	}
	for _, st := range gets {
		resp, err := http.Get(ts.URL + st.path)
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		if resp.StatusCode != st.status {
			t.Fatalf("%s: status %d, want %d (%s)", st.name, resp.StatusCode, st.status, data)
		}
		goldenCheck(t, st.name, data)
	}
}

// waitDrained polls the stats endpoint until the decision loop has
// processed every observed query, so counters in subsequent responses
// are deterministic.
func waitDrained(t *testing.T, base, table string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/tables/%s/stats", base, table))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		// Cheap field probe without committing to a decoder shape: the
		// loop is drained when queue_depth is 0 and queries == observed.
		var st StatsResponse
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("stats decode: %v", err)
		}
		if st.QueueDepth == 0 && uint64(st.Queries) == st.Observed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s decision loop never drained: %s", table, data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
