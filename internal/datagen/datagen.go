// Package datagen produces the synthetic datasets the reproduction is
// evaluated on. The paper uses TPC-H SF-100 (denormalized against
// lineitem), TPC-DS SF-10 (denormalized against store_sales), and a
// production telemetry table from VMware's SuperCollider platform. None
// of those can ship with this repository (dbgen/dsdgen are external
// tools and the telemetry table is proprietary), so this package builds
// statistically analogous tables: the same column *kinds* (dates,
// quantities, prices, low-cardinality dimensions), the same correlation
// structure that matters for layout work (e.g. receipt dates trail ship
// dates; categories constrain brands), and configurable row counts.
//
// Layout-optimization behaviour depends on the joint distribution of the
// predicate columns and the partition boundaries, not on absolute scale,
// so the generators default to laptop-scale row counts while preserving
// the per-partition selectivity dynamics (partition counts are chosen
// relative to row counts by callers).
package datagen

import (
	"fmt"
	"math/rand"

	"oreo/internal/table"
)

// Dataset name constants accepted by Generate.
const (
	TPCH      = "tpch"
	TPCDS     = "tpcds"
	Telemetry = "telemetry"
)

// Names lists all built-in dataset names.
func Names() []string { return []string{TPCH, TPCDS, Telemetry} }

// Generate builds the named dataset with the given row count, using rng
// for all randomness. It returns an error for unknown names.
func Generate(name string, rows int, rng *rand.Rand) (*table.Dataset, error) {
	switch name {
	case TPCH:
		return GenerateTPCH(rows, rng), nil
	case TPCDS:
		return GenerateTPCDS(rows, rng), nil
	case Telemetry:
		return GenerateTelemetry(rows, rng), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (want one of %v)", name, Names())
	}
}

// zipfStrings draws from vals with a Zipf-ish skew: index drawn as
// floor(u^2 * n), biasing toward the front of the list. Dimension values
// in analytics tables are rarely uniform; mild skew makes categorical
// skipping realistic.
func zipfStrings(rng *rand.Rand, vals []string) string {
	u := rng.Float64()
	idx := int(u * u * float64(len(vals)))
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

func uniformStrings(rng *rand.Rand, vals []string) string {
	return vals[rng.Intn(len(vals))]
}

// seq generates n strings with a prefix, e.g. seq("brand#", 3) =
// ["brand#01", "brand#02", "brand#03"].
func seq(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i+1)
	}
	return out
}
