package oreo

import (
	"io"

	"oreo/internal/persist"
)

// SaveLayout serializes a layout (name + row→partition assignment) to
// w in a versioned JSON format. Partition metadata is not written: it
// is recomputed from the dataset at load time, so a stale or corrupted
// file can never cause unsound partition skipping.
func SaveLayout(w io.Writer, l *Layout) error { return persist.SaveLayout(w, l) }

// LoadLayout reads a layout written by SaveLayout and rebinds it to the
// dataset (which must match the saved schema and row count), rebuilding
// all partition metadata. The result can be passed as Config.Initial so
// a restarted process resumes from the layout it had converged to.
func LoadLayout(r io.Reader, ds *Dataset) (*Layout, error) { return persist.LoadLayout(r, ds) }

// SaveState writes a warm-start snapshot of the layout: the assignment
// (as SaveLayout), the column-major statistics block, and the layout's
// cost memo. A server saving its serving layout's state at shutdown
// restarts hot — the first window re-costings after boot answer from
// the restored memo instead of re-evaluating metadata.
func SaveState(w io.Writer, l *Layout) error { return persist.SaveState(w, l) }

// LoadState reads a snapshot written by SaveState and rebinds it to the
// dataset. Partition metadata is always recomputed from the dataset
// (persisted state never feeds partition skipping); the memo is
// installed only when the saved statistics block matches the recomputed
// one bit-for-bit, and the boolean reports whether it was (a "warm"
// restart). Pass the layout as Config.Initial to resume serving on it.
func LoadState(r io.Reader, ds *Dataset) (*Layout, bool, error) { return persist.LoadState(r, ds) }

// SaveStateWithData writes a warm-start snapshot that also carries the
// rows the boot source cannot reproduce: the tail of base beyond the
// first bootRows rows (appended batches a compaction folded in) and
// the uncompacted delta segment (nil or empty for none). A table that
// never took a live write produces exactly the SaveState encoding,
// readable by older builds.
func SaveStateWithData(w io.Writer, l *Layout, base *Dataset, bootRows int, delta *Dataset) error {
	return persist.SaveStateWithData(w, l, base, bootRows, delta)
}

// LoadStateWithData reads a snapshot written by SaveStateWithData and
// reassembles the full serving state against the boot dataset: base is
// boot plus the saved tail (the dataset the returned layout covers —
// pass it, not boot, as the table's dataset), delta is the saved delta
// segment to replay through the live write path (nil when none), and
// warm reports whether the cost memo survived the statistics gate.
// Files written by SaveState load with base == boot and a nil delta.
func LoadStateWithData(r io.Reader, boot *Dataset) (l *Layout, warm bool, base, delta *Dataset, err error) {
	return persist.LoadStateWithData(r, boot)
}
