package mts

import (
	"math/rand"
	"testing"
)

func newMC(alpha float64, budget int, seed int64) *MultiCopy {
	return NewMultiCopy(Config{Alpha: alpha}, budget, rand.New(rand.NewSource(seed)))
}

func TestMultiCopyValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("alpha <= 1 accepted")
			}
		}()
		newMC(1, 1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("budget 0 accepted")
			}
		}()
		newMC(5, 0, 1)
	}()
}

func TestMultiCopyServesCheapestResident(t *testing.T) {
	m := newMC(100, 2, 1)
	m.AddState(0)
	m.AddState(1)
	m.MakeResident(0)
	m.MakeResident(1)
	costs := map[StateID]float64{0: 0.8, 1: 0.1}
	serveIn, materialized := m.Observe(constCost(costs))
	if serveIn != 1 {
		t.Errorf("served on %d, want the cheaper resident 1", serveIn)
	}
	if materialized {
		t.Error("materialized without need")
	}
}

func TestMultiCopyMaterializesWhenResidentsSaturate(t *testing.T) {
	m := newMC(5, 1, 2)
	m.AddState(0)
	m.AddState(1)
	m.MakeResident(0)
	// State 0 costs 1, state 1 costs 0: resident 0 saturates after 5.
	costs := map[StateID]float64{0: 1, 1: 0}
	var materializedAt = -1
	for i := 0; i < 10; i++ {
		_, mat := m.Observe(constCost(costs))
		if mat {
			materializedAt = i
			break
		}
	}
	if materializedAt != 4 {
		t.Errorf("materialized at query %d, want 4 (counter reaches alpha=5)", materializedAt)
	}
	if m.Materializations() != 1 {
		t.Errorf("Materializations = %d", m.Materializations())
	}
	res := m.Resident()
	if len(res) != 1 || res[0] != 1 {
		t.Errorf("resident = %v, want [1] (budget 1 evicts state 0)", res)
	}
}

func TestMultiCopyBudgetTwoKeepsBoth(t *testing.T) {
	m := newMC(5, 2, 3)
	m.AddState(0)
	m.AddState(1)
	m.MakeResident(0)
	costs := map[StateID]float64{0: 1, 1: 0}
	for i := 0; i < 10; i++ {
		m.Observe(constCost(costs))
	}
	res := m.Resident()
	if len(res) != 2 {
		t.Errorf("resident = %v, want both copies under budget 2", res)
	}
}

func TestMultiCopyFreeSwitchToResident(t *testing.T) {
	// With both states resident, alternating cheap states must never
	// charge a materialization: switching between resident copies is
	// free — the core benefit of the Appendix D variant.
	m := newMC(5, 2, 4)
	m.AddState(0)
	m.AddState(1)
	m.MakeResident(0)
	m.MakeResident(1)
	for i := 0; i < 200; i++ {
		var costs map[StateID]float64
		if (i/10)%2 == 0 {
			costs = map[StateID]float64{0: 0.05, 1: 0.9}
		} else {
			costs = map[StateID]float64{0: 0.9, 1: 0.05}
		}
		if _, mat := m.Observe(constCost(costs)); mat {
			t.Fatalf("query %d: paid a materialization with both copies resident", i)
		}
	}
}

func TestMultiCopyPhaseReset(t *testing.T) {
	m := newMC(3, 1, 5)
	m.AddState(0)
	m.AddState(1)
	m.MakeResident(0)
	// Both states cost 1: both saturate after 3 queries -> phase reset.
	costs := map[StateID]float64{0: 1, 1: 1}
	for i := 0; i < 3; i++ {
		m.Observe(constCost(costs))
	}
	if m.Phases() != 2 {
		t.Errorf("Phases = %d, want 2", m.Phases())
	}
}

func TestMultiCopyPendingAdditionDeferred(t *testing.T) {
	m := newMC(3, 1, 6)
	m.AddState(0)
	m.MakeResident(0)
	m.Observe(func(StateID) float64 { return 0.5 })
	m.AddState(7) // mid-phase
	if m.states[7] {
		t.Fatal("pending state active mid-phase")
	}
	// Saturate 0 (counter 0.5 -> 3.0): phase resets (only member), 7 joins.
	m.Observe(func(StateID) float64 { return 0.5 })
	m.Observe(func(StateID) float64 { return 1 })
	m.Observe(func(StateID) float64 { return 1 })
	if _, ok := m.states[7]; !ok {
		t.Error("pending state never joined after phase reset")
	}
}

func TestMultiCopyDefaultResident(t *testing.T) {
	m := newMC(5, 1, 7)
	m.AddState(3)
	m.AddState(1)
	m.Observe(func(StateID) float64 { return 0 })
	res := m.Resident()
	if len(res) != 1 || res[0] != 1 {
		t.Errorf("default resident = %v, want smallest ID [1]", res)
	}
}

func TestMultiCopyMakeResidentValidation(t *testing.T) {
	m := newMC(5, 1, 8)
	m.AddState(0)
	m.AddState(1)
	m.MakeResident(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-budget MakeResident accepted")
			}
		}()
		m.MakeResident(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown state MakeResident accepted")
			}
		}()
		newMC(5, 1, 9).MakeResident(42)
	}()
}

// A larger budget must never pay more materializations than a smaller
// one on the same stream (free switches subsume paid ones).
func TestMultiCopyBudgetMonotonicity(t *testing.T) {
	run := func(budget int) int {
		m := newMC(8, budget, 10)
		for s := 0; s < 4; s++ {
			m.AddState(StateID(s))
		}
		rng := rand.New(rand.NewSource(11))
		cheap := 0
		for i := 0; i < 3000; i++ {
			if rng.Float64() < 0.01 {
				cheap = rng.Intn(4)
			}
			m.Observe(func(id StateID) float64 {
				if int(id) == cheap {
					return 0.02
				}
				return 0.6
			})
		}
		return m.Materializations()
	}
	m1, m4 := run(1), run(4)
	if m4 > m1 {
		t.Errorf("budget 4 paid %d materializations, budget 1 paid %d", m4, m1)
	}
	if m1 == 0 {
		t.Error("degenerate stream: budget 1 never materialized")
	}
}

func TestStayInPlaceAblation(t *testing.T) {
	// With DisableStayInPlace, phase edges may pay extra switches; with
	// the optimization on, a two-state system with symmetric costs never
	// switches at all (both saturate simultaneously).
	run := func(disable bool) int {
		r := New(Config{Alpha: 5, DisableStayInPlace: disable}, rand.New(rand.NewSource(12)))
		r.AddState(0)
		r.AddState(1)
		r.SetInitial(0)
		for i := 0; i < 500; i++ {
			r.Observe(func(StateID) float64 { return 1 })
		}
		return r.Switches()
	}
	withOpt := run(false)
	withoutOpt := run(true)
	if withOpt != 0 {
		t.Errorf("stay-in-place run switched %d times, want 0", withOpt)
	}
	if withoutOpt <= withOpt {
		t.Errorf("ablation: original BLS (%d switches) not worse than stay-in-place (%d)",
			withoutOpt, withOpt)
	}
}
