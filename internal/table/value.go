package table

import (
	"fmt"
	"strings"
)

// Value is a dynamically typed cell value. It is a small variant record
// rather than an interface so that slices of values do not allocate per
// element and comparisons stay branch-cheap.
type Value struct {
	Type ColType
	I    int64
	F    float64
	S    string
}

// Int returns an Int64-typed value.
func Int(v int64) Value { return Value{Type: Int64, I: v} }

// Float returns a Float64-typed value.
func Float(v float64) Value { return Value{Type: Float64, F: v} }

// Str returns a String-typed value.
func Str(v string) Value { return Value{Type: String, S: v} }

// Compare returns -1, 0, or +1 according to the order of v relative to o.
// Comparing values of different types panics: mixed-type comparisons
// indicate a schema mismatch upstream, which should fail loudly.
func (v Value) Compare(o Value) int {
	if v.Type != o.Type {
		panic(fmt.Sprintf("table: comparing %s with %s", v.Type, o.Type))
	}
	switch v.Type {
	case Int64:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case Float64:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	case String:
		return strings.Compare(v.S, o.S)
	default:
		panic(fmt.Sprintf("table: compare on unknown type %v", v.Type))
	}
}

// Less reports whether v orders strictly before o.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Equal reports whether v and o are the same typed value.
func (v Value) Equal(o Value) bool { return v.Type == o.Type && v.Compare(o) == 0 }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Type {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	default:
		return "<invalid>"
	}
}
