// Serving: run OREO behind its HTTP serving layer and consume the
// survivor skip-list — the end-to-end loop an execution engine uses:
// declare predicates, get back the cost, the decision state, and the
// exact partitions it must read (everything else is provably
// skippable).
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"

	"oreo"
	"oreo/internal/serve"
)

func main() {
	// A small "orders" table, arrival-ordered.
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
	)
	const rows = 20000
	rng := rand.New(rand.NewSource(1))
	b := oreo.NewDatasetBuilder(schema, rows)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	for i := 0; i < rows; i++ {
		b.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[rng.Intn(len(statuses))]))
	}

	m := oreo.NewMulti()
	if err := m.AddTable("orders", b.Build(), oreo.Config{
		Alpha: 40, Partitions: 16, WindowSize: 100,
		InitialSort: []string{"order_ts"}, Seed: 7,
	}); err != nil {
		panic(err)
	}

	// Boot the sharded serving layer on an ephemeral port.
	srv, err := serve.New(m, serve.Config{})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// Fire a time-range query and read the skip-list.
	req, _ := json.Marshal(serve.QueryRequest{
		Table: "orders",
		Preds: []serve.PredicateJSON{
			{Col: "order_ts", HasLo: true, HasHi: true, LoI: 4000, HiI: 6000},
		},
	})
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(req))
	if err != nil {
		panic(err)
	}
	var qr serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		panic(err)
	}
	resp.Body.Close()

	r := qr.Results[0]
	fmt.Printf("layout %q costs %.3f of the table for order_ts in [4000, 6000]\n", r.Layout, r.Cost)
	fmt.Printf("read partitions %v, skip the other %d\n",
		r.SurvivorPartitions, r.NumPartitions-len(r.SurvivorPartitions))

	// The serving layout's shape, for turning the skip-list into bytes.
	lresp, err := http.Get(base + "/v1/tables/orders/layout")
	if err != nil {
		panic(err)
	}
	var lr serve.LayoutResponse
	if err := json.NewDecoder(lresp.Body).Decode(&lr); err != nil {
		panic(err)
	}
	lresp.Body.Close()
	mustRead := 0
	for _, pid := range r.SurvivorPartitions {
		mustRead += lr.PartitionRows[pid]
	}
	fmt.Printf("that is %d of %d rows touched\n", mustRead, lr.TotalRows)
}
