// Package serve is OREO's online serving layer: a long-lived, sharded
// HTTP service over a MultiOptimizer, the subsystem that turns the
// in-process optimizer into something a query-execution fleet can sit
// behind.
//
// Requests are handled per table on independent shards. Each shard runs
// in a read-mostly regime: costing and survivor skip-list extraction —
// the per-request work — run lock-free against an atomically swapped
// immutable layout snapshot (oreo.ConcurrentOptimizer), while decision-
// state updates (admission, D-UMTS counters, reorganization) drain
// through a single background consumer fed by a bounded queue. The
// request path therefore scales with cores and is never stalled by a
// layout generation in progress; under overload, observations are
// sampled (and counted) instead of applying backpressure to queries.
//
// With "execute": true a query request goes past costing: each shard
// keeps an execution store (internal/exec) — the table's rows
// materialized into one columnar block per partition of the serving
// layout, built lazily on the first execute request so costing-only
// deployments never pay for it — snapshot-swapped by the decision
// consumer in lockstep with the optimizer snapshot whenever a
// reorganization lands. The request
// scans exactly the survivor partitions, re-checks predicates per row,
// and returns matched-row counts plus requested aggregates (count, sum,
// min, max) next to the cost, closing the loop the cost model predicts.
//
// Endpoints:
//
//	POST /v1/query                  predicates in → cost, decision state,
//	                                and the survivor partition skip-list,
//	                                per affected table; "execute" adds
//	                                row counts and aggregates
//	POST /v1/query/batch            the same for many queries in one round
//	                                trip, with per-item (partial) failures
//	GET  /v1/tables                 registered tables
//	GET  /v1/tables/{table}/layout  serving layout, partition row counts
//	GET  /v1/tables/{table}/stats   optimizer counters + memo + shard metrics
//	GET  /v1/tables/{table}/trace   decision trace (needs TraceCapacity)
//	GET  /healthz                   liveness + per-table registry
//
// The wire predicate encoding matches the query-log format of
// internal/persist, so captured production logs replay against the
// server unchanged.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"oreo"
	"oreo/internal/exec"
)

// DefaultQueueSize bounds each shard's observation queue when Config
// leaves it zero. One window's worth of headroom per the paper's
// defaults, times a safety factor for bursts.
const DefaultQueueSize = 1024

// DefaultMaxBodyBytes caps request bodies when Config leaves
// MaxBodyBytes zero. 1 MiB holds tens of thousands of wire predicates —
// far beyond any legitimate batch — while keeping a single hostile
// client from buffering unbounded JSON into server memory.
const DefaultMaxBodyBytes = 1 << 20

// Config parameterizes a Server.
type Config struct {
	// QueueSize bounds each table's decision-observation queue; zero
	// selects DefaultQueueSize. When a shard's queue is full, new
	// queries are answered normally but sampled out of reorganization
	// decisions (the Dropped metric counts them).
	QueueSize int
	// MaxBodyBytes caps each request body; oversized requests are
	// answered 413 with the standard error shape. Zero selects
	// DefaultMaxBodyBytes; negative disables the cap (trusted
	// single-tenant deployments only).
	MaxBodyBytes int64
}

// Server shards a MultiOptimizer's tables behind an HTTP API. Construct
// with New, mount Handler, and Close on shutdown.
type Server struct {
	multi   *oreo.MultiOptimizer
	names   []string
	shards  map[string]*shard
	mux     *http.ServeMux
	maxBody int64
}

// New builds a server over the registered tables. The MultiOptimizer
// (and its per-table Optimizers) must not be used directly afterwards:
// every shard owns its table's decision path.
func New(m *oreo.MultiOptimizer, cfg Config) (*Server, error) {
	names := m.Tables()
	if len(names) == 0 {
		return nil, fmt.Errorf("serve: no tables registered")
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.QueueSize < 0 {
		return nil, fmt.Errorf("serve: QueueSize must be positive, got %d", cfg.QueueSize)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		multi:   m,
		names:   names,
		shards:  make(map[string]*shard, len(names)),
		mux:     http.NewServeMux(),
		maxBody: cfg.MaxBodyBytes,
	}
	for _, name := range names {
		s.shards[name] = newShard(name, m.Dataset(name), m.Optimizer(name), cfg.QueueSize)
	}

	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/tables/{table}/layout", s.handleLayout)
	s.mux.HandleFunc("GET /v1/tables/{table}/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/tables/{table}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s, nil
}

// Handler returns the server's HTTP handler, for mounting into an
// http.Server (the caller owns listening and TLS).
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the shards down gracefully: observation queues stop
// accepting, their consumers drain what was already queued, and the
// call returns when every decision loop is quiet. Call after the HTTP
// listener has stopped accepting requests.
func (s *Server) Close() {
	for _, name := range s.names {
		s.shards[name].close()
	}
}

// Snapshot returns the named table's current optimizer snapshot — the
// hook a host process uses to persist serving state at shutdown.
func (s *Server) Snapshot(table string) (oreo.OptimizerSnapshot, bool) {
	sh, ok := s.shards[table]
	if !ok {
		return oreo.OptimizerSnapshot{}, false
	}
	return sh.copt.Snapshot(), true
}

// answer resolves one decoded query to per-table results. With an
// explicit table, every predicate must name a column of that table's
// schema; with routing, every predicate must land on at least one
// table. Violations are client errors, not silent drops — a serving
// API must not quietly answer a different question than it was asked.
// The same discipline applies to execution aggregates: a requested
// aggregate whose column no queried table has is an error, never a
// silently missing result.
func (s *Server) answer(req QueryRequest) ([]TableResult, int, error) {
	q, err := decodeQuery(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(q.Preds) == 0 {
		// A predicate-free query is a full scan on every layout; it
		// carries no signal for reorganization (Route excludes such
		// queries for exactly that reason) and is almost certainly a
		// client bug. Reject it in both addressing modes.
		return nil, http.StatusBadRequest, fmt.Errorf("query has no predicates")
	}
	var aggs []exec.AggSpec
	if req.Execute {
		if aggs, err = decodeAggs(req.Aggs); err != nil {
			return nil, http.StatusBadRequest, err
		}
	} else if len(req.Aggs) > 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("aggs require execute")
	}

	if req.Table != "" {
		sh, ok := s.shards[req.Table]
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("unknown table %q", req.Table)
		}
		schema := sh.ds.Schema()
		for _, p := range q.Preds {
			if _, ok := schema.Index(p.Col); !ok {
				return nil, http.StatusBadRequest, fmt.Errorf("table %q has no column %q", req.Table, p.Col)
			}
		}
		if !req.Execute {
			return []TableResult{sh.serveQuery(q)}, http.StatusOK, nil
		}
		res, err := sh.serveExecute(q, aggs)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		return []TableResult{res}, http.StatusOK, nil
	}

	routed, unrouted := s.multi.Route(q)
	if len(unrouted) > 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("no table has column %q", unrouted[0])
	}
	var perTableAggs map[string][]exec.AggSpec
	if req.Execute {
		var err error
		if perTableAggs, err = s.routeAggs(aggs, routed); err != nil {
			return nil, http.StatusBadRequest, err
		}
	}
	out := make([]TableResult, 0, len(routed))
	for _, name := range s.names {
		sub, touched := routed[name]
		if !touched {
			continue
		}
		sh := s.shards[name]
		if !req.Execute {
			out = append(out, sh.serveQuery(sub))
			continue
		}
		res, err := sh.serveExecute(sub, perTableAggs[name])
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		out = append(out, res)
	}
	return out, http.StatusOK, nil
}

// routeAggs narrows the aggregates to each queried table (counts apply
// everywhere, column aggregates only where the column exists) and
// validates the whole routing: every column-bearing aggregate must land
// on at least one queried table (mirroring the unrouted-predicate rule)
// and each narrowed list must be legal for its table's schema. Running
// the full validation up front means a bad aggregate fails the request
// before *any* shard has executed, counted, or fed its decision loop —
// partial side effects on a 400 would skew metrics and teach the
// optimizer from a query that was never answered.
func (s *Server) routeAggs(aggs []exec.AggSpec, routed map[string]oreo.Query) (map[string][]exec.AggSpec, error) {
	perTable := make(map[string][]exec.AggSpec, len(routed))
	landed := make([]bool, len(aggs))
	for name := range routed {
		schema := s.shards[name].ds.Schema()
		narrowed := make([]exec.AggSpec, 0, len(aggs))
		for i, a := range aggs {
			if a.Op != exec.AggCount {
				if _, ok := schema.Index(a.Col); !ok {
					continue
				}
			}
			narrowed = append(narrowed, a)
			landed[i] = true
		}
		if err := exec.ValidateAggs(schema, narrowed); err != nil {
			return nil, err
		}
		perTable[name] = narrowed
	}
	for i, ok := range landed {
		if !ok {
			return nil, fmt.Errorf("no queried table has aggregate column %q", aggs[i].Col)
		}
	}
	return perTable, nil
}

// decodeBody decodes a JSON request body under the configured size cap,
// writing the error response itself on failure. An oversized body is
// 413 with the standard error shape; everything else malformed is 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	results, status, err := s.answer(req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Results: results})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	resp := BatchResponse{Results: make([]BatchItem, 0, len(req.Queries))}
	for i, qr := range req.Queries {
		item := BatchItem{Index: i, ID: qr.ID}
		results, _, err := s.answer(qr)
		if err != nil {
			item.Error = err.Error()
		} else {
			item.Results = results
		}
		resp.Results = append(resp.Results, item)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tables": append([]string(nil), s.names...)})
}

// tableShard resolves the {table} path value, writing the 404 itself
// when the table is unknown.
func (s *Server) tableShard(w http.ResponseWriter, r *http.Request) (*shard, bool) {
	name := r.PathValue("table")
	sh, ok := s.shards[name]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown table %q", name))
		return nil, false
	}
	return sh, true
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	if sh, ok := s.tableShard(w, r); ok {
		writeJSON(w, http.StatusOK, sh.layoutInfo())
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if sh, ok := s.tableShard(w, r); ok {
		writeJSON(w, http.StatusOK, sh.stats())
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if sh, ok := s.tableShard(w, r); ok {
		writeJSON(w, http.StatusOK, TraceResponse{Table: sh.table, Events: sh.traceEvents()})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	names := append([]string(nil), s.names...)
	sort.Strings(names)
	resp := HealthResponse{Status: "ok", Tables: names}
	for _, name := range names {
		sh := s.shards[name]
		// Shard counters are the serving truth: they count every
		// answered request, including the ones overload sampled out of
		// the decision loop. The decision-loop total (Queries) is kept
		// alongside, explicitly labeled — summing only it undercounts
		// under load, the exact bug this endpoint used to have.
		resp.Served += sh.served.Load()
		resp.Observed += sh.observed.Load()
		resp.Dropped += sh.dropped.Load()
		resp.Queries += sh.copt.Stats().Queries
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeJSON marshals before writing the status line, so an
// unencodable value becomes an honest 500 instead of an empty body
// under an already-committed 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, status = []byte(`{"error":"response not encodable"}`), http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data = append(data, '\n')
	_, _ = w.Write(data)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
