// Package serve is OREO's online serving layer: a long-lived, sharded
// HTTP service over a MultiOptimizer, the subsystem that turns the
// in-process optimizer into something a query-execution fleet can sit
// behind.
//
// Requests are handled per table on independent shards. Each shard runs
// in a read-mostly regime: costing and survivor skip-list extraction —
// the per-request work — run lock-free against an atomically swapped
// immutable layout snapshot (oreo.ConcurrentOptimizer), while decision-
// state updates (admission, D-UMTS counters, reorganization) drain
// through a single background consumer fed by a bounded queue. The
// request path therefore scales with cores and is never stalled by a
// layout generation in progress; under overload, observations are
// sampled (and counted) instead of applying backpressure to queries.
//
// Endpoints:
//
//	POST /v1/query                  predicates in → cost, decision state,
//	                                and the survivor partition skip-list,
//	                                per affected table
//	POST /v1/query/batch            the same for many queries in one round
//	                                trip, with per-item (partial) failures
//	GET  /v1/tables                 registered tables
//	GET  /v1/tables/{table}/layout  serving layout, partition row counts
//	GET  /v1/tables/{table}/stats   optimizer counters + memo + shard metrics
//	GET  /v1/tables/{table}/trace   decision trace (needs TraceCapacity)
//	GET  /healthz                   liveness + per-table registry
//
// The wire predicate encoding matches the query-log format of
// internal/persist, so captured production logs replay against the
// server unchanged.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"oreo"
)

// DefaultQueueSize bounds each shard's observation queue when Config
// leaves it zero. One window's worth of headroom per the paper's
// defaults, times a safety factor for bursts.
const DefaultQueueSize = 1024

// Config parameterizes a Server.
type Config struct {
	// QueueSize bounds each table's decision-observation queue; zero
	// selects DefaultQueueSize. When a shard's queue is full, new
	// queries are answered normally but sampled out of reorganization
	// decisions (the Dropped metric counts them).
	QueueSize int
}

// Server shards a MultiOptimizer's tables behind an HTTP API. Construct
// with New, mount Handler, and Close on shutdown.
type Server struct {
	multi  *oreo.MultiOptimizer
	names  []string
	shards map[string]*shard
	mux    *http.ServeMux
}

// New builds a server over the registered tables. The MultiOptimizer
// (and its per-table Optimizers) must not be used directly afterwards:
// every shard owns its table's decision path.
func New(m *oreo.MultiOptimizer, cfg Config) (*Server, error) {
	names := m.Tables()
	if len(names) == 0 {
		return nil, fmt.Errorf("serve: no tables registered")
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.QueueSize < 0 {
		return nil, fmt.Errorf("serve: QueueSize must be positive, got %d", cfg.QueueSize)
	}
	s := &Server{
		multi:  m,
		names:  names,
		shards: make(map[string]*shard, len(names)),
		mux:    http.NewServeMux(),
	}
	for _, name := range names {
		s.shards[name] = newShard(name, m.Dataset(name), m.Optimizer(name), cfg.QueueSize)
	}

	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/tables/{table}/layout", s.handleLayout)
	s.mux.HandleFunc("GET /v1/tables/{table}/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/tables/{table}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s, nil
}

// Handler returns the server's HTTP handler, for mounting into an
// http.Server (the caller owns listening and TLS).
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the shards down gracefully: observation queues stop
// accepting, their consumers drain what was already queued, and the
// call returns when every decision loop is quiet. Call after the HTTP
// listener has stopped accepting requests.
func (s *Server) Close() {
	for _, name := range s.names {
		s.shards[name].close()
	}
}

// Snapshot returns the named table's current optimizer snapshot — the
// hook a host process uses to persist serving state at shutdown.
func (s *Server) Snapshot(table string) (oreo.OptimizerSnapshot, bool) {
	sh, ok := s.shards[table]
	if !ok {
		return oreo.OptimizerSnapshot{}, false
	}
	return sh.copt.Snapshot(), true
}

// answer resolves one decoded query to per-table results. With an
// explicit table, every predicate must name a column of that table's
// schema; with routing, every predicate must land on at least one
// table. Violations are client errors, not silent drops — a serving
// API must not quietly answer a different question than it was asked.
func (s *Server) answer(req QueryRequest) ([]TableResult, int, error) {
	q, err := decodeQuery(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(q.Preds) == 0 {
		// A predicate-free query is a full scan on every layout; it
		// carries no signal for reorganization (Route excludes such
		// queries for exactly that reason) and is almost certainly a
		// client bug. Reject it in both addressing modes.
		return nil, http.StatusBadRequest, fmt.Errorf("query has no predicates")
	}
	if req.Table != "" {
		sh, ok := s.shards[req.Table]
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("unknown table %q", req.Table)
		}
		schema := sh.ds.Schema()
		for _, p := range q.Preds {
			if _, ok := schema.Index(p.Col); !ok {
				return nil, http.StatusBadRequest, fmt.Errorf("table %q has no column %q", req.Table, p.Col)
			}
		}
		return []TableResult{sh.serveQuery(q)}, http.StatusOK, nil
	}

	routed, unrouted := s.multi.Route(q)
	if len(unrouted) > 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("no table has column %q", unrouted[0])
	}
	out := make([]TableResult, 0, len(routed))
	for _, name := range s.names {
		sub, touched := routed[name]
		if !touched {
			continue
		}
		out = append(out, s.shards[name].serveQuery(sub))
	}
	return out, http.StatusOK, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	results, status, err := s.answer(req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Results: results})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	resp := BatchResponse{Results: make([]BatchItem, 0, len(req.Queries))}
	for i, qr := range req.Queries {
		item := BatchItem{Index: i}
		results, _, err := s.answer(qr)
		if err != nil {
			item.Error = err.Error()
		} else {
			item.Results = results
		}
		resp.Results = append(resp.Results, item)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tables": append([]string(nil), s.names...)})
}

// tableShard resolves the {table} path value, writing the 404 itself
// when the table is unknown.
func (s *Server) tableShard(w http.ResponseWriter, r *http.Request) (*shard, bool) {
	name := r.PathValue("table")
	sh, ok := s.shards[name]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown table %q", name))
		return nil, false
	}
	return sh, true
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	if sh, ok := s.tableShard(w, r); ok {
		writeJSON(w, http.StatusOK, sh.layoutInfo())
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if sh, ok := s.tableShard(w, r); ok {
		writeJSON(w, http.StatusOK, sh.stats())
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if sh, ok := s.tableShard(w, r); ok {
		writeJSON(w, http.StatusOK, TraceResponse{Table: sh.table, Events: sh.traceEvents()})
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	total := 0
	names := append([]string(nil), s.names...)
	sort.Strings(names)
	for _, name := range names {
		total += s.shards[name].copt.Stats().Queries
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Tables: names, Queries: total})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
