package analysis

import (
	"strconv"
	"strings"
)

// Stdlibonly enforces the dependency contract of the designated leaf
// packages (the client SDK and internal/metrics in the real tree):
// every import must be standard library. A downstream service
// embedding the SDK, or an operator scraping the metrics encoder,
// must never pull OREO internals — or anything else — into its build.
//
// The rule is the same one the client package used to enforce with a
// bespoke go/parser test (since retired in favor of this analyzer):
// an import path containing a dot is a domain — not stdlib — and an
// import path inside this module is an internal dependency; both are
// violations. Standard-library paths never contain a dot.
func Stdlibonly(pkgs ...string) *Analyzer {
	a := &Analyzer{
		Name: "stdlibonly",
		Doc:  "designated leaf packages (client SDK, metrics) import only the standard library",
	}
	a.Run = func(pass *Pass) {
		if !pathMatch(pass.Pkg, pkgs) {
			return
		}
		mod := pass.Pkg.ModulePath
		if mod == "" {
			mod = "oreo"
		}
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				switch {
				case path == mod || strings.HasPrefix(path, mod+"/"):
					pass.Reportf(imp.Pos(), "package %s is stdlib-only: import %q reaches back into the module", pass.Pkg.Types.Name(), path)
				case strings.Contains(path, "."):
					pass.Reportf(imp.Pos(), "package %s is stdlib-only: import %q is not standard library", pass.Pkg.Types.Name(), path)
				}
			}
		}
	}
	return a
}
