package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Sample",
		Header: []string{"policy", "cost", "switches"},
	}
	t.AddRow("Static", 2650.0, 0)
	t.AddRow("OREO", 2003.25, 12)
	return t
}

func TestAddRowFormatting(t *testing.T) {
	tb := sample()
	if tb.Rows[0][1] != "2650" {
		t.Errorf("integral float rendered as %q", tb.Rows[0][1])
	}
	if tb.Rows[1][1] != "2003.25" {
		t.Errorf("fractional float rendered as %q", tb.Rows[1][1])
	}
	if tb.Rows[1][2] != "12" {
		t.Errorf("int rendered as %q", tb.Rows[1][2])
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== Sample ==") {
		t.Errorf("title line = %q", lines[0])
	}
	// Columns must align: "cost" starts at the same offset in all rows.
	idx := strings.Index(lines[1], "cost")
	for _, line := range lines[2:] {
		if len(line) < idx {
			t.Errorf("row shorter than header: %q", line)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# Sample\n") {
		t.Errorf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "policy,cost,switches") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "OREO,2003.25,12") {
		t.Errorf("missing CSV row:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{Header: []string{"name"}}
	tb.AddRow(`zorder("a,b")`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"zorder(""a,b"")"`) {
		t.Errorf("comma/quote cell not escaped:\n%s", buf.String())
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("text"); err != nil || f != Text {
		t.Error("text not parsed")
	}
	if f, err := ParseFormat(""); err != nil || f != Text {
		t.Error("empty not defaulted to text")
	}
	if f, err := ParseFormat("csv"); err != nil || f != CSV {
		t.Error("csv not parsed")
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestWriteDispatch(t *testing.T) {
	var text, csvOut bytes.Buffer
	if err := sample().Write(&text, Text); err != nil {
		t.Fatal(err)
	}
	if err := sample().Write(&csvOut, CSV); err != nil {
		t.Fatal(err)
	}
	if text.String() == csvOut.String() {
		t.Error("formats produced identical output")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := &Table{Header: []string{"a"}}
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}
