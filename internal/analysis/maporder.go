package analysis

import (
	"go/ast"
	"go/types"
)

// Maporder flags `range` over a map whose iteration order can reach
// an output the repo requires to be deterministic: fmt output, a JSON
// encoder, a Write* call on a buffer/writer, or an append to a slice
// declared outside the loop that is never sorted afterwards in the
// same function.
//
// Why this is a standing invariant and not a style nit: followers
// must be bit-identical to the leader at every epoch and /v1 is
// frozen byte-for-byte. Go randomizes map iteration order per range
// statement, so a map range feeding anything ordered is exactly the
// class of nondeterminism the golden files and replication property
// tests catch late and this analyzer catches at compile time.
//
// The allowed idiom — collect keys, sort, iterate the sorted slice —
// passes untouched: an append whose slice is later named in a sort.*
// or slices.Sort* call in the same function is not flagged.
func Maporder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "map iteration feeding ordered output (encoder, fmt, writer, escaping append) without a sort",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			walkParents(f, func(n ast.Node, parents []ast.Node) {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(pass.Pkg, rs) {
					return
				}
				checkMapRange(pass, rs, enclosingFuncBody(parents))
			})
		}
	}
	return a
}

func isMapRange(pkg *Package, rs *ast.RangeStmt) bool {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal in the parent stack (outermost-first).
func enclosingFuncBody(parents []ast.Node) *ast.BlockStmt {
	for i := len(parents) - 1; i >= 0; i-- {
		switch fn := parents[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// checkMapRange scans one map-range body for order-sensitive sinks.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sink := orderedSink(info, n); sink != "" {
				pass.Reportf(n.Pos(), "map iteration order reaches %s; iterate a sorted key slice instead", sink)
				return true
			}
			if obj := escapingAppend(info, n, rs); obj != nil {
				if !sortedAfter(info, funcBody, rs, obj) {
					pass.Reportf(n.Pos(), "append to %q inside a map range escapes in map order; sort it or iterate sorted keys", obj.Name())
				}
			}
		}
		return true
	})
}

// orderedSink classifies call expressions whose argument order is
// observable: fmt printing, JSON encoding/marshalling, and Write*
// methods on builders/buffers/writers.
func orderedSink(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Package-level calls: fmt.* / json.Marshal*.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "fmt":
				return "fmt output (" + sel.Sel.Name + ")"
			case "encoding/json":
				return "a JSON encoder (json." + sel.Sel.Name + ")"
			}
		}
	}
	// Method calls: Encode on a json.Encoder, Write* on anything.
	name := sel.Sel.Name
	if name == "Encode" || name == "Write" || name == "WriteString" ||
		name == "WriteByte" || name == "WriteRune" {
		return "a writer/encoder (." + name + ")"
	}
	return ""
}

// escapingAppend returns the object of `s` in `s = append(s, ...)`
// when s is declared outside the range statement — an append that can
// carry map order out of the loop.
func escapingAppend(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[target]
	if obj == nil {
		return nil
	}
	// Declared inside the loop body → cannot escape with map order
	// unless it, too, is appended outward (which gets its own check).
	if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
		return nil
	}
	return obj
}

// sortedAfter reports whether, somewhere after the range statement in
// the same function, obj is named inside a call into package sort or
// slices — the collect-then-sort idiom that makes the order
// deterministic again.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && info.Uses[aid] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
