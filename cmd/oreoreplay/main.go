// Command oreoreplay records and replays query workloads.
//
// Record a synthetic stream to a JSON-lines log:
//
//	oreoreplay -mode record -dataset tpch -queries 30000 -segments 20 -out workload.jsonl
//
// Replay a log (recorded or captured from production) through a chosen
// policy over a built-in dataset and print the cost ledger:
//
//	oreoreplay -mode replay -dataset tpch -in workload.jsonl -policy oreo
//	oreoreplay -mode replay -dataset tpch -in workload.jsonl -policy greedy -alpha 120
//
// Replaying the same log twice with the same seed is bit-identical, so
// logs are the unit of exchange for debugging reorganization decisions.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"oreo/internal/experiments"
	"oreo/internal/persist"
	"oreo/internal/policy"
	"oreo/internal/sim"
	"oreo/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "replay", "record | replay")
		dataset  = flag.String("dataset", "tpch", "built-in dataset: tpch|tpcds|telemetry")
		rows     = flag.Int("rows", 100000, "dataset rows (replay)")
		queries  = flag.Int("queries", 30000, "stream length (record)")
		segments = flag.Int("segments", 20, "template segments (record)")
		in       = flag.String("in", "", "query log to replay")
		out      = flag.String("out", "", "query log to record into")
		polName  = flag.String("policy", "oreo", "replay policy: oreo|greedy|regret|static")
		gen      = flag.String("generator", "qdtree", "layout generator: qdtree|zorder")
		alpha    = flag.Float64("alpha", 80, "relative reorganization cost")
		delay    = flag.Int("delay", 0, "background-reorganization delay (queries)")
		seed     = flag.Int64("seed", 1, "seed for data, workload, and policies")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "record":
		err = record(*dataset, *queries, *segments, *out, *seed)
	case "replay":
		err = replay(*dataset, *rows, *in, *polName, *gen, *alpha, *delay, *seed)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oreoreplay:", err)
		os.Exit(1)
	}
}

func record(dataset string, queries, segments int, out string, seed int64) error {
	if out == "" {
		return fmt.Errorf("-out is required in record mode")
	}
	templates := workload.TemplatesFor(dataset)
	if templates == nil {
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	rng := rand.New(rand.NewSource(seed))
	stream, err := workload.Generate(templates, workload.Config{
		NumQueries:  queries,
		NumSegments: segments,
	}, rng)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := persist.SaveQueries(f, stream.Queries); err != nil {
		return err
	}
	fmt.Printf("recorded %d queries (%d segments) to %s\n",
		len(stream.Queries), len(stream.Segments), out)
	return nil
}

func replay(dataset string, rows int, in, polName, genName string, alpha float64, delay int, seed int64) error {
	if in == "" {
		return fmt.Errorf("-in is required in replay mode")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	qs, err := persist.LoadQueries(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(qs) == 0 {
		return fmt.Errorf("query log %s is empty", in)
	}

	// The scenario builder needs stream parameters only for workload
	// synthesis; here the workload comes from the log, so the stream it
	// generates is discarded and replaced.
	s, err := experiments.Build(experiments.ScenarioConfig{
		Dataset:     dataset,
		Rows:        rows,
		NumQueries:  len(qs),
		NumSegments: 1,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	s.Stream.Queries = qs

	p := experiments.DefaultParams()
	p.Alpha = alpha
	p.Delay = delay
	p.Seed = seed

	var kind experiments.GeneratorKind
	switch genName {
	case "qdtree":
		kind = experiments.GenQdTree
	case "zorder":
		kind = experiments.GenZOrder
	default:
		return fmt.Errorf("unknown generator %q", genName)
	}
	generator := s.Generator(kind)

	var pol policy.Policy
	switch polName {
	case "oreo":
		pol = s.NewOREO(generator, p)
	case "greedy":
		pol = s.NewGreedy(generator, p)
	case "regret":
		pol = s.NewRegret(generator, p)
	case "static":
		pol = policy.NewStatic(s.StaticLayout(generator))
	default:
		return fmt.Errorf("unknown policy %q", polName)
	}

	res := sim.Run(qs, pol, sim.Config{Alpha: alpha, Delay: delay})
	fmt.Printf("replayed %d queries from %s on %s (%d rows, k=%d)\n",
		len(qs), in, dataset, rows, s.Partitions)
	fmt.Printf("policy=%s generator=%s alpha=%.0f delay=%d\n", res.Policy, genName, alpha, delay)
	fmt.Printf("query cost %.1f + reorg cost %.1f (%d switches) = total %.1f\n",
		res.QueryCost, res.ReorgCost, res.Switches, res.Total())
	fmt.Printf("final layout: %s\n", res.FinalLayout)
	return nil
}
