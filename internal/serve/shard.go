package serve

import (
	"math"
	"sync"
	"sync/atomic"

	"oreo"
)

// shard is one table's serving unit: a read-mostly optimizer plus the
// bounded observation queue that decouples request handling from the
// sequential decision path.
//
// The read path (serveQuery) is lock-free: it costs the query and
// extracts the survivor skip-list against the atomically published
// layout snapshot, then hands the query to the decision loop through a
// non-blocking send. The write path is one background consumer goroutine
// draining the queue into ConcurrentOptimizer.ProcessQuery, so the
// mutex-serialized decision path never sits on a request's critical
// path. When the queue is full the query is sampled out of
// reorganization decisions (counted in dropped) rather than blocking
// the request — under overload OREO sees a uniform sample of the
// stream, which its sliding-window machinery is built for.
type shard struct {
	table string
	ds    *oreo.Dataset
	copt  *oreo.ConcurrentOptimizer

	queue     chan oreo.Query
	closeOnce sync.Once
	wg        sync.WaitGroup
	// obsMu guards the handoff into queue against close: senders hold
	// the read side (cheap, shared), close holds the write side, so a
	// request racing a shutdown observes obsClosed instead of panicking
	// on a closed channel.
	obsMu     sync.RWMutex
	obsClosed bool

	served   atomic.Uint64 // read-path answers
	observed atomic.Uint64 // queries enqueued for the decision loop
	dropped  atomic.Uint64 // queue-full samples
	costBits atomic.Uint64 // sum of served costs, as float64 bits
}

func newShard(name string, ds *oreo.Dataset, opt *oreo.Optimizer, queueSize int) *shard {
	s := &shard{
		table: name,
		ds:    ds,
		copt:  oreo.NewConcurrent(opt),
		queue: make(chan oreo.Query, queueSize),
	}
	s.wg.Add(1)
	go s.consume()
	return s
}

// consume is the single decision consumer: it drains observed queries
// into the full OREO decision path, republishing the layout snapshot
// after each one.
func (s *shard) consume() {
	defer s.wg.Done()
	for q := range s.queue {
		s.copt.ProcessQuery(q)
	}
}

// close stops the shard: no further observations are accepted, the
// consumer drains what was already queued, and the call returns once
// the decision loop has gone quiet. Idempotent, and safe to call while
// requests are still in flight — late observations are dropped, not
// panicked on.
func (s *shard) close() {
	s.closeOnce.Do(func() {
		s.obsMu.Lock()
		s.obsClosed = true
		s.obsMu.Unlock()
		close(s.queue)
	})
	s.wg.Wait()
}

// observe hands the query to the decision loop without blocking: false
// when the queue is full or the shard is closing.
func (s *shard) observe(q oreo.Query) bool {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	if s.obsClosed {
		return false
	}
	select {
	case s.queue <- q:
		return true
	default:
		return false
	}
}

// serveQuery answers one routed query: the lock-free snapshot read path
// (OptimizerSnapshot.CostQuery) for cost and skip-list, then a
// non-blocking observation handoff.
func (s *shard) serveQuery(q oreo.Query) TableResult {
	snap := s.copt.Snapshot()
	dec := snap.CostQuery(q)

	observed := s.observe(q)
	if observed {
		s.observed.Add(1)
	} else {
		s.dropped.Add(1)
	}
	s.served.Add(1)
	s.addCost(dec.Cost)

	res := TableResult{
		Table:              s.table,
		Cost:               dec.Cost,
		Layout:             dec.Layout.Name,
		NumPartitions:      dec.Layout.Part.NumPartitions,
		SurvivorPartitions: dec.SurvivorPartitions(),
		Observed:           observed,
	}
	if snap.Pending != nil {
		res.Reorganizing = true
		res.PendingLayout = snap.Pending.Name
	}
	return res
}

// addCost accumulates a served cost into the float-bits counter.
func (s *shard) addCost(c float64) {
	for {
		old := s.costBits.Load()
		if s.costBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+c)) {
			return
		}
	}
}

// stats assembles the shard's stats response from one snapshot.
func (s *shard) stats() StatsResponse {
	snap := s.copt.Snapshot()
	st := snap.Stats
	memo := snap.Serving.Engine().Stats()
	return StatsResponse{
		Table: s.table,

		Queries:          st.Queries,
		Reorganizations:  st.Reorganizations,
		QueryCost:        st.QueryCost,
		ReorgCost:        st.ReorgCost,
		States:           st.States,
		MaxStates:        st.MaxStates,
		Phases:           st.Phases,
		CompetitiveBound: st.CompetitiveBound,

		MemoHits:    memo.Hits,
		MemoMisses:  memo.Misses,
		MemoEntries: memo.Entries,

		Served:        s.served.Load(),
		Observed:      s.observed.Load(),
		Dropped:       s.dropped.Load(),
		ServedCostSum: math.Float64frombits(s.costBits.Load()),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
	}
}

// layoutInfo assembles the layout response from one snapshot.
func (s *shard) layoutInfo() LayoutResponse {
	snap := s.copt.Snapshot()
	lay := snap.Serving
	rows := make([]int, lay.Part.NumPartitions)
	for pid, m := range lay.Part.Meta {
		if m != nil {
			rows[pid] = m.NumRows
		}
	}
	res := LayoutResponse{
		Table:         s.table,
		Layout:        lay.Name,
		NumPartitions: lay.Part.NumPartitions,
		TotalRows:     lay.Part.TotalRows,
		PartitionRows: rows,
	}
	if snap.Pending != nil {
		res.Reorganizing = true
		res.PendingLayout = snap.Pending.Name
	}
	return res
}

// traceEvents returns the decision trace (empty unless the optimizer
// was configured with TraceCapacity).
func (s *shard) traceEvents() []TraceEventJSON {
	events := s.copt.Events()
	out := make([]TraceEventJSON, 0, len(events))
	for _, e := range events {
		out = append(out, TraceEventJSON{
			Seq: e.Seq, Kind: e.Kind.String(), Layout: e.Layout, Detail: e.Detail,
		})
	}
	return out
}
