// Telemetry operations: the paper's production motivation (VMware's
// SuperCollider ingestion-log table). An append-only log serves two
// kinds of queries: time-range scans (hours to months wide) and
// collector-name filters. Overnight, an incident shifts the workload
// from dashboards (time ranges) to per-collector triage; OREO notices
// and reorganizes, then returns to the time layout when the incident
// ends. The example also demonstrates MaxStates pruning: the dynamic
// state space is capped, so stale layouts get evicted.
//
// Run with:
//
//	go run ./examples/telemetryops
package main

import (
	"fmt"
	"math/rand"

	"oreo"
)

const (
	rows       = 40000
	spanSec    = 30 * 24 * 3600 // one month of log
	collectors = 30
)

func buildLog() *oreo.Dataset {
	schema := oreo.NewSchema(
		oreo.Column{Name: "arrival_time", Type: oreo.Int64},
		oreo.Column{Name: "collector", Type: oreo.String},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "bytes", Type: oreo.Int64},
	)
	rng := rand.New(rand.NewSource(5))
	b := oreo.NewDatasetBuilder(schema, rows)
	collector := 0
	for i := 0; i < rows; i++ {
		if rng.Float64() < 0.01 { // bursty: collectors report in runs
			collector = rng.Intn(collectors)
		}
		status := "OK"
		if rng.Float64() < 0.03 {
			status = "FAILED"
		}
		b.AppendRow(
			oreo.Int(int64(float64(i)/rows*spanSec)),
			oreo.Str(fmt.Sprintf("collector-%02d", collector)),
			oreo.Str(status),
			oreo.Int(rng.Int63n(1<<30)),
		)
	}
	return b.Build()
}

func main() {
	ds := buildLog()
	opt, err := oreo.New(ds, oreo.Config{
		Alpha:       60,
		Partitions:  32,
		WindowSize:  120,
		MaxStates:   4, // cap the state space; prune redundant layouts
		InitialSort: []string{"arrival_time"},
		Seed:        6,
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(7))
	day := int64(24 * 3600)

	phase := func(name string, n int, make func(id int) oreo.Query) {
		var cost float64
		reorgs := 0
		for i := 0; i < n; i++ {
			dec := opt.ProcessQuery(make(i))
			cost += dec.Cost
			if dec.Reorganized {
				reorgs++
				fmt.Printf("  reorganized to %s\n", dec.Layout.Name)
			}
		}
		st := opt.Stats()
		fmt.Printf("%-22s avg scan %.3f of table, %d reorgs this phase, |S|=%d\n\n",
			name, cost/float64(n), reorgs, st.States)
	}

	id := 0
	next := func() int { id++; return id - 1 }

	fmt.Println("business as usual: dashboard time ranges")
	phase("dashboards", 900, func(int) oreo.Query {
		width := day * int64(1+rng.Intn(3))
		lo := rng.Int63n(spanSec - width)
		return oreo.Query{ID: next(), Preds: []oreo.Predicate{
			oreo.IntRange("arrival_time", lo, lo+width)}}
	})

	fmt.Println("incident: per-collector triage")
	phase("triage", 1500, func(int) oreo.Query {
		c := fmt.Sprintf("collector-%02d", rng.Intn(collectors))
		return oreo.Query{ID: next(), Preds: []oreo.Predicate{
			oreo.StrEq("collector", c)}}
	})

	fmt.Println("failure sweep: status + recent window")
	phase("failure sweep", 1200, func(int) oreo.Query {
		lo := spanSec - day*int64(2+rng.Intn(5))
		return oreo.Query{ID: next(), Preds: []oreo.Predicate{
			oreo.StrEq("status", "FAILED"),
			oreo.IntGE("arrival_time", lo)}}
	})

	fmt.Println("back to normal: dashboards again")
	phase("dashboards (again)", 900, func(int) oreo.Query {
		width := day * int64(1+rng.Intn(3))
		lo := rng.Int63n(spanSec - width)
		return oreo.Query{ID: next(), Preds: []oreo.Predicate{
			oreo.IntRange("arrival_time", lo, lo+width)}}
	})

	st := opt.Stats()
	fmt.Printf("month total: %d queries, query cost %.0f, %d reorgs (cost %.0f), |Smax|=%d, bound %.2fx\n",
		st.Queries, st.QueryCost, st.Reorganizations, st.ReorgCost, st.MaxStates, st.CompetitiveBound)
}
