// Package layout defines the data-layout abstraction OREO switches
// between and implements the three layout generation mechanisms the
// paper evaluates: default sort/range partitioning, workload-aware
// Z-ordering (on the most queried columns), and greedy Qd-trees.
//
// A Layout is a materialized mapping of a dataset's rows to partitions
// plus the partition metadata needed for skipping. A Generator produces
// a Layout from a dataset sample, a target query workload, and a target
// partition count — the paper's generate_layout(D, Q, k) interface. The
// companion eval_skipped(s, Q) is EvalSkipped, which works from
// metadata alone.
package layout

import (
	"fmt"

	"oreo/internal/prune"
	"oreo/internal/query"
	"oreo/internal/table"
)

// Layout is a candidate data layout: one state of the D-UMTS system.
// All costing methods run on the compiled pruning engine
// (internal/prune): predicates are bound against the schema once,
// evaluated over the partitioning's column-major statistics block, and
// memoized per query fingerprint — bit-for-bit equal to the interpreted
// query.FractionScanned, which remains available as the reference path.
type Layout struct {
	// Name describes how the layout was produced, e.g.
	// "zorder(l_shipdate,l_discount,l_quantity)" or "qdtree(w=200@1400)".
	Name string
	// Part is the materialized partitioning of the full dataset.
	Part *table.Partitioning
	// schema is retained for metadata evaluation.
	schema *table.Schema
	// eng memoizes and evaluates service costs for this layout.
	eng *prune.Engine
}

// New wraps a partitioning as a named layout.
func New(name string, schema *table.Schema, part *table.Partitioning) *Layout {
	return &Layout{Name: name, Part: part, schema: schema, eng: prune.NewEngine(schema, part)}
}

// Schema returns the schema the layout was built over.
func (l *Layout) Schema() *table.Schema { return l.schema }

// Engine returns the layout's costing engine (memo diagnostics).
func (l *Layout) Engine() *prune.Engine { return l.eng }

// Cost returns the paper's service cost c(s, q): the fraction of rows in
// partitions that cannot be skipped for q, judged from metadata only.
func (l *Layout) Cost(q query.Query) float64 {
	if l.eng == nil {
		// Hand-built Layout literal (tests): fall back to the
		// interpreted path rather than requiring New.
		return query.FractionScanned(l.schema, l.Part, q)
	}
	return l.eng.Cost(q)
}

// Compile binds a query against the layout's schema for repeated
// evaluation. The result can be shared across every layout over the same
// schema (the common case for a state space over one dataset).
func (l *Layout) Compile(q query.Query) *prune.CompiledQuery {
	return prune.Compile(l.schema, q)
}

// CompileWorkload binds every query of a sample against the layout's
// schema; see Compile.
func (l *Layout) CompileWorkload(qs []query.Query) []*prune.CompiledQuery {
	return prune.CompileAll(l.schema, qs)
}

// CostCompiled is Cost for a pre-compiled query: callers costing the
// same query against many layouts compile once and fan the result out.
func (l *Layout) CostCompiled(cq *prune.CompiledQuery) float64 {
	if l.eng == nil {
		return query.FractionScanned(l.schema, l.Part, cq.Query())
	}
	return l.eng.CostCompiled(cq)
}

// CostSurvivors returns the service cost together with the survivor
// partition skip-list: the ascending IDs of partitions whose metadata
// cannot rule the query out — exactly the partitions an execution layer
// must read (all others are provably skippable). The cost equals the
// row mass of the list divided by the table size and is bit-for-bit
// equal to Cost(q); the evaluation also warms the layout's cost memo.
func (l *Layout) CostSurvivors(q query.Query) (float64, []int) {
	if l.eng == nil {
		// Hand-built Layout literal (tests): the memo-free path is the
		// whole evaluation.
		return l.CostSurvivorsSnapshot(q)
	}
	return l.eng.CostSurvivors(q)
}

// CostSurvivorsSnapshot is CostSurvivors evaluated memo-free: it
// compiles against the schema and sweeps the partitioning's immutable
// statistics block without ever touching the layout's shared cost memo,
// so concurrent readers holding the layout (serving snapshots, the
// execution layer's store states) scale with cores instead of
// serializing on the memo lock. The cost and skip-list are bit-for-bit
// equal to CostSurvivors.
func (l *Layout) CostSurvivorsSnapshot(q query.Query) (float64, []int) {
	ids, c := prune.Compile(l.schema, q).Survivors(l.Part)
	return c, ids
}

// CostSurvivorsCompiled is CostSurvivors for a pre-compiled query. A
// query compiled against a different schema is transparently rebound.
func (l *Layout) CostSurvivorsCompiled(cq *prune.CompiledQuery) (float64, []int) {
	if l.eng == nil {
		if cq.Schema() != l.schema {
			cq = prune.Compile(l.schema, cq.Query())
		}
		ids, c := cq.Survivors(l.Part)
		return c, ids
	}
	return l.eng.CostSurvivorsCompiled(cq)
}

// EvalSkipped estimates the average fraction of data *skipped* on the
// workload: 1 - mean cost. This is the paper's eval_skipped(s, Q).
func (l *Layout) EvalSkipped(qs []query.Query) float64 {
	return 1 - l.AvgCost(qs)
}

// AvgCost returns the mean service cost over a workload.
func (l *Layout) AvgCost(qs []query.Query) float64 {
	if len(qs) == 0 {
		return 0
	}
	sum := 0.0
	for _, q := range qs {
		sum += l.Cost(q)
	}
	return sum / float64(len(qs))
}

// AvgCostCompiled is AvgCost over a pre-compiled sample.
func (l *Layout) AvgCostCompiled(cqs []*prune.CompiledQuery) float64 {
	if len(cqs) == 0 {
		return 0
	}
	sum := 0.0
	for _, cq := range cqs {
		sum += l.CostCompiled(cq)
	}
	return sum / float64(len(cqs))
}

// CostVector evaluates the layout on each query of a sample, producing
// the vector that Algorithm 5's layout-distance works on.
func (l *Layout) CostVector(qs []query.Query) []float64 {
	v := make([]float64, len(qs))
	for i, q := range qs {
		v[i] = l.Cost(q)
	}
	return v
}

// CostVectorCompiled is CostVector over a pre-compiled sample.
func (l *Layout) CostVectorCompiled(cqs []*prune.CompiledQuery) []float64 {
	v := make([]float64, len(cqs))
	for i, cq := range cqs {
		v[i] = l.CostCompiled(cq)
	}
	return v
}

// Distance returns the normalized L1 distance between two cost vectors,
// the layout-similarity measure of Algorithm 5. Vectors must have equal
// length. The result is in [0, 1] because each component is in [0, 1].
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("layout: cost vectors of different lengths %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a))
}

// Generator produces layouts for (dataset, workload, partition count).
// Implementations must be deterministic given their inputs so that
// experiment runs are reproducible.
type Generator interface {
	// Name identifies the generation mechanism ("qdtree", "zorder", ...).
	Name() string
	// Generate builds a layout of about k partitions for the dataset,
	// tuned to the query workload qs (which may be empty for
	// workload-oblivious generators).
	Generate(d *table.Dataset, qs []query.Query, k int) *Layout
}
