package serve

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"oreo"
)

// TestExecuteConcurrentDuringStoreSwap is the execution layer's -race
// stress: many goroutines execute queries against one shard — all
// scanning the same exec.Store through its atomic pointer, with the
// scan worker pool fanning out inside each request — while the decision
// loop reorganizes underneath them and swaps rebuilt stores in. Every
// answer must still match the row oracle exactly: a swap may change
// which layout answered, never what the query matched. Run with -race;
// a scan touching a store mid-rebuild, or pooled scratch shared across
// concurrent scans, trips the detector.
func TestExecuteConcurrentDuringStoreSwap(t *testing.T) {
	ds, s, _ := newExecFixture(t, 2000, oreo.Config{
		Alpha: 2, WindowSize: 20, Partitions: 16,
		InitialSort: []string{"order_ts"}, Seed: 5,
	}, Config{QueueSize: 512, ScanParallelism: 4})
	core := s.Core()

	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	type oracle struct {
		req  QueryRequest
		rows int
		sum  float64
	}
	oracles := make([]oracle, 0, len(statuses)+2)
	for _, st := range statuses {
		rows, sum := refCount(ds, oreo.Query{Preds: []oreo.Predicate{oreo.StrEq("status", st)}})
		oracles = append(oracles, oracle{
			req: QueryRequest{
				Table: "orders", Execute: true,
				Preds: []PredicateJSON{{Col: "status", In: []string{st}}},
				Aggs:  []AggregateJSON{{Op: "count"}, {Op: "sum", Col: "amount"}},
			},
			rows: rows, sum: sum,
		})
	}
	for _, span := range [][2]int64{{100, 700}, {1200, 1900}} {
		q := oreo.Query{Preds: []oreo.Predicate{oreo.IntRange("order_ts", span[0], span[1])}}
		rows, sum := refCount(ds, q)
		oracles = append(oracles, oracle{
			req: QueryRequest{
				Table: "orders", Execute: true,
				Preds: []PredicateJSON{{Col: "order_ts", HasLo: true, HasHi: true, LoI: span[0], HiI: span[1]}},
				Aggs:  []AggregateJSON{{Op: "count"}, {Op: "sum", Col: "amount"}},
			},
			rows: rows, sum: sum,
		})
	}

	// Alternating the status and time-range shapes from every goroutine
	// drives the aggressive optimizer through reorganizations while the
	// scans are in flight — the decision consumer rebuilds and swaps the
	// store behind the answering requests.
	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	var failed atomic.Bool
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters && !failed.Load(); i++ {
				o := oracles[(g+i)%len(oracles)]
				results, err := core.Answer(context.Background(), o.req)
				if err != nil {
					failed.Store(true)
					errCh <- err
					return
				}
				ex := results[0].Execution
				if ex.MatchedRows != o.rows {
					failed.Store(true)
					t.Errorf("goroutine %d iter %d on layout %q: matched %d, oracle %d",
						g, i, results[0].Layout, ex.MatchedRows, o.rows)
					return
				}
				if c := ex.Aggregates[0]; c.ValueI != int64(o.rows) {
					failed.Store(true)
					t.Errorf("goroutine %d iter %d: count %d, oracle %d", g, i, c.ValueI, o.rows)
					return
				}
				if sum := ex.Aggregates[1]; math.Abs(sum.ValueF-o.sum) > 1e-6*(1+math.Abs(o.sum)) {
					failed.Store(true)
					t.Errorf("goroutine %d iter %d: sum %v, oracle %v", g, i, sum.ValueF, o.sum)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent execute failed: %v", err)
	}

	// The stress only counts if stores actually swapped under it.
	sh := core.shards["orders"]
	if st := sh.store.Load(); st == nil {
		t.Fatal("no store was ever materialized")
	}
	if got := sh.executions.Load(); got < goroutines*iters/2 {
		t.Fatalf("only %d executions recorded", got)
	}
}
