package table

// StatsBlock is a column-major (struct-of-arrays) mirror of a
// partitioning's per-partition metadata, built once per partitioning and
// consumed by the compiled pruning engine (internal/prune).
//
// The row-wise representation — Meta[pid].Stats[ci] — is convenient to
// build incrementally but hostile to the cost hot path: evaluating one
// predicate against every partition chases one pointer per partition and
// strides across interleaved ColumnStats structs. The block transposes
// the numeric statistics into flat per-column arrays so that a range
// predicate on column ci scans two contiguous slices
// (MinI[ci*NumParts : (ci+1)*NumParts] and the matching MaxI window)
// in partition order, which is the access pattern the hardware prefetcher
// rewards.
//
// String-column membership tests still need the partition's distinct
// set or Bloom filter; Col keeps a flat pointer table back into the
// original ColumnStats for those. All numeric fields are copied verbatim
// (including the zero values a ColumnStats holds for slots of another
// type), so metadata evaluation over the block is bit-for-bit identical
// to evaluation over Meta.
type StatsBlock struct {
	// NumParts is the partition dimension: len(Partitioning.Meta).
	NumParts int
	// NumCols is the column dimension, taken from the partition metadata.
	NumCols int

	// Rows[pid] is the partition's row count.
	Rows []int

	// Flat per-column arrays, indexed by ci*NumParts + pid.
	MinI, MaxI []int64
	MinF, MaxF []float64
	// Seen mirrors !ColumnStats.Empty() per (column, partition).
	Seen []bool
	// Col points back at the source ColumnStats per (column, partition),
	// for string distinct-set / Bloom membership tests.
	Col []*ColumnStats

	// NonEmpty is a bitset over partition IDs with Rows > 0; word w bit b
	// covers partition w*64+b. Pruning starts from this mask (empty
	// partitions can never be scanned) and clears bits per predicate.
	NonEmpty []uint64
}

// buildStatsBlock transposes the partitioning's metadata. It tolerates
// nil Meta entries (they behave as empty partitions).
func buildStatsBlock(p *Partitioning) *StatsBlock {
	np := len(p.Meta)
	nc := 0
	for _, m := range p.Meta {
		if m != nil && len(m.Stats) > nc {
			nc = len(m.Stats)
		}
	}
	b := &StatsBlock{
		NumParts: np,
		NumCols:  nc,
		Rows:     make([]int, np),
		MinI:     make([]int64, nc*np),
		MaxI:     make([]int64, nc*np),
		MinF:     make([]float64, nc*np),
		MaxF:     make([]float64, nc*np),
		Seen:     make([]bool, nc*np),
		Col:      make([]*ColumnStats, nc*np),
		NonEmpty: make([]uint64, (np+63)/64),
	}
	for pid, m := range p.Meta {
		if m == nil {
			continue
		}
		b.Rows[pid] = m.NumRows
		if m.NumRows > 0 {
			b.NonEmpty[pid/64] |= 1 << (pid % 64)
		}
		for ci := range m.Stats {
			cs := &m.Stats[ci]
			idx := ci*np + pid
			b.MinI[idx], b.MaxI[idx] = cs.MinI, cs.MaxI
			b.MinF[idx], b.MaxF[idx] = cs.MinF, cs.MaxF
			b.Seen[idx] = !cs.Empty()
			b.Col[idx] = cs
		}
	}
	return b
}
