// Client SDK: drive a live OREO server end to end with the typed Go
// client — unary queries with typed predicates, executed aggregates,
// typed error mapping, and a bulk replay through the v2 stream
// endpoint. This is the loop a downstream service embeds: the client
// package imports only the standard library, so none of OREO's
// internals leak into its build.
//
// Run with:
//
//	go run ./examples/client
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"

	"oreo"
	"oreo/client"
	"oreo/internal/serve"
)

func main() {
	// A small "orders" table, arrival-ordered, served over HTTP on an
	// ephemeral port — a stand-in for a production oreoserve.
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	const rows = 20000
	rng := rand.New(rand.NewSource(1))
	b := oreo.NewDatasetBuilder(schema, rows)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	for i := 0; i < rows; i++ {
		b.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[rng.Intn(len(statuses))]), oreo.Float(rng.Float64()*500))
	}
	m := oreo.NewMulti()
	if err := m.AddTable("orders", b.Build(), oreo.Config{
		Alpha: 40, Partitions: 16, WindowSize: 100,
		InitialSort: []string{"order_ts"}, Seed: 7,
	}); err != nil {
		panic(err)
	}
	srv, err := serve.New(m, serve.Config{})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	// ---- Everything below is what a downstream service writes. ----

	ctx := context.Background()
	c, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		panic(err)
	}

	// One unary query: typed predicates in, cost + skip-list out.
	results, err := c.Query(ctx, client.Query{
		Table: "orders",
		Preds: []client.Predicate{client.IntRange("order_ts", 4000, 6000)},
	})
	if err != nil {
		panic(err)
	}
	r := results[0]
	fmt.Printf("layout %q costs %.3f for order_ts in [4000, 6000]; read partitions %v\n",
		r.Layout, r.Cost, r.SurvivorPartitions)

	// Execution: the server scans the survivor partitions and folds
	// aggregates next to the cost.
	results, err = c.Query(ctx, client.Query{
		Table:   "orders",
		Execute: true,
		Preds:   []client.Predicate{client.StrIn("status", "pending", "returned")},
		Aggs:    []client.Aggregate{client.Count(), client.Sum("amount")},
	})
	if err != nil {
		panic(err)
	}
	ex := results[0].Execution
	fmt.Printf("executed: %d matched rows, sum(amount) = %.2f (examined %d of %d rows)\n",
		ex.MatchedRows, ex.Aggregates[1].ValueF, ex.RowsExamined, ex.RowsTotal)

	// Errors come back typed: no status-code arithmetic at call sites.
	if _, err := c.Query(ctx, client.Query{
		Table: "shipments",
		Preds: []client.Predicate{client.IntGE("order_ts", 1)},
	}); errors.Is(err, client.ErrNotFound) {
		fmt.Println("unknown table surfaces as client.ErrNotFound:", err)
	}

	// Bulk replay: a captured workload streamed through one
	// /v2/query/stream connection — the decision loop sees every query,
	// the transport cost is paid once per stream, not once per query.
	queries := make([]client.Query, 1000)
	for i := range queries {
		lo := rng.Int63n(rows - 1500)
		queries[i] = client.Query{
			ID: i + 1, Table: "orders",
			Preds: []client.Predicate{client.IntRange("order_ts", lo, lo+1500)},
		}
	}
	items, err := c.Replay(ctx, queries, nil)
	if err != nil {
		panic(err)
	}
	var costSum float64
	for _, it := range items {
		costSum += it.Results[0].Cost
	}
	fmt.Printf("replayed %d queries over one stream; served cost %.1f\n", len(items), costSum)

	// The decision loop saw the replay: the optimizer's counters moved.
	st, err := c.TableStats(ctx, "orders")
	if err != nil {
		panic(err)
	}
	fmt.Printf("server stats: served %d, observed %d, reorganizations %d\n",
		st.Served, st.Observed, st.Reorganizations)
}
