// Package sampling provides the workload-sampling strategies the layout
// manager chooses between: a sliding window of recent queries (the
// paper's default and empirically best candidate source) and a
// reservoir-based time-biased sample (R-TBS, Hentschel/Haas/Tian 2019)
// used both as an alternative candidate source and as the query sample
// that layout-similarity is measured on (Algorithm 5).
package sampling

import "oreo/internal/query"

// SlidingWindow keeps the most recent Capacity queries in arrival order.
// The zero value is unusable; construct with NewSlidingWindow.
type SlidingWindow struct {
	buf   []query.Query
	head  int // index of the oldest element
	count int
	total int // lifetime number of queries observed
}

// NewSlidingWindow returns a window holding up to capacity queries.
func NewSlidingWindow(capacity int) *SlidingWindow {
	if capacity <= 0 {
		panic("sampling: sliding window capacity must be positive")
	}
	return &SlidingWindow{buf: make([]query.Query, capacity)}
}

// Add appends a query, evicting the oldest when full.
func (w *SlidingWindow) Add(q query.Query) {
	if w.count < len(w.buf) {
		w.buf[(w.head+w.count)%len(w.buf)] = q
		w.count++
	} else {
		w.buf[w.head] = q
		w.head = (w.head + 1) % len(w.buf)
	}
	w.total++
}

// Len returns the number of queries currently held.
func (w *SlidingWindow) Len() int { return w.count }

// Total returns the lifetime number of queries observed.
func (w *SlidingWindow) Total() int { return w.total }

// Capacity returns the window's maximum size.
func (w *SlidingWindow) Capacity() int { return len(w.buf) }

// Queries returns the window contents oldest-first as a fresh slice.
func (w *SlidingWindow) Queries() []query.Query {
	out := make([]query.Query, w.count)
	for i := 0; i < w.count; i++ {
		out[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	return out
}
