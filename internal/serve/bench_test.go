package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oreo"
	"oreo/internal/metrics"
)

// benchFixture builds a 50k-row table, an optimizer over it, and a
// pre-generated query mix, shared by the serving benchmarks.
func benchFixture(b *testing.B) (*oreo.Dataset, *oreo.Optimizer, []oreo.Query) {
	b.Helper()
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	rng := rand.New(rand.NewSource(9))
	const rows = 50000
	db := oreo.NewDatasetBuilder(schema, rows)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	for i := 0; i < rows; i++ {
		db.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[rng.Intn(4)]), oreo.Float(rng.Float64()*500))
	}
	ds := db.Build()
	opt, err := oreo.New(ds, oreo.Config{
		Partitions: 64, InitialSort: []string{"order_ts"}, Seed: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]oreo.Query, 512)
	for i := range queries {
		if i%2 == 0 {
			lo := rng.Int63n(rows - 2000)
			queries[i] = oreo.Query{ID: i, Preds: []oreo.Predicate{oreo.IntRange("order_ts", lo, lo+2000)}}
		} else {
			queries[i] = oreo.Query{ID: i, Preds: []oreo.Predicate{oreo.StrEq("status", statuses[i%4])}}
		}
	}
	return ds, opt, queries
}

// BenchmarkServingMutexQPS is the pre-serving baseline: every request
// runs the full decision path behind the ConcurrentOptimizer mutex, so
// requests serialize no matter how many cores serve them.
func BenchmarkServingMutexQPS(b *testing.B) {
	_, opt, queries := benchFixture(b)
	copt := oreo.NewConcurrent(opt)
	var i atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := queries[i.Add(1)%uint64(len(queries))]
			copt.ProcessQuery(q)
		}
	})
}

// BenchmarkServingSnapshotQPS is the serving read path: lock-free
// costing and skip-list extraction against the published snapshot, with
// the observation handoff included (consumer running), exactly what
// POST /v1/query does per request. The acceptance bar for the serving
// subsystem is ≥10x BenchmarkServingMutexQPS on an 8-core box.
func BenchmarkServingSnapshotQPS(b *testing.B) {
	ds, opt, queries := benchFixture(b)
	sh := newShard("orders", ds, opt, DefaultQueueSize, 1, ds.NumRows(), DefaultCompactThreshold, metrics.NewRegistry())
	defer sh.close()
	var i atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := queries[i.Add(1)%uint64(len(queries))]
			sh.serveQuery(q)
		}
	})
}

// replayFixture boots a full HTTP server over the bench fixture table
// and renders a 1k-query replay in both wire forms: individual
// /v1/query bodies and one /v2/query/stream NDJSON payload.
func replayFixture(b testing.TB) (*httptest.Server, []string, string) {
	b.Helper()
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	rng := rand.New(rand.NewSource(9))
	const rows = 50000
	db := oreo.NewDatasetBuilder(schema, rows)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	for i := 0; i < rows; i++ {
		db.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[rng.Intn(4)]), oreo.Float(rng.Float64()*500))
	}
	m := oreo.NewMulti()
	if err := m.AddTable("orders", db.Build(), oreo.Config{
		Partitions: 64, InitialSort: []string{"order_ts"}, Seed: 12,
	}); err != nil {
		b.Fatal(err)
	}
	s, err := New(m, Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() { ts.Close(); s.Close() })

	const replay = 1000
	bodies := make([]string, replay)
	var stream strings.Builder
	for i := 0; i < replay; i++ {
		var body string
		if i%2 == 0 {
			lo := rng.Int63n(rows - 2000)
			body = fmt.Sprintf(`{"id":%d,"table":"orders","preds":[{"col":"order_ts","has_lo":true,"has_hi":true,"lo_i":%d,"hi_i":%d}]}`, i+1, lo, lo+2000)
		} else {
			body = fmt.Sprintf(`{"id":%d,"table":"orders","preds":[{"col":"status","in":["%s"]}]}`, i+1, statuses[i%4])
		}
		bodies[i] = body
		stream.WriteString(body)
		stream.WriteByte('\n')
	}
	return ts, bodies, stream.String()
}

// BenchmarkStreamVsUnary measures the redesign's headline claim: a
// 1k-query log replay through POST /v2/query/stream versus the same
// 1000 queries as sequential POST /v1/query requests, both over real
// HTTP against the same server. One op is the full 1k replay; divide
// ns/op by 1000 for per-query cost. The acceptance bar is stream ≥ 3x
// unary per-query throughput (TestStreamThroughputBar enforces it).
func BenchmarkStreamVsUnary(b *testing.B) {
	b.Run("v1-unary", func(b *testing.B) {
		ts, bodies, _ := replayFixture(b)
		client := ts.Client()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for _, body := range bodies {
				resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		}
	})
	b.Run("v2-stream", func(b *testing.B) {
		ts, _, stream := replayFixture(b)
		client := ts.Client()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			streamReplayOnce(b, client, ts.URL, stream)
		}
	})
}

// streamReplayOnce pushes one NDJSON replay through the stream
// endpoint and consumes every response line.
func streamReplayOnce(tb testing.TB, client *http.Client, url, stream string) {
	resp, err := client.Post(url+"/v2/query/stream", "application/x-ndjson", strings.NewReader(stream))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lines := 0
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"error"`)) {
			tb.Fatalf("stream error line: %s", sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		tb.Fatal(err)
	}
	if lines != strings.Count(stream, "\n") {
		tb.Fatalf("%d response lines for %d queries", lines, strings.Count(stream, "\n"))
	}
}

// TestStreamThroughputBar is the acceptance criterion of the v2
// redesign measured in-repo: on a 1k-query replay, /v2/query/stream
// must deliver at least 3x the per-query throughput of sequential
// /v1/query requests. The measured gap is typically far larger (one
// connection + one encoder versus 1000 request/response cycles), so a
// 3x bar stays meaningful without being load-sensitive.
func TestStreamThroughputBar(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement skipped in -short mode")
	}
	ts, bodies, stream := replayFixture(t)
	client := ts.Client()

	// Warm both paths once (connection setup, lazy compiles), then time.
	streamReplayOnce(t, client, ts.URL, stream)

	start := time.Now()
	for _, body := range bodies {
		resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	unary := time.Since(start)

	start = time.Now()
	streamReplayOnce(t, client, ts.URL, stream)
	streamed := time.Since(start)

	ratio := float64(unary) / float64(streamed)
	t.Logf("1k-query replay: v1 unary %v, v2 stream %v (%.1fx)", unary, streamed, ratio)
	if ratio < 3 {
		t.Errorf("stream replay only %.1fx unary, acceptance bar is 3x", ratio)
	}
}

// BenchmarkServingSnapshotBatch32 runs the POST /v1/query/batch shape:
// one op is a 32-query batch on the read path. Divide ns/op by 32 for
// the per-query figure.
func BenchmarkServingSnapshotBatch32(b *testing.B) {
	ds, opt, queries := benchFixture(b)
	sh := newShard("orders", ds, opt, DefaultQueueSize, 1, ds.NumRows(), DefaultCompactThreshold, metrics.NewRegistry())
	defer sh.close()
	const batch = 32
	var i atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			base := int(i.Add(batch) % uint64(len(queries)))
			for j := 0; j < batch; j++ {
				sh.serveQuery(queries[(base+j)%len(queries)])
			}
		}
	})
}
