// Multi-table OREO: the paper's §VIII multi-table configuration. A
// star-schema workload joins an orders fact table with a customers
// dimension table; each table runs its own OREO instance and receives
// only the predicates on its own columns. When the workload drifts from
// order-date reporting to customer-segment analysis, only the table
// whose layout actually matters gets reorganized — the fact table's
// layout is left alone, and vice versa.
//
// Run with:
//
//	go run ./examples/multitable
package main

import (
	"fmt"
	"math/rand"

	"oreo"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Fact table: orders, arrival-ordered.
	ordersSchema := oreo.NewSchema(
		oreo.Column{Name: "order_day", Type: oreo.Int64},
		oreo.Column{Name: "priority", Type: oreo.String},
		oreo.Column{Name: "total", Type: oreo.Float64},
	)
	const orderRows = 24000
	ob := oreo.NewDatasetBuilder(ordersSchema, orderRows)
	prios := []string{"high", "low", "medium", "urgent"}
	for i := 0; i < orderRows; i++ {
		ob.AppendRow(
			oreo.Int(int64(i/40)),
			oreo.Str(prios[rng.Intn(len(prios))]),
			oreo.Float(rng.Float64()*1000),
		)
	}
	orders := ob.Build()

	// Dimension table: customers.
	custSchema := oreo.NewSchema(
		oreo.Column{Name: "signup_day", Type: oreo.Int64},
		oreo.Column{Name: "segment", Type: oreo.String},
		oreo.Column{Name: "nation", Type: oreo.String},
	)
	const custRows = 12000
	cb := oreo.NewDatasetBuilder(custSchema, custRows)
	segments := []string{"automobile", "building", "furniture", "household", "machinery"}
	nations := []string{"br", "cn", "de", "fr", "in", "jp", "uk", "us"}
	for i := 0; i < custRows; i++ {
		cb.AppendRow(
			oreo.Int(int64(i/20)),
			oreo.Str(segments[rng.Intn(len(segments))]),
			oreo.Str(nations[rng.Intn(len(nations))]),
		)
	}
	customers := cb.Build()

	m := oreo.NewMulti()
	must(m.AddTable("orders", orders, oreo.Config{
		Alpha: 40, Partitions: 16, WindowSize: 100,
		InitialSort: []string{"order_day"}, Seed: 12,
	}))
	must(m.AddTable("customers", customers, oreo.Config{
		Alpha: 40, Partitions: 12, WindowSize: 100,
		InitialSort: []string{"signup_day"}, Seed: 13,
	}))

	report := func(tag string) {
		st := m.Stats()
		for _, name := range m.Tables() {
			s := st[name]
			fmt.Printf("  %-10s queries=%-5d queryCost=%-8.1f reorgs=%d (layout: %s)\n",
				name, s.Queries, s.QueryCost, s.Reorganizations,
				m.Optimizer(name).CurrentLayout().Name)
		}
		q, r := m.TotalCost()
		fmt.Printf("  %-10s combined bill: %.1f query + %.0f reorg\n\n", tag, q, r)
	}

	// Epoch 1: order-date reporting with occasional join filters. The
	// join query carries predicates for both tables; each table's OREO
	// sees only its own columns.
	fmt.Println("epoch 1: date-range reporting (both layouts already fit)")
	for i := 0; i < 900; i++ {
		lo := rng.Int63n(500)
		q := oreo.Query{ID: i, Preds: []oreo.Predicate{
			oreo.IntRange("order_day", lo, lo+30),
		}}
		if i%3 == 0 { // join with a recent-customers filter
			q.Preds = append(q.Preds, oreo.IntGE("signup_day", 400))
		}
		m.ProcessQuery(q)
	}
	report("epoch 1")

	// Epoch 2: customer-segment analysis. Only the customers table has
	// anything to gain from reorganizing; orders must stay put.
	fmt.Println("epoch 2: segment analysis (only customers should reorganize)")
	for i := 900; i < 2400; i++ {
		q := oreo.Query{ID: i, Preds: []oreo.Predicate{
			oreo.StrEq("segment", segments[i%len(segments)]),
			oreo.StrEq("nation", nations[i%len(nations)]),
		}}
		if i%4 == 0 { // join side keeps a weak date filter on orders
			q.Preds = append(q.Preds, oreo.IntGE("order_day", 100))
		}
		m.ProcessQuery(q)
	}
	report("epoch 2")

	// Epoch 3: priority triage on orders only.
	fmt.Println("epoch 3: priority triage (only orders should reorganize)")
	for i := 2400; i < 3600; i++ {
		m.ProcessQuery(oreo.Query{ID: i, Preds: []oreo.Predicate{
			oreo.StrIn("priority", "urgent", "high"),
			oreo.FloatGE("total", 800),
		}})
	}
	report("epoch 3")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
