package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sampleValue extracts the value of one exact series line.
func sampleValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: unparsable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in scrape:\n%s", series, body)
	return 0
}

// TestMetricsEndpoint drives the serving surface and checks the scrape
// reflects it: per-endpoint request counters and latency histograms,
// shard serving counters, decision-loop counters, and the leader's
// replication epoch — plus that every non-comment line is well-formed
// exposition text.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newFixtureServerCfg(t, Config{ScanParallelism: 1})

	window := map[string]any{"table": "orders", "preds": []map[string]any{
		{"col": "order_ts", "has_lo": true, "has_hi": true, "lo_i": 0, "hi_i": 99},
	}}
	if resp, _ := postJSON(t, ts.URL+"/v1/query", window); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d", resp.StatusCode)
	}
	exec := map[string]any{"table": "orders", "execute": true,
		"preds": []map[string]any{
			{"col": "order_ts", "has_lo": true, "has_hi": true, "lo_i": 0, "hi_i": 99},
		},
		"aggs": []map[string]any{{"op": "count"}},
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/query", exec); resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d", resp.StatusCode)
	}
	bad := map[string]any{"table": "nope", "preds": []map[string]any{{"col": "x", "in": []string{"a"}}}}
	if resp, _ := postJSON(t, ts.URL+"/v1/query", bad); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown table: %d", resp.StatusCode)
	}
	waitDrained(t, ts.URL, "orders")

	body := scrape(t, ts)

	if got := sampleValue(t, body, `oreo_http_requests_total{code="200",endpoint="query"}`); got != 2 {
		t.Errorf("query 200s = %v, want 2", got)
	}
	if got := sampleValue(t, body, `oreo_http_requests_total{code="404",endpoint="query"}`); got != 1 {
		t.Errorf("query 404s = %v, want 1", got)
	}
	if got := sampleValue(t, body, `oreo_http_request_duration_seconds_count{endpoint="query"}`); got != 3 {
		t.Errorf("query latency samples = %v, want 3", got)
	}
	// Buckets are cumulative and terminate at +Inf == _count.
	if got := sampleValue(t, body, `oreo_http_request_duration_seconds_bucket{endpoint="query",le="+Inf"}`); got != 3 {
		t.Errorf("+Inf bucket = %v, want 3", got)
	}
	if got := sampleValue(t, body, `oreo_queries_served_total{table="orders"}`); got != 2 {
		t.Errorf("served = %v, want 2", got)
	}
	if got := sampleValue(t, body, `oreo_executions_total{table="orders"}`); got != 1 {
		t.Errorf("executions = %v, want 1", got)
	}
	if got := sampleValue(t, body, `oreo_scan_rows_examined_total{table="orders"}`); got <= 0 {
		t.Errorf("scan rows examined = %v, want > 0", got)
	}
	if got := sampleValue(t, body, `oreo_role{role="leader"}`); got != 1 {
		t.Errorf("role gauge = %v, want 1", got)
	}
	if got := sampleValue(t, body, `oreo_scan_parallelism`); got != 1 {
		t.Errorf("scan parallelism = %v, want 1", got)
	}

	// One source of truth: after the drain, served == observed ==
	// decisions == epoch, and the queue reads empty.
	served := sampleValue(t, body, `oreo_queries_served_total{table="orders"}`)
	decided := sampleValue(t, body, `oreo_decisions_total{table="orders"}`)
	if served != decided {
		t.Errorf("after drain: served %v != decisions %v", served, decided)
	}
	if depth := sampleValue(t, body, `oreo_observation_queue_depth{table="orders"}`); depth != 0 {
		t.Errorf("drained queue depth = %v", depth)
	}
	if epoch := sampleValue(t, body, `oreo_replication_epoch{table="orders"}`); epoch != decided {
		t.Errorf("epoch %v != decisions %v on a leader", epoch, decided)
	}

	lineRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|-?[0-9][0-9eE.+-]*)$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestMetricsStatsAgree pins the unified-counter contract: /stats,
// /healthz, and the scrape read the same instruments, so the surfaces
// cannot drift — including the Observed = Queries + QueueDepth
// identity /healthz now exposes.
func TestMetricsStatsAgree(t *testing.T) {
	_, ts := newFixtureServer(t, 64)
	q := map[string]any{"table": "orders", "preds": []map[string]any{
		{"col": "order_ts", "has_lo": true, "lo_i": 10},
	}}
	for i := 0; i < 5; i++ {
		if resp, _ := postJSON(t, ts.URL+"/v1/query", q); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d", i, resp.StatusCode)
		}
	}
	waitDrained(t, ts.URL, "orders")

	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/tables/orders/stats", &stats)
	body := scrape(t, ts)
	if got := sampleValue(t, body, `oreo_queries_served_total{table="orders"}`); got != float64(stats.Served) {
		t.Errorf("scrape served %v != /stats served %d", got, stats.Served)
	}
	if got := sampleValue(t, body, `oreo_observations_total{table="orders"}`); got != float64(stats.Observed) {
		t.Errorf("scrape observed %v != /stats observed %d", got, stats.Observed)
	}
	if got := sampleValue(t, body, `oreo_decisions_total{table="orders"}`); got != float64(stats.Queries) {
		t.Errorf("scrape decisions %v != /stats queries %d", got, stats.Queries)
	}

	var health HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Served < stats.Served {
		t.Errorf("/healthz served %d < /stats orders served %d", health.Served, stats.Served)
	}
	if health.Observed != uint64(health.Queries+health.QueueDepth) {
		t.Errorf("identity violated after drain: observed %d != queries %d + queue_depth %d",
			health.Observed, health.Queries, health.QueueDepth)
	}
}
