package mts

// OfflineOptimal computes the exact optimal offline cost of a uniform
// MTS instance via dynamic programming: costs[t][s] is the service cost
// of query t in state s, alpha the uniform movement cost, start the
// mandatory initial state (-1 for a free choice). It returns the
// minimal total cost and the number of moves an optimal schedule makes.
//
// This is the benchmark the competitive ratio is measured against. The
// DP is O(T·n) using the standard trick: the best predecessor is either
// the same state or the globally cheapest previous state plus alpha.
func OfflineOptimal(costs [][]float64, alpha float64, start int) (total float64, moves int) {
	if len(costs) == 0 {
		return 0, 0
	}
	n := len(costs[0])
	const inf = 1e308

	cur := make([]float64, n)
	curMoves := make([]int, n)
	for s := 0; s < n; s++ {
		base := 0.0
		m := 0
		if start >= 0 && s != start {
			base = alpha
			m = 1
		}
		cur[s] = base + costs[0][s]
		curMoves[s] = m
	}

	next := make([]float64, n)
	nextMoves := make([]int, n)
	for t := 1; t < len(costs); t++ {
		// Globally cheapest previous state (for a move), tie-broken by
		// fewer moves.
		bestPrev := inf
		bestPrevMoves := 0
		for s := 0; s < n; s++ {
			//oreovet:ignore floatbits deliberate tie-break on equal DP cost; costs are finite by construction and a missed tie only biases the reported move count
			if cur[s] < bestPrev || (cur[s] == bestPrev && curMoves[s] < bestPrevMoves) {
				bestPrev = cur[s]
				bestPrevMoves = curMoves[s]
			}
		}
		for s := 0; s < n; s++ {
			stay := cur[s]
			move := bestPrev + alpha
			if stay <= move {
				next[s] = stay + costs[t][s]
				nextMoves[s] = curMoves[s]
			} else {
				next[s] = move + costs[t][s]
				nextMoves[s] = bestPrevMoves + 1
			}
		}
		cur, next = next, cur
		curMoves, nextMoves = nextMoves, curMoves
	}

	total = inf
	for s := 0; s < n; s++ {
		//oreovet:ignore floatbits deliberate tie-break on equal DP cost; see the identical tie-break above
		if cur[s] < total || (cur[s] == total && curMoves[s] < moves) {
			total = cur[s]
			moves = curMoves[s]
		}
	}
	return total, moves
}
