package oreo_test

import (
	"fmt"

	"oreo"
)

// buildDemoTable makes a tiny deterministic events table.
func buildDemoTable() *oreo.Dataset {
	schema := oreo.NewSchema(
		oreo.Column{Name: "ts", Type: oreo.Int64},
		oreo.Column{Name: "kind", Type: oreo.String},
	)
	b := oreo.NewDatasetBuilder(schema, 1000)
	kinds := []string{"click", "purchase", "view"}
	for i := 0; i < 1000; i++ {
		b.AppendRow(oreo.Int(int64(i)), oreo.Str(kinds[i%3]))
	}
	return b.Build()
}

// The minimal lifecycle: construct an optimizer over a table, process
// queries, read the accounting.
func ExampleNew() {
	ds := buildDemoTable()
	opt, err := oreo.New(ds, oreo.Config{
		Alpha:       40,
		Partitions:  10,
		InitialSort: []string{"ts"},
	})
	if err != nil {
		panic(err)
	}
	dec := opt.ProcessQuery(oreo.Query{ID: 0, Preds: []oreo.Predicate{
		oreo.IntRange("ts", 0, 99),
	}})
	// The time-sorted layout skips 9 of 10 partitions for a 10% range.
	fmt.Printf("scanned %.0f%% of the table\n", dec.Cost*100)
	fmt.Printf("reorganized: %v\n", dec.Reorganized)
	// Output:
	// scanned 10% of the table
	// reorganized: false
}

// Layouts can be generated directly and compared on workloads, without
// running the full optimizer.
func ExampleGenerator() {
	ds := buildDemoTable()
	timeLayout := oreo.NewSortGenerator("ts").Generate(ds, nil, 10)
	kindLayout := oreo.NewSortGenerator("kind").Generate(ds, nil, 10)

	q := oreo.Query{Preds: []oreo.Predicate{oreo.StrEq("kind", "purchase")}}
	fmt.Printf("time layout scans %.0f%%\n", timeLayout.Cost(q)*100)
	fmt.Printf("kind layout scans %.0f%%\n", kindLayout.Cost(q)*100)
	// Output:
	// time layout scans 100%
	// kind layout scans 40%
}
