package testleak

import (
	"strings"
	"testing"
	"time"
)

// TestNoLeakPasses: a goroutine that exits within the grace window is
// not reported.
func TestNoLeakPasses(t *testing.T) {
	before := snapshot()
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(done)
	}()
	<-done
	if leaked := wait(before, DefaultGrace); len(leaked) != 0 {
		t.Fatalf("wait reported %d leaks for a finished goroutine: %v", len(leaked), leaked)
	}
}

// TestLeakDetected: a goroutine parked forever is reported with its
// stack, and the report names the parked function.
func TestLeakDetected(t *testing.T) {
	before := snapshot()
	block := make(chan struct{})
	go leakyFunc(block)
	defer close(block) // release it so the real Check in other tests stays clean

	time.Sleep(10 * time.Millisecond) // let it park
	leaked := wait(before, 100*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("got %d leaks, want 1: %v", len(leaked), leaked)
	}
	if !strings.Contains(leaked[0].stack, "leakyFunc") {
		t.Errorf("leak report does not name the parked function:\n%s", leaked[0].stack)
	}
}

func leakyFunc(block chan struct{}) { <-block }

// TestCheckIntegration arms Check the way a real test does and spawns
// a goroutine that exits during the grace window: the cleanup must not
// fail the test.
func TestCheckIntegration(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(done)
	}()
	<-done
}
