package manager

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oreo/internal/layout"
	"oreo/internal/query"
)

// Property: admission is monotone in ε — if a candidate is rejected at
// some threshold, it is rejected at every larger threshold.
func TestAdmitMonotoneInEpsilon(t *testing.T) {
	d := testDataset(300)
	gens := []layout.Generator{
		layout.NewSortGenerator("ts"),
		layout.NewSortGenerator("cat"),
		layout.NewSortGenerator("cat", "ts"),
		layout.NewRoundRobinGenerator(),
	}
	layouts := make([]*layout.Layout, len(gens))
	for i, g := range gens {
		layouts[i] = g.Generate(d, nil, 6)
	}
	rng := rand.New(rand.NewSource(1))
	sample := make([]query.Query, 20)
	for i := range sample {
		if i%2 == 0 {
			lo := rng.Int63n(250)
			sample[i] = tsQuery(i, lo, lo+30)
		} else {
			sample[i] = catQuery(i, []string{"a", "b", "c", "d"}[rng.Intn(4)])
		}
	}

	f := func(candIdx, incMask uint8, e1Raw, e2Raw uint8) bool {
		cand := layouts[int(candIdx)%len(layouts)]
		var incumbents []*layout.Layout
		for i, l := range layouts {
			if incMask&(1<<uint(i)) != 0 && l != cand {
				incumbents = append(incumbents, l)
			}
		}
		e1 := float64(e1Raw) / 255
		e2 := float64(e2Raw) / 255
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		// admitted at larger eps implies admitted at smaller eps.
		if Admit(cand, incumbents, sample, e2) && !Admit(cand, incumbents, sample, e1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: admission is symmetric-ish in content — a layout identical
// to an incumbent (same cost vector) is never admitted for any ε ≥ 0.
func TestAdmitNeverAdmitsDuplicate(t *testing.T) {
	d := testDataset(200)
	l := layout.NewSortGenerator("ts").Generate(d, nil, 5)
	dup := layout.NewSortGenerator("ts").Generate(d, nil, 5)
	sample := []query.Query{tsQuery(0, 0, 39), tsQuery(1, 100, 139), catQuery(2, "a")}
	for _, eps := range []float64{0, 0.01, 0.5, 1} {
		if Admit(dup, []*layout.Layout{l}, sample, eps) {
			t.Errorf("duplicate admitted at eps=%g", eps)
		}
	}
}

// MostRedundant never returns a skipped index and always returns a
// valid index (or -1) for arbitrary skip functions.
func TestMostRedundantRespectsSkip(t *testing.T) {
	d := testDataset(200)
	layouts := []*layout.Layout{
		layout.NewSortGenerator("ts").Generate(d, nil, 5),
		layout.NewSortGenerator("cat").Generate(d, nil, 5),
		layout.NewRoundRobinGenerator().Generate(d, nil, 5),
	}
	sample := []query.Query{tsQuery(0, 0, 39), catQuery(1, "b")}
	f := func(mask uint8) bool {
		skip := func(i int) bool { return mask&(1<<uint(i)) != 0 }
		got := MostRedundant(layouts, sample, skip)
		if got == -1 {
			return true
		}
		return got >= 0 && got < len(layouts) && !skip(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// All-skipped incumbents yield -1.
func TestMostRedundantAllSkipped(t *testing.T) {
	d := testDataset(100)
	layouts := []*layout.Layout{
		layout.NewSortGenerator("ts").Generate(d, nil, 4),
		layout.NewSortGenerator("cat").Generate(d, nil, 4),
	}
	sample := []query.Query{tsQuery(0, 0, 19)}
	if got := MostRedundant(layouts, sample, func(int) bool { return true }); got != -1 {
		t.Errorf("victim = %d with everything skipped", got)
	}
}
