package persist

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"oreo/internal/datagen"
	"oreo/internal/query"
	"oreo/internal/workload"
)

func TestQueryLogRoundTrip(t *testing.T) {
	qs := []query.Query{
		{ID: 0, Template: 2, Preds: []query.Predicate{query.IntRange("a", -5, 10)}},
		{ID: 1, Preds: []query.Predicate{query.FloatGE("b", 0.25), query.StrEq("c", "x")}},
		{ID: 2, Preds: []query.Predicate{query.StrIn("c", "x", "y", "z")}},
		{ID: 3, Preds: []query.Predicate{query.IntLE("a", 0)}}, // zero bound round-trips
		{ID: 4}, // empty conjunction
	}
	var buf bytes.Buffer
	if err := SaveQueries(&buf, qs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadQueries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qs, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", qs, got)
	}
}

func TestQueryLogRealWorkloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ds := range datagen.Names() {
		stream := workload.MustGenerate(workload.TemplatesFor(ds),
			workload.Config{NumQueries: 200, NumSegments: 4}, rng)
		var buf bytes.Buffer
		if err := SaveQueries(&buf, stream.Queries); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		got, err := LoadQueries(&buf)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if !reflect.DeepEqual(stream.Queries, got) {
			t.Errorf("%s: workload does not round-trip", ds)
		}
	}
}

func TestQueryLogRejectsCorruption(t *testing.T) {
	cases := []string{
		`{"id":0,"preds":[{"col":""}]}`,                        // empty column
		`{"id":0,"preds":[{"col":"a"}]}`,                       // no bounds, no IN
		`{"id":0,"preds":[{"col":"a","has_lo":true}]} garbage`, // trailing garbage
	}
	for i, c := range cases {
		if _, err := LoadQueries(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestQueryLogEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveQueries(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := LoadQueries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty log decoded %d queries", len(got))
	}
}

func TestQueryLogSaveRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	bad := []query.Query{{ID: 0, Preds: []query.Predicate{{Col: "a"}}}}
	if err := SaveQueries(&buf, bad); err == nil {
		t.Error("unbounded numeric predicate accepted at save time")
	}
}
