package persist

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"oreo/internal/layout"
	"oreo/internal/prune"
	"oreo/internal/table"
)

// State persistence extends the layout format with the warm-start
// payload a long-lived server wants back after a restart: the layout's
// column-major statistics block and the costing engine's memo. A cold
// restart rebuilds metadata in one dataset pass but starts with an
// empty memo, so the first window re-costings after boot pay full
// evaluation cost; LoadState restores the memo so the serving hot path
// restarts hot.
//
// Soundness: partition metadata is still recomputed from the dataset at
// load — nothing read from disk ever feeds partition skipping. The
// saved statistics block is used purely as an integrity gate for the
// memo: it is compared bit-for-bit (floats by their IEEE-754 bit
// patterns, so NaN-poisoned metadata round-trips exactly) against the
// block recomputed from the dataset, and on any mismatch the memo is
// discarded, because its costs describe different data. A stale state
// file therefore degrades to a cold start, never to wrong answers.
//
// The same framing doubles as the replication snapshot: a leader
// captures its serving state with CaptureState, ships the StateDoc
// inside a stream record, and the follower Binds it against its local
// copy of the data. There the statistics-block gate carries a stronger
// meaning — a mismatch proves the follower's data differs from the
// leader's, so replication treats warm=false as a fatal divergence
// rather than a cold start.

// StateFormatVersion identifies the on-disk warm-start encoding.
// Version 2 added the optional Data section (live-write tail + delta);
// version-1 files carry no data section and still load.
const StateFormatVersion = 2

// stateVersionV1 is the pre-live-writes encoding: layout + stats +
// memo, no Data section.
const stateVersionV1 = 1

// StateDoc is the serialized form of a warm-start snapshot: the layout
// document plus the statistics block and cost memo captured with it,
// and — once a table takes live writes — the data the layout cannot
// reproduce from the boot source alone (rows appended since boot).
type StateDoc struct {
	Version int       `json:"version"`
	Layout  LayoutDoc `json:"layout"`
	Stats   StatsDoc  `json:"stats"`
	Memo    []MemoDoc `json:"memo,omitempty"`
	// Data versions the rows themselves. Nil for tables that never took
	// a live write (and for every version-1 document): the boot source
	// reproduces the dataset exactly, so only the layout needs saving.
	Data *DataDoc `json:"data,omitempty"`
}

// DataDoc records how a table's rows relate to its boot source: the
// first BootRows rows come from the source the process loads at boot
// (CSV file or generated fixture), Tail holds compacted appended rows
// beyond those, and Delta holds rows still in the uncompacted delta
// segment. BootRows pins the split so a restart can verify the boot
// source still matches before grafting the tail on.
type DataDoc struct {
	BootRows int      `json:"boot_rows"`
	Tail     *RowsDoc `json:"tail,omitempty"`
	Delta    *RowsDoc `json:"delta,omitempty"`
}

// RowsDoc is a columnar row batch on the wire: one typed array per
// schema column, floats as IEEE-754 bit patterns (JSON has no NaN, and
// bit patterns keep the follower ≡ leader comparison exact). The same
// framing carries warm-start tails, warm-start deltas, and replication
// append batches.
type RowsDoc struct {
	NumRows int      `json:"num_rows"`
	Columns []string `json:"columns"`
	// Per-column arrays, indexed by schema column position; exactly one
	// of the three is non-nil per position, matching the column's type.
	Ints      [][]int64  `json:"ints,omitempty"`
	FloatBits [][]uint64 `json:"float_bits,omitempty"`
	Strs      [][]string `json:"strs,omitempty"`
}

// CaptureRows snapshots rows [from, to) of the dataset as a wire batch.
func CaptureRows(ds *table.Dataset, from, to int) (*RowsDoc, error) {
	if from < 0 || to > ds.NumRows() || from > to {
		return nil, fmt.Errorf("persist: capture range [%d,%d) outside dataset of %d rows", from, to, ds.NumRows())
	}
	s := ds.Schema()
	f := &RowsDoc{
		NumRows:   to - from,
		Columns:   s.Names(),
		Ints:      make([][]int64, s.NumCols()),
		FloatBits: make([][]uint64, s.NumCols()),
		Strs:      make([][]string, s.NumCols()),
	}
	for c := 0; c < s.NumCols(); c++ {
		switch s.Col(c).Type {
		case table.Int64:
			f.Ints[c] = append([]int64(nil), ds.Int64Col(c)[from:to]...)
		case table.Float64:
			bits := make([]uint64, 0, to-from)
			for _, v := range ds.Float64Col(c)[from:to] {
				bits = append(bits, math.Float64bits(v))
			}
			f.FloatBits[c] = bits
		case table.String:
			f.Strs[c] = append([]string(nil), ds.StringCol(c)[from:to]...)
		}
	}
	return f, nil
}

// Dataset materializes the batch against the schema, which becomes the
// result's schema (pointer identity — the contract Concat and the delta
// segment require). Shape is validated column by column; a batch saved
// against a different schema is an explicit error, never a
// misinterpreted dataset.
func (f *RowsDoc) Dataset(schema *table.Schema) (*table.Dataset, error) {
	if len(f.Columns) != schema.NumCols() {
		return nil, fmt.Errorf("persist: row batch has %d columns, schema has %d", len(f.Columns), schema.NumCols())
	}
	for i, name := range f.Columns {
		if schema.Col(i).Name != name {
			return nil, fmt.Errorf("persist: row batch column %d is %q, schema has %q", i, name, schema.Col(i).Name)
		}
	}
	colLen := func(c int) int {
		switch schema.Col(c).Type {
		case table.Int64:
			if c < len(f.Ints) {
				return len(f.Ints[c])
			}
		case table.Float64:
			if c < len(f.FloatBits) {
				return len(f.FloatBits[c])
			}
		case table.String:
			if c < len(f.Strs) {
				return len(f.Strs[c])
			}
		}
		return -1
	}
	b := table.NewBuilder(schema, f.NumRows)
	for c := 0; c < schema.NumCols(); c++ {
		if n := colLen(c); n != f.NumRows {
			return nil, fmt.Errorf("persist: row batch column %q carries %d values, batch declares %d rows", schema.Col(c).Name, n, f.NumRows)
		}
	}
	row := make([]table.Value, schema.NumCols())
	for r := 0; r < f.NumRows; r++ {
		for c := 0; c < schema.NumCols(); c++ {
			switch schema.Col(c).Type {
			case table.Int64:
				row[c] = table.Int(f.Ints[c][r])
			case table.Float64:
				row[c] = table.Float(math.Float64frombits(f.FloatBits[c][r]))
			case table.String:
				row[c] = table.Str(f.Strs[c][r])
			}
		}
		b.AppendRow(row...)
	}
	return b.Build(), nil
}

// StatsDoc mirrors table.StatsBlock's numeric content. Floats are
// stored as IEEE-754 bit patterns: JSON cannot represent NaN (which
// legitimately appears as poisoned float metadata), and bit patterns
// make the load-time comparison exact rather than subject to any
// formatting round trip.
type StatsDoc struct {
	NumParts int      `json:"num_parts"`
	NumCols  int      `json:"num_cols"`
	Rows     []int    `json:"rows"`
	MinI     []int64  `json:"min_i"`
	MaxI     []int64  `json:"max_i"`
	MinFBits []uint64 `json:"min_f_bits"`
	MaxFBits []uint64 `json:"max_f_bits"`
	Seen     []bool   `json:"seen"`
	NonEmpty []uint64 `json:"non_empty"`
}

// MemoDoc is one memo entry: the query's binary structural fingerprint
// (base64, as fingerprints are not valid UTF-8) and its memoized cost.
type MemoDoc struct {
	FP   string  `json:"fp"`
	Cost float64 `json:"cost"`
}

// newStatsDoc snapshots a statistics block.
func newStatsDoc(b *table.StatsBlock) StatsDoc {
	f := StatsDoc{
		NumParts: b.NumParts,
		NumCols:  b.NumCols,
		Rows:     append([]int(nil), b.Rows...),
		MinI:     append([]int64(nil), b.MinI...),
		MaxI:     append([]int64(nil), b.MaxI...),
		MinFBits: make([]uint64, len(b.MinF)),
		MaxFBits: make([]uint64, len(b.MaxF)),
		Seen:     append([]bool(nil), b.Seen...),
		NonEmpty: append([]uint64(nil), b.NonEmpty...),
	}
	for i, v := range b.MinF {
		f.MinFBits[i] = math.Float64bits(v)
	}
	for i, v := range b.MaxF {
		f.MaxFBits[i] = math.Float64bits(v)
	}
	return f
}

// matchesBlock reports whether the saved statistics equal the block
// recomputed from the live dataset, bit for bit.
func (f *StatsDoc) matchesBlock(b *table.StatsBlock) bool {
	if f.NumParts != b.NumParts || f.NumCols != b.NumCols ||
		len(f.Rows) != len(b.Rows) || len(f.MinI) != len(b.MinI) ||
		len(f.MaxI) != len(b.MaxI) || len(f.MinFBits) != len(b.MinF) ||
		len(f.MaxFBits) != len(b.MaxF) || len(f.Seen) != len(b.Seen) ||
		len(f.NonEmpty) != len(b.NonEmpty) {
		return false
	}
	for i, v := range b.Rows {
		if f.Rows[i] != v {
			return false
		}
	}
	for i, v := range b.MinI {
		if f.MinI[i] != v {
			return false
		}
	}
	for i, v := range b.MaxI {
		if f.MaxI[i] != v {
			return false
		}
	}
	for i, v := range b.MinF {
		if f.MinFBits[i] != math.Float64bits(v) {
			return false
		}
	}
	for i, v := range b.MaxF {
		if f.MaxFBits[i] != math.Float64bits(v) {
			return false
		}
	}
	for i, v := range b.Seen {
		if f.Seen[i] != v {
			return false
		}
	}
	for i, v := range b.NonEmpty {
		if f.NonEmpty[i] != v {
			return false
		}
	}
	return true
}

// CaptureState builds a warm-start snapshot of the layout in memory:
// the row→partition assignment, the column-major statistics block, and
// the cost memo (least recently used first, preserving eviction order).
func CaptureState(l *layout.Layout) (*StateDoc, error) {
	lf, err := CaptureLayout(l)
	if err != nil {
		return nil, err
	}
	f := &StateDoc{
		Version: StateFormatVersion,
		Layout:  *lf,
		Stats:   newStatsDoc(l.Part.Stats()),
	}
	if eng := l.Engine(); eng != nil {
		for _, en := range eng.ExportMemo() {
			f.Memo = append(f.Memo, MemoDoc{
				FP:   base64.StdEncoding.EncodeToString([]byte(en.FP)),
				Cost: en.Cost,
			})
		}
	}
	return f, nil
}

// CaptureStateWithData builds a warm-start snapshot that also carries
// the rows the boot source cannot reproduce: base is the table's
// current compacted dataset (the one l covers), of which the first
// bootRows rows come from the boot source; delta is the uncompacted
// delta segment (nil or empty for none). A table that never took a
// live write (bootRows == base rows, empty delta) gets no Data section
// and the document is readable by version-1 loaders.
func CaptureStateWithData(l *layout.Layout, base *table.Dataset, bootRows int, delta *table.Dataset) (*StateDoc, error) {
	f, err := CaptureState(l)
	if err != nil {
		return nil, err
	}
	if bootRows < 0 || bootRows > base.NumRows() {
		return nil, fmt.Errorf("persist: boot rows %d outside dataset of %d rows", bootRows, base.NumRows())
	}
	d := &DataDoc{BootRows: bootRows}
	dirty := false
	if bootRows < base.NumRows() {
		if d.Tail, err = CaptureRows(base, bootRows, base.NumRows()); err != nil {
			return nil, err
		}
		dirty = true
	}
	if delta != nil && delta.NumRows() > 0 {
		if d.Delta, err = CaptureRows(delta, 0, delta.NumRows()); err != nil {
			return nil, err
		}
		dirty = true
	}
	if dirty {
		f.Data = d
	}
	return f, nil
}

// BindData resolves the document's data section against the boot
// dataset: it returns the base dataset the layout covers (boot plus the
// saved tail) and the saved delta rows (nil when none), both sharing
// the boot schema. Call it before Bind — Bind validates the layout
// against the returned base, and its statistics gate then proves the
// reassembled rows match the ones the document was captured over. A
// boot source that shrank or grew since the save is an explicit error:
// the saved tail would land on the wrong rows.
func (f *StateDoc) BindData(boot *table.Dataset) (base, delta *table.Dataset, err error) {
	if err := f.checkVersion(); err != nil {
		return nil, nil, err
	}
	if f.Data == nil {
		return boot, nil, nil
	}
	if boot.NumRows() != f.Data.BootRows {
		return nil, nil, fmt.Errorf("persist: state was saved over a %d-row boot source, booted with %d rows", f.Data.BootRows, boot.NumRows())
	}
	base = boot
	if f.Data.Tail != nil {
		tail, err := f.Data.Tail.Dataset(boot.Schema())
		if err != nil {
			return nil, nil, fmt.Errorf("persist: rebuilding saved tail: %w", err)
		}
		base = table.Concat(boot, tail)
	}
	if f.Data.Delta != nil {
		if delta, err = f.Data.Delta.Dataset(boot.Schema()); err != nil {
			return nil, nil, fmt.Errorf("persist: rebuilding saved delta: %w", err)
		}
	}
	return base, delta, nil
}

// checkVersion gates every read path on the format version: both
// supported encodings load, anything newer is an explicit error.
func (f *StateDoc) checkVersion() error {
	if f.Version != StateFormatVersion && f.Version != stateVersionV1 {
		return fmt.Errorf("persist: unknown state format version %d (this build reads versions %d-%d)", f.Version, stateVersionV1, StateFormatVersion)
	}
	return nil
}

// SaveState writes a warm-start snapshot of the layout; see
// CaptureState for what it carries.
func SaveState(w io.Writer, l *layout.Layout) error {
	f, err := CaptureState(l)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(f)
}

// SaveStateWithData writes a warm-start snapshot that also carries the
// rows the boot source cannot reproduce; see CaptureStateWithData.
func SaveStateWithData(w io.Writer, l *layout.Layout, base *table.Dataset, bootRows int, delta *table.Dataset) error {
	f, err := CaptureStateWithData(l, base, bootRows, delta)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(f)
}

// Bind rebinds a state document to the dataset. The layout's partition
// metadata is recomputed from the dataset (as LayoutDoc.Bind does); the
// memo is installed only when the recomputed statistics block matches
// the saved one bit-for-bit. The boolean reports whether the memo was
// installed (a "warm" restart). warm=false with a nil error means the
// layout itself is usable but the saved statistics (or memo) did not
// survive verification — for a restart that is a cold boot, for a
// replication snapshot it is a data divergence the caller must treat as
// fatal.
func (f *StateDoc) Bind(ds *table.Dataset) (*layout.Layout, bool, error) {
	if err := f.checkVersion(); err != nil {
		return nil, false, err
	}
	l, err := f.Layout.Bind(ds)
	if err != nil {
		return nil, false, err
	}
	if !f.Stats.matchesBlock(l.Part.Stats()) {
		// The saved costs describe different data (dataset changed since
		// the snapshot): fall back to a cold memo.
		return l, false, nil
	}
	entries := make([]prune.MemoEntry, 0, len(f.Memo))
	for _, m := range f.Memo {
		fp, err := base64.StdEncoding.DecodeString(m.FP)
		if err != nil || m.Cost < 0 || m.Cost > 1 || math.IsNaN(m.Cost) {
			// The layout itself passed all its integrity checks; a
			// corrupt memo entry costs us the warm start, not the
			// converged layout. Discard the whole memo (its provenance
			// is now suspect) and boot cold.
			return l, false, nil
		}
		entries = append(entries, prune.MemoEntry{FP: string(fp), Cost: m.Cost})
	}
	l.Engine().SeedMemo(entries)
	return l, true, nil
}

// LoadState reads a warm-start snapshot and rebinds it to the dataset;
// see StateDoc.Bind for the integrity contract.
func LoadState(r io.Reader, ds *table.Dataset) (*layout.Layout, bool, error) {
	var f StateDoc
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, false, fmt.Errorf("persist: decoding state: %w", err)
	}
	return f.Bind(ds)
}

// LoadStateWithData reads a snapshot written by SaveStateWithData and
// reassembles the full serving state against the boot dataset: the
// saved tail is re-concatenated onto boot (BindData), the layout is
// rebound against that grown base (Bind, with the usual statistics
// gate deciding warm), and the saved delta segment rows come back as
// their own dataset (nil when the save had none). Version-1 files —
// and version-2 files for tables that never took a live write — load
// with base == boot and a nil delta.
func LoadStateWithData(r io.Reader, boot *table.Dataset) (l *layout.Layout, warm bool, base, delta *table.Dataset, err error) {
	var f StateDoc
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, false, nil, nil, fmt.Errorf("persist: decoding state: %w", err)
	}
	if base, delta, err = f.BindData(boot); err != nil {
		return nil, false, nil, nil, err
	}
	if l, warm, err = f.Bind(base); err != nil {
		return nil, false, nil, nil, err
	}
	return l, warm, base, delta, nil
}
