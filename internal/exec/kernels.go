package exec

import (
	"math"
	"sync"

	"oreo/internal/query"
	"oreo/internal/table"
)

// This file is the vectorized scan engine: predicates bound into typed
// columnar kernels that sweep whole columns into a selection vector,
// then tight per-column aggregate folds over the selected indices.
// Semantics are pinned to the row-at-a-time reference (rowfilter.go,
// aggAcc.add) bit for bit — the property tests in this package compare
// the two engines on random data, NaNs included.
//
// The trick that keeps the kernels branch-light is sentinel bounds: a
// predicate missing a bound gets the type's identity bound (MinInt64 /
// MaxInt64, -Inf / +Inf), so every numeric kernel is one two-sided
// range test with no per-row has-lo/has-hi branching. This is sound
// because a bound-free predicate matches every row (it is elided at
// bind time, so sentinels only ever stand in for one side), and
// because a NaN cell fails the affirmative `v >= lo && v <= hi` test
// for every bound — real or sentinel — exactly as MatchRow requires
// NaN to fail any bounded float predicate.
//
// String predicates never touch strings on the hot path: the store
// dictionary-encodes string columns at build time (table.StringDict),
// so an IN-set binds to a bitmap over the column's code space and the
// kernel probes one bit per row. An IN value absent from the
// dictionary occurs in no row of any block, so it simply sets no bit;
// an IN-set that sets no bits at all collapses to "never matches".

// kernPred is one predicate bound into kernel form.
type kernPred struct {
	ci  int
	typ table.ColType
	// Numeric range, sentinel-filled: [loI,hiI] for Int64 columns,
	// [loF,hiF] for Float64 columns.
	loI, hiI int64
	loF, hiF float64
	// set is the IN-set as a bitmap over the column dictionary's code
	// space (String columns only).
	set []uint64
}

// scanScratch is the per-scan (or per-worker) reusable state: the
// selection vector, bound predicates and accumulators, and the arena
// backing IN-set code bitmaps. Recycled through scratchPool so
// steady-state scans allocate nothing beyond their Result.
type scanScratch struct {
	sel       []int32
	preds     []kernPred
	accs      []aggAcc
	partials  []aggAcc
	codeArena []uint64
}

var scratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

func getScratch() *scanScratch { return scratchPool.Get().(*scanScratch) }

func putScratch(sc *scanScratch) {
	// Drop pointer-bearing views so pooled scratch does not pin block
	// data; capacities are what we're recycling.
	sc.preds = sc.preds[:0]
	sc.accs = sc.accs[:0]
	sc.partials = sc.partials[:0]
	scratchPool.Put(sc)
}

// bindKernels resolves the query's predicates into kernel form,
// writing them to sc.preds. It reports never=true when the conjunction
// cannot match any row (unknown column, type-mismatched predicate, or
// an IN-set with no member present in the dictionary) — the same
// collapse bindFilter performs, plus the dictionary case, which for
// the interpreted engine is merely a per-row miss. Predicates that
// match every row (numeric with no bounds) are elided.
func (s *Store) bindKernels(sc *scanScratch, q query.Query) (never bool) {
	sc.preds = sc.preds[:0]
	arena := sc.codeArena[:0]
	for _, p := range q.Preds {
		ci, ok := s.schema.Index(p.Col)
		if !ok {
			never = true
			continue
		}
		kp := kernPred{ci: ci, typ: s.schema.Col(ci).Type}
		switch kp.typ {
		case table.Int64:
			if !p.IsNumeric() {
				never = true
				continue
			}
			if !p.HasLo && !p.HasHi {
				continue // matches every row
			}
			kp.loI, kp.hiI = math.MinInt64, math.MaxInt64
			if p.HasLo {
				kp.loI = p.LoI
			}
			if p.HasHi {
				kp.hiI = p.HiI
			}
		case table.Float64:
			if !p.IsNumeric() {
				never = true
				continue
			}
			if !p.HasLo && !p.HasHi {
				continue
			}
			kp.loF, kp.hiF = math.Inf(-1), math.Inf(1)
			if p.HasLo {
				kp.loF = p.LoF
			}
			if p.HasHi {
				kp.hiF = p.HiF
			}
		case table.String:
			if p.IsNumeric() {
				never = true
				continue
			}
			dict := s.dicts[ci]
			words := (dict.Len() + 63) >> 6
			off := len(arena)
			for i := 0; i < words; i++ {
				arena = append(arena, 0)
			}
			set := arena[off : off+words]
			any := false
			for _, v := range p.In {
				if c, ok := dict.Code(v); ok {
					set[c>>6] |= 1 << (c & 63)
					any = true
				}
			}
			if !any {
				never = true
				continue
			}
			kp.set = set
		default:
			never = true
			continue
		}
		sc.preds = append(sc.preds, kp)
	}
	// Keep the largest arena for reuse. If the arena regrew mid-bind,
	// earlier sets still reference the previous backing array — their
	// contents are already written and never mutated, so that is fine.
	sc.codeArena = arena[:0]
	return never
}

// selectBlock runs the bound kernels over block pid, returning the
// selection vector of surviving row indices (ascending). buf is the
// caller-owned selection buffer, grown in place as needed.
func (s *Store) selectBlock(preds []kernPred, pid int, buf *[]int32) []int32 {
	blk := s.blocks[pid]
	n := blk.NumRows()
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	sel := (*buf)[:n]
	first := true
	for i := range preds {
		p := &preds[i]
		switch p.typ {
		case table.Int64:
			col := blk.Int64Col(p.ci)
			if first {
				sel = selInt64Full(col, p.loI, p.hiI, sel)
			} else {
				sel = selInt64(col, p.loI, p.hiI, sel)
			}
		case table.Float64:
			col := blk.Float64Col(p.ci)
			if first {
				sel = selFloat64Full(col, p.loF, p.hiF, sel)
			} else {
				sel = selFloat64(col, p.loF, p.hiF, sel)
			}
		case table.String:
			codes := s.codes[p.ci][pid]
			if first {
				sel = selCodesFull(codes, p.set, sel)
			} else {
				sel = selCodes(codes, p.set, sel)
			}
		}
		first = false
		if len(sel) == 0 {
			return sel
		}
	}
	if first {
		// No predicates survived binding: every row matches.
		for r := range sel {
			sel[r] = int32(r)
		}
	}
	return sel
}

// The Full kernels seed the selection from a whole column; the
// non-Full variants compact an existing selection in place. All use
// the unconditional-store / conditional-advance idiom so the loop body
// carries no data-dependent store.

func selInt64Full(col []int64, lo, hi int64, dst []int32) []int32 {
	dst = dst[:len(col)]
	n := 0
	for r, v := range col {
		dst[n] = int32(r)
		if v >= lo && v <= hi {
			n++
		}
	}
	return dst[:n]
}

func selInt64(col []int64, lo, hi int64, sel []int32) []int32 {
	n := 0
	for _, r := range sel {
		v := col[r]
		sel[n] = r
		if v >= lo && v <= hi {
			n++
		}
	}
	return sel[:n]
}

func selFloat64Full(col []float64, lo, hi float64, dst []int32) []int32 {
	dst = dst[:len(col)]
	n := 0
	for r, v := range col {
		dst[n] = int32(r)
		// Affirmative comparison: NaN fails, matching MatchRow.
		if v >= lo && v <= hi {
			n++
		}
	}
	return dst[:n]
}

func selFloat64(col []float64, lo, hi float64, sel []int32) []int32 {
	n := 0
	for _, r := range sel {
		v := col[r]
		sel[n] = r
		if v >= lo && v <= hi {
			n++
		}
	}
	return sel[:n]
}

func selCodesFull(codes []uint32, set []uint64, dst []int32) []int32 {
	dst = dst[:len(codes)]
	n := 0
	for r, c := range codes {
		dst[n] = int32(r)
		if set[c>>6]&(1<<(c&63)) != 0 {
			n++
		}
	}
	return dst[:n]
}

func selCodes(codes []uint32, set []uint64, sel []int32) []int32 {
	n := 0
	for _, r := range sel {
		c := codes[r]
		sel[n] = r
		if set[c>>6]&(1<<(c&63)) != 0 {
			n++
		}
	}
	return sel[:n]
}

// foldBlockAgg folds one aggregate over the block's selected rows into
// a fresh per-block partial. Within-block fold order is selection
// order (= row order), so each partial is bit-identical to what the
// row-at-a-time engine accumulates over the same block; partials are
// then merged across blocks in skip-list order by mergeAgg, which is
// what makes sequential, parallel, and interpreted scans agree
// bitwise.
func foldBlockAgg(blk *table.Dataset, sel []int32, spec *aggAcc) aggAcc {
	p := aggAcc{op: spec.op, col: spec.col, ci: spec.ci, typ: spec.typ}
	switch p.op {
	case AggCount:
		p.valid = true
		p.i = int64(len(sel))
	case AggSum:
		p.valid = true
		switch p.typ {
		case table.Int64:
			col := blk.Int64Col(p.ci)
			var sum int64
			for _, r := range sel {
				v := col[r]
				next := sum + v
				if (sum > 0 && v > 0 && next < 0) || (sum < 0 && v < 0 && next >= 0) {
					p.overflowed = true
					p.i = 0
					return p
				}
				sum = next
			}
			p.i = sum
		case table.Float64:
			col := blk.Float64Col(p.ci)
			var sum float64
			for _, r := range sel {
				sum += col[r]
			}
			p.f = sum
		}
	case AggMin, AggMax:
		isMin := p.op == AggMin
		switch p.typ {
		case table.Int64:
			if len(sel) == 0 {
				break
			}
			col := blk.Int64Col(p.ci)
			m := col[sel[0]]
			for _, r := range sel[1:] {
				v := col[r]
				if (isMin && v < m) || (!isMin && v > m) {
					m = v
				}
			}
			p.i, p.valid = m, true
		case table.Float64:
			// NaN cells do not participate, as in aggAcc.add: an
			// all-NaN matched set leaves the partial invalid.
			col := blk.Float64Col(p.ci)
			var m float64
			seen := false
			for _, r := range sel {
				v := col[r]
				if math.IsNaN(v) {
					continue
				}
				if !seen || (isMin && v < m) || (!isMin && v > m) {
					m, seen = v, true
				}
			}
			if seen {
				p.f, p.valid = m, true
			}
		case table.String:
			// Dictionary codes are first-appearance ordered, not
			// sort-ordered, so extremes compare the strings themselves.
			if len(sel) == 0 {
				break
			}
			col := blk.StringCol(p.ci)
			m := col[sel[0]]
			for _, r := range sel[1:] {
				v := col[r]
				if (isMin && v < m) || (!isMin && v > m) {
					m = v
				}
			}
			p.s, p.valid = m, true
		}
	}
	return p
}

// mergeAgg folds a per-block partial into the scan's accumulator.
// Partials of blocks with zero matched rows are never merged (they
// would be no-ops for every op), so the merge sequence is identical
// for a pruned scan and a full scan over the same matched set.
func mergeAgg(dst, src *aggAcc) {
	switch dst.op {
	case AggCount:
		dst.i += src.i
	case AggSum:
		switch dst.typ {
		case table.Int64:
			if src.overflowed || dst.overflowed {
				dst.overflowed = true
				dst.i = 0
				return
			}
			sum := dst.i + src.i
			if (dst.i > 0 && src.i > 0 && sum < 0) || (dst.i < 0 && src.i < 0 && sum >= 0) {
				dst.overflowed = true
				dst.i = 0
				return
			}
			dst.i = sum
		case table.Float64:
			dst.f += src.f
		}
	case AggMin, AggMax:
		if !src.valid {
			return
		}
		if !dst.valid {
			dst.i, dst.f, dst.s = src.i, src.f, src.s
			dst.valid = true
			return
		}
		isMin := dst.op == AggMin
		switch dst.typ {
		case table.Int64:
			if (isMin && src.i < dst.i) || (!isMin && src.i > dst.i) {
				dst.i = src.i
			}
		case table.Float64:
			if (isMin && src.f < dst.f) || (!isMin && src.f > dst.f) {
				dst.f = src.f
			}
		case table.String:
			if (isMin && src.s < dst.s) || (!isMin && src.s > dst.s) {
				dst.s = src.s
			}
		}
	}
}
