package datagen

import (
	"math/rand"

	"oreo/internal/table"
)

// Date encoding: int64 days since 1970-01-01. The TPC-H population
// covers orders placed 1992-01-01 .. 1998-08-02 with line items shipped
// up to ~4 months later, mirroring dbgen's date rules.
const (
	// TPCHOrderDateMin is 1992-01-01 as days since epoch.
	TPCHOrderDateMin int64 = 8035
	// TPCHOrderDateMax is 1998-08-02 as days since epoch.
	TPCHOrderDateMax int64 = 10440
	// TPCHShipDateMax bounds ship/receipt dates (order date + ~4 months).
	TPCHShipDateMax int64 = TPCHOrderDateMax + 122
)

// Dimension vocabularies, mirroring dbgen's cardinalities where that
// matters for skipping (regions: 5, nations: 25, segments: 5, etc.).
var (
	TPCHReturnFlags   = []string{"A", "N", "R"}
	TPCHLineStatuses  = []string{"F", "O"}
	TPCHShipModes     = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	TPCHShipInstructs = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
	TPCHOrderPrios    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	TPCHOrderStatuses = []string{"F", "O", "P"}
	TPCHMktSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	TPCHBrands        = seq("Brand#", 25)
	TPCHContainers    = seq("CONTAINER#", 40)
	TPCHPartTypes     = seq("TYPE#", 30)
	TPCHNumNations    = 25
	TPCHNumRegions    = 5
)

// TPCHSchema returns the schema of the denormalized lineitem table: the
// lineitem fact columns plus the order, customer, supplier, and part
// dimension columns that the paper's 13 query templates filter on.
func TPCHSchema() *table.Schema {
	return table.NewSchema(
		table.Column{Name: "l_orderkey", Type: table.Int64},
		table.Column{Name: "l_partkey", Type: table.Int64},
		table.Column{Name: "l_suppkey", Type: table.Int64},
		table.Column{Name: "l_linenumber", Type: table.Int64},
		table.Column{Name: "l_quantity", Type: table.Int64},
		table.Column{Name: "l_extendedprice", Type: table.Float64},
		table.Column{Name: "l_discount", Type: table.Float64},
		table.Column{Name: "l_tax", Type: table.Float64},
		table.Column{Name: "l_returnflag", Type: table.String},
		table.Column{Name: "l_linestatus", Type: table.String},
		table.Column{Name: "l_shipdate", Type: table.Int64},
		table.Column{Name: "l_commitdate", Type: table.Int64},
		table.Column{Name: "l_receiptdate", Type: table.Int64},
		table.Column{Name: "l_shipinstruct", Type: table.String},
		table.Column{Name: "l_shipmode", Type: table.String},
		table.Column{Name: "o_orderdate", Type: table.Int64},
		table.Column{Name: "o_orderpriority", Type: table.String},
		table.Column{Name: "o_orderstatus", Type: table.String},
		table.Column{Name: "c_mktsegment", Type: table.String},
		table.Column{Name: "c_nationkey", Type: table.Int64},
		table.Column{Name: "c_regionkey", Type: table.Int64},
		table.Column{Name: "s_nationkey", Type: table.Int64},
		table.Column{Name: "s_regionkey", Type: table.Int64},
		table.Column{Name: "p_brand", Type: table.String},
		table.Column{Name: "p_container", Type: table.String},
		table.Column{Name: "p_type", Type: table.String},
		table.Column{Name: "p_size", Type: table.Int64},
	)
}

// GenerateTPCH builds a denormalized lineitem table with `rows` rows.
// Correlations that matter for skipping are preserved:
//
//   - l_shipdate = o_orderdate + [1,121] days; l_commitdate and
//     l_receiptdate trail the ship date, as in dbgen;
//   - l_returnflag is "R" or "A" only for early receipt dates (dbgen
//     marks returns only for items received before 1995-06-17);
//   - nation keys determine region keys (5 nations per region);
//   - rows arrive roughly in order-date order with jitter, so the
//     default "partition by arrival time" layout behaves like a real
//     ingest-ordered table.
func GenerateTPCH(rows int, rng *rand.Rand) *table.Dataset {
	schema := TPCHSchema()
	b := table.NewBuilder(schema, rows)

	dateSpan := float64(TPCHOrderDateMax - TPCHOrderDateMin)
	const returnCutoff int64 = 9298 // 1995-06-17 as days since epoch

	for i := 0; i < rows; i++ {
		// Arrival-ordered order date with jitter: position in the file
		// correlates with time, like an ingest-ordered fact table.
		frac := float64(i) / float64(rows)
		jitter := (rng.Float64() - 0.5) * 0.06
		pos := frac + jitter
		if pos < 0 {
			pos = 0
		}
		if pos > 1 {
			pos = 1
		}
		orderDate := TPCHOrderDateMin + int64(pos*dateSpan)

		shipDate := orderDate + 1 + int64(rng.Intn(121))
		commitDate := orderDate + 30 + int64(rng.Intn(61))
		receiptDate := shipDate + 1 + int64(rng.Intn(30))

		var returnFlag string
		if receiptDate <= returnCutoff {
			returnFlag = TPCHReturnFlags[rng.Intn(2)*2] // "A" or "R"
		} else {
			returnFlag = "N"
		}
		lineStatus := "O"
		if shipDate <= returnCutoff {
			lineStatus = "F"
		}

		custNation := int64(rng.Intn(TPCHNumNations))
		suppNation := int64(rng.Intn(TPCHNumNations))

		qty := int64(1 + rng.Intn(50))
		price := float64(qty) * (900 + rng.Float64()*104000/50)
		discount := float64(rng.Intn(11)) / 100.0
		tax := float64(rng.Intn(9)) / 100.0

		b.AppendRow(
			table.Int(int64(i/4+1)),               // l_orderkey: ~4 lines per order
			table.Int(int64(rng.Intn(rows/4+1))),  // l_partkey
			table.Int(int64(rng.Intn(rows/40+1))), // l_suppkey
			table.Int(int64(i%4+1)),               // l_linenumber
			table.Int(qty),
			table.Float(price),
			table.Float(discount),
			table.Float(tax),
			table.Str(returnFlag),
			table.Str(lineStatus),
			table.Int(shipDate),
			table.Int(commitDate),
			table.Int(receiptDate),
			table.Str(uniformStrings(rng, TPCHShipInstructs)),
			table.Str(uniformStrings(rng, TPCHShipModes)),
			table.Int(orderDate),
			table.Str(uniformStrings(rng, TPCHOrderPrios)),
			table.Str(uniformStrings(rng, TPCHOrderStatuses)),
			table.Str(zipfStrings(rng, TPCHMktSegments)),
			table.Int(custNation),
			table.Int(custNation/5), // c_regionkey: 5 nations per region
			table.Int(suppNation),
			table.Int(suppNation/5),
			table.Str(zipfStrings(rng, TPCHBrands)),
			table.Str(uniformStrings(rng, TPCHContainers)),
			table.Str(zipfStrings(rng, TPCHPartTypes)),
			table.Int(int64(1+rng.Intn(50))), // p_size
		)
	}
	return b.Build()
}
