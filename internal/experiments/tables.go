package experiments

import (
	"oreo/internal/manager"
	"oreo/internal/storage"
)

// Table1 reproduces Table I: the measured relative reorganization cost
// α for file sizes from 16MB to 4GB, via the storage simulator.
func Table1() []storage.AlphaRow {
	return storage.DefaultDiskModel().MeasureAlpha(nil)
}

// Table2Row is one ablation cell of Table II: a named variant's logical
// query and reorganization costs on one dataset.
type Table2Row struct {
	// Group is "gamma", "sampling", or "delay".
	Group string
	// Variant is the setting label (e.g. "γ=1", "SW", "Δ=40").
	Variant string
	// Default marks the paper's default configuration row.
	Default bool

	Dataset   string
	QueryCost float64
	ReorgCost float64
	Switches  int
}

// Table2 reproduces Table II on one scenario: the effect of the
// transition-distribution bias γ ∈ {0,1,2,3}, of the candidate
// workload-sampling strategy (SW, RS, SW+RS), and of the
// reorganization delay Δ ∈ {0, 40, 80} — all with Qd-tree layouts and
// logical costs, as in the paper.
func Table2(s *Scenario, p RunParams) []Table2Row {
	gen := s.Generator(GenQdTree)
	var rows []Table2Row

	run := func(group, variant string, def bool, pp RunParams) {
		r := s.Run(s.NewOREO(gen, pp), pp)
		rows = append(rows, Table2Row{
			Group:     group,
			Variant:   variant,
			Default:   def,
			Dataset:   s.Cfg.Dataset,
			QueryCost: r.QueryCost,
			ReorgCost: r.ReorgCost,
			Switches:  r.Switches,
		})
	}

	// γ sweep (default γ=1).
	for _, g := range []float64{1, 0, 2, 3} {
		pp := p
		pp.Gamma = g
		//oreovet:ignore floatbits compares a literal sweep constant to the config default; both are exact compile-time values
		run("gamma", gammaLabel(g), g == p.Gamma, pp)
	}

	// Sampling-source sweep (default SW).
	for _, src := range []manager.Source{manager.SourceWindow, manager.SourceReservoir, manager.SourceBoth} {
		pp := p
		pp.Source = src
		run("sampling", src.String(), src == p.Source, pp)
	}

	// Δ sweep (default Δ=0). The paper studies Δ up to α.
	for _, d := range []int{0, 40, 80} {
		pp := p
		pp.Delay = d
		run("delay", deltaLabel(d), d == p.Delay, pp)
	}
	return rows
}

func gammaLabel(g float64) string {
	switch g {
	case 0:
		return "γ=0"
	case 1:
		return "γ=1"
	case 2:
		return "γ=2"
	case 3:
		return "γ=3"
	default:
		return "γ=?"
	}
}

func deltaLabel(d int) string {
	switch d {
	case 0:
		return "Δ=0"
	case 40:
		return "Δ=40"
	case 80:
		return "Δ=80"
	default:
		return "Δ=?"
	}
}
