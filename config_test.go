package oreo

import (
	"strings"
	"testing"
)

func TestInitialTakesPrecedenceOverInitialSort(t *testing.T) {
	ds := buildEventsTable(t, 300)
	init := NewSortGenerator("user").Generate(ds, nil, 8)
	opt, err := New(ds, Config{
		Initial:     init,
		InitialSort: []string{"ts"}, // must be ignored
		Partitions:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.CurrentLayout() != init {
		t.Errorf("Initial not preferred: serving %q", opt.CurrentLayout().Name)
	}
}

func TestPartitionsDerivationClamps(t *testing.T) {
	small := buildEventsTable(t, 100) // 100/1500 -> clamped up to 8
	opt, err := New(small, Config{InitialSort: []string{"ts"}})
	if err != nil {
		t.Fatal(err)
	}
	if opt.cfg.Partitions != 8 {
		t.Errorf("small table partitions = %d, want 8", opt.cfg.Partitions)
	}

	big := buildEventsTable(t, 300000) // 300000/1500 = 200 -> clamped to 128
	opt2, err := New(big, Config{InitialSort: []string{"ts"}})
	if err != nil {
		t.Fatal(err)
	}
	if opt2.cfg.Partitions != 128 {
		t.Errorf("big table partitions = %d, want 128", opt2.cfg.Partitions)
	}
}

// TestNegativeConfigRejected pins the satellite contract: every
// count-valued knob rejects negatives with a descriptive error naming
// the field, instead of flowing into the policy layers where each
// would fail somewhere different (or, worse, silently act as a
// default while looking configured).
func TestNegativeConfigRejected(t *testing.T) {
	ds := buildEventsTable(t, 300)
	cases := []struct {
		field string
		cfg   Config
	}{
		{"Partitions", Config{InitialSort: []string{"ts"}, Partitions: -1}},
		{"Period", Config{InitialSort: []string{"ts"}, Period: -5}},
		{"MaxStates", Config{InitialSort: []string{"ts"}, MaxStates: -2}},
		{"TraceCapacity", Config{InitialSort: []string{"ts"}, TraceCapacity: -1}},
		{"ReorgDelay", Config{InitialSort: []string{"ts"}, ReorgDelay: -10}},
	}
	for _, tc := range cases {
		_, err := New(ds, tc.cfg)
		if err == nil {
			t.Errorf("negative %s accepted", tc.field)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("negative %s: error %q does not name the field", tc.field, err)
		}
	}
}

// TestZeroCountConfigStillDefaults guards the other half of the
// contract: zero remains the documented "pick the default / disable"
// value for every knob the negative check now covers.
func TestZeroCountConfigStillDefaults(t *testing.T) {
	ds := buildEventsTable(t, 300)
	opt, err := New(ds, Config{InitialSort: []string{"ts"}})
	if err != nil {
		t.Fatalf("all-zero count config rejected: %v", err)
	}
	if opt.cfg.Partitions == 0 {
		t.Error("Partitions not derived from table size")
	}
}

func TestGammaZeroExplicit(t *testing.T) {
	ds := buildEventsTable(t, 200)
	// Gamma explicitly nonzero is preserved.
	opt, err := New(ds, Config{InitialSort: []string{"ts"}, Gamma: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if opt.cfg.Gamma != 2.5 {
		t.Errorf("Gamma = %g", opt.cfg.Gamma)
	}
}

func TestAlphaAccessor(t *testing.T) {
	ds := buildEventsTable(t, 200)
	opt, err := New(ds, Config{InitialSort: []string{"ts"}, Alpha: 123})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Alpha() != 123 {
		t.Errorf("Alpha() = %g", opt.Alpha())
	}
}

func TestStatsZeroBeforeQueries(t *testing.T) {
	ds := buildEventsTable(t, 200)
	opt, err := New(ds, Config{InitialSort: []string{"ts"}})
	if err != nil {
		t.Fatal(err)
	}
	st := opt.Stats()
	if st.Queries != 0 || st.QueryCost != 0 || st.Reorganizations != 0 {
		t.Errorf("fresh stats = %+v", st)
	}
	if st.States != 1 {
		t.Errorf("fresh |S| = %d, want 1 (the initial layout)", st.States)
	}
	if opt.PendingLayout() != nil {
		t.Error("fresh optimizer has a pending layout")
	}
}
