package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"oreo/internal/prune"
	"oreo/internal/query"
	"oreo/internal/table"
)

// randomDelta draws a live-write tail over the dataset's schema — the
// same value distributions as randomScenario, sharing the schema
// pointer as the serving layer guarantees.
func randomDelta(rng *rand.Rand, ds *table.Dataset) *table.Dataset {
	schema := ds.Schema()
	n := rng.Intn(120)
	b := table.NewBuilder(schema, n)
	row := make([]table.Value, schema.NumCols())
	for r := 0; r < n; r++ {
		for c := 0; c < schema.NumCols(); c++ {
			switch schema.Col(c).Type {
			case table.Int64:
				row[c] = table.Int(rng.Int63n(1000) - 500)
			case table.Float64:
				if rng.Intn(20) == 0 {
					row[c] = table.Float(math.NaN())
				} else {
					row[c] = table.Float(rng.NormFloat64() * 100)
				}
			case table.String:
				row[c] = table.Str(fmt.Sprintf("s%03d", rng.Intn(150)))
			}
		}
		b.AppendRow(row...)
	}
	return b.Build()
}

// checkDeltaScanEquality is the live-write form of the tentpole
// property: with a non-empty delta riding on the scan, pruned ≡ full,
// kernels ≡ interpreted, and parallel ≡ sequential all stay bitwise;
// the delta contributes exactly its row count to the examined mass; and
// the matched set equals the row-at-a-time oracle over base plus tail.
func checkDeltaScanEquality(t testing.TB, ds *table.Dataset, part *table.Partitioning, store *Store, delta *table.Dataset, q query.Query, aggs []AggSpec) {
	t.Helper()
	ids, cost := prune.Compile(ds.Schema(), q).Survivors(part)
	opts := Options{CollectRows: true, Delta: delta}

	full, err := store.ScanFull(q, aggs, opts)
	if err != nil {
		t.Fatalf("full scan: %v", err)
	}
	pruned, err := store.Scan(q, ids, aggs, opts)
	if err != nil {
		t.Fatalf("pruned scan: %v", err)
	}
	interp, err := store.ScanInterpreted(q, ids, aggs, opts)
	if err != nil {
		t.Fatalf("interpreted scan: %v", err)
	}
	par, err := store.Scan(q, ids, aggs, Options{CollectRows: true, Delta: delta, Parallelism: 3})
	if err != nil {
		t.Fatalf("parallel scan: %v", err)
	}

	sameRows := func(name string, a, b []int) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: row sequences %v vs %v\nquery: %+v", name, a, b, q.Preds)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: row sequence diverges at %d: %v vs %v", name, i, a, b)
			}
		}
	}
	for _, alt := range []struct {
		name string
		res  Result
	}{{"pruned vs full", full}, {"interpreted", interp}, {"parallel", par}} {
		if pruned.Matched != alt.res.Matched {
			t.Fatalf("%s: matched %d vs %d\nquery: %+v", alt.name, pruned.Matched, alt.res.Matched, q.Preds)
		}
		sameRows(alt.name, pruned.RowIDs, alt.res.RowIDs)
		if !sameAggs(pruned.Aggs, alt.res.Aggs) {
			t.Fatalf("%s: aggs %+v vs %+v\nquery: %+v", alt.name, pruned.Aggs, alt.res.Aggs, q.Preds)
		}
	}

	// The delta is always examined in full, on top of the survivor mass.
	if pruned.DeltaRows != delta.NumRows() || full.DeltaRows != delta.NumRows() {
		t.Fatalf("DeltaRows %d/%d, want %d", pruned.DeltaRows, full.DeltaRows, delta.NumRows())
	}
	survivorMass := 0
	for _, pid := range ids {
		survivorMass += part.RowsInPartition(pid)
	}
	if pruned.RowsExamined != survivorMass+delta.NumRows() {
		t.Fatalf("examined %d rows, want %d survivor + %d delta", pruned.RowsExamined, survivorMass, delta.NumRows())
	}
	if part.TotalRows > 0 {
		baseExamined := pruned.RowsExamined - pruned.DeltaRows
		if got := float64(baseExamined) / float64(part.TotalRows); got != cost {
			t.Fatalf("base examined fraction %v != predicted cost %v", got, cost)
		}
	}

	// Oracle: matched rows are exactly MatchRow over the base dataset
	// plus MatchRow over the tail, tail rows indexed past the base.
	var want []int
	for r := 0; r < ds.NumRows(); r++ {
		if q.MatchRow(ds, r) {
			want = append(want, r)
		}
	}
	for r := 0; r < delta.NumRows(); r++ {
		if q.MatchRow(delta, r) {
			want = append(want, ds.NumRows()+r)
		}
	}
	got := append([]int(nil), full.RowIDs...)
	sort.Ints(got) // blocks emit in partition order; the oracle is global order
	sameRows("oracle", got, want)
}

// TestDeltaScanEqualityProperty fuzzes the live-write scan equality
// across random datasets, layouts, deltas, and queries.
func TestDeltaScanEqualityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		ds, part := randomScenario(rng)
		store := MustNewStore(ds, part)
		delta := randomDelta(rng, ds)
		for i := 0; i < 15; i++ {
			q := randomQuery(rng, ds.Schema())
			checkDeltaScanEquality(t, ds, part, store, delta, q, randomAggs(rng, ds.Schema()))
		}
	}
}

// TestDeltaScanEmptyAndNil pins that a nil or empty delta changes
// nothing: same Result (including zero DeltaRows) as a delta-free scan.
func TestDeltaScanEmptyAndNil(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ds, part := randomScenario(rng)
	store := MustNewStore(ds, part)
	empty := table.NewBuilder(ds.Schema(), 0).Build()
	for i := 0; i < 10; i++ {
		q := randomQuery(rng, ds.Schema())
		aggs := randomAggs(rng, ds.Schema())
		base, err := store.ScanFull(q, aggs, Options{CollectRows: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []*table.Dataset{nil, empty} {
			got, err := store.ScanFull(q, aggs, Options{CollectRows: true, Delta: d})
			if err != nil {
				t.Fatal(err)
			}
			if got.Matched != base.Matched || got.DeltaRows != 0 ||
				got.RowsExamined != base.RowsExamined || !sameAggs(got.Aggs, base.Aggs) {
				t.Fatalf("delta=%v changed the scan: %+v vs %+v", d, got, base)
			}
		}
	}
}

// TestDeltaSchemaMismatch pins the explicit error for a delta built
// over a different schema instance.
func TestDeltaSchemaMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ds, part := randomScenario(rng)
	store := MustNewStore(ds, part)
	otherSchema := table.NewSchema(ds.Schema().Cols()...)
	b := table.NewBuilder(otherSchema, 1)
	row := make([]table.Value, otherSchema.NumCols())
	for c := 0; c < otherSchema.NumCols(); c++ {
		switch otherSchema.Col(c).Type {
		case table.Int64:
			row[c] = table.Int(1)
		case table.Float64:
			row[c] = table.Float(1)
		case table.String:
			row[c] = table.Str("x")
		}
	}
	b.AppendRow(row...)
	foreign := b.Build()
	if _, err := store.ScanFull(query.Query{}, nil, Options{Delta: foreign}); err == nil {
		t.Fatal("foreign-schema delta accepted")
	}
	if _, err := store.ScanInterpreted(query.Query{}, store.AllPartitions(), nil, Options{Delta: foreign}); err == nil {
		t.Fatal("foreign-schema delta accepted by interpreted engine")
	}
}
