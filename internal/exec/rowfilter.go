package exec

import (
	"oreo/internal/query"
	"oreo/internal/table"
)

// rowFilter is a query bound once against a schema for row-exact
// evaluation over the store's blocks: column indices resolved, bounds
// typed, IN-sets interned into a map. Its semantics mirror
// query.Query.MatchRow exactly — the soundness oracle of the whole
// pruning stack — so a scan's per-row re-check agrees bit-for-bit with
// the interpreted reference:
//
//   - a predicate on a column missing from the schema matches no row;
//   - a type-mismatched predicate (numeric shape on a string column or
//     vice versa) matches no row;
//   - a numeric predicate with no bounds set matches every row.
//
// The first two shapes collapse the whole conjunction to "never
// matches" at bind time, so scans skip the per-row work entirely.
type rowFilter struct {
	never bool
	preds []boundPred
}

// boundPred is one schema-resolved predicate.
type boundPred struct {
	ci           int
	typ          table.ColType
	hasLo, hasHi bool
	loI, hiI     int64
	loF, hiF     float64
	in           map[string]struct{}
}

// bindFilter resolves the query's predicates against the schema.
func bindFilter(schema *table.Schema, q query.Query) rowFilter {
	var f rowFilter
	for _, p := range q.Preds {
		ci, ok := schema.Index(p.Col)
		if !ok {
			// MatchRow treats a missing column as non-matching.
			f.never = true
			continue
		}
		bp := boundPred{ci: ci, typ: schema.Col(ci).Type}
		switch bp.typ {
		case table.Int64:
			if !p.IsNumeric() {
				f.never = true
				continue
			}
			bp.hasLo, bp.hasHi = p.HasLo, p.HasHi
			bp.loI, bp.hiI = p.LoI, p.HiI
		case table.Float64:
			if !p.IsNumeric() {
				f.never = true
				continue
			}
			bp.hasLo, bp.hasHi = p.HasLo, p.HasHi
			bp.loF, bp.hiF = p.LoF, p.HiF
		case table.String:
			if p.IsNumeric() {
				f.never = true
				continue
			}
			bp.in = make(map[string]struct{}, len(p.In))
			for _, v := range p.In {
				bp.in[v] = struct{}{}
			}
		default:
			// Unrecognized column type: MatchRow matches nothing.
			f.never = true
			continue
		}
		f.preds = append(f.preds, bp)
	}
	return f
}

// match evaluates the conjunction against row r of a block.
func (f *rowFilter) match(blk *table.Dataset, r int) bool {
	if f.never {
		return false
	}
	for i := range f.preds {
		p := &f.preds[i]
		switch p.typ {
		case table.Int64:
			v := blk.Int64Col(p.ci)[r]
			if p.hasLo && v < p.loI {
				return false
			}
			if p.hasHi && v > p.hiI {
				return false
			}
		case table.Float64:
			// Bounds must hold affirmatively, so a NaN cell matches no
			// bounded predicate — identical to Predicate.MatchRow.
			v := blk.Float64Col(p.ci)[r]
			if p.hasLo && !(v >= p.loF) {
				return false
			}
			if p.hasHi && !(v <= p.hiF) {
				return false
			}
		case table.String:
			if _, ok := p.in[blk.StringCol(p.ci)[r]]; !ok {
				return false
			}
		}
	}
	return true
}
