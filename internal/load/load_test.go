package load

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"oreo"
	"oreo/client"
	"oreo/internal/serve"
	"oreo/internal/workload"
)

// newLoadTarget boots a fixture server matching the oreoserve "orders"
// fixture shape, as the target of load runs.
func newLoadTarget(t *testing.T, rows int) *httptest.Server {
	t.Helper()
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	rng := rand.New(rand.NewSource(1))
	b := oreo.NewDatasetBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[rng.Intn(4)]), oreo.Float(rng.Float64()*500))
	}
	m := oreo.NewMulti()
	if err := m.AddTable("orders", b.Build(), oreo.Config{
		Partitions: 16, InitialSort: []string{"order_ts"}, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

// TestClosedLoopCount pins the count-bounded closed loop: exactly Count
// queries are sent, none fail, and the report's percentiles are
// populated and ordered.
func TestClosedLoopCount(t *testing.T) {
	const rows = 4000
	ts := newLoadTarget(t, rows)
	pool, err := BuildPool(workload.FixtureTemplates("orders", rows), "orders", 64, 4, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Spec{
		URL:     ts.URL,
		Queries: pool,
		Count:   200,
		// A deadline big enough to never trip, so the test is
		// count-deterministic.
		Duration:    time.Minute,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 200 {
		t.Errorf("sent = %d, want 200", rep.Sent)
	}
	if rep.Failed != 0 {
		t.Errorf("failed = %d, want 0", rep.Failed)
	}
	if rep.QPS <= 0 {
		t.Errorf("achieved qps = %v", rep.QPS)
	}
	if rep.P50 <= 0 || rep.P50 > rep.P99 || rep.P99 > rep.Max {
		t.Errorf("percentiles out of order: p50 %v p99 %v max %v", rep.P50, rep.P99, rep.Max)
	}
}

// TestStreamLoop runs the same bounded run over one long-lived stream
// connection per worker, including failed queries (unknown table) which
// must count as failures without poisoning the connection.
func TestStreamLoop(t *testing.T) {
	const rows = 4000
	ts := newLoadTarget(t, rows)
	pool, err := BuildPool(workload.FixtureTemplates("orders", rows), "orders", 50, 2, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Poison one pool entry: a per-query error line on the stream.
	pool[7].Table = "no_such_table"
	rep, err := Run(context.Background(), Spec{
		URL:         ts.URL,
		Queries:     pool,
		Count:       50,
		Duration:    time.Minute,
		Concurrency: 2,
		Stream:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 50 {
		t.Errorf("sent = %d, want 50", rep.Sent)
	}
	if rep.Failed != 1 {
		t.Errorf("failed = %d, want exactly the poisoned query", rep.Failed)
	}
}

// TestOpenLoopPacing pins the open loop's discipline: against a fast
// local server a modest target rate is achieved within tolerance, and
// progress snapshots arrive while the run is live.
func TestOpenLoopPacing(t *testing.T) {
	const rows = 2000
	ts := newLoadTarget(t, rows)
	pool, err := BuildPool(workload.FixtureTemplates("orders", rows), "orders", 32, 2, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	var snaps atomic.Uint64
	rep, err := Run(context.Background(), Spec{
		URL:           ts.URL,
		Queries:       pool,
		Duration:      1200 * time.Millisecond,
		QPS:           200,
		Concurrency:   8,
		Progress:      func(Snapshot) { snaps.Add(1) },
		ProgressEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Errorf("failed = %d, want 0", rep.Failed)
	}
	// The pacer must neither stall (a loaded CI box still clears half
	// the modest target against a local server) nor overshoot the
	// ticket arithmetic.
	if rep.QPS < 100 {
		t.Errorf("achieved %v qps against a 200 qps target on loopback", rep.QPS)
	}
	if float64(rep.Sent) > 200*1.5*1.2 {
		t.Errorf("sent %d queries in ~1.2s at a 200 qps target: pacer overshot", rep.Sent)
	}
	if snaps.Load() == 0 {
		t.Error("no progress snapshots delivered")
	}
	if rep.TargetQPS != 200 {
		t.Errorf("report target = %v", rep.TargetQPS)
	}
}

// TestSpecValidation pins the guards: a run needs a pool and a bound.
func TestSpecValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{URL: "http://localhost:1", Queries: nil, Count: 1}); err == nil {
		t.Error("empty pool accepted")
	}
	pool := []client.Query{{Table: "orders"}}
	if _, err := Run(context.Background(), Spec{URL: "http://localhost:1", Queries: pool}); err == nil {
		t.Error("unbounded run accepted")
	}
}
