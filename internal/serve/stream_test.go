package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// streamPost sends an NDJSON body to /v2/query/stream and returns the
// decoded response items.
func streamPost(t *testing.T, url, body string) []BatchItem {
	t.Helper()
	resp, err := http.Post(url+"/v2/query/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type %q", ct)
	}
	var items []BatchItem
	dec := json.NewDecoder(resp.Body)
	for {
		var it BatchItem
		if err := dec.Decode(&it); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding stream response: %v", err)
		}
		items = append(items, it)
	}
	return items
}

func TestStreamEndpoint(t *testing.T) {
	_, ts := newFixtureServer(t, 64)

	body := strings.Join([]string{
		`{"id":1,"table":"orders","preds":[{"col":"order_ts","has_lo":true,"has_hi":true,"lo_i":100,"hi_i":900}]}`,
		``, // blank separator line: skipped, consumes no index
		`{"id":2,"preds":[{"col":"user","in":["alice"]}]}`,
		`this is not json`,
		`{"id":4,"table":"nope","preds":[{"col":"x","has_lo":true,"lo_i":1}]}`,
		`{"id":5,"table":"orders","preds":[{"col":"order_ts","has_lo":true,"lo_i":3999}]}`,
	}, "\n") + "\n"

	items := streamPost(t, ts.URL, body)
	if len(items) != 5 {
		t.Fatalf("%d stream items, want 5: %+v", len(items), items)
	}
	for i, it := range items {
		if it.Index != i {
			t.Errorf("item %d echoes index %d", i, it.Index)
		}
	}
	if items[0].ID != 1 || items[0].Error != "" || len(items[0].Results) != 1 || items[0].Results[0].Table != "orders" {
		t.Errorf("item 0 = %+v", items[0])
	}
	if items[0].Results[0].QueryID != 1 {
		t.Errorf("item 0 result does not echo query id: %+v", items[0].Results[0])
	}
	if items[1].ID != 2 || items[1].Error != "" || len(items[1].Results) != 1 || items[1].Results[0].Table != "events" {
		t.Errorf("routed item 1 = %+v", items[1])
	}
	if items[2].Error == "" || !strings.Contains(items[2].Error, "decoding request") {
		t.Errorf("malformed line item = %+v", items[2])
	}
	if items[3].Error == "" || !strings.Contains(items[3].Error, "unknown table") {
		t.Errorf("unknown-table item = %+v", items[3])
	}
	if items[4].Error != "" || len(items[4].Results) != 1 {
		t.Errorf("item 4 after failures = %+v", items[4])
	}
}

// TestStreamMatchesUnary pins the protocol equivalence the redesign
// promises: a query answered over /v2/query/stream returns exactly the
// per-table results the same query gets from /v1/query. Streaming
// changes the framing, never the answer.
func TestStreamMatchesUnary(t *testing.T) {
	_, ts := newFixtureServer(t, 256)

	queries := []string{
		`{"table":"orders","preds":[{"col":"order_ts","has_lo":true,"has_hi":true,"lo_i":500,"hi_i":1500}]}`,
		`{"preds":[{"col":"user","in":["bob","carol"]}]}`,
		`{"table":"orders","execute":true,"preds":[{"col":"amount","has_lo":true,"lo_f":50}],"aggs":[{"op":"count"}]}`,
	}

	// Unary first, stream second: both observe, so serve identical
	// snapshots only if the decision loop hasn't reorganized between
	// them — with the paper-default alpha and a handful of queries it
	// cannot.
	var want [][]TableResult
	for _, q := range queries {
		resp, data := postJSON(t, ts.URL+"/v1/query", json.RawMessage(q))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unary status %d: %s", resp.StatusCode, data)
		}
		var qr QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatal(err)
		}
		want = append(want, qr.Results)
	}

	items := streamPost(t, ts.URL, strings.Join(queries, "\n")+"\n")
	if len(items) != len(queries) {
		t.Fatalf("%d items, want %d", len(items), len(queries))
	}
	for i, it := range items {
		if it.Error != "" {
			t.Fatalf("stream item %d failed: %s", i, it.Error)
		}
		if !reflect.DeepEqual(it.Results, want[i]) {
			t.Errorf("stream item %d = %+v\nunary = %+v", i, it.Results, want[i])
		}
	}
}

func TestStreamFlushEveryValidation(t *testing.T) {
	_, ts := newFixtureServer(t, 64)
	for _, bad := range []string{"0", "-3", "x"} {
		resp, err := http.Post(ts.URL+"/v2/query/stream?flush_every="+bad, "application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("flush_every=%s: status %d, want 400 (%s)", bad, resp.StatusCode, data)
		}
	}
}

// TestStreamLineCap pins the per-line size discipline: the stream
// endpoint has no body cap (streams are unbounded by design) but caps
// each line at MaxBodyBytes, terminating with an explicit error item
// so truncation is never silent.
func TestStreamLineCap(t *testing.T) {
	_, ts := newFixtureServerCfg(t, Config{QueueSize: 64, MaxBodyBytes: 512})

	ok := `{"table":"orders","preds":[{"col":"order_ts","has_lo":true,"lo_i":1}]}`
	long := `{"table":"orders","preds":[{"col":"status","in":["` + strings.Repeat("x", 2048) + `"]}]}`
	items := streamPost(t, ts.URL, ok+"\n"+long+"\n")
	if len(items) != 2 {
		t.Fatalf("%d items, want 2 (answer + terminal error): %+v", len(items), items)
	}
	if items[0].Error != "" {
		t.Errorf("in-cap line failed: %+v", items[0])
	}
	if items[1].Error == "" || !strings.Contains(items[1].Error, "exceeds 512 bytes") {
		t.Errorf("terminal item = %+v, want line-cap error", items[1])
	}
}

// TestStreamPingPong drives the stream full-duplex with flush_every=1:
// send one line, read its answer before sending the next. This is the
// interactive regime — and the transport pattern the client SDK's
// Stream relies on — so it must not deadlock on buffering anywhere in
// the server.
func TestStreamPingPong(t *testing.T) {
	_, ts := newFixtureServer(t, 64)

	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v2/query/stream?flush_every=1", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	type roundTrip struct {
		resp *http.Response
		err  error
	}
	rtc := make(chan roundTrip, 1)
	go func() {
		resp, err := http.DefaultTransport.RoundTrip(req)
		rtc <- roundTrip{resp, err}
	}()

	send := func(line string) {
		if _, err := io.WriteString(pw, line+"\n"); err != nil {
			t.Fatalf("send: %v", err)
		}
	}

	// First line, then wait for the response headers + first answer.
	send(`{"id":1,"table":"orders","preds":[{"col":"order_ts","has_lo":true,"lo_i":100}]}`)
	var rt roundTrip
	select {
	case rt = <-rtc:
	case <-time.After(10 * time.Second):
		t.Fatal("no response headers within 10s: stream is not duplex")
	}
	if rt.err != nil {
		t.Fatal(rt.err)
	}
	defer rt.resp.Body.Close()
	sc := bufio.NewScanner(rt.resp.Body)

	recv := func(wantID int) BatchItem {
		t.Helper()
		lineCh := make(chan string, 1)
		go func() {
			if sc.Scan() {
				lineCh <- sc.Text()
			} else {
				lineCh <- fmt.Sprintf("SCAN FAILED: %v", sc.Err())
			}
		}()
		select {
		case line := <-lineCh:
			var it BatchItem
			if err := json.Unmarshal([]byte(line), &it); err != nil {
				t.Fatalf("bad stream line %q: %v", line, err)
			}
			if it.ID != wantID {
				t.Fatalf("answer id %d, want %d", it.ID, wantID)
			}
			return it
		case <-time.After(10 * time.Second):
			t.Fatalf("no answer for id %d within 10s: per-line flush not honored", wantID)
			return BatchItem{}
		}
	}

	first := recv(1)
	if first.Error != "" || len(first.Results) != 1 {
		t.Fatalf("first answer = %+v", first)
	}

	// Now the pong: a second line sent only after the first answer
	// arrived, proving the server isn't just draining the whole body.
	send(`{"id":2,"preds":[{"col":"user","in":["alice"]}]}`)
	second := recv(2)
	if second.Error != "" || len(second.Results) != 1 || second.Results[0].Table != "events" {
		t.Fatalf("second answer = %+v", second)
	}

	pw.Close()
	if sc.Scan() {
		t.Fatalf("unexpected trailing line %q", sc.Text())
	}
}
