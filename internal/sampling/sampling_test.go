package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oreo/internal/query"
)

func q(id int) query.Query { return query.Query{ID: id} }

func TestSlidingWindowBasics(t *testing.T) {
	w := NewSlidingWindow(3)
	if w.Len() != 0 || w.Capacity() != 3 {
		t.Fatalf("fresh window: len=%d cap=%d", w.Len(), w.Capacity())
	}
	w.Add(q(1))
	w.Add(q(2))
	got := w.Queries()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Queries = %v", got)
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	w := NewSlidingWindow(3)
	for i := 1; i <= 7; i++ {
		w.Add(q(i))
	}
	got := w.Queries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []int{5, 6, 7} {
		if got[i].ID != want {
			t.Errorf("slot %d = %d, want %d", i, got[i].ID, want)
		}
	}
	if w.Total() != 7 {
		t.Errorf("Total = %d, want 7", w.Total())
	}
}

func TestSlidingWindowCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewSlidingWindow(0)
}

// Property: the window always holds exactly the last min(n, cap)
// queries, in order.
func TestSlidingWindowProperty(t *testing.T) {
	f := func(capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw%20) + 1
		n := int(nRaw % 500)
		w := NewSlidingWindow(capacity)
		for i := 0; i < n; i++ {
			w.Add(q(i))
		}
		got := w.Queries()
		wantLen := n
		if wantLen > capacity {
			wantLen = capacity
		}
		if len(got) != wantLen {
			return false
		}
		for i, qq := range got {
			if qq.ID != n-wantLen+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRTBSSizeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRTBS(50, 0, rng)
	for i := 0; i < 5000; i++ {
		r.Add(q(i))
	}
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
	if r.Seen() != 5000 {
		t.Fatalf("Seen = %d, want 5000", r.Seen())
	}
}

func TestRTBSUnderfill(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRTBS(100, 0, rng)
	for i := 0; i < 30; i++ {
		r.Add(q(i))
	}
	if r.Len() != 30 {
		t.Fatalf("Len = %d, want all 30 kept while under capacity", r.Len())
	}
	got := r.Queries()
	for i, qq := range got {
		if qq.ID != i {
			t.Fatalf("Queries not in arrival order: %v", got)
		}
	}
}

// The defining R-TBS property: the sample is biased toward recent
// items — across many runs the mean sampled ID must exceed the stream
// midpoint by a clear margin, while still retaining some old items.
func TestRTBSRecencyBias(t *testing.T) {
	const stream = 8000
	const capacity = 100
	var sumID, oldCount, total float64
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewRTBS(capacity, DefaultLambda, rng)
		for i := 0; i < stream; i++ {
			r.Add(q(i))
		}
		for _, qq := range r.Queries() {
			sumID += float64(qq.ID)
			total++
			if qq.ID < stream/4 {
				oldCount++
			}
		}
	}
	meanID := sumID / total
	if meanID < float64(stream)*0.55 {
		t.Errorf("mean sampled ID %.0f shows no recency bias (midpoint %d)", meanID, stream/2)
	}
	if oldCount == 0 {
		t.Error("no memory of the distant past; R-TBS must keep some old items")
	}
}

func TestRTBSQueriesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewRTBS(64, 0, rng)
	for i := 0; i < 3000; i++ {
		r.Add(q(i))
	}
	got := r.Queries()
	for i := 1; i < len(got); i++ {
		if got[i].ID < got[i-1].ID {
			t.Fatal("Queries not sorted by arrival")
		}
	}
}

func TestRTBSDeterminism(t *testing.T) {
	runOnce := func() []int {
		rng := rand.New(rand.NewSource(13))
		r := NewRTBS(32, 0, rng)
		for i := 0; i < 2000; i++ {
			r.Add(q(i))
		}
		var ids []int
		for _, qq := range r.Queries() {
			ids = append(ids, qq.ID)
		}
		return ids
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("different sample sizes across identical seeds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("different samples across identical seeds")
		}
	}
}

func TestRTBSCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewRTBS(0, 0, rand.New(rand.NewSource(1)))
}

// Higher lambda must increase recency bias.
func TestRTBSLambdaControlsBias(t *testing.T) {
	mean := func(lambda float64) float64 {
		var sum, n float64
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			r := NewRTBS(80, lambda, rng)
			for i := 0; i < 6000; i++ {
				r.Add(q(i))
			}
			for _, qq := range r.Queries() {
				sum += float64(qq.ID)
				n++
			}
		}
		return sum / n
	}
	weak := mean(0.0001)
	strong := mean(0.01)
	if strong <= weak {
		t.Errorf("lambda=0.01 mean %.0f not more recent than lambda=0.0001 mean %.0f", strong, weak)
	}
}
