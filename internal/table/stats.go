package table

import (
	"math"

	"oreo/internal/bloom"
)

// MaxTrackedDistinct bounds the size of the distinct-value set kept for a
// categorical column in partition metadata. Real systems (Parquet, Delta,
// Snowflake micro-partitions) bound this too; once a partition holds more
// distinct values than the bound, the exact set is replaced by a Bloom
// filter (plus the min/max string range), so skipping degrades to a small
// false-positive rate rather than to range-only pruning, and metadata
// stays bounded.
const MaxTrackedDistinct = 64

// Bloom filter geometry for overflowed distinct sets: 1024 bits / 4
// hashes keeps the false-positive rate around 2% for the value counts a
// single partition sees, at 128 bytes per overflowed column.
const (
	bloomBits   = 1024
	bloomHashes = 4
)

// ColumnStats is the per-column slice of a partition's metadata.
//
// For numeric columns only the [Min*, Max*] range is kept. For string
// columns the range is kept, plus the exact distinct set while it stays
// below MaxTrackedDistinct (Distinct == nil means "overflowed; unknown").
type ColumnStats struct {
	Type ColType

	MinI, MaxI int64
	MinF, MaxF float64
	MinS, MaxS string

	// Distinct is the exact set of values observed, or nil if the set
	// overflowed MaxTrackedDistinct. Only populated for String columns.
	Distinct map[string]struct{}

	// Bloom approximates the distinct set after overflow (nil until the
	// exact set overflows). Membership tests on it are sound: false
	// positives only.
	Bloom *bloom.Filter

	// seen tracks whether any row has been folded in yet.
	seen bool
}

// newColumnStats returns empty stats for a column type.
func newColumnStats(t ColType) ColumnStats {
	cs := ColumnStats{Type: t}
	switch t {
	case Int64:
		cs.MinI, cs.MaxI = math.MaxInt64, math.MinInt64
	case Float64:
		cs.MinF, cs.MaxF = math.Inf(1), math.Inf(-1)
	case String:
		cs.Distinct = make(map[string]struct{})
	}
	return cs
}

// Empty reports whether no rows have been folded into the stats.
func (cs *ColumnStats) Empty() bool { return !cs.seen }

// Clone returns an independent deep copy: folding further observations
// into either side leaves the other unchanged. Delta segments use this
// to hand immutable stats snapshots to concurrent readers while the
// live stats keep absorbing appends.
func (cs *ColumnStats) Clone() ColumnStats {
	out := *cs
	if cs.Distinct != nil {
		out.Distinct = make(map[string]struct{}, len(cs.Distinct))
		for v := range cs.Distinct {
			out.Distinct[v] = struct{}{}
		}
	}
	if cs.Bloom != nil {
		out.Bloom = cs.Bloom.Clone()
	}
	return out
}

// AddInt folds an int64 observation into the stats.
func (cs *ColumnStats) AddInt(v int64) {
	cs.seen = true
	if v < cs.MinI {
		cs.MinI = v
	}
	if v > cs.MaxI {
		cs.MaxI = v
	}
}

// AddFloat folds a float64 observation into the stats.
func (cs *ColumnStats) AddFloat(v float64) {
	cs.seen = true
	if v < cs.MinF {
		cs.MinF = v
	}
	if v > cs.MaxF {
		cs.MaxF = v
	}
}

// AddString folds a string observation into the stats.
func (cs *ColumnStats) AddString(v string) {
	if !cs.seen {
		cs.seen = true
		cs.MinS, cs.MaxS = v, v
	} else {
		if v < cs.MinS {
			cs.MinS = v
		}
		if v > cs.MaxS {
			cs.MaxS = v
		}
	}
	switch {
	case cs.Distinct != nil:
		cs.Distinct[v] = struct{}{}
		if len(cs.Distinct) > MaxTrackedDistinct {
			// Overflow: migrate the exact set into a Bloom filter.
			cs.Bloom = bloom.New(bloomBits, bloomHashes)
			for val := range cs.Distinct {
				cs.Bloom.Add(val)
			}
			cs.Distinct = nil
		}
	case cs.Bloom != nil:
		cs.Bloom.Add(v)
	}
}

// ContainsString reports whether the partition may contain the value v,
// judged from metadata alone. With an exact distinct set this is precise;
// after overflow it is conservative (Bloom false positives and the
// min/max range may admit absent values, but present values are never
// ruled out).
func (cs *ColumnStats) ContainsString(v string) bool {
	if !cs.seen {
		return false
	}
	if cs.Distinct != nil {
		_, ok := cs.Distinct[v]
		return ok
	}
	if v < cs.MinS || v > cs.MaxS {
		return false
	}
	if cs.Bloom != nil {
		return cs.Bloom.MayContain(v)
	}
	return true
}

// PartitionMeta summarizes one partition: its identity, row count, and
// per-column statistics in schema order. This is the only information
// the query layer may consult when deciding whether a partition can be
// skipped; the paper's cost estimation works exclusively from it.
type PartitionMeta struct {
	ID      int
	NumRows int
	Stats   []ColumnStats
}

// NewPartitionMeta returns empty metadata for a partition of the schema.
func NewPartitionMeta(id int, schema *Schema) *PartitionMeta {
	m := &PartitionMeta{ID: id, Stats: make([]ColumnStats, schema.NumCols())}
	for i := 0; i < schema.NumCols(); i++ {
		m.Stats[i] = newColumnStats(schema.Col(i).Type)
	}
	return m
}

// AddRow folds row r of dataset d into the metadata.
func (m *PartitionMeta) AddRow(d *Dataset, r int) {
	m.NumRows++
	for c := 0; c < d.Schema().NumCols(); c++ {
		switch d.Schema().Col(c).Type {
		case Int64:
			m.Stats[c].AddInt(d.Int64At(c, r))
		case Float64:
			m.Stats[c].AddFloat(d.Float64At(c, r))
		case String:
			m.Stats[c].AddString(d.StringAt(c, r))
		}
	}
}
