// Package exec is OREO's execution layer: the component that finally
// *reads data*. Everything below it — the cost model, the compiled
// pruning engine, the serving layer's survivor skip-lists — reasons
// about which partitions a scan may skip; this package materializes the
// actual rows arranged per layout and executes scans that read only the
// partitions a skip-list names, re-checking every predicate against the
// data.
//
// A Store holds one column-major block per partition: the dataset's
// rows regrouped by the partitioning's row→partition assignment, each
// block a small columnar table of its partition's rows. String columns
// are additionally dictionary-encoded at build time — one shared
// table.StringDict per column plus a per-block code array — so scans
// compare interned integer codes instead of hashing strings per row.
// Stores are immutable once built and cheap to share; when the
// optimizer reorganizes into a new layout the owner builds a fresh
// Store from the same dataset and atomically swaps it in
// (internal/serve does exactly this, in lockstep with its optimizer
// snapshots).
//
// Scan executes vectorized: predicates bind to typed columnar kernels
// that sweep each block into a selection vector, aggregates fold in
// tight per-column loops over the selected indices, and per-scan
// scratch recycles through a pool so steady-state scans allocate
// nothing beyond their Result (kernels.go). With Options.Parallelism
// > 1 a worker pool scans survivor blocks concurrently and merges
// per-block partials deterministically in skip-list order
// (parallel.go), so results are bit-identical across worker counts.
// ScanInterpreted keeps the original row-at-a-time engine as the
// semantic reference both are property-tested against.
//
// Scan is the paper's premise made observable: the survivor skip-list
// bounds the partitions touched (c(s, q) is exactly the fraction of
// rows examined), while the per-row predicate re-check filters the
// false positives metadata pruning necessarily admits. False negatives
// are impossible to hide: a partition wrongly pruned upstream would
// change the result set, which is what the pruned-scan ≡ full-scan
// property tests in this package pin down, bitwise.
package exec

import (
	"context"
	"fmt"

	"oreo/internal/query"
	"oreo/internal/table"
)

// Store is a dataset materialized per partitioning: one column-major
// block per partition, with dictionary-encoded string columns.
// Immutable after NewStore and safe for concurrent use.
type Store struct {
	schema *table.Schema
	part   *table.Partitioning
	// blocks holds each partition's rows as its own columnar table,
	// indexed by partition ID. Empty partitions hold zero-row blocks.
	blocks []*table.Dataset
	// rowIDs maps each block row back to its original dataset row index,
	// ascending within a block (blocks preserve dataset order).
	rowIDs [][]int
	// dicts holds one shared dictionary per string column (nil entries
	// for non-string columns); codes[ci][pid] is block pid's column ci
	// encoded against that dictionary.
	dicts []*table.StringDict
	codes [][][]uint32
	// allIDs caches the full-scan survivor list [0..k): AllPartitions
	// is on the per-request execute path and must not allocate.
	allIDs []int
}

// NewStore materializes the dataset's rows into per-partition blocks
// following the partitioning's assignment, and dictionary-encodes every
// string column (one shared dict per column, one code array per block).
// The partitioning must cover the dataset (same row count); partition
// IDs were already validated by table.BuildPartitioning.
func NewStore(ds *table.Dataset, part *table.Partitioning) (*Store, error) {
	if len(part.Assign) != ds.NumRows() {
		return nil, fmt.Errorf("exec: partitioning covers %d rows, dataset has %d",
			len(part.Assign), ds.NumRows())
	}
	schema := ds.Schema()
	k := part.NumPartitions
	// First pass groups row indices by partition, second bulk-copies
	// each group column by column (Builder.AppendRows) — no per-cell
	// boxing or re-validation, since every block shares the dataset's
	// schema. Rebuilds run on a serve shard's decision goroutine after
	// every reorganization, so this path stays O(cells) with small
	// constants.
	rowIDs := make([][]int, k)
	for pid := 0; pid < k; pid++ {
		rowIDs[pid] = make([]int, 0, part.RowsInPartition(pid))
	}
	for r, pid := range part.Assign {
		rowIDs[pid] = append(rowIDs[pid], r)
	}
	s := &Store{
		schema: schema,
		part:   part,
		blocks: make([]*table.Dataset, k),
		rowIDs: rowIDs,
	}
	for pid := 0; pid < k; pid++ {
		b := table.NewBuilder(schema, len(rowIDs[pid]))
		b.AppendRows(ds, rowIDs[pid])
		s.blocks[pid] = b.Build()
	}
	// Dictionary-encode string columns: one dict over the whole dataset
	// so every block shares one code space, then regroup the encoded
	// column by the same row assignment the blocks used.
	ncols := schema.NumCols()
	s.dicts = make([]*table.StringDict, ncols)
	s.codes = make([][][]uint32, ncols)
	for ci := 0; ci < ncols; ci++ {
		if schema.Col(ci).Type != table.String {
			continue
		}
		dict, enc := table.BuildStringDict(ds.StringCol(ci))
		per := make([][]uint32, k)
		for pid := 0; pid < k; pid++ {
			rows := rowIDs[pid]
			arr := make([]uint32, len(rows))
			for j, r := range rows {
				arr[j] = enc[r]
			}
			per[pid] = arr
		}
		s.dicts[ci] = dict
		s.codes[ci] = per
	}
	s.allIDs = make([]int, k)
	for i := range s.allIDs {
		s.allIDs[i] = i
	}
	return s, nil
}

// MustNewStore is NewStore that panics on error, for partitionings
// known to match their dataset.
func MustNewStore(ds *table.Dataset, part *table.Partitioning) *Store {
	s, err := NewStore(ds, part)
	if err != nil {
		panic(err)
	}
	return s
}

// Schema returns the schema the store's blocks share.
func (s *Store) Schema() *table.Schema { return s.schema }

// Partitioning returns the partitioning the store was arranged by.
func (s *Store) Partitioning() *table.Partitioning { return s.part }

// NumPartitions returns the number of blocks.
func (s *Store) NumPartitions() int { return len(s.blocks) }

// TotalRows returns the number of rows across all blocks.
func (s *Store) TotalRows() int { return s.part.TotalRows }

// Block returns partition pid's rows as a columnar table (read-only).
func (s *Store) Block(pid int) *table.Dataset { return s.blocks[pid] }

// Dict returns the shared dictionary of string column ci, or nil for
// non-string columns.
func (s *Store) Dict(ci int) *table.StringDict { return s.dicts[ci] }

// AllPartitions returns the ascending list of every partition ID — the
// survivor list of a full scan. The slice is cached on the Store and
// shared across calls; callers must treat it as read-only.
func (s *Store) AllPartitions() []int { return s.allIDs }

// Options tunes a Scan.
type Options struct {
	// CollectRows returns the matched rows' original dataset indices in
	// Result.RowIDs. Rows are emitted in (partition, row) visit order:
	// ascending within a block, blocks in skip-list order. Because
	// skip-lists are ascending and a skipped partition contributes no
	// matches, a pruned scan and a full scan emit the *same sequence*,
	// which is what the equality property tests compare.
	CollectRows bool
	// Context, when non-nil, is checked between partition blocks: a
	// canceled scan stops reading and returns the context's error. Rows
	// inside one block are never interrupted (a block is the unit of
	// I/O), so cancellation granularity is one partition. Parallel
	// workers check it before claiming each block and drain without
	// leaking goroutines. Serving transports pass the request context
	// here so a disconnected client stops consuming scan time.
	Context context.Context
	// Parallelism is the number of worker goroutines scanning survivor
	// blocks concurrently. Values <= 1 scan sequentially; values above
	// the survivor count are clamped to it. The result is bit-identical
	// for every worker count — per-block partials merge in skip-list
	// order regardless of which worker produced them — so callers tune
	// this purely for latency (the serving layer defaults it to
	// runtime.NumCPU()).
	Parallelism int
	// Delta, when non-nil, is the table's unpartitioned live-write tail:
	// rows appended since the last compaction, not yet covered by the
	// store's partitioning. The scan visits it after every survivor
	// block, as one extra always-surviving segment — it has no metadata
	// partitions can be pruned by, so skipping it is never sound. Its
	// rows are re-checked row-at-a-time and its aggregate partial merges
	// strictly last in both engines, so kernel ≡ interpreted and
	// pruned ≡ unpruned stay bitwise with a non-empty delta. The delta
	// must share the store's schema (pointer identity).
	Delta *table.Dataset
}

// Result is one scan's outcome.
type Result struct {
	// Matched counts the rows satisfying every predicate.
	Matched int
	// PartitionsRead is the number of blocks visited (the skip-list's
	// length), and RowsExamined the rows they hold — RowsExamined over
	// the table size is exactly the service cost c(s, q) the optimizer
	// predicted for the skip-list.
	PartitionsRead int
	RowsExamined   int
	// Aggs holds one result per requested aggregate, in request order.
	Aggs []AggValue
	// RowIDs holds the matched rows' original dataset indices when
	// Options.CollectRows is set; nil otherwise. Delta rows are indexed
	// past the base: delta row r reports TotalRows()+r.
	RowIDs []int
	// DeltaRows is the number of live-write tail rows examined (zero
	// without Options.Delta). They are included in RowsExamined — the
	// delta is always read in full — but not in PartitionsRead, which
	// counts base partitions only.
	DeltaRows int
	// Workers is the number of scan workers actually used: 1 for a
	// sequential scan, Options.Parallelism clamped to the survivor
	// count otherwise. Purely observational — results do not depend on
	// it — and surfaced so serving metrics can count parallel scans.
	Workers int
}

// validateSurvivors checks the skip-list shape every scan requires:
// strictly ascending partition IDs within range — the shape
// Decision.SurvivorPartitions produces — so accidental duplicates fail
// loudly instead of double-counting.
func (s *Store) validateSurvivors(survivors []int) error {
	prev := -1
	for _, pid := range survivors {
		if pid < 0 || pid >= len(s.blocks) {
			return fmt.Errorf("exec: survivor partition %d out of range [0,%d)", pid, len(s.blocks))
		}
		if pid <= prev {
			return fmt.Errorf("exec: survivor list not strictly ascending at partition %d", pid)
		}
		prev = pid
	}
	return nil
}

// Scan executes the query over exactly the listed partitions: each
// block named by survivors is read in full and every row is re-checked
// against the query's predicates (row semantics identical to
// query.Query.MatchRow), so partitions the metadata admitted wrongly
// are filtered out row by row. The query is bound once into typed
// columnar kernels; unknown columns or type-mismatched predicates
// match no rows, exactly as MatchRow treats them. survivors must be
// strictly ascending partition IDs within range.
func (s *Store) Scan(q query.Query, survivors []int, aggs []AggSpec, opts Options) (Result, error) {
	sc := getScratch()
	defer putScratch(sc)
	accs, err := bindAggsInto(sc.accs[:0], s.schema, aggs)
	sc.accs = accs
	if err != nil {
		return Result{}, err
	}
	if err := s.validateSurvivors(survivors); err != nil {
		return Result{}, err
	}
	never := s.bindKernels(sc, q)

	var res Result
	res.Workers = 1
	if opts.CollectRows {
		res.RowIDs = []int{}
	}
	workers := opts.Parallelism
	if workers > len(survivors) {
		workers = len(survivors)
	}
	if workers > 1 && !never {
		err = s.scanParallel(&res, sc.preds, survivors, accs, workers, opts)
	} else {
		err = s.scanSequential(&res, sc, survivors, accs, never, opts)
	}
	if err != nil {
		return Result{}, err
	}
	if err := s.scanDelta(&res, q, accs, opts); err != nil {
		return Result{}, err
	}
	res.Aggs = make([]AggValue, len(accs))
	for i := range accs {
		res.Aggs[i] = accs[i].value()
	}
	return res, nil
}

// scanDelta executes the query over the live-write tail, when the scan
// carries one. The tail is a single unpartitioned segment visited after
// every survivor block: rows are re-checked through the interpreted
// row filter (shared verbatim by both engines, so they agree on the
// delta trivially), the tail's aggregate partial merges last — the same
// per-block merge discipline the base scan uses, preserving bitwise
// results across engines and skip-lists — and matched rows are indexed
// past the base (TotalRows()+r). Parallel scans run it sequentially
// after the pool drains, inside the ordered merge.
func (s *Store) scanDelta(res *Result, q query.Query, accs []aggAcc, opts Options) error {
	delta := opts.Delta
	if delta == nil || delta.NumRows() == 0 {
		return nil
	}
	if delta.Schema() != s.schema {
		return fmt.Errorf("exec: delta segment schema differs from the store's")
	}
	if opts.Context != nil {
		if err := opts.Context.Err(); err != nil {
			return fmt.Errorf("exec: scan canceled: %w", err)
		}
	}
	n := delta.NumRows()
	res.DeltaRows = n
	res.RowsExamined += n
	f := bindFilter(s.schema, q)
	if f.never {
		return nil
	}
	partials := make([]aggAcc, len(accs))
	for i := range accs {
		partials[i] = aggAcc{op: accs[i].op, col: accs[i].col, ci: accs[i].ci, typ: accs[i].typ,
			valid: accs[i].op == AggCount || accs[i].op == AggSum}
	}
	base := s.TotalRows()
	matched := 0
	for r := 0; r < n; r++ {
		if !f.match(delta, r) {
			continue
		}
		matched++
		for i := range partials {
			partials[i].add(delta, r)
		}
		if opts.CollectRows {
			res.RowIDs = append(res.RowIDs, base+r)
		}
	}
	if matched == 0 {
		return nil
	}
	res.Matched += matched
	for i := range accs {
		mergeAgg(&accs[i], &partials[i])
	}
	return nil
}

// scanSequential is the single-goroutine kernel path: per survivor
// block, run the selection kernels, fold aggregate partials, merge in
// place. Zero allocations steady-state: selection vector, bound
// predicates, and accumulators all live in pooled scratch.
func (s *Store) scanSequential(res *Result, sc *scanScratch, survivors []int, accs []aggAcc, never bool, opts Options) error {
	ctx := opts.Context
	for _, pid := range survivors {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("exec: scan canceled: %w", err)
			}
		}
		blk := s.blocks[pid]
		n := blk.NumRows()
		res.PartitionsRead++
		res.RowsExamined += n
		if never || n == 0 {
			continue
		}
		sel := s.selectBlock(sc.preds, pid, &sc.sel)
		if len(sel) == 0 {
			continue
		}
		res.Matched += len(sel)
		for i := range accs {
			p := foldBlockAgg(blk, sel, &accs[i])
			mergeAgg(&accs[i], &p)
		}
		if opts.CollectRows {
			ids := s.rowIDs[pid]
			for _, r := range sel {
				res.RowIDs = append(res.RowIDs, ids[r])
			}
		}
	}
	return nil
}

// ScanInterpreted executes the same contract as Scan with the original
// row-at-a-time engine: every predicate re-checked per row through a
// type-switching filter, aggregates folded row by row into per-block
// partials merged in skip-list order (the same merge the kernels use,
// so the two engines agree bitwise — including float sum association).
// It is kept as the semantic reference the vectorized and parallel
// paths are property-tested against, and as the "before" baseline of
// the bench trajectory.
func (s *Store) ScanInterpreted(q query.Query, survivors []int, aggs []AggSpec, opts Options) (Result, error) {
	accs, err := bindAggs(s.schema, aggs)
	if err != nil {
		return Result{}, err
	}
	if err := s.validateSurvivors(survivors); err != nil {
		return Result{}, err
	}
	f := bindFilter(s.schema, q)
	var res Result
	res.Workers = 1
	if opts.CollectRows {
		res.RowIDs = []int{}
	}
	partials := make([]aggAcc, len(accs))
	for _, pid := range survivors {
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				return Result{}, fmt.Errorf("exec: scan canceled: %w", err)
			}
		}
		blk := s.blocks[pid]
		n := blk.NumRows()
		res.PartitionsRead++
		res.RowsExamined += n
		if f.never {
			continue
		}
		for i := range accs {
			partials[i] = aggAcc{op: accs[i].op, col: accs[i].col, ci: accs[i].ci, typ: accs[i].typ,
				valid: accs[i].op == AggCount || accs[i].op == AggSum}
		}
		ids := s.rowIDs[pid]
		matched := 0
		for r := 0; r < n; r++ {
			if !f.match(blk, r) {
				continue
			}
			matched++
			for i := range partials {
				partials[i].add(blk, r)
			}
			if opts.CollectRows {
				res.RowIDs = append(res.RowIDs, ids[r])
			}
		}
		if matched == 0 {
			continue
		}
		res.Matched += matched
		for i := range accs {
			mergeAgg(&accs[i], &partials[i])
		}
	}
	if err := s.scanDelta(&res, q, accs, opts); err != nil {
		return Result{}, err
	}
	res.Aggs = make([]AggValue, len(accs))
	for i := range accs {
		res.Aggs[i] = accs[i].value()
	}
	return res, nil
}

// ScanFull executes the query over every partition — the reference scan
// the pruned-scan equality property compares against, and the fallback
// when no skip-list is available.
func (s *Store) ScanFull(q query.Query, aggs []AggSpec, opts Options) (Result, error) {
	return s.Scan(q, s.allIDs, aggs, opts)
}
