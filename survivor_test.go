package oreo

import (
	"math/rand"
	"testing"

	"oreo/internal/query"
)

// TestSurvivorPartitionsNeverNil pins both halves of the wire-shape
// contract: a zero Decision (no layout — the not-yet-served case a
// transport can hit) and an unsatisfiable query (layout, empty mask)
// must BOTH return an empty non-nil list. Encoders serialize the two
// identically as [], never null depending on which path produced the
// decision.
func TestSurvivorPartitionsNeverNil(t *testing.T) {
	var zero Decision
	if got := zero.SurvivorPartitions(); got == nil || len(got) != 0 {
		t.Fatalf("zero decision survivors = %#v, want non-nil empty", got)
	}

	ds := buildEventsTable(t, 500)
	opt, err := New(ds, Config{Partitions: 8, InitialSort: []string{"ts"}})
	if err != nil {
		t.Fatal(err)
	}
	// ts is in [0, 500); this range is unsatisfiable on every partition.
	dec := opt.ProcessQuery(Query{Preds: []Predicate{IntRange("ts", 10_000, 20_000)}})
	if got := dec.SurvivorPartitions(); got == nil || len(got) != 0 {
		t.Fatalf("unsatisfiable-query survivors = %#v, want non-nil empty", got)
	}
	if dec.Cost != 0 {
		t.Fatalf("unsatisfiable-query cost = %v, want 0", dec.Cost)
	}
}

// TestDecisionSurvivorPartitions is the satellite contract for the
// survivor return path: the skip-list the public API reports must agree
// with interpreted per-partition prunable checks (query.MayMatch over
// the served layout's metadata), and the decision's Cost must be
// exactly the listed partitions' row mass over the table size.
func TestDecisionSurvivorPartitions(t *testing.T) {
	ds := buildEventsTable(t, 3000)
	opt, err := New(ds, Config{
		Alpha: 12, Partitions: 16, WindowSize: 60, Period: 60,
		InitialSort: []string{"ts"}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	users := []string{"alice", "bob", "carol", "dave"}
	for i := 0; i < 800; i++ {
		var q Query
		switch i % 3 {
		case 0:
			lo := rng.Int63n(2800)
			q = Query{ID: i, Preds: []Predicate{IntRange("ts", lo, lo+200)}}
		case 1:
			q = Query{ID: i, Preds: []Predicate{StrEq("user", users[rng.Intn(len(users))])}}
		default:
			q = Query{ID: i, Preds: []Predicate{
				FloatGE("latency", rng.Float64()*400),
				StrIn("user", users[rng.Intn(4)], users[rng.Intn(4)]),
			}}
		}
		dec := opt.ProcessQuery(q)

		// Interpreted reference: a partition survives iff its metadata
		// cannot rule the conjunction out.
		var want []int
		rows := 0
		for pid, m := range dec.Layout.Part.Meta {
			if q.MayMatch(dec.Layout.Schema(), m) {
				want = append(want, pid)
				rows += m.NumRows
			}
		}
		surv := dec.SurvivorPartitions()
		if len(surv) != len(want) {
			t.Fatalf("query %d: %d survivors, interpreted says %d", i, len(surv), len(want))
		}
		for j := range want {
			if surv[j] != want[j] {
				t.Fatalf("query %d: survivors %v != interpreted %v", i, surv, want)
			}
		}
		if wantCost := float64(rows) / float64(dec.Layout.Part.TotalRows); dec.Cost != wantCost {
			t.Fatalf("query %d: Cost %v != survivor row mass %v", i, dec.Cost, wantCost)
		}
		// And bit-identical to the interpreted reference cost path.
		if ref := query.FractionScanned(dec.Layout.Schema(), dec.Layout.Part, q); dec.Cost != ref {
			t.Fatalf("query %d: Cost %v != interpreted FractionScanned %v", i, dec.Cost, ref)
		}
	}
}
