package oreo

import (
	"math/rand"
	"testing"
)

func buildTwoTables(t *testing.T) (orders, users *Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))

	ordersSchema := NewSchema(
		Column{Name: "order_ts", Type: Int64},
		Column{Name: "amount", Type: Float64},
	)
	ob := NewDatasetBuilder(ordersSchema, 2000)
	for i := 0; i < 2000; i++ {
		ob.AppendRow(Int(int64(i)), Float(rng.Float64()*100))
	}

	usersSchema := NewSchema(
		Column{Name: "signup_ts", Type: Int64},
		Column{Name: "country", Type: String},
	)
	ub := NewDatasetBuilder(usersSchema, 2000)
	countries := []string{"br", "de", "jp", "us"}
	for i := 0; i < 2000; i++ {
		ub.AppendRow(Int(int64(i)), Str(countries[rng.Intn(4)]))
	}
	return ob.Build(), ub.Build()
}

func newMultiForTest(t *testing.T) *MultiOptimizer {
	t.Helper()
	orders, users := buildTwoTables(t)
	m := NewMulti()
	if err := m.AddTable("orders", orders, Config{
		Alpha: 20, Partitions: 8, WindowSize: 50, InitialSort: []string{"order_ts"}, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTable("users", users, Config{
		Alpha: 20, Partitions: 8, WindowSize: 50, InitialSort: []string{"signup_ts"}, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiAddTableValidation(t *testing.T) {
	orders, _ := buildTwoTables(t)
	m := NewMulti()
	if err := m.AddTable("", orders, Config{InitialSort: []string{"order_ts"}}); err == nil {
		t.Error("empty table name accepted")
	}
	if err := m.AddTable("orders", orders, Config{InitialSort: []string{"order_ts"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTable("orders", orders, Config{InitialSort: []string{"order_ts"}}); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := m.AddTable("bad", orders, Config{}); err == nil {
		t.Error("invalid per-table config accepted")
	}
}

func TestMultiRoutesPredicatesBySchema(t *testing.T) {
	m := newMultiForTest(t)
	// A join-style query touching both tables.
	dec := m.ProcessQuery(Query{ID: 0, Preds: []Predicate{
		IntRange("order_ts", 0, 99),
		StrEq("country", "de"),
	}})
	if len(dec) != 2 {
		t.Fatalf("decisions for %d tables, want 2", len(dec))
	}
	if dec["orders"].Cost <= 0 || dec["orders"].Cost > 1 {
		t.Errorf("orders cost = %g", dec["orders"].Cost)
	}
	// The orders table saw only its own predicate: cost must reflect a
	// selective time range, not a full scan.
	if dec["orders"].Cost > 0.2 {
		t.Errorf("orders cost %g; time predicate not routed", dec["orders"].Cost)
	}
	// A query touching only one table leaves the other untouched.
	dec = m.ProcessQuery(Query{ID: 1, Preds: []Predicate{StrEq("country", "us")}})
	if _, touched := dec["orders"]; touched {
		t.Error("orders received a users-only query")
	}
	if m.Optimizer("orders").Stats().Queries != 1 {
		t.Errorf("orders processed %d queries, want 1", m.Optimizer("orders").Stats().Queries)
	}
	if m.Optimizer("users").Stats().Queries != 2 {
		t.Errorf("users processed %d queries, want 2", m.Optimizer("users").Stats().Queries)
	}
}

func TestMultiIndependentReorganization(t *testing.T) {
	m := newMultiForTest(t)
	// Drift only the users workload; orders stays on time ranges.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 800; i++ {
		lo := rng.Int63n(1800)
		m.ProcessQuery(Query{ID: i * 2, Preds: []Predicate{IntRange("order_ts", lo, lo+100)}})
		m.ProcessQuery(Query{ID: i*2 + 1, Preds: []Predicate{
			StrEq("country", []string{"br", "de"}[i%2])}})
	}
	st := m.Stats()
	if st["users"].Reorganizations == 0 {
		t.Error("users never reorganized under a country-filter workload")
	}
	if st["orders"].Reorganizations != 0 {
		t.Error("orders reorganized although its layout was already ideal")
	}
	q, r := m.TotalCost()
	if q <= 0 {
		t.Error("no combined query cost")
	}
	if want := 20 * float64(st["users"].Reorganizations+st["orders"].Reorganizations); r != want {
		t.Errorf("combined reorg cost %g, want %g", r, want)
	}
}

func TestMultiTablesOrder(t *testing.T) {
	m := newMultiForTest(t)
	tables := m.Tables()
	if len(tables) != 2 || tables[0] != "orders" || tables[1] != "users" {
		t.Errorf("Tables = %v", tables)
	}
	if m.Optimizer("nope") != nil {
		t.Error("unknown table returned an optimizer")
	}
}

func TestReorgDelayInPublicAPI(t *testing.T) {
	ds := buildEventsTable(t, 2000)
	mk := func(delay int) float64 {
		opt, err := New(ds, Config{
			Alpha: 15, Partitions: 8, WindowSize: 40, Period: 40,
			InitialSort: []string{"ts"}, ReorgDelay: delay, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		sawPending := false
		for i := 0; i < 500; i++ {
			dec := opt.ProcessQuery(Query{ID: i, Preds: []Predicate{
				StrEq("user", []string{"alice", "bob"}[i%2])}})
			total += dec.Cost
			if opt.PendingLayout() != nil {
				sawPending = true
			}
		}
		if delay > 0 && !sawPending {
			t.Error("delay > 0 but no pending layout was ever observed")
		}
		return total
	}
	immediate := mk(0)
	delayed := mk(60)
	// §VI-D5: longer delays can only increase query cost (savings take
	// effect later). The decisions are identical across runs because the
	// policy path is deterministic for a fixed seed.
	if delayed < immediate {
		t.Errorf("delayed run cheaper (%.2f) than immediate (%.2f)", delayed, immediate)
	}
}
