package cluster

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"oreo/internal/metrics"
)

// Actuator abstracts the mechanism that changes the fleet, so the
// controller's decision logic is testable without spawning processes.
type Actuator interface {
	// Ensure moves the live follower count toward target (clamped to
	// the actuator's bounds, rate-limited by its cool-down) with the
	// given leader as upstream, and returns the count after the call.
	Ensure(target int, leader string) (int, error)
	// Followers returns the base URLs of the live followers, oldest
	// first.
	Followers() []string
	// Release stops managing the follower at url without stopping its
	// process — the promotion hand-off: a follower that just became
	// the leader must never be "scaled down".
	Release(url string) bool
	// Retarget moves every managed follower onto a new leader and
	// returns how many were moved. Followers learn their upstream at
	// boot, so this is a replacement, not a reconfiguration; the
	// promotion path uses it because survivors of a failover would
	// otherwise retry the dead leader forever with frozen lag gauges.
	Retarget(leader string) int
}

// ProcessActuatorConfig parameterizes a ProcessActuator.
type ProcessActuatorConfig struct {
	// Binary is the oreoserve executable to spawn.
	Binary string
	// BaseArgs are the flags every follower shares (-tables, -rows,
	// -csv, ...). The actuator appends -addr and -follow per process.
	BaseArgs []string
	// Host is the address followers bind and are reached at; zero
	// selects 127.0.0.1.
	Host string
	// PortBase is the first follower port; follower slot i listens on
	// PortBase+i.
	PortBase int
	// Min and Max bound the follower count. Min defaults to 0, Max to
	// 8; Ensure never goes outside them regardless of the target.
	Min, Max int
	// Cooldown is the minimum time between fleet actions (spawn or
	// retire); zero selects 10s. One action per Ensure call at most —
	// the loop converges over ticks, damped, instead of slamming a
	// whole fleet up in one tick.
	Cooldown time.Duration
	// RetireGrace bounds how long a retiring follower gets to exit
	// after SIGTERM before SIGKILL; zero selects 5s.
	RetireGrace time.Duration
	// LogDir receives per-follower stdout+stderr files; empty discards
	// follower output.
	LogDir string
	// Logf receives operational messages; nil selects log.Printf.
	Logf func(format string, args ...any)
	// Reg receives the actuator's action counters and fleet gauge; nil
	// disables instrumentation.
	Reg *metrics.Registry
}

// followerProc is one managed oreoserve -follow process.
type followerProc struct {
	slot int
	url  string
	cmd  *exec.Cmd
	done chan struct{} // closed when the process exits
	out  *os.File
}

// ProcessActuator turns target follower counts into oreoserve -follow
// OS processes: Ensure spawns or retires at most one process per call,
// respecting [Min, Max] and a cool-down between actions, and every
// action is logged and counted. Dead followers (crashed, OOM-killed)
// are reaped on the next Ensure and their slots reused.
type ProcessActuator struct {
	cfg  ProcessActuatorConfig
	logf func(format string, args ...any)

	mu         sync.Mutex
	procs      []*followerProc
	released   []*followerProc
	retiring   []*followerProc // being stopped outside the lock; slots still reserved
	lastAction time.Time

	spawns  *metrics.Counter
	retires *metrics.Counter
	reaps   *metrics.Counter
}

// NewProcessActuator builds a process actuator. It spawns nothing
// until the first Ensure call.
func NewProcessActuator(cfg ProcessActuatorConfig) (*ProcessActuator, error) {
	if cfg.Binary == "" {
		return nil, fmt.Errorf("cluster: actuator needs a binary")
	}
	if cfg.PortBase <= 0 {
		return nil, fmt.Errorf("cluster: actuator needs a port base")
	}
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	if cfg.Max <= 0 {
		cfg.Max = 8
	}
	if cfg.Min < 0 {
		cfg.Min = 0
	}
	if cfg.Min > cfg.Max {
		return nil, fmt.Errorf("cluster: actuator min %d exceeds max %d", cfg.Min, cfg.Max)
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.RetireGrace <= 0 {
		cfg.RetireGrace = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	a := &ProcessActuator{cfg: cfg, logf: cfg.Logf}
	if cfg.Reg != nil {
		a.spawns = cfg.Reg.Counter("oreo_cluster_spawns_total",
			"Follower processes the actuator has started.", nil)
		a.retires = cfg.Reg.Counter("oreo_cluster_retires_total",
			"Follower processes the actuator has deliberately stopped.", nil)
		a.reaps = cfg.Reg.Counter("oreo_cluster_reaps_total",
			"Follower processes found dead and reaped (crashes, kills).", nil)
		cfg.Reg.GaugeFunc("oreo_cluster_followers",
			"Live follower processes under actuator management.", nil,
			func() float64 {
				a.mu.Lock()
				defer a.mu.Unlock()
				return float64(len(a.procs))
			})
	}
	return a, nil
}

// Ensure implements Actuator.
func (a *ProcessActuator) Ensure(target int, leader string) (int, error) {
	a.mu.Lock()
	a.reapLocked()
	if target < a.cfg.Min {
		target = a.cfg.Min
	}
	if target > a.cfg.Max {
		target = a.cfg.Max
	}
	n := len(a.procs)
	if n == target {
		a.mu.Unlock()
		return n, nil
	}
	if !a.lastAction.IsZero() && time.Since(a.lastAction) < a.cfg.Cooldown {
		a.mu.Unlock()
		return n, nil // in cool-down; the next tick gets another chance
	}
	var victim *followerProc
	var err error
	if n < target {
		err = a.spawnLocked(leader)
	} else {
		victim = a.retireLocked()
	}
	if err != nil {
		n = len(a.procs)
		a.mu.Unlock()
		return n, err
	}
	a.lastAction = time.Now()
	n = len(a.procs)
	a.mu.Unlock()
	if victim != nil {
		a.stopRetiring(victim)
	}
	return n, nil
}

// Followers implements Actuator.
func (a *ProcessActuator) Followers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	urls := make([]string, len(a.procs))
	for i, p := range a.procs {
		urls[i] = p.url
	}
	return urls
}

// Release implements Actuator.
func (a *ProcessActuator) Release(url string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, p := range a.procs {
		if p.url == url {
			a.procs = append(a.procs[:i], a.procs[i+1:]...)
			a.released = append(a.released, p)
			a.logf("cluster: released %s (pid %d) from management", url, p.cmd.Process.Pid)
			return true
		}
	}
	return false
}

// Retarget implements Actuator: a rolling replacement of the whole
// managed fleet onto a new leader. oreoserve followers learn their
// upstream from the -follow boot flag, so after a promotion the
// survivors cannot be re-pointed in place — left alone they would
// retry the dead leader's address forever while their lag gauges
// freeze at the last pre-failure reading. Retarget drains every
// managed process, stops them concurrently (each stop is bounded by
// RetireGrace, and none of it holds a.mu), then respawns the same
// count against the new leader. It deliberately ignores the cool-down:
// a stranded follower serves stale data and converges to nothing, so
// replacing it immediately beats damping; lastAction is stamped
// afterward so ordinary scaling resumes damped.
func (a *ProcessActuator) Retarget(leader string) int {
	a.mu.Lock()
	a.reapLocked()
	drained := append([]*followerProc(nil), a.procs...)
	a.procs = nil
	a.retiring = append(a.retiring, drained...)
	if a.retires != nil {
		a.retires.Add(uint64(len(drained)))
	}
	for _, p := range drained {
		a.logf("cluster: retiring follower %s (pid %d) for retarget onto %s", p.url, p.cmd.Process.Pid, leader)
	}
	a.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range drained {
		wg.Add(1)
		go func(p *followerProc) {
			defer wg.Done()
			a.stopRetiring(p)
		}(p)
	}
	wg.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for range drained {
		if err := a.spawnLocked(leader); err != nil {
			a.logf("cluster: retarget spawn: %v", err)
			break
		}
		n++
	}
	if len(drained) > 0 {
		a.lastAction = time.Now()
	}
	return n
}

// StopAll stops every managed process — followers and released ones —
// for a clean shutdown. Best effort: errors are logged, not returned.
func (a *ProcessActuator) StopAll() {
	a.mu.Lock()
	procs := append(append([]*followerProc(nil), a.procs...), a.released...)
	a.procs, a.released = nil, nil
	a.mu.Unlock()
	for _, p := range procs {
		a.stop(p)
	}
}

// reapLocked drops processes that have exited on their own.
func (a *ProcessActuator) reapLocked() {
	live := a.procs[:0]
	for _, p := range a.procs {
		select {
		case <-p.done:
			a.logf("cluster: follower %s (pid %d) exited; reaping slot %d", p.url, p.cmd.Process.Pid, p.slot)
			if a.reaps != nil {
				a.reaps.Add(1)
			}
		default:
			live = append(live, p)
		}
	}
	a.procs = live
}

// spawnLocked starts one follower in the lowest free slot.
func (a *ProcessActuator) spawnLocked(leader string) error {
	used := make(map[int]bool)
	for _, p := range a.procs {
		used[p.slot] = true
	}
	for _, p := range a.released {
		used[p.slot] = true
	}
	for _, p := range a.retiring {
		used[p.slot] = true
	}
	slot := 0
	for used[slot] {
		slot++
	}
	port := a.cfg.PortBase + slot
	addr := fmt.Sprintf("%s:%d", a.cfg.Host, port)
	args := append(append([]string(nil), a.cfg.BaseArgs...),
		"-addr", addr, "-follow", leader)
	cmd := exec.Command(a.cfg.Binary, args...)
	var out *os.File
	if a.cfg.LogDir != "" {
		var err error
		out, err = os.OpenFile(filepath.Join(a.cfg.LogDir, fmt.Sprintf("follower-%d.log", port)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("cluster: opening follower log: %w", err)
		}
		cmd.Stdout, cmd.Stderr = out, out
	}
	if err := cmd.Start(); err != nil {
		if out != nil {
			out.Close()
		}
		return fmt.Errorf("cluster: starting follower on %s: %w", addr, err)
	}
	p := &followerProc{slot: slot, url: "http://" + addr, cmd: cmd, done: make(chan struct{}), out: out}
	go func() {
		cmd.Wait()
		if p.out != nil {
			p.out.Close()
		}
		close(p.done)
	}()
	a.procs = append(a.procs, p)
	if a.spawns != nil {
		a.spawns.Add(1)
	}
	a.logf("cluster: spawned follower %s (pid %d, upstream %s)", p.url, cmd.Process.Pid, leader)
	return nil
}

// retireLocked drains the newest follower — the slot that has served
// the least and whose loss disturbs the fleet least — into the
// retiring list and returns it (nil if there is nothing to retire).
// The caller must finish the job with stopRetiring after releasing
// a.mu: the stop can block for the full RetireGrace, and holding the
// lock through it would stall every /metrics scrape and control tick
// behind one slow exit. The retiring entry keeps the slot reserved
// until the process is actually gone.
func (a *ProcessActuator) retireLocked() *followerProc {
	if len(a.procs) == 0 {
		return nil
	}
	p := a.procs[len(a.procs)-1]
	a.procs = a.procs[:len(a.procs)-1]
	a.retiring = append(a.retiring, p)
	if a.retires != nil {
		a.retires.Add(1)
	}
	a.logf("cluster: retiring follower %s (pid %d)", p.url, p.cmd.Process.Pid)
	return p
}

// stopRetiring terminates a follower previously drained by
// retireLocked, then frees its slot. Must be called without a.mu held.
func (a *ProcessActuator) stopRetiring(p *followerProc) {
	a.stop(p)
	a.mu.Lock()
	for i, q := range a.retiring {
		if q == p {
			a.retiring = append(a.retiring[:i], a.retiring[i+1:]...)
			break
		}
	}
	a.mu.Unlock()
}

// stop terminates one process: SIGTERM, a bounded grace wait, SIGKILL.
func (a *ProcessActuator) stop(p *followerProc) {
	if p.cmd.Process != nil {
		p.cmd.Process.Signal(os.Interrupt)
	}
	select {
	case <-p.done:
		return
	case <-time.After(a.cfg.RetireGrace):
	}
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	<-p.done
}
