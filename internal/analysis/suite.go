package analysis

// V1WireTypes is the frozen /v1 wire surface of internal/serve: every
// type whose JSON shape the replay contract pins byte-for-byte.
// HealthResponse is deliberately absent — /healthz is the documented
// additive-extensible operational exception — and the /v2 live-write
// bodies (AppendRequest/AppendResponse/CompactResponse) are versioned
// apart from the frozen contract.
var V1WireTypes = []string{
	"PredicateJSON",
	"QueryRequest",
	"AggregateJSON",
	"AggregateResultJSON",
	"ExecutionJSON",
	"BatchRequest",
	"TableResult",
	"QueryResponse",
	"BatchItem",
	"BatchResponse",
	"LayoutResponse",
	"StatsResponse",
	"TraceEventJSON",
	"TraceResponse",
	"ErrorResponse",
}

// ServeWirefreeze is the production wirefreeze configuration: the
// serve package's wire types, pinned by the manifest that lives next
// to the golden fixtures (both artifacts freeze the same contract —
// the manifest its compile-time shape, the goldens its runtime
// bytes).
var ServeWirefreeze = WirefreezeConfig{
	PackagePath: "oreo/internal/serve",
	ManifestRel: "testdata/wire.manifest",
	Types:       V1WireTypes,
}

// Suite returns the full analyzer suite with the repo's production
// targets. Each analyzer encodes one ROADMAP standing invariant:
//
//   - wirefreeze: /v1 frozen byte-for-byte
//   - maporder, floatbits: leader/follower and pruned/unpruned
//     bit-identity (no nondeterministic iteration on ordered
//     outputs, no NaN-hazardous equality, no decimal float text at
//     encode boundaries)
//   - blockingsend: bounded queues drop or 503, never backpressure
//   - atomicdiscipline: lock-free published state is only touched
//     atomically
//   - stdlibonly: the client SDK and metrics encoder stay
//     dependency-free
func Suite() []*Analyzer {
	return []*Analyzer{
		Wirefreeze(ServeWirefreeze),
		Maporder(),
		Floatbits("oreo/internal/persist", "oreo/internal/replica"),
		Blockingsend("oreo/internal/serve", "oreo/internal/replica"),
		Atomicdiscipline(),
		Stdlibonly("oreo/client", "oreo/internal/metrics"),
	}
}

// KnownAnalyzers lists every analyzer name the driver accepts in
// //oreovet:ignore directives, plus the driver's own name. A
// directive naming anything else is reported as a typo instead of
// silently suppressing nothing.
func KnownAnalyzers() []string {
	return []string{
		"wirefreeze", "maporder", "floatbits",
		"blockingsend", "atomicdiscipline", "stdlibonly",
		DriverName,
	}
}
