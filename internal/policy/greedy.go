package policy

import (
	"oreo/internal/layout"
	"oreo/internal/manager"
	"oreo/internal/query"
)

// Greedy is the aggressive online baseline: whenever the layout manager
// produces a candidate whose query cost on the sliding window beats the
// current layout's, switch immediately — reorganization cost be damned.
// It represents the lowest query cost attainable by any online strategy
// sharing the same candidate stream, at the price of the largest
// reorganization bill.
type Greedy struct {
	feed    *manager.Feed
	current *layout.Layout
}

// NewGreedy returns the greedy policy starting from the initial layout
// and consuming candidates from the feed.
func NewGreedy(feed *manager.Feed, initial *layout.Layout) *Greedy {
	return &Greedy{feed: feed, current: initial}
}

// Name implements Policy.
func (g *Greedy) Name() string { return "Greedy" }

// Current implements Policy.
func (g *Greedy) Current() *layout.Layout { return g.current }

// Observe implements Policy.
func (g *Greedy) Observe(q query.Query) *layout.Layout {
	cands := g.feed.Observe(q)
	if len(cands) == 0 {
		return nil
	}
	window := g.feed.WindowQueries()
	// One compilation of the window serves the incumbent and every
	// candidate evaluation.
	cqs := g.current.CompileWorkload(window)
	curCost := g.current.AvgCostCompiled(cqs)
	var best *layout.Layout
	bestCost := curCost
	for _, c := range cands {
		if c.Layout.Name == g.current.Name {
			continue
		}
		if cost := c.Layout.AvgCostCompiled(cqs); cost < bestCost {
			best, bestCost = c.Layout, cost
		}
	}
	if best == nil {
		return nil
	}
	g.current = best
	return best
}
