package load

import (
	"fmt"
	"math/rand"

	"oreo/client"
	"oreo/internal/workload"
)

// BuildPool materializes a query pool from a workload template library:
// n queries over the given number of template segments, pinned to one
// served table, deterministically from the seed. With execute set each
// query asks the server to scan its survivors and count matched rows —
// the full read path rather than costing alone.
func BuildPool(templates []workload.Template, table string, n, segments int, execute bool, seed int64) ([]client.Query, error) {
	if len(templates) == 0 {
		return nil, fmt.Errorf("load: empty template library")
	}
	if segments <= 0 {
		segments = 1
	}
	stream, err := workload.Generate(templates, workload.Config{
		NumQueries:  n,
		NumSegments: segments,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	pool := make([]client.Query, len(stream.Queries))
	for i, q := range stream.Queries {
		cq := client.Query{Table: table, Execute: execute}
		if execute {
			cq.Aggs = []client.Aggregate{client.Count()}
		}
		for _, p := range q.Preds {
			cq.Preds = append(cq.Preds, client.Predicate{
				Col:   p.Col,
				HasLo: p.HasLo, HasHi: p.HasHi,
				LoI: p.LoI, HiI: p.HiI,
				LoF: p.LoF, HiF: p.HiF,
				In: p.In,
			})
		}
		pool[i] = cq
	}
	return pool, nil
}
