package query

import (
	"math"
	"testing"

	"oreo/internal/table"
)

// TestMatchRowNaNNeverMatchesBounds pins the row-semantics bugfix the
// execution layer's end-to-end property test surfaced: a NaN cell must
// not satisfy a bounded numeric predicate. Under the old `v < lo →
// reject` structure NaN slipped through every range (both comparisons
// are false), while partition min/max are folded from finite values
// only — so a partition holding finite rows plus NaN rows could be
// pruned even though its NaN rows "matched", making metadata skipping
// unsound relative to the row oracle.
func TestMatchRowNaNNeverMatchesBounds(t *testing.T) {
	schema := table.NewSchema(table.Column{Name: "x", Type: table.Float64})
	b := table.NewBuilder(schema, 3)
	b.AppendRow(table.Float(math.NaN()))
	b.AppendRow(table.Float(5))
	b.AppendRow(table.Float(math.NaN()))
	d := b.Build()

	cases := []struct {
		name string
		p    Predicate
	}{
		{"closed range", FloatRange("x", 0, 10)},
		{"lower bound", FloatGE("x", 0)},
		{"upper bound", FloatLE("x", 10)},
		{"contradictory range", FloatRange("x", 10, 0)},
	}
	for _, tc := range cases {
		q := Query{Preds: []Predicate{tc.p}}
		if q.MatchRow(d, 0) || q.MatchRow(d, 2) {
			t.Errorf("%s: NaN row matched", tc.name)
		}
	}
	// The finite row keeps matching the satisfiable shapes.
	for _, p := range []Predicate{FloatRange("x", 0, 10), FloatGE("x", 0), FloatLE("x", 10)} {
		if !(Query{Preds: []Predicate{p}}).MatchRow(d, 1) {
			t.Errorf("finite row rejected by %v", p)
		}
	}
	// An unbounded numeric predicate constrains nothing, NaN included.
	if !(Query{Preds: []Predicate{{Col: "x"}}}).MatchRow(d, 0) {
		t.Error("unbounded predicate rejected a NaN row")
	}

	// End to end: pruning must agree. The NaN rows match nothing, the
	// finite row's partition must survive its range.
	part := table.MustBuildPartitioning(d, []int{0, 1, 0}, 2)
	q := Query{Preds: []Predicate{FloatRange("x", 0, 10)}}
	for r := 0; r < d.NumRows(); r++ {
		if q.MatchRow(d, r) && !q.MayMatch(d.Schema(), part.Meta[part.Assign[r]]) {
			t.Fatalf("row %d matches but its partition is pruned", r)
		}
	}
}
