package analysis

import (
	"go/ast"
)

// Blockingsend enforces "drop or 503, never backpressure" on the
// serving and replication packages: a channel send on those paths
// must be a select case in a select that has a default clause — the
// shape that makes "queue full" an observable drop instead of a
// stalled request goroutine.
//
// Any other send is flagged: a bare `ch <- v`, a send in a select
// with no default (blocks until some case fires), and a send in the
// *body* of a select case (the case fired, but the nested send still
// blocks). The deliberate exceptions in the tree — acknowledged
// writes that are *supposed* to exert backpressure, replies on
// buffered single-use channels — carry //oreovet:ignore blockingsend
// annotations whose reasons document exactly why blocking is safe
// there, which is the review surface this analyzer exists to create.
func Blockingsend(pkgs ...string) *Analyzer {
	a := &Analyzer{
		Name: "blockingsend",
		Doc:  "channel sends on serve/replica paths must be select-with-default or justified",
	}
	a.Run = func(pass *Pass) {
		if !pathMatch(pass.Pkg, pkgs) {
			return
		}
		for _, f := range pass.Pkg.Files {
			walkParents(f, func(n ast.Node, parents []ast.Node) {
				send, ok := n.(*ast.SendStmt)
				if !ok || nonBlockingSelectCase(send, parents) {
					return
				}
				pass.Reportf(send.Arrow, "blocking channel send on a request path; use select with default (drop, count it) or annotate %s blockingsend <reason>", IgnorePrefix)
			})
		}
	}
	return a
}

// nonBlockingSelectCase reports whether the send is the comm
// statement of a case in a select that also has a default clause.
// The parent chain of such a send is ... → SelectStmt → BlockStmt →
// CommClause → SendStmt.
func nonBlockingSelectCase(send *ast.SendStmt, parents []ast.Node) bool {
	if len(parents) < 3 {
		return false
	}
	clause, ok := parents[len(parents)-1].(*ast.CommClause)
	if !ok || clause.Comm != ast.Stmt(send) {
		return false
	}
	sel, ok := parents[len(parents)-3].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
