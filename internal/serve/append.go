package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"oreo"
)

// DefaultCompactThreshold triggers an automatic delta fold when a
// table's delta segment reaches this many rows; see
// CoreConfig.CompactThreshold. Sized so the always-scanned delta stays
// a small fraction of typical table sizes while folds stay infrequent
// enough to amortize the repartitioning rewrite.
const DefaultCompactThreshold = 8192

// Append lands decoded wire rows in the named table's delta segment:
// the leader-side live write path. Rows are JSON objects mapping every
// schema column to a value (numbers decoded with json.Number so int64
// precision survives the wire); missing or extra columns and
// mistyped cells are client errors that land nothing. The call returns
// after the consumer has made the rows visible — a client holding the
// response sees its rows in every subsequent query, on the reported
// epoch. Appends never feed layout decisions directly; the rows sit in
// the unpartitioned delta (scanned by every query) until a compaction
// folds them into the base.
func (c *Core) Append(ctx context.Context, table string, rows []map[string]any) (AppendResponse, error) {
	if err := ctx.Err(); err != nil {
		return AppendResponse{}, errCanceled(err)
	}
	sh, err := c.writeShard(table)
	if err != nil {
		return AppendResponse{}, err
	}
	ds, derr := buildAppendRows(sh.ds.Schema(), rows)
	if derr != nil {
		return AppendResponse{}, errInvalid("%s", derr)
	}
	return c.appendDataset(sh, ds)
}

// AppendDataset is Append for callers that already hold a typed row
// batch — warm-start delta restoration (cmd/oreoserve) and embedding
// processes. The batch must have been built over the table's exact
// schema instance (pointer identity), the same contract the table
// builder enforces.
func (c *Core) AppendDataset(table string, rows *oreo.Dataset) (AppendResponse, error) {
	sh, err := c.writeShard(table)
	if err != nil {
		return AppendResponse{}, err
	}
	if rows == nil || rows.NumRows() == 0 {
		return AppendResponse{}, errInvalid("append has no rows")
	}
	if rows.Schema() != sh.ds.Schema() {
		return AppendResponse{}, errInvalid("append batch for %q was built over a different schema instance", table)
	}
	return c.appendDataset(sh, rows)
}

// Compact folds the named table's delta segment into its base layout
// on demand (auto-compaction covers the steady state; this is the
// operational lever and the shutdown hook). Folding an empty delta is
// a no-op that reports the current epoch — safe to call in a settle
// loop.
func (c *Core) Compact(ctx context.Context, table string) (CompactResponse, error) {
	if err := ctx.Err(); err != nil {
		return CompactResponse{}, errCanceled(err)
	}
	sh, err := c.writeShard(table)
	if err != nil {
		return CompactResponse{}, err
	}
	ack, serr := sh.send(shardEvent{kind: evCompact})
	if serr != nil {
		return CompactResponse{}, serr
	}
	if ack.err != nil {
		return CompactResponse{}, errInternal("compacting %q: %s", table, ack.err)
	}
	return CompactResponse{Table: table, Epoch: ack.epoch, Folded: ack.folded, DeltaRows: ack.deltaRows}, nil
}

// writeShard resolves the target of a write-path request: the table
// must exist and this core must own its decision path (appends and
// compactions belong on the leader; followers converge through the
// replicated stream, never through local writes).
func (c *Core) writeShard(table string) (*shard, *Error) {
	sh, ok := c.shards[table]
	if !ok {
		return nil, errNotFound("unknown table %q", table)
	}
	if sh.replica {
		return nil, errInvalid("table %q is a replica; writes belong on the leader", table)
	}
	return sh, nil
}

// appendDataset runs the shared append tail: hand the batch to the
// shard's event consumer and shape the acknowledgment. An ack error is
// an auto-compaction failure after the rows already landed — reported
// as an internal error, with the rows durable in the delta.
func (c *Core) appendDataset(sh *shard, rows *oreo.Dataset) (AppendResponse, error) {
	ack, serr := sh.send(shardEvent{kind: evAppend, rows: rows})
	if serr != nil {
		return AppendResponse{}, serr
	}
	if ack.err != nil {
		return AppendResponse{}, errInternal("auto-compacting %q after append: %s", sh.table, ack.err)
	}
	return AppendResponse{Table: sh.table, Epoch: ack.epoch, Appended: rows.NumRows(), DeltaRows: ack.deltaRows}, nil
}

// buildAppendRows converts decoded wire rows into a typed dataset over
// the table's schema. Every row must supply exactly the schema's
// columns; every violation names the row and column, so a client can
// fix its payload without guessing.
func buildAppendRows(schema *oreo.Schema, rows []map[string]any) (*oreo.Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("append has no rows")
	}
	b := oreo.NewDatasetBuilder(schema, len(rows))
	vals := make([]oreo.Value, schema.NumCols())
	for i, row := range rows {
		if len(row) > schema.NumCols() {
			keys := make([]string, 0, len(row))
			for k := range row {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, ok := schema.Index(k); !ok {
					return nil, fmt.Errorf("row %d: table has no column %q", i, k)
				}
			}
		}
		for c := 0; c < schema.NumCols(); c++ {
			col := schema.Col(c)
			raw, ok := row[col.Name]
			if !ok {
				return nil, fmt.Errorf("row %d: missing column %q", i, col.Name)
			}
			v, err := decodeCell(raw, col.Type)
			if err != nil {
				return nil, fmt.Errorf("row %d, column %q: %w", i, col.Name, err)
			}
			vals[c] = v
		}
		b.AppendRow(vals...)
	}
	return b.Build(), nil
}

// decodeCell converts one decoded JSON value to a typed cell. Integer
// columns insist on integral numbers (a fractional value is a type
// error, not a truncation); numbers arriving as json.Number keep full
// int64 precision. JSON cannot carry NaN or ±Inf, so float cells are
// always finite on this path — non-finite values travel through the
// replicated stream's bit-pattern framing instead.
func decodeCell(raw any, t oreo.ColType) (oreo.Value, error) {
	switch t {
	case oreo.Int64:
		switch n := raw.(type) {
		case json.Number:
			v, err := strconv.ParseInt(n.String(), 10, 64)
			if err != nil {
				return oreo.Value{}, fmt.Errorf("want an int64, got %v", n)
			}
			return oreo.Int(v), nil
		case float64:
			//oreovet:ignore floatbits Trunc-equality is the exact integrality test for rejecting fractional input to int64 columns; NaN correctly fails it
			if n != math.Trunc(n) || math.Abs(n) > 1<<53 {
				return oreo.Value{}, fmt.Errorf("want an int64, got %v", n)
			}
			return oreo.Int(int64(n)), nil
		case int:
			return oreo.Int(int64(n)), nil
		case int64:
			return oreo.Int(n), nil
		}
	case oreo.Float64:
		switch n := raw.(type) {
		case json.Number:
			v, err := n.Float64()
			if err != nil {
				return oreo.Value{}, fmt.Errorf("want a float64, got %v", n)
			}
			return oreo.Float(v), nil
		case float64:
			return oreo.Float(n), nil
		case int:
			return oreo.Float(float64(n)), nil
		case int64:
			return oreo.Float(float64(n)), nil
		}
	case oreo.String:
		if s, ok := raw.(string); ok {
			return oreo.Str(s), nil
		}
	}
	return oreo.Value{}, fmt.Errorf("want a %v, got %T", t, raw)
}
