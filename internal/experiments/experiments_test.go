package experiments

import (
	"testing"

	"oreo/internal/datagen"
	"oreo/internal/manager"
	"oreo/internal/policy"
)

// tinyScenario keeps integration tests fast while exercising every
// moving part (candidate generation, admission, MTS switching).
func tinyScenario(t *testing.T, dataset string) *Scenario {
	t.Helper()
	s, err := Build(ScenarioConfig{
		Dataset:     dataset,
		Rows:        6000,
		NumQueries:  1500,
		NumSegments: 5,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tinyParams() RunParams {
	p := DefaultParams()
	p.Window = 100
	p.Period = 100
	p.Alpha = 40
	return p
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(ScenarioConfig{Dataset: "nope", Rows: 10, NumQueries: 10, NumSegments: 1}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Build(ScenarioConfig{Dataset: datagen.TPCH, Rows: 0, NumQueries: 10}); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestBuildScenarioShape(t *testing.T) {
	s := tinyScenario(t, datagen.TPCH)
	if s.Data.NumRows() != 6000 {
		t.Errorf("rows = %d", s.Data.NumRows())
	}
	if len(s.Stream.Queries) != 1500 {
		t.Errorf("queries = %d", len(s.Stream.Queries))
	}
	if len(s.Stream.Segments) != 5 {
		t.Errorf("segments = %d", len(s.Stream.Segments))
	}
	if s.Partitions < 4 {
		t.Errorf("partitions = %d", s.Partitions)
	}
	if s.Default == nil || s.Default.Part.NumPartitions != s.Partitions {
		t.Error("default layout missing or mis-sized")
	}
}

func TestDefaultAndSmallScenarios(t *testing.T) {
	d := DefaultScenario(datagen.Telemetry)
	if d.NumQueries != 24000 {
		t.Errorf("telemetry default queries = %d, want 24000 (paper)", d.NumQueries)
	}
	if DefaultScenario(datagen.TPCH).NumQueries != 30000 {
		t.Error("tpch default queries != 30000")
	}
	sm := SmallScenario(datagen.TPCH)
	if sm.Rows >= d.Rows && sm.NumQueries >= d.NumQueries {
		t.Error("small scenario not smaller than default")
	}
}

func TestTimeColumns(t *testing.T) {
	cases := map[string]string{
		datagen.TPCH:      "o_orderdate",
		datagen.TPCDS:     "ss_sold_date",
		datagen.Telemetry: "arrival_time",
		"unknown":         "",
	}
	for ds, want := range cases {
		if got := TimeColumnFor(ds); got != want {
			t.Errorf("TimeColumnFor(%s) = %q, want %q", ds, got, want)
		}
	}
}

func TestGeneratorKinds(t *testing.T) {
	s := tinyScenario(t, datagen.TPCH)
	if s.Generator(GenQdTree).Name() != "qdtree" {
		t.Error("qdtree generator wrong")
	}
	if s.Generator(GenZOrder).Name() != "zorder" {
		t.Error("zorder generator wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown generator kind did not panic")
		}
	}()
	s.Generator("nope")
}

func TestStaticAndPerTemplateLayouts(t *testing.T) {
	s := tinyScenario(t, datagen.TPCH)
	gen := s.Generator(GenQdTree)
	static := s.StaticLayout(gen)
	if static.Part.TotalRows != 6000 {
		t.Error("static layout does not cover the dataset")
	}
	perT := s.PerTemplateLayouts(gen)
	byT := s.Stream.QueriesByTemplate()
	if len(perT) != len(byT) {
		t.Errorf("per-template layouts = %d, templates in stream = %d", len(perT), len(byT))
	}
	// An oracle layout should beat the default on its own template for
	// at least one template (otherwise switching can never pay off).
	improved := false
	for tmpl, l := range perT {
		qs := byT[tmpl]
		if len(qs) > 100 {
			qs = qs[:100]
		}
		if l.AvgCost(qs) < s.Default.AvgCost(qs)-0.01 {
			improved = true
			break
		}
	}
	if !improved {
		t.Error("no per-template layout beats the default on its own template")
	}
}

func TestFig3SmallShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScenario(t, datagen.TPCH)
	rows := Fig3(s, tinyParams())
	if len(rows) != 8 {
		t.Fatalf("Fig3 rows = %d, want 8 (4 policies x 2 generators)", len(rows))
	}
	byKey := make(map[string]Fig3Row)
	for _, r := range rows {
		byKey[string(r.Generator)+"/"+r.Policy] = r
		if r.QueryCost < 0 || r.ReorgCost < 0 || r.TotalHours < 0 {
			t.Errorf("negative costs: %+v", r)
		}
		if r.ReorgCost != float64(r.Switches)*tinyParams().Alpha {
			t.Errorf("reorg cost %g inconsistent with %d switches", r.ReorgCost, r.Switches)
		}
	}
	for _, gen := range []string{"qdtree", "zorder"} {
		static := byKey[gen+"/Static"]
		greedy := byKey[gen+"/Greedy"]
		regret := byKey[gen+"/Regret"]
		if static.Switches != 0 {
			t.Errorf("%s: static switched", gen)
		}
		// Greedy is the most aggressive reorganizer; Regret the most
		// conservative (paper §VI-B).
		if greedy.Switches < regret.Switches {
			t.Errorf("%s: greedy switched less (%d) than regret (%d)", gen, greedy.Switches, regret.Switches)
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScenario(t, datagen.TPCH)
	series := Fig4(s, tinyParams())
	if len(series) != 4 {
		t.Fatalf("Fig4 series = %d", len(series))
	}
	var offline, static Fig4Series
	for _, sr := range series {
		if len(sr.Curve) == 0 {
			t.Errorf("%s: empty curve", sr.Policy)
		}
		for i := 1; i < len(sr.Curve); i++ {
			if sr.Curve[i] < sr.Curve[i-1] {
				t.Fatalf("%s: cumulative curve decreased", sr.Policy)
			}
		}
		switch sr.Policy {
		case "Offline Optimal":
			offline = sr
		case "Static":
			static = sr
		}
	}
	// The full-knowledge oracle must not lose to never-switching.
	if offline.Total > static.Total {
		t.Errorf("Offline Optimal (%.0f) worse than Static (%.0f)", offline.Total, static.Total)
	}
	// Offline switches exactly at template changes.
	if want := s.Stream.NumSwitches(); offline.Switches > want+1 || offline.Switches == 0 {
		t.Errorf("Offline switches = %d, segments-1 = %d", offline.Switches, want)
	}
}

func TestFig5SwitchesDecreaseWithAlpha(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScenario(t, datagen.TPCH)
	rows := Fig5(s, tinyParams(), []float64{10, 80, 300})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Switches < rows[2].Switches {
		t.Errorf("switches did not decrease with alpha: %d@10 vs %d@300",
			rows[0].Switches, rows[2].Switches)
	}
	for _, r := range rows {
		if r.Total != r.QueryCost+r.ReorgCost {
			t.Errorf("total inconsistent: %+v", r)
		}
	}
}

func TestFig6SpaceShrinksWithEpsilon(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScenario(t, datagen.TPCH)
	rows := Fig6(s, tinyParams(), []float64{0.01, 0.4})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].MaxSpace < rows[1].MaxSpace {
		t.Errorf("state space did not shrink with epsilon: %d@0.01 vs %d@0.4",
			rows[0].MaxSpace, rows[1].MaxSpace)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Alpha < 55 || r.Alpha > 105 {
			t.Errorf("alpha(%g) = %.1f out of band", r.FileMB, r.Alpha)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScenario(t, datagen.TPCH)
	rows := Table2(s, tinyParams())
	if len(rows) != 10 {
		t.Fatalf("Table2 rows = %d, want 10 (4 gamma + 3 sampling + 3 delay)", len(rows))
	}
	groups := map[string]int{}
	defaults := 0
	for _, r := range rows {
		groups[r.Group]++
		if r.Default {
			defaults++
		}
		if r.QueryCost < 0 || r.ReorgCost < 0 {
			t.Errorf("negative costs: %+v", r)
		}
	}
	if groups["gamma"] != 4 || groups["sampling"] != 3 || groups["delay"] != 3 {
		t.Errorf("groups = %v", groups)
	}
	if defaults != 3 {
		t.Errorf("default rows = %d, want 3 (one per group)", defaults)
	}
}

func TestTable2DelayOnlyAffectsQueryCost(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScenario(t, datagen.TPCH)
	rows := Table2(s, tinyParams())
	var d0, d80 Table2Row
	for _, r := range rows {
		if r.Group == "delay" {
			switch r.Variant {
			case "Δ=0":
				d0 = r
			case "Δ=80":
				d80 = r
			}
		}
	}
	// §VI-D5: the delay does not change the reorganization cost, only
	// the query cost (served longer on the outdated layout).
	if d0.ReorgCost != d80.ReorgCost {
		t.Errorf("delay changed reorg cost: %g vs %g", d0.ReorgCost, d80.ReorgCost)
	}
	if d80.QueryCost < d0.QueryCost {
		t.Errorf("delay decreased query cost: %g vs %g", d80.QueryCost, d0.QueryCost)
	}
}

func TestRunParamsPlumbing(t *testing.T) {
	p := DefaultParams()
	if p.Alpha != 80 || p.Gamma != 1 || p.Epsilon != 0.08 || p.Window != 200 {
		t.Errorf("paper defaults wrong: %+v", p)
	}
	sc := p.simConfig()
	if sc.Alpha != 80 || sc.Delay != 0 {
		t.Errorf("simConfig = %+v", sc)
	}
	fc := p.feedConfig(32)
	if fc.Partitions != 32 || fc.WindowSize != 200 || fc.Source != manager.SourceWindow {
		t.Errorf("feedConfig = %+v", fc)
	}
}

func TestPoliciesShareCandidateStream(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// Greedy and OREO constructed with the same seed must see identical
	// candidate sequences; we verify indirectly: two OREO runs with the
	// same seed produce identical results.
	s := tinyScenario(t, datagen.TPCH)
	p := tinyParams()
	gen := s.Generator(GenQdTree)
	r1 := s.Run(s.NewOREO(gen, p), p)
	r2 := s.Run(s.NewOREO(s.Generator(GenQdTree), p), p)
	if r1.QueryCost != r2.QueryCost || r1.Switches != r2.Switches {
		t.Errorf("identical seeds diverged: %+v vs %+v", r1, r2)
	}
}

func TestStaticPolicyViaScenario(t *testing.T) {
	s := tinyScenario(t, datagen.Telemetry)
	p := tinyParams()
	res := s.Run(policy.NewStatic(s.Default), p)
	if res.Switches != 0 {
		t.Error("static switched")
	}
	if res.QueryCost <= 0 {
		t.Error("no query cost accumulated")
	}
}
