package layout

import (
	"math/rand"
	"testing"

	"oreo/internal/query"
)

func TestBottomUpPartitionValidity(t *testing.T) {
	d := testDataset(t, 800, 30)
	qs := qdWorkload(60, 31)
	l := NewBottomUpGenerator().Generate(d, qs, 8)
	if l.Part.NumPartitions > 8 {
		t.Fatalf("partitions = %d, cap 8", l.Part.NumPartitions)
	}
	counts := make([]int, l.Part.NumPartitions)
	for _, pid := range l.Part.Assign {
		counts[pid]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 800 {
		t.Fatalf("rows lost: %d", total)
	}
}

func TestBottomUpPerfectSkippingForFeatures(t *testing.T) {
	// With few distinct feature vectors and enough partitions, a feature
	// query matches either all or none of each partition — the defining
	// property of fine-grained blocking.
	d := testDataset(t, 1000, 32)
	feat := query.Query{ID: 0, Preds: []query.Predicate{query.StrEq("cat", "a")}}
	qs := make([]query.Query, 40)
	for i := range qs {
		qs[i] = feat
		qs[i].ID = i
	}
	l := NewBottomUpGenerator().Generate(d, qs, 4)
	for pid, m := range l.Part.Meta {
		if m.NumRows == 0 {
			continue
		}
		matches, total := 0, 0
		for r, p := range l.Part.Assign {
			if p != pid {
				continue
			}
			total++
			if feat.MatchRow(d, r) {
				matches++
			}
		}
		if matches != 0 && matches != total {
			t.Errorf("partition %d mixes matching (%d) and non-matching (%d) rows for the feature",
				pid, matches, total-matches)
		}
	}
}

func TestBottomUpBeatsTimeSortOnFeatureWorkload(t *testing.T) {
	d := testDataset(t, 2000, 33)
	rng := rand.New(rand.NewSource(34))
	qs := make([]query.Query, 60)
	for i := range qs {
		qs[i] = query.Query{ID: i, Preds: []query.Predicate{
			query.StrEq("cat", []string{"a", "b", "c", "d"}[rng.Intn(4)])}}
	}
	bu := NewBottomUpGenerator().Generate(d, qs, 8)
	ts := NewSortGenerator("ts").Generate(d, nil, 8)
	if bc, tc := bu.AvgCost(qs), ts.AvgCost(qs); bc >= tc {
		t.Errorf("bottom-up cost %g not better than time sort %g", bc, tc)
	}
}

func TestBottomUpEmptyWorkload(t *testing.T) {
	d := testDataset(t, 100, 35)
	l := NewBottomUpGenerator().Generate(d, nil, 4)
	// No features: all rows share the empty vector -> one partition.
	if l.Part.NumPartitions != 1 {
		t.Errorf("partitions = %d, want 1", l.Part.NumPartitions)
	}
}

func TestBottomUpSkippingSound(t *testing.T) {
	d := testDataset(t, 500, 36)
	qs := qdWorkload(30, 37)
	l := NewBottomUpGenerator().Generate(d, qs, 6)
	for _, q := range qs[:8] {
		for r := 0; r < d.NumRows(); r++ {
			if q.MatchRow(d, r) && !q.MayMatch(d.Schema(), l.Part.Meta[l.Part.Assign[r]]) {
				t.Fatalf("partition containing a match skipped for %v", q)
			}
		}
	}
}

func TestTopFeaturesFrequencyOrder(t *testing.T) {
	pa := query.StrEq("cat", "a")
	pb := query.StrEq("cat", "b")
	qs := []query.Query{
		{Preds: []query.Predicate{pa}},
		{Preds: []query.Predicate{pa}},
		{Preds: []query.Predicate{pb}},
	}
	feats := topFeatures(qs, 10)
	if len(feats) != 2 || feats[0].count != 2 || feats[0].key != pa.String() {
		t.Errorf("topFeatures = %+v", feats)
	}
	if got := topFeatures(qs, 1); len(got) != 1 {
		t.Errorf("max not honored: %d", len(got))
	}
}

func TestRoundRobin(t *testing.T) {
	d := testDataset(t, 100, 38)
	l := NewRoundRobinGenerator().Generate(d, nil, 4)
	for r, pid := range l.Part.Assign {
		if pid != r%4 {
			t.Fatalf("row %d -> %d, want %d", r, pid, r%4)
		}
	}
	// Round-robin spreads every ts everywhere: range queries scan all.
	q := query.Query{Preds: []query.Predicate{query.IntRange("ts", 0, 9)}}
	if got := l.Cost(q); got != 1 {
		t.Errorf("round-robin range cost = %g, want 1 (no skipping possible)", got)
	}
}

func TestHashEqualitySkips(t *testing.T) {
	d := testDataset(t, 400, 39)
	l := NewHashGenerator("cat").Generate(d, nil, 4)
	q := query.Query{Preds: []query.Predicate{query.StrEq("cat", "a")}}
	// All "a" rows hash to one partition; the others can be skipped.
	if got := l.Cost(q); got >= 1 {
		t.Errorf("hash equality cost = %g, want < 1", got)
	}
	// Range queries on other columns cannot skip.
	q2 := query.Query{Preds: []query.Predicate{query.IntRange("ts", 0, 39)}}
	if got := l.Cost(q2); got != 1 {
		t.Errorf("hash range cost = %g, want 1", got)
	}
}

func TestHashIntAndFloatColumns(t *testing.T) {
	d := testDataset(t, 300, 40)
	for _, col := range []string{"ts", "amount"} {
		l := NewHashGenerator(col).Generate(d, nil, 5)
		if l.Part.NumPartitions != 5 || l.Part.TotalRows != 300 {
			t.Errorf("hash(%s) partitioning malformed", col)
		}
	}
}

func TestHashValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty column accepted")
			}
		}()
		NewHashGenerator("")
	}()
	d := testDataset(t, 10, 41)
	defer func() {
		if recover() == nil {
			t.Error("unknown column accepted")
		}
	}()
	NewHashGenerator("zzz").Generate(d, nil, 2)
}

func TestGeneratorNames(t *testing.T) {
	names := map[string]string{
		NewBottomUpGenerator().Name():   "bottomup",
		NewRoundRobinGenerator().Name(): "roundrobin",
		NewHashGenerator("ts").Name():   "hash",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("name %q, want %q", got, want)
		}
	}
}

// All generators must satisfy the Generator contract on the same
// inputs: full row coverage, at most k partitions, sound skipping.
func TestAllGeneratorsContract(t *testing.T) {
	d := testDataset(t, 600, 42)
	qs := qdWorkload(40, 43)
	gens := []Generator{
		NewSortGenerator("ts"),
		NewZOrderGenerator(2, "ts"),
		NewQdTreeGenerator(),
		NewBottomUpGenerator(),
		NewRoundRobinGenerator(),
		NewHashGenerator("cat"),
	}
	for _, g := range gens {
		l := g.Generate(d, qs, 8)
		if l.Part.TotalRows != 600 {
			t.Errorf("%s: covers %d rows", g.Name(), l.Part.TotalRows)
		}
		if l.Part.NumPartitions > 8 && g.Name() != "sort" {
			t.Errorf("%s: %d partitions for k=8", g.Name(), l.Part.NumPartitions)
		}
		q := qs[0]
		for r := 0; r < d.NumRows(); r++ {
			if q.MatchRow(d, r) && !q.MayMatch(d.Schema(), l.Part.Meta[l.Part.Assign[r]]) {
				t.Errorf("%s: unsound skipping", g.Name())
				break
			}
		}
		if c := l.Cost(q); c < 0 || c > 1 {
			t.Errorf("%s: cost %g out of range", g.Name(), c)
		}
	}
}
