package cluster

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is one scraped time series: a metric name, its label set, and
// the sampled value.
type Series struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is one parsed /metrics payload. It is the controller's view
// of a fleet member: every signal the control loop reads — request
// rates, latency quantiles, replication lag — is derived from pairs of
// these, because the interesting quantities are rates and deltas, not
// instantaneous counter values.
type Scrape struct {
	// series maps metric name to its samples, in payload order.
	series map[string][]Series
}

// ParseMetrics parses a Prometheus text-format payload (the subset the
// internal metrics registry emits: HELP/TYPE comments, counter and
// gauge samples, histogram _bucket/_sum/_count expansions). Unknown
// lines fail loudly — the controller must not steer on a half-read
// scrape.
func ParseMetrics(r io.Reader) (*Scrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	out := &Scrape{series: make(map[string][]Series)}
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("cluster: metrics line %d: %w", line, err)
		}
		out.series[s.Name] = append(out.series[s.Name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: reading metrics: %w", err)
	}
	return out, nil
}

// parseSample parses one `name{k="v",...} value` or `name value` line.
func parseSample(text string) (Series, error) {
	s := Series{}
	rest := text
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", text)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, esc := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case c == '\\' && inQuote:
				esc = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", text)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("labels in %q: %w", text, err)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("value in %q: %w", text, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k="v",k2="v2"` with the registry's escaping
// (backslash, quote, newline).
func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("missing = after %q", body[i:])
		}
		key := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		i++
		var val strings.Builder
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("unterminated value for label %q", key)
		}
		i++
		labels[key] = val.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return labels, nil
}

// Value returns the single sample matching name and the given label
// subset (every given pair must match; extra labels on the sample are
// ignored). False when no sample matches; the first match wins when
// several do.
func (s *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	for _, ser := range s.series[name] {
		if labelsMatch(ser.Labels, labels) {
			return ser.Value, true
		}
	}
	return 0, false
}

// Sum returns the sum over every sample of name matching the label
// subset — how a per-endpoint counter family becomes one fleet signal.
func (s *Scrape) Sum(name string, labels map[string]string) float64 {
	total := 0.0
	for _, ser := range s.series[name] {
		if labelsMatch(ser.Labels, labels) {
			total += ser.Value
		}
	}
	return total
}

// Max returns the largest sample of name matching the label subset
// (0 when none match) — how per-table lag gauges become one signal.
func (s *Scrape) Max(name string, labels map[string]string) float64 {
	max := 0.0
	for _, ser := range s.series[name] {
		if labelsMatch(ser.Labels, labels) && ser.Value > max {
			max = ser.Value
		}
	}
	return max
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// HistQuantile estimates quantile q of the histogram family name over
// the interval between prev and s: per-bucket counts are differenced
// (so the estimate reflects recent traffic, not the process's whole
// life), summed across label sets (all endpoints together), and the
// quantile is linearly interpolated inside its bucket — the standard
// histogram_quantile estimate. prev may be nil for an absolute
// reading. Returns false when the interval saw no observations.
func (s *Scrape) HistQuantile(name string, q float64, prev *Scrape) (float64, bool) {
	cur := bucketCounts(s, name)
	if len(cur) == 0 {
		return 0, false
	}
	if prev != nil {
		for le, c := range bucketCounts(prev, name) {
			cur[le] -= c
		}
	}
	les := make([]float64, 0, len(cur))
	for le := range cur {
		les = append(les, le)
	}
	sort.Float64s(les)
	total := cur[math.Inf(1)]
	if total <= 0 {
		return 0, false
	}
	rank := q * total
	lower, below := 0.0, 0.0
	for _, le := range les {
		count := cur[le]
		if count >= rank {
			if math.IsInf(le, 1) {
				// The quantile lands past the last finite bound; report
				// that bound rather than infinity.
				return lower, true
			}
			inBucket := count - below
			if inBucket <= 0 {
				return le, true
			}
			return lower + (le-lower)*(rank-below)/inBucket, true
		}
		below = count
		if !math.IsInf(le, 1) {
			lower = le
		}
	}
	return lower, true
}

// bucketCounts sums name's _bucket samples across label sets, keyed by
// upper bound.
func bucketCounts(s *Scrape, name string) map[float64]float64 {
	out := make(map[float64]float64)
	for _, ser := range s.series[name+"_bucket"] {
		leStr, ok := ser.Labels["le"]
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				continue
			}
		}
		out[le] += ser.Value
	}
	return out
}
