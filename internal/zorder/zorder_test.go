package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsPerDim(t *testing.T) {
	cases := map[int]int{1: 64, 2: 32, 3: 21, 4: 16, 8: 8}
	for d, want := range cases {
		if got := BitsPerDim(d); got != want {
			t.Errorf("BitsPerDim(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestBitsPerDimPanics(t *testing.T) {
	for _, d := range []int{0, -1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BitsPerDim(%d) did not panic", d)
				}
			}()
			BitsPerDim(d)
		}()
	}
}

func TestInterleaveKnown(t *testing.T) {
	// 2D: x=0b1 (bit0 -> position 0), y=0b1 (bit0 -> position 1).
	if got := Interleave([]uint64{1, 1}); got != 0b11 {
		t.Errorf("Interleave(1,1) = %b, want 11", got)
	}
	// x=0b10, y=0b01 -> bits: x bit1 at pos 2, y bit0 at pos 1 -> 0b110.
	if got := Interleave([]uint64{2, 1}); got != 0b110 {
		t.Errorf("Interleave(2,1) = %b, want 110", got)
	}
}

func TestInterleaveMonotoneInOneDim(t *testing.T) {
	// With the other dimension fixed, codes grow with the rank.
	prev := Interleave([]uint64{0, 5})
	for x := uint64(1); x < 100; x++ {
		c := Interleave([]uint64{x, 5})
		if c <= prev && x > 5 {
			// Not strictly monotone globally (bit interleaving), but the
			// codes within the same y-bucket must be distinct.
			if c == prev {
				t.Fatalf("duplicate code for x=%d", x)
			}
		}
		prev = c
	}
}

// Property: Deinterleave inverts Interleave for 2 and 3 dimensions.
func TestInterleaveRoundTrip(t *testing.T) {
	f2 := func(a, b uint32) bool {
		ranks := []uint64{uint64(a), uint64(b)}
		got := Deinterleave(Interleave(ranks), 2)
		return got[0] == ranks[0] && got[1] == ranks[1]
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Errorf("2D round trip: %v", err)
	}
	f3 := func(a, b, c uint32) bool {
		const mask = (1 << 21) - 1
		ranks := []uint64{uint64(a) & mask, uint64(b) & mask, uint64(c) & mask}
		got := Deinterleave(Interleave(ranks), 3)
		return got[0] == ranks[0] && got[1] == ranks[1] && got[2] == ranks[2]
	}
	if err := quick.Check(f3, nil); err != nil {
		t.Errorf("3D round trip: %v", err)
	}
}

func TestIntBucketizerRanks(t *testing.T) {
	sample := make([]int64, 1000)
	for i := range sample {
		sample[i] = int64(i)
	}
	b := NewIntBucketizer(sample, 3) // 8 buckets
	if r0, r999 := b.RankInt(0), b.RankInt(999); r0 >= r999 {
		t.Errorf("ranks not increasing: rank(0)=%d rank(999)=%d", r0, r999)
	}
	if got := b.RankInt(-100); got != 0 {
		t.Errorf("below-min rank = %d, want 0", got)
	}
	if got := b.RankInt(10_000); got > 8 {
		t.Errorf("above-max rank = %d, want <= 8", got)
	}
}

// Property: bucket ranks are monotone in the value.
func TestBucketizerMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sample := make([]int64, 500)
	for i := range sample {
		sample[i] = rng.Int63n(10_000)
	}
	b := NewIntBucketizer(sample, 4)
	f := func(x, y int64) bool {
		if x > y {
			x, y = y, x
		}
		return b.RankInt(x) <= b.RankInt(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatBucketizer(t *testing.T) {
	sample := []float64{0.1, 0.2, 0.5, 0.9, 1.5, 2.5, 3.5, 9.9}
	b := NewFloatBucketizer(sample, 2)
	if b.RankFloat(0.0) > b.RankFloat(100.0) {
		t.Error("float ranks not monotone at extremes")
	}
}

func TestStringBucketizer(t *testing.T) {
	b := NewStringBucketizer([]string{"a", "b", "c", "d", "e", "f", "g", "h"}, 2)
	if b.RankString("a") > b.RankString("z") {
		t.Error("string ranks not monotone")
	}
}

func TestBucketizerConstantColumn(t *testing.T) {
	// A constant column collapses to zero boundaries: everything rank 0
	// or 1, but no panic and monotone.
	b := NewIntBucketizer([]int64{7, 7, 7, 7}, 4)
	if b.RankInt(7) != b.RankInt(7) {
		t.Error("unstable rank")
	}
	if b.RankInt(6) > b.RankInt(8) {
		t.Error("constant-column ranks not monotone")
	}
}

func TestBucketizerEmptySample(t *testing.T) {
	b := NewIntBucketizer(nil, 4)
	if got := b.RankInt(5); got != 0 {
		t.Errorf("empty-sample rank = %d, want 0", got)
	}
}
