// Custom layout generator: OREO is agnostic to the layout generation
// mechanism (the paper's LAYOUT MANAGER only needs generate_layout and
// eval_skipped). This example plugs a user-defined Generator into the
// optimizer: a single-column range-clustering generator that sorts by
// whichever column the recent workload filters on most. It is cruder
// than a Qd-tree, but the D-UMTS machinery — admission by ε-distance,
// counters, phases, worst-case bound — works unchanged on top of it.
//
// Run with:
//
//	go run ./examples/customgenerator
package main

import (
	"fmt"
	"math/rand"

	"oreo"
)

// hotColumnGenerator implements oreo.Generator: it finds the column the
// workload references most often and produces a layout sorted by it.
type hotColumnGenerator struct {
	fallback string
}

func (g *hotColumnGenerator) Name() string { return "hot-column" }

func (g *hotColumnGenerator) Generate(d *oreo.Dataset, qs []oreo.Query, k int) *oreo.Layout {
	counts := make(map[string]int)
	for _, q := range qs {
		for _, p := range q.Preds {
			counts[p.Col]++
		}
	}
	hot, best := g.fallback, 0
	for col, n := range counts {
		if _, ok := d.Schema().Index(col); !ok {
			continue
		}
		if n > best || (n == best && col < hot) {
			hot, best = col, n
		}
	}
	// Delegate the mechanics to the built-in sort generator; the value
	// added here is the workload-driven column choice.
	return oreo.NewSortGenerator(hot).Generate(d, qs, k)
}

func main() {
	schema := oreo.NewSchema(
		oreo.Column{Name: "ts", Type: oreo.Int64},
		oreo.Column{Name: "tenant", Type: oreo.String},
		oreo.Column{Name: "cpu", Type: oreo.Float64},
	)
	const rows = 15000
	rng := rand.New(rand.NewSource(8))
	b := oreo.NewDatasetBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(
			oreo.Int(int64(i)),
			oreo.Str(fmt.Sprintf("tenant-%02d", rng.Intn(20))),
			oreo.Float(rng.Float64()*100),
		)
	}
	ds := b.Build()

	opt, err := oreo.New(ds, oreo.Config{
		Alpha:       30,
		Partitions:  20,
		WindowSize:  100,
		Generator:   &hotColumnGenerator{fallback: "ts"},
		InitialSort: []string{"ts"},
		Seed:        9,
	})
	if err != nil {
		panic(err)
	}

	epochs := []struct {
		name string
		make func(id int) oreo.Query
	}{
		{"tenant filters", func(id int) oreo.Query {
			return oreo.Query{ID: id, Preds: []oreo.Predicate{
				oreo.StrEq("tenant", fmt.Sprintf("tenant-%02d", rng.Intn(20)))}}
		}},
		{"cpu hotspots", func(id int) oreo.Query {
			lo := rng.Float64() * 90
			return oreo.Query{ID: id, Preds: []oreo.Predicate{
				oreo.FloatRange("cpu", lo, lo+5)}}
		}},
		{"time windows", func(id int) oreo.Query {
			lo := rng.Int63n(rows - 500)
			return oreo.Query{ID: id, Preds: []oreo.Predicate{
				oreo.IntRange("ts", lo, lo+500)}}
		}},
	}

	id := 0
	for _, e := range epochs {
		var cost float64
		for i := 0; i < 800; i++ {
			dec := opt.ProcessQuery(e.make(id))
			id++
			cost += dec.Cost
			if dec.Reorganized {
				fmt.Printf("  [%s] switched to %s\n", e.name, dec.Layout.Name)
			}
		}
		fmt.Printf("epoch %-16s avg fraction scanned %.3f\n", e.name, cost/800)
	}

	st := opt.Stats()
	fmt.Printf("\ntotal: %d reorgs over %d queries, |Smax|=%d, worst-case bound %.2fx offline\n",
		st.Reorganizations, st.Queries, st.MaxStates, st.CompetitiveBound)
}
