package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"oreo/internal/metrics"
)

// fakeMember is one scriptable fleet member: /healthz and /metrics
// payloads are settable, promotion requests are recorded and answered.
type fakeMember struct {
	mu       sync.Mutex
	health   string
	metrics  string
	healthy  bool
	promoted bool
	srv      *httptest.Server
}

func newFakeMember(t *testing.T, health string) *fakeMember {
	t.Helper()
	m := &fakeMember{health: health, healthy: true}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if !m.healthy {
			http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, m.health)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		defer m.mu.Unlock()
		fmt.Fprint(w, m.metrics)
	})
	mux.HandleFunc("POST /v2/cluster/promote", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		m.promoted = true
		m.health = `{"status":"ok","role":"leader","generation":2,"layout_epochs":{"orders":9}}`
		h := m.health
		m.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, h)
	})
	m.srv = httptest.NewServer(mux)
	t.Cleanup(m.srv.Close)
	return m
}

func (m *fakeMember) set(health, metricsText string, healthy bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if health != "" {
		m.health = health
	}
	m.metrics = metricsText
	m.healthy = healthy
}

func (m *fakeMember) wasPromoted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promoted
}

// fakeActuator records Ensure calls and serves a scripted follower
// list, so controller decisions are observable without processes.
type fakeActuator struct {
	mu        sync.Mutex
	followers []string
	targets   []int
	released  []string
	retargets []string
}

func (a *fakeActuator) Ensure(target int, leader string) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.targets = append(a.targets, target)
	return len(a.followers), nil
}

func (a *fakeActuator) Followers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.followers...)
}

func (a *fakeActuator) Release(url string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.released = append(a.released, url)
	for i, f := range a.followers {
		if f == url {
			a.followers = append(a.followers[:i], a.followers[i+1:]...)
			return true
		}
	}
	return false
}

func (a *fakeActuator) Retarget(leader string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.retargets = append(a.retargets, leader)
	return len(a.followers)
}

func (a *fakeActuator) lastTarget() (int, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.targets) == 0 {
		return 0, false
	}
	return a.targets[len(a.targets)-1], true
}

const leaderHealth = `{"status":"ok","role":"leader","generation":1,"layout_epochs":{"orders":5}}`

// metricsAt renders a minimal /metrics payload: a request counter and
// a two-bucket latency histogram with `fast` requests under 1ms and
// `slow` between 1ms and 1s, plus a replication-lag gauge.
func metricsAt(fast, slow int, lag float64) string {
	total := fast + slow
	return fmt.Sprintf(`oreo_http_requests_total{code="200",endpoint="query"} %d
oreo_http_request_duration_seconds_bucket{endpoint="query",le="0.001"} %d
oreo_http_request_duration_seconds_bucket{endpoint="query",le="1"} %d
oreo_http_request_duration_seconds_bucket{endpoint="query",le="+Inf"} %d
oreo_replication_lag_epochs{table="orders"} %g
`, total, fast, total, total, lag)
}

func newTestController(t *testing.T, leaderURL string, act Actuator, reg *metrics.Registry) *Controller {
	t.Helper()
	ctl, err := NewController(ControllerConfig{
		Leader:        leaderURL,
		Policy:        ThresholdPolicy{MaxP99: 5 * time.Millisecond, MaxLagEpochs: 50},
		Actuator:      act,
		FailThreshold: 2,
		Logf:          t.Logf,
		Reg:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

// scrapeRegistry renders a registry through its own handler and parses
// it back with the controller's scrape parser.
func scrapeRegistry(t *testing.T, reg *metrics.Registry) *Scrape {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	sc, err := ParseMetrics(rec.Body)
	if err != nil {
		t.Fatalf("controller registry emits unparseable text: %v", err)
	}
	return sc
}

// TestControllerScalesOnSignals drives Tick directly against a fake
// fleet: moderate lag holds the fleet (anti-flap band), a latency
// regression between two scrapes raises the target, and replication
// lag over the ceiling raises it regardless of latency.
func TestControllerScalesOnSignals(t *testing.T) {
	leader := newFakeMember(t, leaderHealth)
	follower := newFakeMember(t, `{"status":"ok","role":"follower","layout_epochs":{"orders":5}}`)
	act := &fakeActuator{followers: []string{follower.srv.URL}}
	ctl := newTestController(t, leader.srv.URL, act, nil)
	ctx := context.Background()

	// Baseline scrape: no history yet, so QPS and p99 are zero, but the
	// follower's lag of 30 sits inside the hold band (over 0.5×50, under
	// 50) — the fleet must hold, not flap down.
	leader.set("", metricsAt(100, 0, 0), true)
	follower.set("", metricsAt(100, 0, 30), true)
	ctl.Tick(ctx)
	if tgt, ok := act.lastTarget(); !ok || tgt != 1 {
		t.Fatalf("baseline target = %d,%v; want hold at 1", tgt, ok)
	}

	// Slow interval: 200 new requests on the leader, almost all over
	// 1ms — the interval p99 lands far above the 5ms ceiling.
	leader.set("", metricsAt(110, 190, 0), true)
	ctl.Tick(ctx)
	if tgt, _ := act.lastTarget(); tgt != 2 {
		t.Fatalf("latency-pressure target = %d, want 2", tgt)
	}
	if sig := ctl.Signals(); sig.P99 < 5*time.Millisecond || sig.QPS <= 0 {
		t.Fatalf("signals after slow interval = %+v; want p99 over ceiling and positive QPS", sig)
	}

	// Lag pressure: quiet interval, but a follower now lags 80 epochs —
	// over the ceiling, scale up regardless of latency.
	follower.set("", metricsAt(100, 0, 80), true)
	ctl.Tick(ctx)
	if tgt, _ := act.lastTarget(); tgt != 2 {
		t.Fatalf("lag-pressure target = %d, want 2", tgt)
	}
	if sig := ctl.Signals(); sig.MaxLagEpochs != 80 {
		t.Fatalf("MaxLagEpochs = %v, want 80", sig.MaxLagEpochs)
	}
}

// TestControllerPromotesOnLeaderFailure kills the fake leader and
// asserts the full failover path: FailThreshold consecutive failures,
// promotion of the most caught-up healthy follower, actuator release,
// leader swap, and instrumentation.
func TestControllerPromotesOnLeaderFailure(t *testing.T) {
	leader := newFakeMember(t, leaderHealth)
	behind := newFakeMember(t, `{"status":"ok","role":"follower","layout_epochs":{"orders":3}}`)
	ahead := newFakeMember(t, `{"status":"ok","role":"follower","layout_epochs":{"orders":8}}`)
	act := &fakeActuator{followers: []string{behind.srv.URL, ahead.srv.URL}}
	reg := metrics.NewRegistry()
	ctl := newTestController(t, leader.srv.URL, act, reg)
	ctx := context.Background()

	leader.set("", metricsAt(10, 0, 0), false) // leader down from the start
	ctl.Tick(ctx)
	if ahead.wasPromoted() || behind.wasPromoted() {
		t.Fatal("one failed health poll must not depose a leader")
	}
	ctl.Tick(ctx) // second failure reaches FailThreshold
	if !ahead.wasPromoted() {
		t.Fatal("most caught-up follower was not promoted")
	}
	if behind.wasPromoted() {
		t.Fatal("wrong follower promoted")
	}
	if got := ctl.Leader(); got != ahead.srv.URL {
		t.Fatalf("controller leader = %q, want the promoted follower", got)
	}
	act.mu.Lock()
	released := append([]string(nil), act.released...)
	act.mu.Unlock()
	if len(released) != 1 || released[0] != ahead.srv.URL {
		t.Fatalf("released = %v, want exactly the promoted follower", released)
	}
	// The survivors must be repointed at the new leader — their boot-time
	// upstream is the deposed one, and nothing else ever fixes that.
	act.mu.Lock()
	retargets := append([]string(nil), act.retargets...)
	act.mu.Unlock()
	if len(retargets) != 1 || retargets[0] != ahead.srv.URL {
		t.Fatalf("retargets = %v, want the surviving fleet moved onto the promoted leader once", retargets)
	}

	// The controller's own metrics must tell the story: failures
	// counted, exactly one promotion, and the leader-info series moved
	// to the new URL without leaking the deposed one.
	sc := scrapeRegistry(t, reg)
	if v, ok := sc.Value("oreo_cluster_leader_health_failures_total", nil); !ok || v != 2 {
		t.Fatalf("leader_health_failures_total = %v,%v; want 2", v, ok)
	}
	if v, ok := sc.Value("oreo_cluster_promotions_total", nil); !ok || v != 1 {
		t.Fatalf("promotions_total = %v,%v; want 1", v, ok)
	}
	if v, ok := sc.Value("oreo_cluster_leader_info", map[string]string{"leader": ahead.srv.URL}); !ok || v != 1 {
		t.Fatalf("leader_info for promoted leader = %v,%v; want 1", v, ok)
	}
	if _, ok := sc.Value("oreo_cluster_leader_info", map[string]string{"leader": leader.srv.URL}); ok {
		t.Fatal("deposed leader's info series leaked")
	}

	// After failover the loop steers by the new leader; an idle fleet
	// (no traffic, no lag) scales down.
	ahead.set("", metricsAt(50, 0, 0), true)
	behind.set("", metricsAt(50, 0, 0), true)
	ctl.Tick(ctx)
	if tgt, ok := act.lastTarget(); !ok || tgt != 0 {
		t.Fatalf("post-failover idle target = %d,%v; want scale-down to 0", tgt, ok)
	}
}

// TestControllerPromotionSkipsUnhealthyFollowers pins candidate
// selection: a dead follower is never promoted even if it was ahead,
// and with no candidates at all the controller keeps retrying instead
// of failing over to nothing.
func TestControllerPromotionSkipsUnhealthyFollowers(t *testing.T) {
	leader := newFakeMember(t, leaderHealth)
	dead := newFakeMember(t, `{"status":"ok","role":"follower","layout_epochs":{"orders":100}}`)
	alive := newFakeMember(t, `{"status":"ok","role":"follower","layout_epochs":{"orders":2}}`)
	dead.set("", "", false)
	act := &fakeActuator{followers: []string{dead.srv.URL, alive.srv.URL}}
	ctl := newTestController(t, leader.srv.URL, act, nil)
	ctx := context.Background()

	leader.set("", "", false)
	ctl.Tick(ctx)
	ctl.Tick(ctx)
	if dead.wasPromoted() {
		t.Fatal("promoted a follower that failed its health check")
	}
	if !alive.wasPromoted() {
		t.Fatal("healthy follower was not promoted")
	}

	// No candidates at all: the controller must hold position and
	// retry, not declare a leaderless fleet.
	leader2 := newFakeMember(t, leaderHealth)
	act2 := &fakeActuator{}
	ctl2 := newTestController(t, leader2.srv.URL, act2, nil)
	leader2.set("", "", false)
	ctl2.Tick(ctx)
	ctl2.Tick(ctx)
	ctl2.Tick(ctx)
	if got := ctl2.Leader(); got != leader2.srv.URL {
		t.Fatalf("with no candidates the leader moved to %q", got)
	}
}

// TestProcessActuatorLifecycle exercises the real actuator against a
// trivially spawnable command: spawn toward a target one action per
// call, respect the cool-down and max, release a promoted follower
// without reusing its slot, and retire on scale-down. The command is
// a shell no-op that ignores the appended -addr/-follow flags (they
// land in unused positional parameters).
func TestProcessActuatorLifecycle(t *testing.T) {
	const cooldown = 150 * time.Millisecond
	reg := metrics.NewRegistry()
	a, err := NewProcessActuator(ProcessActuatorConfig{
		Binary:      "/bin/sh",
		BaseArgs:    []string{"-c", "sleep 60", "follower"},
		PortBase:    42000,
		Max:         3,
		Cooldown:    cooldown,
		RetireGrace: 2 * time.Second,
		Logf:        t.Logf,
		Reg:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.StopAll)

	// One action per Ensure: reaching 2 followers takes two calls.
	if n, err := a.Ensure(2, "http://leader"); err != nil || n != 1 {
		t.Fatalf("first Ensure = %d,%v; want 1 (one spawn per call)", n, err)
	}
	// Cool-down: an immediate second call must not act.
	if n, _ := a.Ensure(2, "http://leader"); n != 1 {
		t.Fatalf("Ensure inside cool-down acted (n=%d)", n)
	}
	time.Sleep(cooldown + 50*time.Millisecond)
	if n, err := a.Ensure(2, "http://leader"); err != nil || n != 2 {
		t.Fatalf("second spawn Ensure = %d,%v; want 2", n, err)
	}
	urls := a.Followers()
	if len(urls) != 2 || urls[0] != "http://127.0.0.1:42000" || urls[1] != "http://127.0.0.1:42001" {
		t.Fatalf("followers = %v; want slots 42000, 42001 in order", urls)
	}

	// Target above Max clamps.
	time.Sleep(cooldown + 50*time.Millisecond)
	if n, _ := a.Ensure(10, "http://leader"); n != 3 {
		t.Fatalf("Ensure(10) = %d; want clamp at max 3", n)
	}

	// Release: the promoted follower leaves management but its process
	// keeps running (StopAll still reaps it at cleanup).
	if !a.Release("http://127.0.0.1:42001") {
		t.Fatal("Release did not find the follower")
	}
	if got := a.Followers(); len(got) != 2 {
		t.Fatalf("followers after release = %v", got)
	}

	// Retire: scaling down stops the newest remaining follower.
	time.Sleep(cooldown + 50*time.Millisecond)
	if n, err := a.Ensure(1, "http://leader"); err != nil || n != 1 {
		t.Fatalf("scale-down Ensure = %d,%v; want 1", n, err)
	}

	// The released slot stays occupied: a new spawn must not hand the
	// promoted leader's address to a fresh follower.
	time.Sleep(cooldown + 50*time.Millisecond)
	if n, err := a.Ensure(2, "http://leader"); err != nil || n != 2 {
		t.Fatalf("respawn Ensure = %d,%v; want 2", n, err)
	}
	for _, u := range a.Followers() {
		if u == "http://127.0.0.1:42001" {
			t.Fatalf("spawn reused the released follower's slot: %v", a.Followers())
		}
	}

	// Every action is accounted.
	sc := scrapeRegistry(t, reg)
	if v, _ := sc.Value("oreo_cluster_spawns_total", nil); v != 4 {
		t.Fatalf("spawns_total = %v, want 4", v)
	}
	if v, _ := sc.Value("oreo_cluster_retires_total", nil); v != 1 {
		t.Fatalf("retires_total = %v, want 1", v)
	}
	if v, _ := sc.Value("oreo_cluster_followers", nil); v != 2 {
		t.Fatalf("followers gauge = %v, want 2", v)
	}
}

// TestProcessActuatorRetarget pins the post-promotion convergence path:
// Retarget replaces every managed follower with a fresh process aimed
// at the new leader — immediately, ignoring the cool-down — while the
// released (promoted) follower's process and slot stay untouched.
func TestProcessActuatorRetarget(t *testing.T) {
	const cooldown = 100 * time.Millisecond
	reg := metrics.NewRegistry()
	a, err := NewProcessActuator(ProcessActuatorConfig{
		Binary:      "/bin/sh",
		BaseArgs:    []string{"-c", "sleep 60", "follower"},
		PortBase:    43000,
		Max:         3,
		Cooldown:    cooldown,
		RetireGrace: 2 * time.Second,
		Logf:        t.Logf,
		Reg:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.StopAll)

	if n, err := a.Ensure(2, "http://oldleader"); err != nil || n != 1 {
		t.Fatalf("first Ensure = %d,%v; want 1", n, err)
	}
	time.Sleep(cooldown + 50*time.Millisecond)
	if n, err := a.Ensure(2, "http://oldleader"); err != nil || n != 2 {
		t.Fatalf("second Ensure = %d,%v; want 2", n, err)
	}

	// Promote slot 0's follower out of management, then converge the
	// survivor onto it. No cool-down sleep before Retarget: a stranded
	// follower serves stale data, so convergence must not wait.
	if !a.Release("http://127.0.0.1:43000") {
		t.Fatal("Release did not find the follower")
	}
	if n := a.Retarget("http://127.0.0.1:43000"); n != 1 {
		t.Fatalf("Retarget moved %d follower(s), want 1", n)
	}
	urls := a.Followers()
	if len(urls) != 1 || urls[0] != "http://127.0.0.1:43001" {
		t.Fatalf("followers after retarget = %v; want a fresh process on slot 43001 only (slot 43000 belongs to the promoted leader)", urls)
	}
	sc := scrapeRegistry(t, reg)
	if v, _ := sc.Value("oreo_cluster_retires_total", nil); v != 1 {
		t.Fatalf("retires_total = %v, want 1 (the replaced survivor)", v)
	}
	if v, _ := sc.Value("oreo_cluster_spawns_total", nil); v != 3 {
		t.Fatalf("spawns_total = %v, want 3 (two scale-ups plus the retarget respawn)", v)
	}
}
