package workload

import (
	"math/rand"

	"oreo/internal/datagen"
	"oreo/internal/query"
)

// TelemetryTemplates returns templates mirroring the paper's description
// of the SuperCollider workload: "the most popular predicates include
// range queries on the arrival time of the record, where the time
// interval ranges from a few hours to a few months, as well as filters
// on the name of the collector who has sent the data." The mix below
// covers those two families plus the secondary status/team probes an
// operations table attracts.
func TelemetryTemplates() []Template {
	tMin, tMax := datagen.TelemetryTimeMin, datagen.TelemetryTimeMax
	span := tMax - tMin

	const (
		hour  = int64(3600)
		day   = 24 * int64(3600)
		week  = 7 * 24 * int64(3600)
		month = 30 * 24 * int64(3600)
	)

	window := func(rng *rand.Rand, width int64) (int64, int64) {
		if width >= span {
			return tMin, tMax
		}
		lo := tMin + rng.Int63n(span-width)
		return lo, lo + width
	}

	return []Template{
		{
			// Recent few-hours dashboard probe.
			Name: "time-hours",
			Make: func(rng *rand.Rand) []query.Predicate {
				lo, hi := window(rng, int64(2+rng.Intn(10))*hour)
				return []query.Predicate{query.IntRange("arrival_time", lo, hi)}
			},
		},
		{
			// Day-scale time range.
			Name: "time-days",
			Make: func(rng *rand.Rand) []query.Predicate {
				lo, hi := window(rng, int64(1+rng.Intn(6))*day)
				return []query.Predicate{query.IntRange("arrival_time", lo, hi)}
			},
		},
		{
			// Month-scale range (capacity reviews).
			Name: "time-months",
			Make: func(rng *rand.Rand) []query.Predicate {
				lo, hi := window(rng, int64(1+rng.Intn(3))*month)
				return []query.Predicate{query.IntRange("arrival_time", lo, hi)}
			},
		},
		{
			// Collector-only filter over all time.
			Name: "collector-all-time",
			Make: func(rng *rand.Rand) []query.Predicate {
				c := datagen.TelemetryCollectors[rng.Intn(len(datagen.TelemetryCollectors))]
				return []query.Predicate{query.StrEq("collector", c)}
			},
		},
		{
			// Collector + week window: the paper's canonical combined shape.
			Name: "collector-week",
			Make: func(rng *rand.Rand) []query.Predicate {
				c := datagen.TelemetryCollectors[rng.Intn(len(datagen.TelemetryCollectors))]
				lo, hi := window(rng, int64(1+rng.Intn(2))*week)
				return []query.Predicate{
					query.StrEq("collector", c),
					query.IntRange("arrival_time", lo, hi),
				}
			},
		},
		{
			// Failure triage: non-OK statuses within a day range.
			Name: "failures-day",
			Make: func(rng *rand.Rand) []query.Predicate {
				lo, hi := window(rng, int64(1+rng.Intn(3))*day)
				return []query.Predicate{
					query.StrIn("status", "FAILED", "TIMEOUT"),
					query.IntRange("arrival_time", lo, hi),
				}
			},
		},
		{
			// Team usage report over a month.
			Name: "team-month",
			Make: func(rng *rand.Rand) []query.Predicate {
				t := datagen.TelemetryTeams[rng.Intn(len(datagen.TelemetryTeams))]
				lo, hi := window(rng, month)
				return []query.Predicate{
					query.StrEq("team", t),
					query.IntRange("arrival_time", lo, hi),
				}
			},
		},
		{
			// Slow-jobs probe: long durations in a region.
			Name: "slow-jobs-region",
			Make: func(rng *rand.Rand) []query.Predicate {
				r := datagen.TelemetryRegions[rng.Intn(len(datagen.TelemetryRegions))]
				return []query.Predicate{
					query.StrEq("region", r),
					query.IntGE("duration_ms", int64(300_000+rng.Intn(200_000))),
				}
			},
		},
	}
}

// TemplatesFor returns the template library for a built-in dataset name.
// It returns nil for unknown names.
func TemplatesFor(dataset string) []Template {
	switch dataset {
	case datagen.TPCH:
		return TPCHTemplates()
	case datagen.TPCDS:
		return TPCDSTemplates()
	case datagen.Telemetry:
		return TelemetryTemplates()
	default:
		return nil
	}
}
