package table

import "fmt"

// Delta is the append-only tail of a live table: rows that have arrived
// since the last compaction, kept in one unpartitioned column block
// with incrementally-maintained per-column statistics. A Delta is the
// write-side counterpart of the immutable Dataset — the serving layer
// appends into it off the read path and periodically folds it into the
// partitioned base.
//
// Concurrency model: all mutation (AppendDataset, Reset) must be
// serialized by the owner (the serving layer funnels appends through
// one consumer goroutine per table). Readers never touch the Delta
// itself; they hold a DeltaView taken with View, which is immutable —
// its Dataset exposes the first n rows over the shared backing arrays,
// and appends past n either write beyond every view's length or
// reallocate the backing array entirely, so published views are stable
// either way.
type Delta struct {
	schema *Schema
	ints   [][]int64
	floats [][]float64
	strs   [][]string
	rows   int
	stats  []ColumnStats

	// view caches the last snapshot; invalidated on append, so
	// back-to-back View calls with no intervening writes are free.
	view *DeltaView
}

// DeltaView is an immutable snapshot of a delta segment: the rows as a
// read-only Dataset plus per-column stats covering exactly those rows.
// Views are safe to share across goroutines and remain valid after
// further appends to the originating Delta.
type DeltaView struct {
	// Data holds the snapshot's rows. Never nil; zero rows when the
	// delta was empty at snapshot time.
	Data *Dataset
	// Stats holds one ColumnStats per schema column, in schema order,
	// covering exactly Data's rows. Exact (not an approximation): the
	// delta is append-only, so mins/maxes never need to shrink.
	Stats []ColumnStats
}

// Rows returns the number of rows in the view.
func (v *DeltaView) Rows() int { return v.Data.NumRows() }

// NewDelta returns an empty delta segment over the schema.
func NewDelta(schema *Schema) *Delta {
	d := &Delta{
		schema: schema,
		ints:   make([][]int64, schema.NumCols()),
		floats: make([][]float64, schema.NumCols()),
		strs:   make([][]string, schema.NumCols()),
		stats:  make([]ColumnStats, schema.NumCols()),
	}
	for i := 0; i < schema.NumCols(); i++ {
		d.stats[i] = newColumnStats(schema.Col(i).Type)
	}
	return d
}

// Schema returns the delta's schema.
func (d *Delta) Schema() *Schema { return d.schema }

// Rows returns the number of rows currently in the delta.
func (d *Delta) Rows() int { return d.rows }

// AppendDataset appends every row of src and folds the new cells into
// the incremental stats. The source must have been built over the
// delta's exact schema (pointer identity, like Builder.AppendRows);
// anything else is a programming error upstream of the write path.
func (d *Delta) AppendDataset(src *Dataset) {
	if src.schema != d.schema {
		panic("table: Delta.AppendDataset across different schemas")
	}
	if src.numRows == 0 {
		return
	}
	for c := 0; c < d.schema.NumCols(); c++ {
		switch d.schema.Col(c).Type {
		case Int64:
			for _, v := range src.ints[c] {
				d.stats[c].AddInt(v)
			}
			d.ints[c] = append(d.ints[c], src.ints[c]...)
		case Float64:
			for _, v := range src.floats[c] {
				d.stats[c].AddFloat(v)
			}
			d.floats[c] = append(d.floats[c], src.floats[c]...)
		case String:
			for _, v := range src.strs[c] {
				d.stats[c].AddString(v)
			}
			d.strs[c] = append(d.strs[c], src.strs[c]...)
		}
	}
	d.rows += src.numRows
	d.view = nil
}

// Reset empties the delta after its rows have been folded into the
// base. folded guards against compacting a stale snapshot: it must
// equal the current row count, or Reset panics — a row that arrived
// between snapshot and fold would otherwise be silently dropped.
func (d *Delta) Reset(folded int) {
	if folded != d.rows {
		panic(fmt.Sprintf("table: Delta.Reset(%d) with %d rows — rows appended since the compaction snapshot", folded, d.rows))
	}
	for c := 0; c < d.schema.NumCols(); c++ {
		d.ints[c] = nil
		d.floats[c] = nil
		d.strs[c] = nil
		d.stats[c] = newColumnStats(d.schema.Col(c).Type)
	}
	d.rows = 0
	d.view = nil
}

// View returns an immutable snapshot of the delta's current rows and
// stats. The result is cached until the next append, so repeated calls
// on a quiet delta return the same pointer.
func (d *Delta) View() *DeltaView {
	if d.view != nil {
		return d.view
	}
	ds := &Dataset{
		schema:  d.schema,
		numRows: d.rows,
		ints:    make([][]int64, len(d.ints)),
		floats:  make([][]float64, len(d.floats)),
		strs:    make([][]string, len(d.strs)),
	}
	stats := make([]ColumnStats, len(d.stats))
	for c := 0; c < d.schema.NumCols(); c++ {
		switch d.schema.Col(c).Type {
		case Int64:
			ds.ints[c] = d.ints[c][:d.rows:d.rows]
		case Float64:
			ds.floats[c] = d.floats[c][:d.rows:d.rows]
		case String:
			ds.strs[c] = d.strs[c][:d.rows:d.rows]
		}
		stats[c] = d.stats[c].Clone()
	}
	d.view = &DeltaView{Data: ds, Stats: stats}
	return d.view
}

// Concat returns a new dataset holding base's rows followed by tail's,
// sharing base's schema. Compaction grows a table's base this way; both
// inputs are left untouched. The tail must share the base's schema
// pointer, the same contract as Builder.AppendRows.
func Concat(base, tail *Dataset) *Dataset {
	if tail.schema != base.schema {
		panic("table: Concat across different schemas")
	}
	b := NewBuilder(base.schema, base.numRows+tail.numRows)
	all := make([]int, base.numRows)
	for i := range all {
		all[i] = i
	}
	b.AppendRows(base, all)
	if tail.numRows > 0 {
		tailRows := make([]int, tail.numRows)
		for i := range tailRows {
			tailRows[i] = i
		}
		b.AppendRows(tail, tailRows)
	}
	return b.Build()
}
