package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ReplicationRecord is one line of the leader's decision stream
// (POST /v2/replication/subscribe), as consumed by monitoring and
// log-shipping tools. Type is "snapshot", "decision", or "resume";
// Epoch is the table's monotonic decision sequence number.
//
// State (snapshot records) and Layout (switch decisions) are carried
// as raw JSON: rebuilding a servable layout requires the table's data
// and OREO's internal framing, which is the job of a follower process
// (oreoserve -follow), not of this dependency-free SDK. The raw
// payloads round-trip losslessly for archival replay.
type ReplicationRecord struct {
	Type  string `json:"type"`
	Table string `json:"table"`
	Epoch uint64 `json:"epoch"`
	// Generation is the leader's monotonic fencing term: of two
	// processes claiming leadership, the higher term is the real one.
	Generation uint64  `json:"generation,omitempty"`
	Cost       float64 `json:"cost,omitempty"`
	Switched   bool    `json:"switched,omitempty"`
	Pending    string  `json:"pending,omitempty"`
	// Stats are the leader's post-decision optimizer counters
	// (snapshot and decision records).
	Stats *ReplicationStats `json:"stats,omitempty"`
	// State / Layout are the opaque persist-format payloads.
	State  json.RawMessage `json:"state,omitempty"`
	Layout json.RawMessage `json:"layout,omitempty"`
}

// ReplicationStats mirrors the optimizer counters replicated with each
// record.
type ReplicationStats struct {
	Queries          int     `json:"Queries"`
	Reorganizations  int     `json:"Reorganizations"`
	QueryCost        float64 `json:"QueryCost"`
	ReorgCost        float64 `json:"ReorgCost"`
	States           int     `json:"States"`
	MaxStates        int     `json:"MaxStates"`
	Phases           int     `json:"Phases"`
	CompetitiveBound float64 `json:"CompetitiveBound"`
}

// SubscribeOptions parameterizes a Subscribe call.
type SubscribeOptions struct {
	// Tables restricts the subscription; empty subscribes to every
	// served table.
	Tables []string
	// Generation and Positions resume a previous subscription: when
	// they match the leader's state, the leader answers resume records
	// instead of re-sending snapshots. Claiming a generation above the
	// leader's own is rejected — it proves the leader is deposed.
	Generation uint64
	Positions  map[string]uint64
}

// Subscription is one open replication stream. Recv returns records in
// stream order and io.EOF when the leader closes; Close releases the
// connection. Not safe for concurrent use.
type Subscription struct {
	resp *http.Response
	sc   *bufio.Scanner
}

// Subscribe opens the leader's decision stream — the feed a lag
// monitor, an audit log shipper, or a warm-standby builder tails. The
// first records are per-table snapshots (or resumes, when Options
// positions match); every subsequent record is one decision. Cancel
// ctx or Close the subscription to stop.
func (c *Client) Subscribe(ctx context.Context, opts SubscribeOptions) (*Subscription, error) {
	body, err := json.Marshal(struct {
		Version    int               `json:"version"`
		Tables     []string          `json:"tables,omitempty"`
		Generation uint64            `json:"generation,omitempty"`
		Positions  map[string]uint64 `json:"positions,omitempty"`
	}{1, opts.Tables, opts.Generation, opts.Positions})
	if err != nil {
		return nil, fmt.Errorf("client: encoding subscribe request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v2/replication/subscribe", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: building subscribe request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: subscribe: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	// Snapshot records carry full layout assignments; size the line cap
	// for large tables rather than failing mid-stream.
	sc.Buffer(make([]byte, 0, 64*1024), 256<<20)
	return &Subscription{resp: resp, sc: sc}, nil
}

// Recv returns the next stream record, or io.EOF when the leader
// closed the stream.
func (s *Subscription) Recv() (*ReplicationRecord, error) {
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec ReplicationRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("client: decoding stream record: %w", err)
		}
		return &rec, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading stream: %w", err)
	}
	return nil, io.EOF
}

// Close releases the stream's connection. Always call it (usually
// deferred); safe after Recv returned an error.
func (s *Subscription) Close() error { return s.resp.Body.Close() }
