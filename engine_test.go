package oreo

import (
	"math/rand"
	"testing"
)

// engineWorkload is a deterministic mixed query stream long enough to
// cross several candidate-generation periods, so the engines under
// test actually reorganize.
func engineWorkload(n int) []Query {
	rng := rand.New(rand.NewSource(21))
	users := []string{"alice", "bob", "carol", "dave"}
	qs := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			lo := rng.Int63n(1800)
			qs = append(qs, Query{ID: i, Preds: []Predicate{IntRange("ts", lo, lo+150)}})
		} else {
			qs = append(qs, Query{ID: i, Preds: []Predicate{StrEq("user", users[rng.Intn(len(users))])}})
		}
	}
	return qs
}

// TestEngineImplementationsAgree drives the identical workload through
// all three Engine implementations — sequential Optimizer, read-mostly
// ConcurrentOptimizer, and a MultiOptimizer table shard — with the same
// configuration and seed, purely through the interface. They must make
// bit-identical decisions: the interface is one serving surface over
// three concurrency regimes, not three subtly different optimizers.
func TestEngineImplementationsAgree(t *testing.T) {
	ds := buildEventsTable(t, 2000)
	cfg := Config{
		Alpha: 12, Partitions: 16, WindowSize: 50, Period: 50,
		InitialSort: []string{"ts"}, Seed: 7,
	}

	engines := map[string]Engine{}

	seq, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	engines["Optimizer"] = seq

	conc, err := New(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	engines["ConcurrentOptimizer"] = NewConcurrent(conc)

	m := NewMulti()
	if err := m.AddTable("events", ds, cfg); err != nil {
		t.Fatal(err)
	}
	sharded := m.Engine("events")
	if sharded == nil {
		t.Fatal("registered table has no engine")
	}
	engines["MultiOptimizer shard"] = sharded
	if m.Engine("nope") != nil {
		t.Error("unregistered table returned a non-nil engine")
	}

	type run struct {
		costs   []float64
		layouts []string
		stats   Stats
	}
	runs := map[string]run{}
	for name, e := range engines {
		var r run
		for _, q := range engineWorkload(300) {
			dec := e.ProcessQuery(q)
			r.costs = append(r.costs, dec.Cost)
			r.layouts = append(r.layouts, dec.Layout.Name)
		}
		if e.CurrentLayout() == nil {
			t.Fatalf("%s: nil current layout after workload", name)
		}
		r.stats = e.Stats()
		runs[name] = r
	}

	ref := runs["Optimizer"]
	if ref.stats.Reorganizations == 0 {
		t.Fatal("workload never reorganized; the agreement check is vacuous")
	}
	for name, r := range runs {
		if r.stats != ref.stats {
			t.Errorf("%s stats %+v != Optimizer stats %+v", name, r.stats, ref.stats)
		}
		for i := range ref.costs {
			if r.costs[i] != ref.costs[i] || r.layouts[i] != ref.layouts[i] {
				t.Fatalf("%s diverges at query %d: (%v, %s) vs (%v, %s)",
					name, i, r.costs[i], r.layouts[i], ref.costs[i], ref.layouts[i])
			}
		}
	}
}
