// Package experiments assembles datasets, workloads, layout generators,
// and policies into the exact experiment configurations of the paper's
// evaluation (§VI), and exposes one function per table/figure. The CLI
// (cmd/oreobench) and the benchmark suite (bench_test.go) are thin
// wrappers over this package, so the same code regenerates every
// artifact everywhere.
package experiments

import (
	"fmt"
	"math/rand"

	"oreo/internal/datagen"
	"oreo/internal/layout"
	"oreo/internal/manager"
	"oreo/internal/mts"
	"oreo/internal/policy"
	"oreo/internal/query"
	"oreo/internal/sim"
	"oreo/internal/storage"
	"oreo/internal/table"
	"oreo/internal/workload"
)

// ScenarioConfig selects a dataset and stream scale.
type ScenarioConfig struct {
	// Dataset is one of datagen.Names().
	Dataset string
	// Rows is the table size. The paper runs 26–40M rows; the default
	// here is laptop-scale with partition counts scaled to match the
	// per-partition selectivity dynamics.
	Rows int
	// NumQueries / NumSegments shape the stream (paper: 30k/20 for
	// TPC-H and TPC-DS, 24k for Telemetry).
	NumQueries  int
	NumSegments int
	// Partitions is the layout partition count k; 0 derives it from
	// Rows so each partition holds ~1.5k rows (clamped to [8, 128]).
	Partitions int
	// Seed drives all scenario randomness.
	Seed int64
}

// DefaultScenario returns the standard laptop-scale configuration for a
// dataset.
func DefaultScenario(dataset string) ScenarioConfig {
	numQ := 30000
	if dataset == datagen.Telemetry {
		numQ = 24000
	}
	return ScenarioConfig{
		Dataset:     dataset,
		Rows:        100000,
		NumQueries:  numQ,
		NumSegments: 20,
		Seed:        1,
	}
}

// SmallScenario returns a fast configuration for tests and benches.
func SmallScenario(dataset string) ScenarioConfig {
	return ScenarioConfig{
		Dataset:     dataset,
		Rows:        20000,
		NumQueries:  4000,
		NumSegments: 8,
		Seed:        1,
	}
}

// Scenario is a fully materialized experiment input: dataset, stream,
// and the default (arrival-time sorted) layout everything starts from.
type Scenario struct {
	Cfg        ScenarioConfig
	Data       *table.Dataset
	Stream     *workload.Stream
	TimeColumn string
	Default    *layout.Layout
	Partitions int
}

// TimeColumnFor returns the arrival-time column of a built-in dataset.
func TimeColumnFor(dataset string) string {
	switch dataset {
	case datagen.TPCH:
		return "o_orderdate"
	case datagen.TPCDS:
		return "ss_sold_date"
	case datagen.Telemetry:
		return "arrival_time"
	default:
		return ""
	}
}

// Build materializes a scenario.
func Build(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Rows <= 0 || cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("experiments: Rows and NumQueries must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds, err := datagen.Generate(cfg.Dataset, cfg.Rows, rng)
	if err != nil {
		return nil, err
	}
	templates := workload.TemplatesFor(cfg.Dataset)
	if templates == nil {
		return nil, fmt.Errorf("experiments: no templates for dataset %q", cfg.Dataset)
	}
	stream, err := workload.Generate(templates, workload.Config{
		NumQueries:  cfg.NumQueries,
		NumSegments: cfg.NumSegments,
	}, rng)
	if err != nil {
		return nil, err
	}

	k := cfg.Partitions
	if k <= 0 {
		k = cfg.Rows / 1500
		if k < 8 {
			k = 8
		}
		if k > 128 {
			k = 128
		}
	}

	timeCol := TimeColumnFor(cfg.Dataset)
	def := layout.NewSortGenerator(timeCol).Generate(ds, nil, k)

	return &Scenario{
		Cfg:        cfg,
		Data:       ds,
		Stream:     stream,
		TimeColumn: timeCol,
		Default:    def,
		Partitions: k,
	}, nil
}

// MustBuild is Build that panics on error.
func MustBuild(cfg ScenarioConfig) *Scenario {
	s, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// GeneratorKind names a layout generation mechanism.
type GeneratorKind string

const (
	// GenQdTree selects greedy Qd-tree layouts.
	GenQdTree GeneratorKind = "qdtree"
	// GenZOrder selects workload-aware Z-order layouts (top-3 queried
	// columns, falling back to the time column).
	GenZOrder GeneratorKind = "zorder"
)

// Generator instantiates a layout generator for the scenario.
func (s *Scenario) Generator(kind GeneratorKind) layout.Generator {
	switch kind {
	case GenQdTree:
		return layout.NewQdTreeGenerator()
	case GenZOrder:
		return layout.NewZOrderGenerator(3, s.TimeColumn)
	default:
		panic(fmt.Sprintf("experiments: unknown generator %q", kind))
	}
}

// RunParams are the policy-level knobs with the paper's defaults.
type RunParams struct {
	Alpha     float64        // 80
	Gamma     float64        // 1
	Epsilon   float64        // 0.08
	Window    int            // 200
	Period    int            // 200
	Delay     int            // 0
	Source    manager.Source // SourceWindow
	MaxStates int            // 0 = unbounded
	// DisableStayInPlace reverts the MTS phase-start behaviour to the
	// original BLS random restart (ablation of the paper's §IV-A
	// optimization).
	DisableStayInPlace bool
	Seed               int64
	// Harness extras.
	CurveStride int
	SpaceStride int
	Disk        *storage.DiskModel
	TableMB     float64
}

// DefaultParams returns the paper's default parameter configuration.
func DefaultParams() RunParams {
	return RunParams{
		Alpha:   80,
		Gamma:   1,
		Epsilon: 0.08,
		Window:  200,
		Period:  200,
		Seed:    7,
	}
}

func (p RunParams) simConfig() sim.Config {
	return sim.Config{
		Alpha:       p.Alpha,
		Delay:       p.Delay,
		Disk:        p.Disk,
		TableMB:     p.TableMB,
		CurveStride: p.CurveStride,
		SpaceStride: p.SpaceStride,
	}
}

func (p RunParams) feedConfig(k int) manager.FeedConfig {
	return manager.FeedConfig{
		WindowSize: p.Window,
		Period:     p.Period,
		Partitions: k,
		Source:     p.Source,
	}
}

// workloadSample returns up to max queries spread evenly over qs, used
// when building layouts from large (whole-workload or per-template)
// query sets so Qd-tree construction stays tractable at any scale.
func workloadSample(qs []query.Query, max int) []query.Query {
	if len(qs) <= max {
		return qs
	}
	out := make([]query.Query, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, qs[i*len(qs)/max])
	}
	return out
}

// StaticLayout builds the Static baseline's layout: one layout
// optimized for the entire workload in advance.
func (s *Scenario) StaticLayout(gen layout.Generator) *layout.Layout {
	return gen.Generate(s.Data, workloadSample(s.Stream.Queries, 1000), s.Partitions)
}

// PerTemplateLayouts builds the oracle layouts: the best layout for
// each query template, computed from that template's queries.
func (s *Scenario) PerTemplateLayouts(gen layout.Generator) map[int]*layout.Layout {
	byT := s.Stream.QueriesByTemplate()
	out := make(map[int]*layout.Layout, len(byT))
	for t, qs := range byT {
		out[t] = gen.Generate(s.Data, workloadSample(qs, 300), s.Partitions)
	}
	return out
}

// NewOREO wires the full OREO policy for this scenario.
func (s *Scenario) NewOREO(gen layout.Generator, p RunParams) *policy.OREO {
	feedRng := rand.New(rand.NewSource(p.Seed))
	mtsRng := rand.New(rand.NewSource(p.Seed + 1))
	feed := manager.NewFeed(s.Data, gen, p.feedConfig(s.Partitions), feedRng)
	reorg := mts.New(mts.Config{
		Alpha:              p.Alpha,
		Gamma:              p.Gamma,
		DisableStayInPlace: p.DisableStayInPlace,
	}, mtsRng)
	return policy.NewOREO(feed, s.Default, policy.OREOConfig{
		Alpha:     p.Alpha,
		Gamma:     p.Gamma,
		Epsilon:   p.Epsilon,
		MaxStates: p.MaxStates,
	}, reorg)
}

// NewGreedy wires the Greedy baseline with its own (identically seeded)
// candidate feed.
func (s *Scenario) NewGreedy(gen layout.Generator, p RunParams) *policy.Greedy {
	feedRng := rand.New(rand.NewSource(p.Seed))
	feed := manager.NewFeed(s.Data, gen, p.feedConfig(s.Partitions), feedRng)
	return policy.NewGreedy(feed, s.Default)
}

// NewRegret wires the Regret baseline.
func (s *Scenario) NewRegret(gen layout.Generator, p RunParams) *policy.Regret {
	feedRng := rand.New(rand.NewSource(p.Seed))
	feed := manager.NewFeed(s.Data, gen, p.feedConfig(s.Partitions), feedRng)
	return policy.NewRegret(feed, s.Default, p.Alpha)
}

// NewMTSOptimal wires the fixed-state-space oracle.
func (s *Scenario) NewMTSOptimal(perTemplate map[int]*layout.Layout, p RunParams) *policy.MTSOptimal {
	mtsRng := rand.New(rand.NewSource(p.Seed + 1))
	reorg := mts.New(mts.Config{Alpha: p.Alpha, Gamma: p.Gamma}, mtsRng)
	layouts := make([]*layout.Layout, 0, len(perTemplate))
	for t := 0; t < len(s.Stream.Templates); t++ {
		if l, ok := perTemplate[t]; ok {
			layouts = append(layouts, l)
		}
	}
	return policy.NewMTSOptimal(s.Default, layouts, reorg)
}

// NewOfflineOptimal wires the full-knowledge oracle.
func (s *Scenario) NewOfflineOptimal(perTemplate map[int]*layout.Layout) *policy.OfflineOptimal {
	return policy.NewOfflineOptimal(s.Default, s.Stream, perTemplate)
}

// Run executes one policy over the scenario's stream.
func (s *Scenario) Run(pol policy.Policy, p RunParams) sim.Result {
	return sim.Run(s.Stream.Queries, pol, p.simConfig())
}
