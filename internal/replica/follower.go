package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"oreo"
	"oreo/internal/metrics"
	"oreo/internal/serve"
	"oreo/internal/table"
)

// Follower defaults.
const (
	DefaultForwardQueue    = 4096
	DefaultForwardBatch    = 256
	DefaultForwardInterval = 200 * time.Millisecond
	DefaultReconnectMin    = 100 * time.Millisecond
	DefaultReconnectMax    = 5 * time.Second

	// maxStreamLine caps one decision-stream line. Snapshot records
	// carry the layout RLE and statistics block, which grow with table
	// size; 256 MiB covers hundreds of millions of rows while still
	// bounding a runaway line.
	maxStreamLine = 256 << 20
)

// TableData names one table a follower serves and the follower's local
// copy of its rows. The data must be byte-identical to the leader's —
// the snapshot's statistics block verifies this and replication fails
// loudly on a mismatch.
type TableData struct {
	Name    string
	Dataset *oreo.Dataset
}

// FollowerConfig parameterizes a Follower.
type FollowerConfig struct {
	// Upstream is the leader's base URL (scheme + host[:port]).
	Upstream string
	// Tables are the tables to replicate and serve; they must all be
	// served by the leader.
	Tables []TableData
	// HTTPClient substitutes the transport (custom timeouts, TLS). The
	// default is a dedicated client with no global timeout — the
	// subscription stream is long-lived by design.
	HTTPClient *http.Client
	// ForwardQueue bounds the observation-forwarding buffer; zero
	// selects DefaultForwardQueue, negative disables forwarding
	// entirely (answers are still served; the leader just never sees
	// this follower's traffic).
	ForwardQueue int
	// ForwardBatch is how many observations one upstream POST carries
	// at most; zero selects DefaultForwardBatch.
	ForwardBatch int
	// ForwardInterval bounds how long a partial batch waits before
	// being flushed; zero selects DefaultForwardInterval.
	ForwardInterval time.Duration
	// ReconnectMin/Max bound the exponential backoff between
	// subscription attempts; zeros select the defaults.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Logf receives operational messages; nil selects log.Printf.
	Logf func(format string, args ...any)
	// ScanParallelism is the execute-path scan worker count of the
	// replica core; zero selects runtime.NumCPU() (see
	// serve.CoreConfig.ScanParallelism).
	ScanParallelism int
	// ArchiveDir, when set, bootstraps the follower from a local
	// decision-log archive (written by an Archiver) before the first
	// subscription: every archived record is replayed through the normal
	// apply path, so the follower reaches the archive's tail epoch
	// offline and then resubscribes with those positions — the leader
	// answers with a cheap resume instead of a full re-snapshot.
	ArchiveDir string
}

// FollowerStats is a point-in-time view of a follower's replication
// and forwarding counters.
type FollowerStats struct {
	// Snapshots / Decisions / Resumes count applied records; Gaps
	// counts epoch discontinuities that forced a reconnect, and
	// Reconnects the subscription attempts after the first.
	Snapshots  uint64
	Decisions  uint64
	Resumes    uint64
	Gaps       uint64
	Reconnects uint64
	// Appends / Compactions count applied live-write records: append
	// batches extended into the local delta copy, and delta folds
	// rebuilt into a grown local base.
	Appends     uint64
	Compactions uint64
	// Forwarded / ForwardDropped / ForwardRejected count upstream
	// observation outcomes (ForwardDropped includes local queue
	// overflow and failed upstream posts).
	Forwarded       uint64
	ForwardDropped  uint64
	ForwardRejected uint64
}

// Follower is the replica half of replication: it subscribes to a
// leader's decision stream, applies every record to a replica
// serve.Core (which serves the full read surface bit-identically to
// the leader at the same epoch), and forwards answered queries back
// upstream. Construct with NewFollower, mount Core() behind a
// transport, WaitReady before advertising, Close on shutdown.
type Follower struct {
	cfg  FollowerConfig
	core *serve.Core
	hc   *http.Client
	fwd  *forwarder // nil when forwarding is disabled
	logf func(format string, args ...any)

	datasets map[string]*oreo.Dataset
	names    []string

	mu sync.Mutex
	// gen is the highest leadership fencing term this follower has
	// applied (0 before the first stream record). It is echoed on
	// resubscription and mirrored into the core for /healthz; a stream
	// regressing below it is a deposed leader and is fenced terminally.
	gen uint64
	// boot is the boot ID of the publisher the applied state came from
	// ("" before the first snapshot or resume). Echoed on
	// resubscription: resume is only offered when the upstream is the
	// same process life the positions were applied from.
	boot      string
	positions map[string]uint64
	layouts   map[string]*oreo.Layout
	applied   map[string]bool
	// bases and deltas are the follower's local copies of each table's
	// partitioned base (grown past the boot dataset by applied
	// compactions) and uncompacted live tail (nil ≡ empty). Snapshot
	// records reset both; append records extend the delta; compact
	// records fold the delta into the base. Layout records bind against
	// bases, never the boot dataset — a switch after a compaction
	// describes the grown row set.
	bases  map[string]*oreo.Dataset
	deltas map[string]*oreo.Dataset
	// seen is the newest epoch decoded off the stream per table, ahead
	// of apply: seen minus positions is the follower-side replication
	// lag gauge — nonzero exactly while an apply (a store rebuild, say)
	// is in flight behind freshly arrived records.
	seen map[string]uint64

	ready     chan struct{}
	readyOnce sync.Once
	failed    chan struct{}
	failOnce  sync.Once
	failErr   error

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	stats struct {
		snapshots, decisions, resumes, gaps, reconnects atomicUint64
		appends, compactions                            atomicUint64
	}
}

// NewFollower builds a follower and starts its replication loop. The
// returned follower's Core answers unavailable until the first
// snapshot lands (WaitReady blocks for that); it is usable behind
// serve.NewServer immediately.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	u, err := url.Parse(cfg.Upstream)
	if err != nil {
		return nil, fmt.Errorf("replica: parsing upstream URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("replica: upstream URL %q must be http or https", cfg.Upstream)
	}
	if len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("replica: no tables to replicate")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.ForwardQueue == 0 {
		cfg.ForwardQueue = DefaultForwardQueue
	}
	if cfg.ForwardBatch <= 0 {
		cfg.ForwardBatch = DefaultForwardBatch
	}
	if cfg.ForwardInterval <= 0 {
		cfg.ForwardInterval = DefaultForwardInterval
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = DefaultReconnectMin
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = DefaultReconnectMax
	}
	cfg.Upstream = strings.TrimRight(u.String(), "/")

	f := &Follower{
		cfg:       cfg,
		hc:        cfg.HTTPClient,
		logf:      cfg.Logf,
		datasets:  make(map[string]*oreo.Dataset, len(cfg.Tables)),
		positions: make(map[string]uint64, len(cfg.Tables)),
		layouts:   make(map[string]*oreo.Layout, len(cfg.Tables)),
		applied:   make(map[string]bool, len(cfg.Tables)),
		bases:     make(map[string]*oreo.Dataset, len(cfg.Tables)),
		deltas:    make(map[string]*oreo.Dataset, len(cfg.Tables)),
		seen:      make(map[string]uint64, len(cfg.Tables)),
		ready:     make(chan struct{}),
		failed:    make(chan struct{}),
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())

	if cfg.ForwardQueue > 0 {
		f.fwd = newForwarder(f.ctx, cfg.Upstream, f.hc, cfg.ForwardQueue, cfg.ForwardBatch, cfg.ForwardInterval, cfg.Logf, f.Generation, &f.wg)
	}

	replicaTables := make([]serve.ReplicaTable, 0, len(cfg.Tables))
	for _, t := range cfg.Tables {
		if t.Name == "" || t.Dataset == nil {
			return nil, fmt.Errorf("replica: table entry missing name or dataset")
		}
		if _, dup := f.datasets[t.Name]; dup {
			return nil, fmt.Errorf("replica: table %q listed twice", t.Name)
		}
		f.datasets[t.Name] = t.Dataset
		f.names = append(f.names, t.Name)
		name := t.Name
		var forward func(oreo.Query) bool
		if f.fwd != nil {
			forward = func(q oreo.Query) bool { return f.fwd.enqueue(name, q) }
		}
		replicaTables = append(replicaTables, serve.ReplicaTable{Name: name, Dataset: t.Dataset, Forward: forward})
	}
	core, err := serve.NewReplicaCore(replicaTables, serve.CoreConfig{Upstream: cfg.Upstream, ScanParallelism: cfg.ScanParallelism})
	if err != nil {
		f.cancel()
		return nil, fmt.Errorf("replica: building replica core: %w", err)
	}
	f.core = core
	f.registerMetrics()

	if cfg.ArchiveDir != "" {
		if err := f.bootstrapFromArchive(cfg.ArchiveDir); err != nil {
			f.cancel()
			core.Close()
			return nil, fmt.Errorf("replica: bootstrapping from archive %s: %w", cfg.ArchiveDir, err)
		}
	}

	f.wg.Add(1)
	go f.run()
	return f, nil
}

// bootstrapFromArchive replays an on-disk decision-log archive through
// the normal apply path, before the subscription loop starts (so no
// locking against it is needed). Records for tables this follower does
// not serve are skipped; everything else goes through the same epoch
// and fencing discipline as live stream records, so a corrupt or
// divergent archive fails construction loudly rather than seeding bad
// state.
func (f *Follower) bootstrapFromArchive(dir string) error {
	n, err := ReplayArchive(dir, func(rec *Record) error {
		if _, ok := f.datasets[rec.Table]; !ok && rec.Table != "" {
			return nil
		}
		if rec.Epoch > 0 && rec.Table != "" {
			f.mu.Lock()
			if rec.Epoch > f.seen[rec.Table] {
				f.seen[rec.Table] = rec.Epoch
			}
			f.mu.Unlock()
		}
		return f.apply(rec)
	})
	if err != nil {
		return err
	}
	f.logf("replica: bootstrapped from archive %s: %d records, positions %v", dir, n, f.snapshotPositions())
	return nil
}

// snapshotPositions returns a copy of the applied positions, for logs.
func (f *Follower) snapshotPositions() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.positions))
	for t, e := range f.positions {
		out[t] = e
	}
	return out
}

// Core returns the replica serving core, for mounting behind a
// transport (serve.NewServer) or answering in-process requests.
func (f *Follower) Core() *serve.Core { return f.core }

// counterLoad adapts an atomic counter to the float64 callback shape
// metrics.Registry.CounterFunc wants.
func counterLoad(c *atomicUint64) func() float64 {
	return func() float64 { return float64(c.Load()) }
}

// registerMetrics publishes the follower's replication counters on the
// replica core's registry, so one GET /metrics on a follower covers
// both its serving surface and its replication health. Names are
// disjoint from the leader's publisher metrics except
// oreo_replication_lag_epochs, which intentionally means "how far
// behind" on both sides: stream records decoded but not yet applied
// here, enqueue backlog there.
func (f *Follower) registerMetrics() {
	reg := f.core.Metrics()
	reg.CounterFunc("oreo_replication_snapshots_applied_total",
		"Snapshot records applied from the leader's decision stream.",
		nil, counterLoad(&f.stats.snapshots))
	reg.CounterFunc("oreo_replication_decisions_applied_total",
		"Decision records applied from the leader's decision stream.",
		nil, counterLoad(&f.stats.decisions))
	reg.CounterFunc("oreo_replication_resumes_total",
		"Resume acknowledgements received on reconnect.",
		nil, counterLoad(&f.stats.resumes))
	reg.CounterFunc("oreo_replication_gaps_total",
		"Epoch discontinuities that forced a reconnect.",
		nil, counterLoad(&f.stats.gaps))
	reg.CounterFunc("oreo_replication_reconnects_total",
		"Subscription attempts after the first.",
		nil, counterLoad(&f.stats.reconnects))
	reg.CounterFunc("oreo_replication_appends_applied_total",
		"Append records applied from the leader's stream (live-write batches extended into the local delta).",
		nil, counterLoad(&f.stats.appends))
	reg.CounterFunc("oreo_replication_compactions_applied_total",
		"Compact records applied from the leader's stream (delta folds rebuilt into the local base).",
		nil, counterLoad(&f.stats.compactions))
	if f.fwd != nil {
		reg.CounterFunc("oreo_replication_forwarded_total",
			"Observations forwarded upstream to the leader.",
			nil, counterLoad(&f.fwd.forwarded))
		reg.CounterFunc("oreo_replication_forward_dropped_total",
			"Observations lost to forward-queue overflow or failed upstream posts.",
			nil, counterLoad(&f.fwd.dropped))
		reg.CounterFunc("oreo_replication_forward_rejected_total",
			"Forwarded observations the leader rejected.",
			nil, counterLoad(&f.fwd.rejected))
		reg.GaugeFunc("oreo_replication_forward_queue_depth",
			"Observations waiting in the forward queue.",
			nil, func() float64 { return float64(len(f.fwd.ch)) })
	}
	for _, t := range f.names {
		table := t
		reg.GaugeFunc("oreo_replication_lag_epochs",
			"Follower-side replication lag: the newest epoch decoded off the stream minus the last applied epoch for this table.",
			metrics.Labels{"table": table}, func() float64 {
				f.mu.Lock()
				seen, applied := f.seen[table], f.positions[table]
				f.mu.Unlock()
				if seen <= applied {
					return 0
				}
				return float64(seen - applied)
			})
	}
}

// WaitReady blocks until every replicated table has applied its first
// snapshot, the follower has failed terminally (data divergence), or
// the context ends.
func (f *Follower) WaitReady(ctx context.Context) error {
	select {
	case <-f.ready:
		return nil
	case <-f.failed:
		return f.failErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the terminal replication failure, if any: a follower
// whose data diverges from the leader's stops replicating and reports
// it here (and through WaitReady).
func (f *Follower) Err() error {
	select {
	case <-f.failed:
		return f.failErr
	default:
		return nil
	}
}

// Position returns the last applied epoch for the table.
func (f *Follower) Position(table string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.positions[table]
}

// Generation returns the highest leadership fencing term this follower
// has applied from the stream (0 before the first record).
func (f *Follower) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// Stats returns the follower's replication and forwarding counters.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Snapshots:   f.stats.snapshots.Load(),
		Decisions:   f.stats.decisions.Load(),
		Resumes:     f.stats.resumes.Load(),
		Gaps:        f.stats.gaps.Load(),
		Reconnects:  f.stats.reconnects.Load(),
		Appends:     f.stats.appends.Load(),
		Compactions: f.stats.compactions.Load(),
	}
	if f.fwd != nil {
		st.Forwarded = f.fwd.forwarded.Load()
		st.ForwardDropped = f.fwd.dropped.Load()
		st.ForwardRejected = f.fwd.rejected.Load()
	}
	return st
}

// Close stops the replication and forwarding loops and closes the
// replica core. Idempotent; safe to combine with a Server.Close over
// the same core.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
	f.core.Close()
}

// Detach stops the replication and forwarding loops but leaves the
// replica core open and serving — the promotion hand-off. After Detach
// returns, nothing writes the core's replicated state anymore, so
// Core().Promote can take ownership of it; Close afterwards remains
// safe (the second cancel and wait are no-ops and the core close is
// what actually tears serving down).
func (f *Follower) Detach() {
	f.cancel()
	f.wg.Wait()
}

// fail records a terminal replication failure.
func (f *Follower) fail(err error) {
	f.failOnce.Do(func() {
		f.failErr = err
		close(f.failed)
	})
	f.logf("replica: follower stopped: %v", err)
}

// errDiverged marks failures that retrying cannot fix.
var errDiverged = errors.New("replica: follower data diverges from leader")

// errRejected marks subscriptions the leader permanently refuses — an
// unknown table, a protocol-version mismatch, or an upstream that does
// not serve replication at all. Retrying cannot fix a rejection, so it
// is terminal like a divergence; transient upstream trouble (refused
// connections, 5xx from a booting proxy) stays retryable.
var errRejected = errors.New("replica: subscription rejected by leader")

// errFenced marks a stream whose leadership term regressed below what
// this follower has already applied: the upstream is a deposed leader
// (typically a revived process that lost a promotion race). Applying
// its records would silently fork the fleet's history, so fencing is
// terminal — the follower must be repointed at the real leader.
var errFenced = errors.New("replica: stream fenced (upstream generation is older than applied state)")

// run is the subscription loop: subscribe, apply until the stream
// breaks, back off, repeat. Only a divergence failure is terminal.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.cfg.ReconnectMin
	first := true
	for {
		if f.ctx.Err() != nil {
			return
		}
		if !first {
			f.stats.reconnects.Add(1)
		}
		applied, err := f.subscribeOnce()
		if f.ctx.Err() != nil {
			return
		}
		if err != nil && (errors.Is(err, errDiverged) || errors.Is(err, errRejected) || errors.Is(err, errFenced)) {
			f.fail(err)
			return
		}
		if err != nil {
			f.logf("replica: subscription to %s ended: %v (retrying in %v)", f.cfg.Upstream, err, backoff)
		} else {
			f.logf("replica: subscription to %s closed (retrying in %v)", f.cfg.Upstream, backoff)
		}
		// A session that applied records earned a fresh backoff; a
		// session that failed straight away backs off harder.
		if applied > 0 {
			backoff = f.cfg.ReconnectMin
		} else if backoff *= 2; backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
		first = false
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(backoff):
		}
	}
}

// subscribeOnce opens one subscription and applies records until the
// stream ends. It returns how many records it applied (for backoff
// bookkeeping) and the error that ended the stream.
func (f *Follower) subscribeOnce() (applied int, err error) {
	f.mu.Lock()
	req := SubscribeRequest{
		Version:    ProtocolVersion,
		Tables:     append([]string(nil), f.names...),
		Generation: f.gen,
		Boot:       f.boot,
		Positions:  make(map[string]uint64, len(f.positions)),
	}
	for t, e := range f.positions {
		if f.applied[t] {
			req.Positions[t] = e
		}
	}
	f.mu.Unlock()

	body, err := json.Marshal(&req)
	if err != nil {
		return 0, fmt.Errorf("encoding subscribe request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(f.ctx, http.MethodPost,
		f.cfg.Upstream+"/v2/replication/subscribe", strings.NewReader(string(body)))
	if err != nil {
		return 0, fmt.Errorf("building subscribe request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := f.hc.Do(hreq)
	if err != nil {
		return 0, fmt.Errorf("subscribing: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
		msg := strings.TrimSpace(string(data))
		// 400/404 are the leader's own rejection statuses (protocol
		// mismatch, unknown table — including a pre-replication leader
		// whose mux 404s the endpoint): permanent configuration errors
		// that must fail loudly, not retry forever.
		if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusNotFound {
			return 0, fmt.Errorf("%w: answered %d: %s", errRejected, resp.StatusCode, msg)
		}
		return 0, fmt.Errorf("subscribe answered %d: %s", resp.StatusCode, msg)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxStreamLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return applied, fmt.Errorf("decoding stream record: %w", err)
		}
		if rec.Epoch > 0 && rec.Table != "" {
			f.mu.Lock()
			if rec.Epoch > f.seen[rec.Table] {
				f.seen[rec.Table] = rec.Epoch
			}
			f.mu.Unlock()
		}
		if err := f.apply(&rec); err != nil {
			return applied, err
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return applied, fmt.Errorf("reading stream: %w", err)
	}
	return applied, nil // leader closed the stream cleanly
}

// apply applies one stream record to the replica core. Layout, data,
// and snapshot records share one epoch counter, so the ordering
// discipline is uniform: duplicates (epoch at or below the applied
// position) are post-re-snapshot overlap and skip silently; anything
// other than the exact next epoch is a gap that forces a reconnect.
func (f *Follower) apply(rec *Record) error {
	boot, ok := f.datasets[rec.Table]
	if !ok {
		return fmt.Errorf("stream record for unsubscribed table %q", rec.Table)
	}
	// Fence before applying anything: a record claiming a leadership
	// term below what this follower has already applied comes from a
	// deposed leader, and nothing it says may touch local state. Equal
	// terms are the normal case; higher terms (a promotion happened
	// upstream) are adopted by the per-record bookkeeping below.
	if rec.Generation != 0 {
		f.mu.Lock()
		cur := f.gen
		f.mu.Unlock()
		if rec.Generation < cur {
			return fmt.Errorf("%w: record claims generation %d, follower has applied %d", errFenced, rec.Generation, cur)
		}
	}
	switch rec.Type {
	case RecordResume:
		f.mu.Lock()
		if rec.Generation != 0 {
			f.gen = rec.Generation
		}
		if rec.Boot != "" {
			f.boot = rec.Boot
		}
		f.mu.Unlock()
		if rec.Generation != 0 {
			f.core.SetGeneration(rec.Generation)
		}
		f.stats.resumes.Add(1)
		return nil

	case RecordSnapshot:
		if rec.State == nil {
			return fmt.Errorf("snapshot record for %q has no state", rec.Table)
		}
		// Reassemble the rows the snapshot describes: the local boot
		// dataset plus whatever tail and delta the leader shipped (only
		// rows the boot source cannot reproduce travel on the wire).
		base, delta, err := rec.State.BindData(boot)
		if err != nil {
			return fmt.Errorf("%w: reassembling %q snapshot data: %v", errDiverged, rec.Table, err)
		}
		lay, warm, err := rec.State.Bind(base)
		if err != nil {
			// The shape itself does not fit the local data: wrong table,
			// wrong schema, wrong row count. Retrying cannot fix it.
			return fmt.Errorf("%w: binding %q snapshot: %v", errDiverged, rec.Table, err)
		}
		if !warm {
			// The layout bound, but the statistics block recomputed from
			// the local data does not match the leader's bit-for-bit:
			// the follower holds different rows. Serving from this state
			// would answer bit-different costs — fail loudly instead.
			return fmt.Errorf("%w: table %q statistics block mismatch (local data differs from leader's)", errDiverged, rec.Table)
		}
		if err := f.publish(rec, lay, base, delta, 0, false); err != nil {
			return err
		}
		f.stats.snapshots.Add(1)
		return nil

	case RecordDecision:
		base, delta, lay, skip, err := f.nextEpoch(rec)
		if err != nil || skip {
			return err
		}
		if rec.Switched {
			if rec.Layout == nil {
				return fmt.Errorf("switch record for %q carries no layout", rec.Table)
			}
			// Bind against the current base, not the boot dataset: a
			// switch after a compaction describes the grown row set.
			newLay, err := rec.Layout.Bind(base)
			if err != nil {
				return fmt.Errorf("%w: binding %q switched layout: %v", errDiverged, rec.Table, err)
			}
			lay = newLay
		}
		if err := f.publish(rec, lay, base, delta, 0, false); err != nil {
			return err
		}
		f.stats.decisions.Add(1)
		return nil

	case RecordAppend:
		base, delta, lay, skip, err := f.nextEpoch(rec)
		if err != nil || skip {
			return err
		}
		if rec.Rows == nil {
			return fmt.Errorf("append record for %q carries no rows", rec.Table)
		}
		batch, err := rec.Rows.Dataset(boot.Schema())
		if err != nil {
			return fmt.Errorf("%w: rebuilding %q append batch: %v", errDiverged, rec.Table, err)
		}
		if delta == nil {
			delta = batch
		} else {
			delta = table.Concat(delta, batch)
		}
		if rec.DeltaRows != delta.NumRows() {
			// The leader's post-append delta size disagrees with ours: a
			// record was lost in a way the epoch discipline missed.
			return fmt.Errorf("%w: table %q delta is %d rows after append, leader reports %d",
				errDiverged, rec.Table, delta.NumRows(), rec.DeltaRows)
		}
		if err := f.publish(rec, lay, base, delta, batch.NumRows(), false); err != nil {
			return err
		}
		f.stats.appends.Add(1)
		return nil

	case RecordCompact:
		base, delta, _, skip, err := f.nextEpoch(rec)
		if err != nil || skip {
			return err
		}
		if rec.State == nil {
			return fmt.Errorf("compact record for %q carries no state", rec.Table)
		}
		var deltaRows int
		if delta != nil {
			deltaRows = delta.NumRows()
		}
		if rec.Folded != deltaRows {
			return fmt.Errorf("%w: table %q compaction folded %d rows on the leader, local delta holds %d",
				errDiverged, rec.Table, rec.Folded, deltaRows)
		}
		// The compact record carries no rows: grow the base from rows
		// already applied, and let the shipped state's statistics block
		// prove the result bit-identical to the leader's compacted data.
		grown := base
		if deltaRows > 0 {
			grown = table.Concat(base, delta)
		}
		lay, warm, err := rec.State.Bind(grown)
		if err != nil {
			return fmt.Errorf("%w: binding %q compacted state: %v", errDiverged, rec.Table, err)
		}
		if !warm {
			return fmt.Errorf("%w: table %q compacted statistics block mismatch (local rows differ from leader's)", errDiverged, rec.Table)
		}
		if err := f.publish(rec, lay, grown, nil, 0, true); err != nil {
			return err
		}
		f.stats.compactions.Add(1)
		return nil

	default:
		// Forward compatibility: an unknown record type from a newer
		// leader is skipped, not fatal — the epoch discipline catches
		// anything that mattered.
		f.logf("replica: skipping unknown record type %q", rec.Type)
		return nil
	}
}

// nextEpoch runs the shared ordering discipline for post-snapshot
// records and returns the table's current local state. skip reports a
// duplicate (already covered by a re-snapshot) that must be ignored
// without applying anything.
func (f *Follower) nextEpoch(rec *Record) (base, delta *oreo.Dataset, lay *oreo.Layout, skip bool, err error) {
	f.mu.Lock()
	last, seen := f.positions[rec.Table], f.applied[rec.Table]
	base, delta, lay = f.bases[rec.Table], f.deltas[rec.Table], f.layouts[rec.Table]
	f.mu.Unlock()
	if !seen {
		return nil, nil, nil, false, fmt.Errorf("%s record for %q before any snapshot", rec.Type, rec.Table)
	}
	if rec.Epoch <= last {
		return nil, nil, nil, true, nil // overlap after a (re-)snapshot; already covered
	}
	if rec.Epoch != last+1 {
		f.stats.gaps.Add(1)
		return nil, nil, nil, false, fmt.Errorf("epoch gap on %q: have %d, got %d", rec.Table, last, rec.Epoch)
	}
	return base, delta, lay, false, nil
}

// publish pushes (epoch, snapshot, base, delta) into the core and
// updates the follower's positions and local data copies.
func (f *Follower) publish(rec *Record, lay *oreo.Layout, base, delta *oreo.Dataset, appended int, compacted bool) error {
	snap := oreo.OptimizerSnapshot{Serving: lay}
	if rec.Stats != nil {
		snap.Stats = *rec.Stats
	}
	if rec.Pending != "" {
		// The pending layout's partitioning is never read on the
		// follower (only its name, for reorganizing reports); a
		// name-only stand-in keeps the wire record small.
		snap.Pending = &oreo.Layout{Name: rec.Pending}
	}
	st := serve.ReplicaState{
		Epoch:     rec.Epoch,
		Snapshot:  snap,
		Dataset:   base,
		Delta:     delta,
		Appended:  appended,
		Compacted: compacted,
	}
	if err := f.core.ApplyReplica(rec.Table, st); err != nil {
		return fmt.Errorf("applying %q state: %w", rec.Table, err)
	}
	f.mu.Lock()
	f.positions[rec.Table] = rec.Epoch
	f.layouts[rec.Table] = lay
	f.bases[rec.Table] = base
	f.deltas[rec.Table] = delta
	if rec.Generation != 0 && rec.Generation > f.gen {
		f.gen = rec.Generation
	}
	if rec.Boot != "" {
		f.boot = rec.Boot
	}
	f.applied[rec.Table] = true
	allApplied := len(f.applied) == len(f.names)
	f.mu.Unlock()
	if rec.Generation != 0 {
		f.core.SetGeneration(rec.Generation)
	}
	if allApplied {
		f.readyOnce.Do(func() { close(f.ready) })
	}
	return nil
}
