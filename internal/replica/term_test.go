package replica

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTermRoundTrip pins the persisted-term contract oreoserve leans
// on: a never-written directory is term 0 (a fresh fleet has nothing
// to restore), SaveTerm/LoadTerm round-trip and overwrite, and a
// corrupt file is an error — booting at term 1 on garbage is exactly
// the self-fencing accident persistence exists to prevent.
func TestTermRoundTrip(t *testing.T) {
	dir := t.TempDir()

	if gen, err := LoadTerm(dir); err != nil || gen != 0 {
		t.Fatalf("LoadTerm(empty dir) = %d, %v; want 0, nil", gen, err)
	}
	if gen, err := LoadTerm(filepath.Join(dir, "never-created")); err != nil || gen != 0 {
		t.Fatalf("LoadTerm(missing dir) = %d, %v; want 0, nil", gen, err)
	}

	if err := SaveTerm(dir, 3); err != nil {
		t.Fatal(err)
	}
	if gen, err := LoadTerm(dir); err != nil || gen != 3 {
		t.Fatalf("LoadTerm after SaveTerm(3) = %d, %v; want 3, nil", gen, err)
	}
	if err := SaveTerm(dir, 7); err != nil {
		t.Fatal(err)
	}
	if gen, err := LoadTerm(dir); err != nil || gen != 7 {
		t.Fatalf("LoadTerm after overwrite = %d, %v; want 7, nil", gen, err)
	}

	// SaveTerm creates the state directory if needed, like the rest of
	// oreoserve's -state handling.
	nested := filepath.Join(dir, "a", "b")
	if err := SaveTerm(nested, 2); err != nil {
		t.Fatal(err)
	}
	if gen, err := LoadTerm(nested); err != nil || gen != 2 {
		t.Fatalf("LoadTerm(nested) = %d, %v; want 2, nil", gen, err)
	}

	if err := os.WriteFile(filepath.Join(dir, termFile), []byte("not a number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTerm(dir); err == nil {
		t.Fatal("LoadTerm accepted a corrupt term file")
	}
}

// TestArchiveGeneration pins term recovery from a self-archive: the
// highest generation across all segment record headers wins, a missing
// or empty archive is term 0, and garbage fails loudly.
func TestArchiveGeneration(t *testing.T) {
	if gen, err := ArchiveGeneration(filepath.Join(t.TempDir(), "nope")); err != nil || gen != 0 {
		t.Fatalf("ArchiveGeneration(missing dir) = %d, %v; want 0, nil", gen, err)
	}
	dir := t.TempDir()
	if gen, err := ArchiveGeneration(dir); err != nil || gen != 0 {
		t.Fatalf("ArchiveGeneration(empty dir) = %d, %v; want 0, nil", gen, err)
	}

	// Two sessions: the first at term 1, the second spanning a failover
	// to term 3. Recovery must scan every segment, not just the last
	// record of the last one.
	seg1 := "{\"type\":\"snapshot\",\"table\":\"orders\",\"epoch\":1,\"generation\":1}\n" +
		"{\"type\":\"decision\",\"table\":\"orders\",\"epoch\":2,\"generation\":1}\n"
	seg2 := "{\"type\":\"resume\",\"table\":\"orders\",\"epoch\":2,\"generation\":3}\n" +
		"{\"type\":\"decision\",\"table\":\"orders\",\"epoch\":3,\"generation\":1}\n"
	if err := os.WriteFile(filepath.Join(dir, "segment-00000001.ndjson"), []byte(seg1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "segment-00000002.ndjson"), []byte(seg2), 0o644); err != nil {
		t.Fatal(err)
	}
	if gen, err := ArchiveGeneration(dir); err != nil || gen != 3 {
		t.Fatalf("ArchiveGeneration = %d, %v; want 3, nil", gen, err)
	}

	if err := os.WriteFile(filepath.Join(dir, "segment-00000003.ndjson"), []byte("{garbage\n{\"generation\":9}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ArchiveGeneration(dir); err == nil {
		t.Fatal("ArchiveGeneration accepted mid-segment garbage")
	}
}
