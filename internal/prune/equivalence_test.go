package prune

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"oreo/internal/query"
	"oreo/internal/table"
)

// randomScenario builds a random schema, dataset, and partitioning from
// the rng: mixed column types, occasional NaN floats, string columns
// whose distinct sets may overflow into Bloom filters, and partition
// assignments that leave some partitions empty.
func randomScenario(rng *rand.Rand) (*table.Schema, *table.Partitioning) {
	ncols := 1 + rng.Intn(5)
	cols := make([]table.Column, ncols)
	for i := range cols {
		cols[i] = table.Column{
			Name: fmt.Sprintf("c%d", i),
			Type: table.ColType(rng.Intn(3)),
		}
	}
	schema := table.NewSchema(cols...)

	nrows := rng.Intn(400)
	cardinality := 1 + rng.Intn(120) // may exceed MaxTrackedDistinct
	b := table.NewBuilder(schema, nrows)
	row := make([]table.Value, ncols)
	for r := 0; r < nrows; r++ {
		for c, col := range cols {
			switch col.Type {
			case table.Int64:
				row[c] = table.Int(rng.Int63n(1000) - 500)
			case table.Float64:
				if rng.Intn(20) == 0 {
					row[c] = table.Float(math.NaN())
				} else {
					row[c] = table.Float(rng.NormFloat64() * 100)
				}
			case table.String:
				row[c] = table.Str(fmt.Sprintf("s%03d", rng.Intn(cardinality)))
			}
		}
		b.AppendRow(row...)
	}

	k := 1 + rng.Intn(40)
	assign := make([]int, nrows)
	// Bias the assignment so some partitions stay empty.
	used := 1 + rng.Intn(k)
	for i := range assign {
		assign[i] = rng.Intn(used)
	}
	return schema, table.MustBuildPartitioning(b.Build(), assign, k)
}

// randomQuery draws a query that exercises every compile path: range
// shapes with any bound combination, IN sets, unknown columns, and
// type-mismatched predicates.
func randomQuery(rng *rand.Rand, schema *table.Schema) query.Query {
	npreds := rng.Intn(4)
	preds := make([]query.Predicate, 0, npreds)
	for i := 0; i < npreds; i++ {
		var col string
		if rng.Intn(8) == 0 {
			col = "unknown_col"
		} else {
			col = schema.Col(rng.Intn(schema.NumCols())).Name
		}
		switch rng.Intn(4) {
		case 0: // int-shaped range, any bound combination
			p := query.Predicate{Col: col, HasLo: rng.Intn(2) == 0, HasHi: rng.Intn(2) == 0}
			p.LoI = rng.Int63n(1000) - 500
			p.HiI = p.LoI + rng.Int63n(600) - 100 // sometimes contradictory
			preds = append(preds, p)
		case 1: // float-shaped range
			p := query.Predicate{Col: col, HasLo: rng.Intn(2) == 0, HasHi: rng.Intn(2) == 0}
			p.LoF = rng.NormFloat64() * 100
			p.HiF = p.LoF + rng.NormFloat64()*50
			preds = append(preds, p)
		case 2: // IN set, possibly large, with duplicates
			n := 1 + rng.Intn(12)
			vals := make([]string, n)
			for j := range vals {
				vals[j] = fmt.Sprintf("s%03d", rng.Intn(150))
			}
			if n > 2 && rng.Intn(2) == 0 {
				vals[n-1] = vals[0]
			}
			preds = append(preds, query.StrIn(col, vals...))
		case 3: // both-typed bounds set simultaneously
			preds = append(preds, query.Predicate{
				Col: col, HasLo: true, HasHi: true,
				LoI: rng.Int63n(200) - 100, HiI: rng.Int63n(400),
				LoF: rng.NormFloat64() * 10, HiF: rng.NormFloat64() * 200,
			})
		}
	}
	return query.Query{ID: rng.Intn(1000), Template: rng.Intn(5) - 1, Preds: preds}
}

// checkEquivalence asserts the compiled, memoized, and interpreted costs
// are all bitwise-identical for one (scenario, query) pair.
func checkEquivalence(t testing.TB, schema *table.Schema, part *table.Partitioning, eng *Engine, q query.Query) {
	t.Helper()
	want := query.FractionScanned(schema, part, q)
	if got := Compile(schema, q).FractionScanned(part); got != want {
		t.Fatalf("compiled %v != interpreted %v\nquery: %+v", got, want, q.Preds)
	}
	if got := eng.Cost(q); got != want {
		t.Fatalf("engine %v != interpreted %v\nquery: %+v", got, want, q.Preds)
	}
}

// TestCompiledEquivalenceProperty is the tentpole's correctness
// contract: across fuzzed schemas, datasets, partitionings, and queries
// the compiled cost is bit-for-bit equal to the interpreted
// query.FractionScanned — including the memoized path, and including
// repeated evaluations that exercise LRU reuse.
func TestCompiledEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		schema, part := randomScenario(rng)
		eng := NewEngine(schema, part)
		queries := make([]query.Query, 40)
		for i := range queries {
			queries[i] = randomQuery(rng, schema)
		}
		for _, q := range queries {
			checkEquivalence(t, schema, part, eng, q)
		}
		// Second pass re-costs the same workload through the warm memo.
		for _, q := range queries {
			checkEquivalence(t, schema, part, eng, q)
		}
	}
}

// FuzzCompiledEquivalence is the native-fuzzing form of the property:
// the fuzzer explores seed-derived scenarios; every discovered
// divergence is a compiled-vs-interpreted cost mismatch.
func FuzzCompiledEquivalence(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1234, 999983} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		schema, part := randomScenario(rng)
		eng := NewEngine(schema, part)
		for i := 0; i < 25; i++ {
			checkEquivalence(t, schema, part, eng, randomQuery(rng, schema))
		}
	})
}
