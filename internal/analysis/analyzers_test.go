package analysis

import "testing"

// Each analyzer is held to its seeded-violation testdata package: the
// `// want` assertions pin both that every planted violation is
// flagged on its exact line and that the sanctioned idioms alongside
// stay silent.

func TestMaporderTestdata(t *testing.T) {
	runTestdata(t, Maporder(), "maporder")
}

func TestFloatbitsTestdata(t *testing.T) {
	// The testdata package doubles as its own encode-boundary target,
	// so both halves of the analyzer fire.
	runTestdata(t, Floatbits("testdata/src/floatbits"), "floatbits")
}

func TestBlockingsendTestdata(t *testing.T) {
	runTestdata(t, Blockingsend("testdata/src/blockingsend"), "blockingsend")
}

func TestAtomicdisciplineTestdata(t *testing.T) {
	runTestdata(t, Atomicdiscipline(), "atomicdiscipline")
}

func TestStdlibonlyTestdata(t *testing.T) {
	runTestdata(t, Stdlibonly("testdata/src/stdlibonly"), "stdlibonly")
}

func TestWirefreezeTestdata(t *testing.T) {
	runTestdata(t, Wirefreeze(WirefreezeConfig{
		PackagePath: "testdata/src/wirefreeze",
		ManifestRel: "wire.manifest",
		Types:       []string{"PinnedOK", "Drifted", "NotPinned"},
	}), "wirefreeze")
}

// TestWirefreezeRealManifest holds the actual serve package to its
// checked-in manifest: the unit-test edition of the CI contract that
// deleting a /v1 JSON tag or reordering a wire field fails the build.
func TestWirefreezeRealManifest(t *testing.T) {
	pkgs, err := Load("", "../serve")
	if err != nil {
		t.Fatalf("loading internal/serve: %v", err)
	}
	diags := Run(pkgs, []*Analyzer{Wirefreeze(ServeWirefreeze)})
	for _, d := range diags {
		t.Errorf("wirefreeze on internal/serve: %s", d)
	}
}
