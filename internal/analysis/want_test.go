package analysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// loadTestdata loads one seeded-violation package from testdata/src.
// The go tool skips testdata directories when expanding wildcards but
// resolves them fine when named explicitly, which is exactly the
// property that keeps these packages out of `go build ./...` while
// letting the analyzer tests type-check them for real.
func loadTestdata(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load("", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading testdata/src/%s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for testdata/src/%s, want 1", len(pkgs), name)
	}
	return pkgs
}

// wantSeg pulls the quoted regexes out of a `// want "..." "..."`
// comment.
var wantSeg = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantAssertion struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants parses every `// want` comment in the package into
// per-(file,line) expectations.
func collectWants(t *testing.T, pkg *Package) map[string][]*wantAssertion {
	t.Helper()
	wants := make(map[string][]*wantAssertion)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantSeg.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &wantAssertion{re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("testdata package %s has no // want assertions", pkg.ImportPath)
	}
	return wants
}

// runTestdata runs one analyzer over one seeded testdata package
// (through the full driver, so suppression directives apply) and
// checks the surviving diagnostics against the // want assertions:
// every want must be hit on its exact line, and every diagnostic must
// be wanted.
func runTestdata(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkgs := loadTestdata(t, name)
	wants := collectWants(t, pkgs[0])
	diags := Run(pkgs, []*Analyzer{a})

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s: want match for %q", key, w.re)
			}
		}
	}
}
