package oreo

import (
	"io"

	"oreo/internal/persist"
)

// SaveLayout serializes a layout (name + row→partition assignment) to
// w in a versioned JSON format. Partition metadata is not written: it
// is recomputed from the dataset at load time, so a stale or corrupted
// file can never cause unsound partition skipping.
func SaveLayout(w io.Writer, l *Layout) error { return persist.SaveLayout(w, l) }

// LoadLayout reads a layout written by SaveLayout and rebinds it to the
// dataset (which must match the saved schema and row count), rebuilding
// all partition metadata. The result can be passed as Config.Initial so
// a restarted process resumes from the layout it had converged to.
func LoadLayout(r io.Reader, ds *Dataset) (*Layout, error) { return persist.LoadLayout(r, ds) }
