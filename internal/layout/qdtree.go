package layout

import (
	"fmt"
	"sort"
	"strings"

	"oreo/internal/query"
	"oreo/internal/table"
)

// QdTreeGenerator builds layouts with the greedy Qd-tree construction
// of Yang et al. (SIGMOD 2020), as the paper uses it: a binary decision
// tree whose inner nodes hold predicates harvested from the query
// workload; rows are routed through the tree and each leaf becomes a
// partition. No "advanced cuts" (the paper's implementation choice).
//
// Construction runs on a small row sample (the paper uses 0.1–1% of the
// data and cites evidence that sample-built trees are faithful); the
// resulting tree then routes the full dataset to materialize the
// partitioning.
type QdTreeGenerator struct {
	// SampleSize is the number of rows construction works on (stride
	// sampled from the dataset for determinism). Zero means 2048.
	SampleSize int
	// MinLeafRows is the smallest sample-row count a leaf may have;
	// splits producing smaller children are rejected. Zero means 8.
	MinLeafRows int
}

// NewQdTreeGenerator returns a Qd-tree generator with default sampling.
func NewQdTreeGenerator() *QdTreeGenerator { return &QdTreeGenerator{} }

// Name implements Generator.
func (g *QdTreeGenerator) Name() string { return "qdtree" }

// cutKind discriminates the predicate forms an inner node can hold.
type cutKind int

const (
	cutIntLT   cutKind = iota // left: value < threshold (int64)
	cutFloatLT                // left: value < threshold (float64)
	cutStrIn                  // left: value IN set
)

// cut is a candidate split harvested from workload predicates.
type cut struct {
	col  int
	kind cutKind
	i    int64
	f    float64
	set  map[string]bool
	key  string // dedup/debug key
}

// routesLeft reports whether row r goes to the left child.
func (c *cut) routesLeft(d *table.Dataset, r int) bool {
	switch c.kind {
	case cutIntLT:
		return d.Int64At(c.col, r) < c.i
	case cutFloatLT:
		return d.Float64At(c.col, r) < c.f
	case cutStrIn:
		return c.set[d.StringAt(c.col, r)]
	default:
		return false
	}
}

// queryAvoids reports, from the predicate alone, whether query q can be
// proven to never need the left (respectively right) child subtree.
// Conservative: (false, false) when nothing can be proven.
func (c *cut) queryAvoids(schema *table.Schema, q query.Query) (avoidsLeft, avoidsRight bool) {
	colName := schema.Col(c.col).Name
	for _, p := range q.Preds {
		if p.Col != colName {
			continue
		}
		switch c.kind {
		case cutIntLT:
			if !p.IsNumeric() {
				continue
			}
			if p.HasLo && p.LoI >= c.i {
				avoidsLeft = true
			}
			if p.HasHi && p.HiI < c.i {
				avoidsRight = true
			}
		case cutFloatLT:
			if !p.IsNumeric() {
				continue
			}
			if p.HasLo && p.LoF >= c.f {
				avoidsLeft = true
			}
			if p.HasHi && p.HiF < c.f {
				avoidsRight = true
			}
		case cutStrIn:
			if p.IsNumeric() {
				continue
			}
			anyIn, anyOut := false, false
			for _, v := range p.In {
				if c.set[v] {
					anyIn = true
				} else {
					anyOut = true
				}
			}
			if !anyIn {
				avoidsLeft = true
			}
			if !anyOut {
				avoidsRight = true
			}
		}
	}
	return avoidsLeft, avoidsRight
}

// harvestCuts extracts deduplicated candidate cuts from the workload.
func harvestCuts(schema *table.Schema, qs []query.Query) []*cut {
	seen := make(map[string]bool)
	var cuts []*cut
	add := func(c *cut) {
		if !seen[c.key] {
			seen[c.key] = true
			cuts = append(cuts, c)
		}
	}
	for _, q := range qs {
		for _, p := range q.Preds {
			ci, ok := schema.Index(p.Col)
			if !ok {
				continue
			}
			switch schema.Col(ci).Type {
			case table.Int64:
				if !p.IsNumeric() {
					continue
				}
				if p.HasLo {
					add(&cut{col: ci, kind: cutIntLT, i: p.LoI,
						key: fmt.Sprintf("i%d<%d", ci, p.LoI)})
				}
				if p.HasHi {
					add(&cut{col: ci, kind: cutIntLT, i: p.HiI + 1,
						key: fmt.Sprintf("i%d<%d", ci, p.HiI+1)})
				}
			case table.Float64:
				if !p.IsNumeric() {
					continue
				}
				if p.HasLo {
					add(&cut{col: ci, kind: cutFloatLT, f: p.LoF,
						key: fmt.Sprintf("f%d<%g", ci, p.LoF)})
				}
				if p.HasHi {
					add(&cut{col: ci, kind: cutFloatLT, f: p.HiF,
						key: fmt.Sprintf("f%d<=%g", ci, p.HiF)})
				}
			case table.String:
				if p.IsNumeric() || len(p.In) == 0 {
					continue
				}
				set := make(map[string]bool, len(p.In))
				vals := append([]string(nil), p.In...)
				sort.Strings(vals)
				for _, v := range vals {
					set[v] = true
				}
				add(&cut{col: ci, kind: cutStrIn, set: set,
					key: fmt.Sprintf("s%d∈%s", ci, strings.Join(vals, "|"))})
			}
		}
	}
	return cuts
}

// qdNode is a tree node. Leaves have cut == nil and carry the partition
// ID assigned at finalization.
type qdNode struct {
	cut         *cut
	left, right *qdNode
	leafID      int
	// rows holds sample-row indices during construction (cleared after).
	rows []int
}

// route returns the leaf ID for row r of dataset d.
func (n *qdNode) route(d *table.Dataset, r int) int {
	for n.cut != nil {
		if n.cut.routesLeft(d, r) {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafID
}

// Generate implements Generator.
func (g *QdTreeGenerator) Generate(d *table.Dataset, qs []query.Query, k int) *Layout {
	sampleSize := g.SampleSize
	if sampleSize <= 0 {
		sampleSize = 2048
	}
	minLeaf := g.MinLeafRows
	if minLeaf <= 0 {
		minLeaf = 8
	}
	if k < 1 {
		k = 1
	}

	// Stride-sample rows for construction (deterministic).
	sample := strideSample(d.NumRows(), sampleSize)

	cuts := harvestCuts(d.Schema(), qs)

	root := &qdNode{rows: sample}
	leaves := []*qdNode{root}

	// Global greedy: repeatedly split the leaf whose best cut yields the
	// largest skipping gain, until k leaves or no positive-gain split.
	type bestSplit struct {
		gain        float64
		cut         *cut
		left, right []int
	}
	best := make(map[*qdNode]*bestSplit)
	eval := func(n *qdNode) {
		var b *bestSplit
		for _, c := range cuts {
			nl := 0
			for _, r := range n.rows {
				if c.routesLeft(d, r) {
					nl++
				}
			}
			nr := len(n.rows) - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			gain := 0.0
			for _, q := range qs {
				aL, aR := c.queryAvoids(d.Schema(), q)
				if aL {
					gain += float64(nl)
				}
				if aR {
					gain += float64(nr)
				}
			}
			if gain > 0 && (b == nil || gain > b.gain) {
				b = &bestSplit{gain: gain, cut: c}
			}
		}
		if b != nil {
			left := make([]int, 0, len(n.rows)/2)
			right := make([]int, 0, len(n.rows)/2)
			for _, r := range n.rows {
				if b.cut.routesLeft(d, r) {
					left = append(left, r)
				} else {
					right = append(right, r)
				}
			}
			b.left, b.right = left, right
		}
		best[n] = b
	}
	eval(root)

	for len(leaves) < k {
		var pick *qdNode
		var pickIdx int
		for i, n := range leaves {
			b := best[n]
			if b == nil {
				continue
			}
			if pick == nil || b.gain > best[pick].gain {
				pick, pickIdx = n, i
			}
		}
		if pick == nil {
			break // no leaf has a positive-gain split left
		}
		b := best[pick]
		pick.cut = b.cut
		pick.left = &qdNode{rows: b.left}
		pick.right = &qdNode{rows: b.right}
		pick.rows = nil
		delete(best, pick)
		leaves[pickIdx] = pick.left
		leaves = append(leaves, pick.right)
		eval(pick.left)
		eval(pick.right)
	}

	for i, n := range leaves {
		n.leafID = i
		n.rows = nil
	}

	// Route the full dataset through the tree.
	assign := make([]int, d.NumRows())
	for r := 0; r < d.NumRows(); r++ {
		assign[r] = root.route(d, r)
	}
	part := table.MustBuildPartitioning(d, assign, len(leaves))
	name := fmt.Sprintf("qdtree(cuts=%d,leaves=%d,w=%s)", len(cuts), len(leaves), workloadTag(qs))
	return New(name, d.Schema(), part)
}

// strideSample returns up to size row indices evenly spread over n rows.
func strideSample(n, size int) []int {
	if size >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	out := make([]int, 0, size)
	for i := 0; i < size; i++ {
		out = append(out, i*n/size)
	}
	return out
}

// workloadTag summarizes a workload for layout names: the ID range of
// the queries it was built from, so two candidates from different
// windows are distinguishable.
func workloadTag(qs []query.Query) string {
	if len(qs) == 0 {
		return "empty"
	}
	lo, hi := qs[0].ID, qs[0].ID
	for _, q := range qs {
		if q.ID < lo {
			lo = q.ID
		}
		if q.ID > hi {
			hi = q.ID
		}
	}
	return fmt.Sprintf("q%d..%d", lo, hi)
}
