package mts

import "fmt"

// TwoStateAsymmetric implements the special case the paper's Appendix C
// analyzes: a two-state task system with asymmetric movement costs
// (the index-tuning regime, where creating an index is expensive but
// dropping it is nearly free). The algorithm is the classic
// counter-based scheme: while in state s, accumulate the *excess* cost
// of s over the other state; move when the excess reaches the cost of
// moving away from s. This is the deterministic 3-competitive strategy
// of Bruno & Chaudhuri (ICDE 2007) generalized to arbitrary asymmetric
// costs, included here as an ablation substrate for comparing uniform
// vs. asymmetric regimes.
type TwoStateAsymmetric struct {
	// cost01 is the movement cost from state 0 to 1; cost10 from 1 to 0.
	cost01, cost10 float64
	current        int
	excess         float64
	switches       int
}

// NewTwoStateAsymmetric returns the decision maker starting in state
// start (0 or 1) with the given directional movement costs.
func NewTwoStateAsymmetric(cost01, cost10 float64, start int) *TwoStateAsymmetric {
	if cost01 <= 0 || cost10 <= 0 {
		panic("mts: movement costs must be positive")
	}
	if start != 0 && start != 1 {
		panic(fmt.Sprintf("mts: start state must be 0 or 1, got %d", start))
	}
	return &TwoStateAsymmetric{cost01: cost01, cost10: cost10, current: start}
}

// Observe processes one task with the given per-state service costs and
// reports whether the system moved.
func (a *TwoStateAsymmetric) Observe(cost0, cost1 float64) (switched bool) {
	var here, there float64
	if a.current == 0 {
		here, there = cost0, cost1
	} else {
		here, there = cost1, cost0
	}
	a.excess += here - there
	if a.excess < 0 {
		a.excess = 0 // the current state is winning; no debt carried
	}
	moveCost := a.cost01
	if a.current == 1 {
		moveCost = a.cost10
	}
	if a.excess >= moveCost {
		a.current = 1 - a.current
		a.excess = 0
		a.switches++
		return true
	}
	return false
}

// Current returns the current state (0 or 1).
func (a *TwoStateAsymmetric) Current() int { return a.current }

// Switches returns the number of moves made.
func (a *TwoStateAsymmetric) Switches() int { return a.switches }
