package experiments

import (
	"math/rand"

	"oreo/internal/manager"
	"oreo/internal/policy"
	"oreo/internal/sim"
	"oreo/internal/workload"
)

// AppendixARow is one segment of the static-degradation study: how a
// layout optimized for the *first* workload segment performs as the
// workload drifts away from it (the technical report's Appendix A
// example, which motivates the whole paper: "a static layout results in
// almost no savings under changing workloads").
type AppendixARow struct {
	Segment  int
	Template string
	// StaticCost is the avg fraction scanned by the layout built for
	// segment 0; OwnCost by a layout built for this segment's template;
	// DefaultCost by the arrival-time layout.
	StaticCost  float64
	OwnCost     float64
	DefaultCost float64
}

// AppendixA reproduces the degradation study on a scenario: build a
// Qd-tree layout from the first segment's queries, then measure it (and
// the oracle per-segment layouts) on every segment.
func AppendixA(s *Scenario) []AppendixARow {
	gen := s.Generator(GenQdTree)
	if len(s.Stream.Segments) == 0 {
		return nil
	}
	first := s.Stream.Segments[0]
	firstQs := s.Stream.Queries[first.Start : first.Start+first.Length]
	static := gen.Generate(s.Data, workloadSample(firstQs, 300), s.Partitions)

	perTemplate := s.PerTemplateLayouts(gen)

	rows := make([]AppendixARow, 0, len(s.Stream.Segments))
	for i, seg := range s.Stream.Segments {
		qs := s.Stream.Queries[seg.Start : seg.Start+seg.Length]
		probe := workloadSample(qs, 200)
		row := AppendixARow{
			Segment:     i,
			Template:    s.Stream.Templates[seg.Template].Name,
			StaticCost:  static.AvgCost(probe),
			DefaultCost: s.Default.AvgCost(probe),
		}
		if own, ok := perTemplate[seg.Template]; ok {
			row.OwnCost = own.AvgCost(probe)
		}
		rows = append(rows, row)
	}
	return rows
}

// ColumnSweepComparison runs the §V-A column-sweep workload under
// sliding-window and reservoir-sample candidate generation, reproducing
// the argument for the SW default: on a workload that visits one column
// at a time, reservoir-sourced layouts are blends over multiple columns
// and lose to per-column specialists.
type ColumnSweepResult struct {
	Source    string
	QueryCost float64
	ReorgCost float64
	Switches  int
}

// ColumnSweep builds the sweep workload over the scenario's dataset
// (queriesPerCol per column) and runs OREO once per candidate source.
func ColumnSweep(s *Scenario, p RunParams, queriesPerCol int) []ColumnSweepResult {
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 17))
	stream := workload.GenerateColumnSweep(s.Data, queriesPerCol, rng)

	var out []ColumnSweepResult
	for _, src := range []manager.Source{manager.SourceWindow, manager.SourceReservoir} {
		pp := p
		pp.Source = src
		pol := s.newOREOOverStream(pp)
		res := sim.Run(stream.Queries, pol, pp.simConfig())
		out = append(out, ColumnSweepResult{
			Source:    src.String(),
			QueryCost: res.QueryCost,
			ReorgCost: res.ReorgCost,
			Switches:  res.Switches,
		})
	}
	return out
}

// newOREOOverStream builds an OREO policy bound to the scenario's
// dataset but independent of its synthetic stream (used by workloads
// generated outside the scenario, like the column sweep).
func (s *Scenario) newOREOOverStream(p RunParams) policy.Policy {
	return s.NewOREO(s.Generator(GenQdTree), p)
}
