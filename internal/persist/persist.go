// Package persist serializes data layouts so that a chosen layout (and
// OREO's candidate set) survives process restarts — the operational
// requirement for any system that maintains layouts alongside the data
// it partitions. The format is versioned JSON: the row→partition
// assignment is stored run-length encoded (layouts assign long runs of
// adjacent rows to the same partition, so RLE is compact), and the
// partition metadata is *recomputed* from the dataset at load time
// rather than trusted from disk, so stale or tampered files can never
// produce unsound skipping.
//
// The framing is exposed in two layers so other subsystems can reuse it
// without going through a file: CaptureLayout/CaptureState build the
// JSON-marshalable document types (LayoutDoc, StateDoc) in memory, and
// their Bind methods rebind a document to a live dataset. The
// replication decision stream (internal/replica) embeds these documents
// verbatim in its wire records, so a follower rebuilds layouts through
// exactly the integrity-checked path a restarting server does.
package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"oreo/internal/layout"
	"oreo/internal/table"
)

// FormatVersion identifies the on-disk layout encoding.
const FormatVersion = 1

// LayoutDoc is the serialized form of a layout: the row→partition
// assignment and enough shape to validate a rebind. Partition metadata
// is deliberately absent — it is recomputed from the dataset on Bind.
type LayoutDoc struct {
	Version       int      `json:"version"`
	Name          string   `json:"name"`
	NumPartitions int      `json:"num_partitions"`
	NumRows       int      `json:"num_rows"`
	Columns       []string `json:"columns"`
	// RLE is the run-length-encoded assignment: pairs of
	// (partitionID, runLength), flattened.
	RLE []int `json:"rle"`
}

// CaptureLayout builds the serialized form of a layout in memory.
func CaptureLayout(l *layout.Layout) (*LayoutDoc, error) {
	if l == nil || l.Part == nil {
		return nil, fmt.Errorf("persist: nil layout")
	}
	return &LayoutDoc{
		Version:       FormatVersion,
		Name:          l.Name,
		NumPartitions: l.Part.NumPartitions,
		NumRows:       len(l.Part.Assign),
		Columns:       l.Schema().Names(),
		RLE:           encodeRLE(l.Part.Assign),
	}, nil
}

// SaveLayout writes the layout to w.
func SaveLayout(w io.Writer, l *layout.Layout) error {
	f, err := CaptureLayout(l)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// LoadLayout reads a layout written by SaveLayout and rebinds it to the
// dataset, recomputing all partition metadata. The dataset must have
// the same schema (column names, in order) and row count as the one the
// layout was saved against.
func LoadLayout(r io.Reader, ds *table.Dataset) (*layout.Layout, error) {
	var f LayoutDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("persist: decoding layout: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported format version %d (want %d)", f.Version, FormatVersion)
	}
	return f.Bind(ds)
}

// Bind rebinds a layout document to the dataset, validating shape and
// recomputing all partition metadata from the live data — nothing in
// the document ever feeds partition skipping directly. Documents from
// a newer format version are rejected explicitly rather than
// misinterpreted: the version gate runs on every path a document
// reaches a live layout through (file load or replication stream), not
// just LoadLayout.
func (f *LayoutDoc) Bind(ds *table.Dataset) (*layout.Layout, error) {
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unknown layout format version %d (this build reads version %d)", f.Version, FormatVersion)
	}
	if f.NumRows != ds.NumRows() {
		return nil, fmt.Errorf("persist: layout covers %d rows, dataset has %d", f.NumRows, ds.NumRows())
	}
	names := ds.Schema().Names()
	if len(names) != len(f.Columns) {
		return nil, fmt.Errorf("persist: schema has %d columns, layout was saved with %d", len(names), len(f.Columns))
	}
	for i := range names {
		if names[i] != f.Columns[i] {
			return nil, fmt.Errorf("persist: column %d is %q, layout was saved with %q", i, names[i], f.Columns[i])
		}
	}
	assign, err := decodeRLE(f.RLE, f.NumRows)
	if err != nil {
		return nil, err
	}
	part, err := table.BuildPartitioning(ds, assign, f.NumPartitions)
	if err != nil {
		return nil, fmt.Errorf("persist: rebuilding partitioning: %w", err)
	}
	return layout.New(f.Name, ds.Schema(), part), nil
}

// encodeRLE run-length encodes the assignment as (value, length) pairs.
func encodeRLE(assign []int) []int {
	var out []int
	for i := 0; i < len(assign); {
		j := i
		for j < len(assign) && assign[j] == assign[i] {
			j++
		}
		out = append(out, assign[i], j-i)
		i = j
	}
	return out
}

// decodeRLE inverts encodeRLE, validating total length.
func decodeRLE(rle []int, wantLen int) ([]int, error) {
	if len(rle)%2 != 0 {
		return nil, fmt.Errorf("persist: malformed RLE (odd length %d)", len(rle))
	}
	out := make([]int, 0, wantLen)
	for i := 0; i < len(rle); i += 2 {
		val, n := rle[i], rle[i+1]
		if n <= 0 {
			return nil, fmt.Errorf("persist: malformed RLE run length %d", n)
		}
		if len(out)+n > wantLen {
			return nil, fmt.Errorf("persist: RLE overflows declared row count %d", wantLen)
		}
		for j := 0; j < n; j++ {
			out = append(out, val)
		}
	}
	if len(out) != wantLen {
		return nil, fmt.Errorf("persist: RLE decodes to %d rows, want %d", len(out), wantLen)
	}
	return out, nil
}
