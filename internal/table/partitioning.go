package table

import (
	"fmt"
	"sync"
)

// Partitioning is a materialized data layout for one dataset: an
// assignment of every row to a partition ID plus per-partition metadata.
//
// In the paper's terms this is the realization of a "data layout": the
// mapping function from records to partitions, together with the
// partition-level metadata that the query optimizer consults for
// skipping. Because the dataset under study is static, the mapping is
// materialized as a dense row→partition vector.
type Partitioning struct {
	NumPartitions int
	// Assign maps row index to partition ID in [0, NumPartitions).
	Assign []int
	// Meta holds one entry per partition, indexed by partition ID.
	Meta []*PartitionMeta
	// TotalRows is the number of rows across all partitions.
	TotalRows int

	// stats is the lazily built column-major mirror of Meta, shared by
	// every reader; see Stats. Laziness (rather than building inside
	// BuildPartitioning only) keeps partitionings reconstructed by other
	// paths — persistence, tests building the struct by hand — on the
	// same fast path.
	statsOnce sync.Once
	stats     *StatsBlock
}

// Stats returns the partitioning's column-major statistics block,
// building it on first use. The block assumes the partitioning's Meta is
// frozen (which BuildPartitioning guarantees); callers must not mutate
// Meta afterwards. Safe for concurrent use.
func (p *Partitioning) Stats() *StatsBlock {
	p.statsOnce.Do(func() { p.stats = buildStatsBlock(p) })
	return p.stats
}

// BuildPartitioning materializes a partitioning from a row→partition
// assignment, computing all partition metadata in one pass.
// assign must have one entry per dataset row; IDs must be in [0, k).
func BuildPartitioning(d *Dataset, assign []int, k int) (*Partitioning, error) {
	if len(assign) != d.NumRows() {
		return nil, fmt.Errorf("table: assignment covers %d rows, dataset has %d",
			len(assign), d.NumRows())
	}
	if k <= 0 {
		return nil, fmt.Errorf("table: invalid partition count %d", k)
	}
	p := &Partitioning{
		NumPartitions: k,
		Assign:        assign,
		Meta:          make([]*PartitionMeta, k),
		TotalRows:     d.NumRows(),
	}
	for i := 0; i < k; i++ {
		p.Meta[i] = NewPartitionMeta(i, d.Schema())
	}
	for r, pid := range assign {
		if pid < 0 || pid >= k {
			return nil, fmt.Errorf("table: row %d assigned to partition %d, want [0,%d)", r, pid, k)
		}
		p.Meta[pid].AddRow(d, r)
	}
	// Materialize the column-major statistics mirror now that Meta is
	// frozen, so the first query never pays the transpose.
	p.Stats()
	return p, nil
}

// MustBuildPartitioning is BuildPartitioning that panics on error, for
// use with programmatically constructed assignments that cannot fail.
func MustBuildPartitioning(d *Dataset, assign []int, k int) *Partitioning {
	p, err := BuildPartitioning(d, assign, k)
	if err != nil {
		panic(err)
	}
	return p
}

// RowsInPartition returns the row count of partition pid.
func (p *Partitioning) RowsInPartition(pid int) int {
	return p.Meta[pid].NumRows
}

// NonEmptyPartitions returns the number of partitions holding at least
// one row.
func (p *Partitioning) NonEmptyPartitions() int {
	n := 0
	for _, m := range p.Meta {
		if m.NumRows > 0 {
			n++
		}
	}
	return n
}
