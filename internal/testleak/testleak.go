// Package testleak is a dependency-free goroutine-leak checker for
// lifecycle-heavy tests.
//
// Check snapshots the set of live goroutines when called and registers
// a t.Cleanup that re-snapshots after the test body (and its earlier
// cleanups — Server.Close, Follower.Close, Publisher.Close — have run)
// and fails the test if any goroutine started during the test is still
// alive. Teardown is asynchronous almost everywhere in this repo (a
// closed channel is observed, not delivered), so the checker polls
// over a grace window rather than asserting instantly: a goroutine
// that is merely slow to exit passes; one that is parked forever
// fails, with its full labeled stack in the test log.
//
// The comparison is by goroutine ID against the before-snapshot, so
// long-lived runtime and testing goroutines never show up as leaks.
// Goroutines whose stacks are outside the code under test's control —
// net/http keep-alive readers on pooled connections, httptest
// accept loops mid-exit — are filtered as benign.
package testleak

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// DefaultGrace is how long Check waits for goroutines started during
// the test to finish before declaring them leaked.
const DefaultGrace = 2 * time.Second

// benign are stack substrings identifying goroutines that legitimately
// outlive a test body: they belong to the standard library's pooled
// machinery, not to the code under test.
var benign = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"runtime.goexit",
	// Pooled HTTP keep-alive connections park a reader/writer pair per
	// idle conn; the transport reaps them on its own schedule.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport).",
	// httptest.Server.Close returns once handlers finish; the accept
	// loop itself unwinds a beat later.
	"net/http.(*Server).Serve",
	"net/http/httptest.(*Server).",
	"os/signal.signal_recv",
}

// Check arms the leak detector for the current test. Call it first in
// the test body, before any fixture construction, so fixture cleanups
// (registered after) run before the leak scan (cleanups run LIFO).
func Check(t testing.TB) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		if t.Failed() {
			// The test already failed; leaked goroutines are likely a
			// symptom, and a second failure would bury the cause.
			return
		}
		leaked := wait(before, DefaultGrace)
		for _, g := range leaked {
			t.Errorf("leaked goroutine (still running %v after test end):\n%s", DefaultGrace, g.stack)
		}
	})
}

// goroutine is one parsed entry of a runtime.Stack(..., true) dump.
type goroutine struct {
	id    string
	stack string
}

// snapshot returns the live goroutines keyed by ID.
func snapshot() map[string]goroutine {
	// runtime.Stack truncates to the buffer; grow until it fits.
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[string]goroutine)
	for _, chunk := range strings.Split(string(buf), "\n\n") {
		header, _, ok := strings.Cut(chunk, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id, _, ok := strings.Cut(strings.TrimPrefix(header, "goroutine "), " ")
		if !ok {
			continue
		}
		out[id] = goroutine{id: id, stack: chunk}
	}
	return out
}

// leaksSince diffs the current goroutines against the before-set and
// drops benign stacks.
func leaksSince(before map[string]goroutine) []goroutine {
	var leaked []goroutine
	cur := snapshot()
	// The scanning goroutine itself is new when Check is called from a
	// cleanup on a different goroutine; identify it directly instead.
	self := fmt.Sprintf("%d", curGoroutineID())
	for id, g := range cur {
		if _, existed := before[id]; existed || id == self {
			continue
		}
		isBenign := false
		for _, pat := range benign {
			if strings.Contains(g.stack, pat) {
				isBenign = true
				break
			}
		}
		if !isBenign {
			leaked = append(leaked, g)
		}
	}
	// Deterministic report order regardless of map iteration.
	sort.Slice(leaked, func(i, j int) bool { return leakLess(leaked[i], leaked[j]) })
	return leaked
}

// leakLess orders leaked goroutines by numeric ID (IDs are
// monotonically assigned, so this is spawn order).
func leakLess(a, b goroutine) bool {
	if len(a.id) != len(b.id) {
		return len(a.id) < len(b.id)
	}
	return a.id < b.id
}

// wait polls until no leaks remain or the grace window expires,
// returning whatever is still alive at the deadline.
func wait(before map[string]goroutine, grace time.Duration) []goroutine {
	deadline := time.Now().Add(grace)
	interval := time.Millisecond
	for {
		leaked := leaksSince(before)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(interval)
		if interval < 50*time.Millisecond {
			interval *= 2
		}
	}
}

// curGoroutineID parses this goroutine's ID out of its own stack
// header. The runtime does not expose it; the header format
// ("goroutine N [state]:") is stable and already relied on by snapshot.
func curGoroutineID() uint64 {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	fields := strings.Fields(strings.TrimPrefix(string(buf), "goroutine "))
	var id uint64
	if len(fields) > 0 {
		fmt.Sscanf(fields[0], "%d", &id)
	}
	return id
}
