// Cluster: the control plane around a leader + follower fleet — load-
// driven scale-up, leader failure, fenced promotion, and archive-based
// bootstrap, all in one process.
//
// A cluster.Controller watches the fleet through the same /healthz and
// /metrics every operator sees and sizes the follower set with a
// threshold policy; here the actuator spawns followers in-process (the
// production ProcessActuator spawns oreoserve -follow processes — see
// cmd/oreoctl — but the controller only speaks the Actuator interface,
// so the demo fleet lives on goroutines). A replica.Archiver tails the
// leader's decision stream to disk. Then the leader is killed: the
// controller notices, promotes the most caught-up follower (generation
// 1 → 2), the old generation's writes bounce off the fence, and a
// fresh follower bootstraps from the archive instead of demanding a
// snapshot from the new leader.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"oreo"
	"oreo/client"
	"oreo/internal/cluster"
	"oreo/internal/replica"
	"oreo/internal/serve"
)

const rows = 20000

var ordersConfig = oreo.Config{
	Alpha: 4, WindowSize: 60, Partitions: 16,
	InitialSort: []string{"order_ts"}, Seed: 7,
}

// buildOrders is deterministic and closed-form: every member of the
// cluster loads byte-identical data, the precondition replication
// verifies through the snapshot's statistics-block gate.
func buildOrders() *oreo.Dataset {
	schema := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	b := oreo.NewDatasetBuilder(schema, rows)
	for i := 0; i < rows; i++ {
		b.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[i%4]), oreo.Float(float64(i%500)+0.25))
	}
	return b.Build()
}

func serveOn(h http.Handler) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }
}

var quiet = func(string, ...any) {}

// member is one in-process follower: a replica.Follower serving the
// full read surface, plus the promote endpoint oreoserve -follow
// mounts — promotion flips it to a live leader in place.
type member struct {
	fol  *replica.Follower
	url  string
	stop func()

	mu  sync.Mutex
	pub *replica.Publisher
}

func newMember(leader string) (*member, error) {
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Upstream: leader,
		Tables:   []replica.TableData{{Name: "orders", Dataset: buildOrders()}},
		Logf:     quiet,
	})
	if err != nil {
		return nil, err
	}
	if err := fol.WaitReady(context.Background()); err != nil {
		fol.Close()
		return nil, err
	}
	m := &member{fol: fol}
	folSrv := serve.NewServer(fol.Core(), serve.Config{})
	mux := http.NewServeMux()
	mux.Handle("/", folSrv.Handler())
	mux.HandleFunc("POST /v2/cluster/promote", func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.pub != nil {
			http.Error(w, `{"error":"already promoted"}`, http.StatusBadRequest)
			return
		}
		pub, err := replica.Promote(fol, serve.PromoteConfig{
			Tables: map[string]serve.PromoteTable{
				"orders": {Config: ordersConfig, SeedRows: rows},
			},
		}, replica.PublisherConfig{Logf: quiet})
		if err != nil {
			http.Error(w, `{"error":"promotion failed"}`, http.StatusServiceUnavailable)
			return
		}
		m.pub = pub
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fol.Core().Health())
	})
	// Replication endpoints activate on promotion, exactly like
	// oreoserve's pre-mounted handlers.
	delegate := func(h func(*replica.Publisher) http.Handler) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			m.mu.Lock()
			pub := m.pub
			m.mu.Unlock()
			if pub == nil {
				http.Error(w, `{"error":"still a follower"}`, http.StatusServiceUnavailable)
				return
			}
			h(pub).ServeHTTP(w, r)
		}
	}
	mux.Handle("POST /v2/replication/subscribe", delegate((*replica.Publisher).SubscribeHandler))
	mux.Handle("POST /v2/replication/observe", delegate((*replica.Publisher).ObserveHandler))
	m.url, m.stop = serveOn(mux)
	return m, nil
}

// fleet implements cluster.Actuator over in-process members: one
// spawn or retire per Ensure call, like the production ProcessActuator.
type fleet struct {
	members  []*member
	released []*member
}

func (f *fleet) Ensure(target int, leader string) (int, error) {
	if target > len(f.members) {
		m, err := newMember(leader)
		if err != nil {
			return len(f.members), err
		}
		f.members = append(f.members, m)
		fmt.Printf("actuator: spawned follower %s (caught up)\n", m.url)
	} else if target < len(f.members) {
		m := f.members[len(f.members)-1]
		f.members = f.members[:len(f.members)-1]
		m.fol.Close()
		m.stop()
		fmt.Printf("actuator: retired follower %s\n", m.url)
	}
	return len(f.members), nil
}

func (f *fleet) Followers() []string {
	urls := make([]string, len(f.members))
	for i, m := range f.members {
		urls[i] = m.url
	}
	return urls
}

func (f *fleet) Release(url string) bool {
	for i, m := range f.members {
		if m.url == url {
			f.members = append(f.members[:i], f.members[i+1:]...)
			f.released = append(f.released, m)
			fmt.Printf("actuator: released %s from management — it is the leader now\n", url)
			return true
		}
	}
	return false
}

// Retarget implements cluster.Actuator: the survivors were booted
// against the deposed leader and a follower's upstream is fixed for
// life, so each is torn down and rebuilt tracking the new leader —
// the in-process mirror of ProcessActuator's rolling replacement.
func (f *fleet) Retarget(leader string) int {
	old := f.members
	f.members = f.members[:0]
	for _, m := range old {
		m.fol.Close()
		m.stop()
		nm, err := newMember(leader)
		if err != nil {
			fmt.Printf("actuator: retarget respawn failed: %v\n", err)
			continue
		}
		f.members = append(f.members, nm)
		fmt.Printf("actuator: replaced follower %s with %s tracking the new leader\n", m.url, nm.url)
	}
	return len(f.members)
}

func (f *fleet) stopAll() {
	for _, m := range append(append([]*member(nil), f.members...), f.released...) {
		m.fol.Close()
		m.stop()
	}
}

func main() {
	ctx := context.Background()

	// --- The leader: optimizer + publisher at generation 1, with a
	// decision-log archiver tailing its stream to disk. ---
	m := oreo.NewMulti()
	if err := m.AddTable("orders", buildOrders(), ordersConfig); err != nil {
		panic(err)
	}
	leaderSrv, err := serve.New(m, serve.Config{})
	if err != nil {
		panic(err)
	}
	defer leaderSrv.Close()
	pub, err := replica.NewPublisher(leaderSrv.Core(), replica.PublisherConfig{Logf: quiet})
	if err != nil {
		panic(err)
	}
	pub.Mount(leaderSrv)
	leaderURL, stopLeader := serveOn(leaderSrv.Handler())
	fmt.Printf("leader serving on %s (generation %d)\n", leaderURL, pub.Generation())

	archiveDir, err := os.MkdirTemp("", "oreo-archive-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(archiveDir)
	arch, err := replica.NewArchiver(replica.ArchiverConfig{
		Upstream: leaderURL, Dir: archiveDir, Logf: quiet,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("archiver tailing the decision stream into %s\n", archiveDir)

	// --- The control plane: a controller driven tick-by-tick (oreoctl
	// runs the same loop on a timer), scaling on achieved QPS. ---
	act := &fleet{}
	ctl, err := cluster.NewController(cluster.ControllerConfig{
		Leader:        leaderURL,
		Policy:        cluster.ThresholdPolicy{MaxQPSPerNode: 5, MaxLagEpochs: 200},
		Actuator:      act,
		FailThreshold: 2,
		Logf: func(format string, args ...any) {
			fmt.Printf("controller: "+format+"\n", args...)
		},
	})
	if err != nil {
		panic(err)
	}
	ctl.Tick(ctx) // baseline scrape: no history yet, fleet holds at 0

	// --- Load until the actuator scales the fleet up. ---
	leader := leaderSrv.Core()
	drive := func(n, from int) {
		for i := from; i < from+n; i++ {
			lo := int64((i * 131) % (rows - 1000))
			if _, err := leader.Answer(ctx, serve.QueryRequest{Table: "orders", Preds: []serve.PredicateJSON{
				{Col: "order_ts", HasLo: true, HasHi: true, LoI: lo, HiI: lo + 999},
			}}); err != nil {
				panic(err)
			}
		}
	}
	drive(600, 0)
	ctl.Tick(ctx) // 600 requests this interval: QPS/node over the ceiling
	drive(400, 600)
	ctl.Tick(ctx) // still over the per-node ceiling on 2 nodes: one more
	sig := ctl.Signals()
	fmt.Printf("after load: %d followers (achieved %.0f QPS)\n", len(act.Followers()), sig.QPS)

	// Let the archive catch up to the leader's epoch before the crash.
	leaderPos := func() uint64 { pos, _ := leader.ReplicaPosition("orders"); return pos.Epoch }
	for arch.Position("orders") != leaderPos() {
		time.Sleep(time.Millisecond)
	}
	archivedEpoch := arch.Position("orders")
	arch.Close()
	fmt.Printf("archive sealed at epoch %d\n\n", archivedEpoch)

	// --- Kill the leader. ---
	stopLeader()
	fmt.Printf("leader killed; controller polls until FailThreshold=2 trips\n")
	ctl.Tick(ctx) // failure 1/2: one flaky poll must not depose a leader
	ctl.Tick(ctx) // failure 2/2: promote the most caught-up follower

	newLeaderURL := ctl.Leader()
	if newLeaderURL == leaderURL {
		panic("controller did not fail over")
	}
	c, err := client.New(newLeaderURL)
	if err != nil {
		panic(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("new leader %s: role=%s generation=%d epoch=%d\n\n",
		newLeaderURL, h.Role, h.Generation, h.LayoutEpochs["orders"])

	// --- The fence: the deposed generation's writes are rejected. A
	// revived old leader (or anything still speaking generation 1)
	// cannot slip observations into the new leader's decision loop. ---
	stale, _ := json.Marshal(replica.ObserveRequest{
		Generation: 1,
		Observations: []replica.Observation{{Table: "orders", ID: 1, Preds: []serve.PredicateJSON{
			{Col: "order_ts", HasLo: true, HasHi: true, LoI: 0, HiI: 99},
		}}},
	})
	resp, err := http.Post(newLeaderURL+"/v2/replication/observe", "application/json", bytes.NewReader(stale))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("observation batch from generation 1 → HTTP %d (fenced, not applied)\n\n", resp.StatusCode)

	// --- Archive bootstrap: a fresh follower replays the sealed log
	// offline and reaches the pre-crash epoch before touching the
	// network, so its first live subscription is a cheap resume — new
	// capacity without taxing the new leader with a snapshot. ---
	n, err := replica.ReplayArchive(archiveDir, func(*replica.Record) error { return nil })
	if err != nil {
		panic(err)
	}
	boot, err := replica.NewFollower(replica.FollowerConfig{
		Upstream:   newLeaderURL,
		Tables:     []replica.TableData{{Name: "orders", Dataset: buildOrders()}},
		ArchiveDir: archiveDir,
		Logf:       quiet,
	})
	if err != nil {
		panic(err)
	}
	defer boot.Close()
	pos, _ := boot.Core().ReplicaPosition("orders")
	fmt.Printf("bootstrap follower replayed %d archived records to epoch %d offline\n", n, pos.Epoch)
	if err := boot.WaitReady(ctx); err != nil {
		panic(err)
	}
	fmt.Printf("bootstrap follower live: %d snapshot applied (the archived one), resumes %d\n\n",
		boot.Stats().Snapshots, boot.Stats().Resumes)

	// --- The promoted leader runs its own optimizer now: it serves,
	// executes, and decides where the old leader left off, and the
	// bootstrapped follower tracks its stream. ---
	results, err := c.Query(ctx, client.Query{
		Table: "orders", Execute: true,
		Preds: []client.Predicate{client.IntRange("order_ts", 1000, 4999)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("query on the new leader: matched %d rows (want 4000), cost %.4f\n",
		results[0].Execution.MatchedRows, results[0].Cost)
	for {
		bp, _ := boot.Core().ReplicaPosition("orders")
		if bp.Epoch == archivedEpoch+1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Cross-check at the shared epoch: the follower that never met the
	// old leader answers bit-identically to the promoted one.
	promoted := act.released[0]
	probe := oreo.Query{Preds: []oreo.Predicate{oreo.IntRange("order_ts", 1000, 4999)}}
	lp, _ := promoted.fol.Core().ReplicaPosition("orders")
	bp, _ := boot.Core().ReplicaPosition("orders")
	ld, bd := lp.Snapshot.CostQuery(probe), bp.Snapshot.CostQuery(probe)
	fmt.Printf("probe at epoch %d: leader cost %.6f, bootstrap follower cost %.6f — bit-identical: %v\n",
		lp.Epoch, ld.Cost, bd.Cost,
		math.Float64bits(ld.Cost) == math.Float64bits(bd.Cost) &&
			len(ld.SurvivorPartitions()) == len(bd.SurvivorPartitions()))

	act.stopAll()
}
