package layout

import (
	"fmt"
	"hash/fnv"

	"oreo/internal/query"
	"oreo/internal/table"
)

// The traditional, workload-oblivious layouts of §VII-1 (round-robin
// and hash partitioning; range partitioning is SortGenerator). They are
// the floor every workload-aware layout must beat, and useful baselines
// in ablations: hash and round-robin spread every value across every
// partition, so metadata-based skipping degenerates to full scans for
// most predicates.

// RoundRobinGenerator assigns row i to partition i mod k.
type RoundRobinGenerator struct{}

// NewRoundRobinGenerator returns a round-robin partitioner.
func NewRoundRobinGenerator() *RoundRobinGenerator { return &RoundRobinGenerator{} }

// Name implements Generator.
func (g *RoundRobinGenerator) Name() string { return "roundrobin" }

// Generate implements Generator. The workload is ignored.
func (g *RoundRobinGenerator) Generate(d *table.Dataset, _ []query.Query, k int) *Layout {
	if k < 1 {
		k = 1
	}
	assign := make([]int, d.NumRows())
	for i := range assign {
		assign[i] = i % k
	}
	part := table.MustBuildPartitioning(d, assign, k)
	return New(fmt.Sprintf("roundrobin(k=%d)", k), d.Schema(), part)
}

// HashGenerator assigns rows to partitions by hashing one column.
// Queries with equality predicates on the hash column can skip (each
// value lands in exactly one partition), but range predicates cannot.
type HashGenerator struct {
	// Column is the hash key.
	Column string
}

// NewHashGenerator returns a hash partitioner on the given column.
func NewHashGenerator(column string) *HashGenerator {
	if column == "" {
		panic("layout: HashGenerator needs a column")
	}
	return &HashGenerator{Column: column}
}

// Name implements Generator.
func (g *HashGenerator) Name() string { return "hash" }

// Generate implements Generator. The workload is ignored.
func (g *HashGenerator) Generate(d *table.Dataset, _ []query.Query, k int) *Layout {
	if k < 1 {
		k = 1
	}
	ci, ok := d.Schema().Index(g.Column)
	if !ok {
		panic(fmt.Sprintf("layout: hash column %q not in schema", g.Column))
	}
	assign := make([]int, d.NumRows())
	var buf [8]byte
	for r := 0; r < d.NumRows(); r++ {
		h := fnv.New32a()
		switch d.Schema().Col(ci).Type {
		case table.Int64:
			v := uint64(d.Int64At(ci, r))
			for b := 0; b < 8; b++ {
				buf[b] = byte(v >> uint(8*b))
			}
			h.Write(buf[:])
		case table.Float64:
			// Hash the decimal rendering: collision-safe enough for
			// partitioning and avoids unsafe bit tricks.
			fmt.Fprintf(h, "%g", d.Float64At(ci, r))
		case table.String:
			h.Write([]byte(d.StringAt(ci, r)))
		}
		assign[r] = int(h.Sum32() % uint32(k))
	}
	part := table.MustBuildPartitioning(d, assign, k)
	return New(fmt.Sprintf("hash(%s,k=%d)", g.Column, k), d.Schema(), part)
}
