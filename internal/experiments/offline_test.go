package experiments

import (
	"testing"

	"oreo/internal/datagen"
	"oreo/internal/layout"
	"oreo/internal/query"
)

func offlineScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := Build(ScenarioConfig{
		Dataset:     datagen.TPCH,
		Rows:        6000,
		NumQueries:  600,
		NumSegments: 3,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCostMatrixMatchesInterpreted(t *testing.T) {
	s := offlineScenario(t)
	gen := s.Generator(GenQdTree)
	states := []*layout.Layout{s.Default, s.StaticLayout(gen)}
	qs := s.Stream.Queries[:50]

	costs := CostMatrix(states, qs)
	if len(costs) != len(qs) {
		t.Fatalf("matrix has %d rows, want %d", len(costs), len(qs))
	}
	for ti, q := range qs {
		for si, l := range states {
			want := query.FractionScanned(l.Schema(), l.Part, q)
			if costs[ti][si] != want {
				t.Fatalf("costs[%d][%d] = %v, interpreted %v", ti, si, costs[ti][si], want)
			}
		}
	}
}

func TestOfflineDPLowerBoundsStaying(t *testing.T) {
	s := offlineScenario(t)
	p := DefaultParams()
	res := OfflineDP(s, p)

	if len(res.States) == 0 || res.States[0] != s.Default.Name {
		t.Fatalf("state space %v must start at the default layout", res.States)
	}
	if res.Moves < 0 {
		t.Fatalf("negative moves %d", res.Moves)
	}
	// The DP optimum can never exceed the never-move schedule's cost.
	stay := 0.0
	for _, q := range s.Stream.Queries {
		stay += s.Default.Cost(q)
	}
	if res.Total > stay+1e-9 {
		t.Errorf("DP total %v exceeds stay-in-default cost %v", res.Total, stay)
	}
	if res.Total <= 0 {
		t.Errorf("DP total %v not positive on a non-trivial stream", res.Total)
	}
}
