module oreo

go 1.22
