// Package workload generates the query streams OREO is evaluated on.
//
// The paper's workload generator "behaves like a state machine and
// samples queries from one query template for an arbitrary amount of
// time before switching to another random query template". This package
// implements exactly that: a stream is a sequence of segments, each
// segment instantiates one template repeatedly with fresh random
// constants, and segment boundaries are where workload drift happens.
// Oracle baselines (MTS Optimal, Offline Optimal) are given the segment
// structure; online methods never see it.
package workload

import (
	"fmt"
	"math/rand"

	"oreo/internal/query"
)

// Template produces random instantiations of one query shape. Make must
// be deterministic given the rng state.
type Template struct {
	// Name identifies the template (e.g. "q6-discount-band").
	Name string
	// Make draws one query instance's predicates.
	Make func(rng *rand.Rand) []query.Predicate
}

// Segment is a maximal run of queries drawn from a single template.
type Segment struct {
	// Template is the index into the template library.
	Template int
	// Start is the stream position of the segment's first query.
	Start int
	// Length is the number of queries in the segment.
	Length int
}

// Stream is a fully materialized query workload plus its (hidden)
// segment structure.
type Stream struct {
	// Queries is the ordered query sequence.
	Queries []query.Query
	// Segments records the template runs, in order.
	Segments []Segment
	// Templates is the library the stream was drawn from.
	Templates []Template
}

// NumSwitches returns the number of template changes in the stream
// (segments minus one).
func (s *Stream) NumSwitches() int {
	if len(s.Segments) == 0 {
		return 0
	}
	return len(s.Segments) - 1
}

// Config controls stream generation.
type Config struct {
	// NumQueries is the total stream length.
	NumQueries int
	// NumSegments is how many template runs the stream contains. The
	// paper's TPC-H/TPC-DS workloads use 30,000 queries over 20 runs.
	NumSegments int
	// MinSegmentFrac bounds the shortest segment as a fraction of the
	// average segment length, preventing degenerate one-query segments.
	// Zero means the default of 0.3.
	MinSegmentFrac float64
}

// Generate draws a stream from the template library. Consecutive
// segments always use different templates (a "switch" changes the
// workload). Segment lengths are random but bounded below by
// MinSegmentFrac of the mean, matching the paper's "arbitrary amount of
// time" with enough queries per segment for reorganization to pay off.
func Generate(templates []Template, cfg Config, rng *rand.Rand) (*Stream, error) {
	if len(templates) == 0 {
		return nil, fmt.Errorf("workload: empty template library")
	}
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("workload: NumQueries must be positive, got %d", cfg.NumQueries)
	}
	if cfg.NumSegments <= 0 || cfg.NumSegments > cfg.NumQueries {
		return nil, fmt.Errorf("workload: NumSegments %d out of range (1..%d)",
			cfg.NumSegments, cfg.NumQueries)
	}
	minFrac := cfg.MinSegmentFrac
	//oreovet:ignore floatbits zero-value config sentinel; MinSegmentFrac is caller-set, exact
	if minFrac == 0 {
		minFrac = 0.3
	}

	lengths := segmentLengths(cfg.NumQueries, cfg.NumSegments, minFrac, rng)

	s := &Stream{Templates: templates}
	prev := -1
	pos := 0
	for _, length := range lengths {
		t := rng.Intn(len(templates))
		for len(templates) > 1 && t == prev {
			t = rng.Intn(len(templates))
		}
		prev = t
		s.Segments = append(s.Segments, Segment{Template: t, Start: pos, Length: length})
		for j := 0; j < length; j++ {
			s.Queries = append(s.Queries, query.Query{
				ID:       pos,
				Template: t,
				Preds:    templates[t].Make(rng),
			})
			pos++
		}
	}
	return s, nil
}

// MustGenerate is Generate that panics on error, for configurations
// constructed in code.
func MustGenerate(templates []Template, cfg Config, rng *rand.Rand) *Stream {
	s, err := Generate(templates, cfg, rng)
	if err != nil {
		panic(err)
	}
	return s
}

// segmentLengths splits total into n random parts, each at least
// minFrac * (total/n), summing exactly to total.
func segmentLengths(total, n int, minFrac float64, rng *rand.Rand) []int {
	mean := float64(total) / float64(n)
	minLen := int(minFrac * mean)
	if minLen < 1 {
		minLen = 1
	}
	// Draw positive weights and scale the slack above the minimum.
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.2 + rng.Float64()
		sum += weights[i]
	}
	slack := total - minLen*n
	if slack < 0 {
		// total too small for the minimum; fall back to equal split.
		return equalSplit(total, n)
	}
	lengths := make([]int, n)
	used := 0
	for i := range lengths {
		extra := int(float64(slack) * weights[i] / sum)
		lengths[i] = minLen + extra
		used += lengths[i]
	}
	// Distribute rounding remainder to the earliest segments.
	for i := 0; used < total; i = (i + 1) % n {
		lengths[i]++
		used++
	}
	return lengths
}

func equalSplit(total, n int) []int {
	lengths := make([]int, n)
	for i := range lengths {
		lengths[i] = total / n
	}
	for i := 0; i < total%n; i++ {
		lengths[i]++
	}
	return lengths
}

// QueriesByTemplate groups the stream's queries by template index.
// Oracle baselines use this to precompute per-template layouts.
func (s *Stream) QueriesByTemplate() map[int][]query.Query {
	byT := make(map[int][]query.Query)
	for _, q := range s.Queries {
		byT[q.Template] = append(byT[q.Template], q)
	}
	return byT
}
