// Command oreoload generates measured query load against a live
// oreoserve instance (leader or follower) through the client SDK.
//
// Closed loop — N workers, each one request in flight, the sustained-
// throughput question:
//
//	oreoload -url http://localhost:8080 -concurrency 8 -duration 10s
//
// Open loop — queries paced at a target arrival rate regardless of
// completions, the does-it-keep-up question. If the server cannot hold
// the rate, the achieved figure in the report drops below target:
//
//	oreoload -url http://localhost:8080 -qps 2000 -duration 10s
//
// The query pool is drawn from the workload generator's template
// machinery: -dataset fixture (default) targets the synthetic
// orders/events fixtures oreoserve boots with (use -rows to match the
// server's), while tpch, tpcds, and telemetry target the built-in
// evaluation datasets. -in replays a captured query log instead.
// -stream sends each worker's queries down one /v2/query/stream
// connection in ping-pong mode; -execute asks for row-level execution
// with a count aggregate, exercising the scan path.
//
// -append-ratio r mixes live writes into the run: every round(1/r)-th
// operation appends a deterministic row batch through
// POST /v2/tables/{t}/append instead of querying (leaders only). The
// schedule is by operation index, so an -n run appends exactly
// floor(n/round(1/r)) batches — a closed form CI asserts against the
// server's rows_appended counter:
//
//	oreoload -url http://localhost:8080 -n 400 -append-ratio 0.25
//
// -min-qps turns the run into an assertion: exit status 1 when the
// achieved rate lands under the floor or any query failed — the CI
// smoke-job contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"oreo/client"
	"oreo/internal/load"
	"oreo/internal/workload"
)

func main() {
	var (
		url     = flag.String("url", "", "base URL of a live oreoserve (required)")
		table   = flag.String("table", "orders", "served table the pool targets")
		dataset = flag.String("dataset", "fixture", "template source: fixture|tpch|tpcds|telemetry")
		rows    = flag.Int("rows", 20000, "fixture keyspace: the target table's row count (fixture templates)")
		poolN   = flag.Int("pool", 512, "distinct queries in the generated pool")
		segs    = flag.Int("segments", 4, "workload template segments in the pool")
		seed    = flag.Int64("seed", 1, "pool generation seed")
		in      = flag.String("in", "", "query log to draw the pool from instead of generating")

		n        = flag.Int("n", 0, "stop after this many queries (0 = run for -duration)")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		qps      = flag.Float64("qps", 0, "open-loop target rate (0 = closed loop)")
		conc     = flag.Int("concurrency", 0, "workers: in-flight requests (closed) or send parallelism (open); 0 = 1 closed, 16 open")
		stream   = flag.Bool("stream", false, "use one /v2/query/stream connection per worker (ping-pong) instead of POST /v1/query")
		execute  = flag.Bool("execute", false, "execute each query (scan + count aggregate), not just cost it")

		appendRatio = flag.Float64("append-ratio", 0, "fraction of operations that are live-write appends: every round(1/r)-th operation POSTs a row batch to /v2/tables/{t}/append (0 = read-only; leaders only)")
		appendBatch = flag.Int("append-batch", 1, "rows per append operation (-append-ratio mode)")

		minQPS   = flag.Float64("min-qps", 0, "fail (exit 1) when the achieved rate lands below this floor")
		progress = flag.Bool("progress", true, "print a live progress line every second")
	)
	flag.Parse()
	if err := run(*url, *table, *dataset, *in, *rows, *poolN, *segs, *seed,
		*n, *duration, *qps, *conc, *stream, *execute,
		*appendRatio, *appendBatch, *minQPS, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "oreoload:", err)
		os.Exit(1)
	}
}

func run(url, table, dataset, in string, rows, poolN, segs int, seed int64,
	n int, duration time.Duration, qps float64, conc int, stream, execute bool,
	appendRatio float64, appendBatch int, minQPS float64, progress bool) error {
	if url == "" {
		return fmt.Errorf("-url is required")
	}
	pool, err := buildPool(table, dataset, in, rows, poolN, segs, seed, execute)
	if err != nil {
		return err
	}

	spec := load.Spec{
		URL:         url,
		Queries:     pool,
		Count:       n,
		Duration:    duration,
		QPS:         qps,
		Concurrency: conc,
		Stream:      stream,
	}
	if appendRatio > 0 {
		makeRow := fixtureRowMaker(table, rows)
		if makeRow == nil {
			return fmt.Errorf("-append-ratio needs a fixture-schema table (orders, events), got %q", table)
		}
		spec.AppendRatio = appendRatio
		spec.AppendTable = table
		spec.MakeRow = makeRow
		spec.AppendBatch = appendBatch
	}
	if progress {
		spec.Progress = func(s load.Snapshot) {
			fmt.Fprintf(os.Stderr, "%8s  sent %8d  failed %d  %7.0f qps  p50 %v  p99 %v\n",
				s.Elapsed.Round(time.Second), s.Sent, s.Failed, s.QPS,
				s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond))
		}
	}

	rep, err := load.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d queries failed", rep.Failed, rep.Sent)
	}
	if minQPS > 0 && rep.QPS < minQPS {
		return fmt.Errorf("achieved %.0f qps, floor is %.0f", rep.QPS, minQPS)
	}
	return nil
}

// fixtureRowMaker returns the deterministic append-row generator for a
// fixture-schema table (also the shape -csv CI fixtures use), or nil
// for a table whose schema the generator does not know. Appended keys
// start at rows — past the fixture keyspace — so appended rows are
// range-addressable separately from the boot rows.
func fixtureRowMaker(table string, rows int) func(seq int) client.Row {
	switch table {
	case "orders":
		statuses := []string{"cancelled", "delivered", "pending", "returned"}
		return func(seq int) client.Row {
			return client.Row{
				"order_ts": rows + seq,
				"status":   statuses[seq%len(statuses)],
				"amount":   float64(seq%500) + 0.25,
			}
		}
	case "events":
		users := []string{"alice", "bob", "carol", "dave", "erin"}
		return func(seq int) client.Row {
			return client.Row{
				"ts":      rows + seq,
				"user":    users[seq%len(users)],
				"latency": float64(seq%80) + 0.5,
			}
		}
	}
	return nil
}

// buildPool assembles the query pool: a captured log when -in is set,
// a generated template mix otherwise.
func buildPool(table, dataset, in string, rows, poolN, segs int, seed int64, execute bool) ([]client.Query, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		qs, err := client.LoadTrace(f)
		if err != nil {
			return nil, err
		}
		if len(qs) == 0 {
			return nil, fmt.Errorf("query log %s is empty", in)
		}
		for i := range qs {
			if table != "" {
				qs[i].Table = table
			}
			qs[i].Execute = execute
			if execute {
				qs[i].Aggs = []client.Aggregate{client.Count()}
			}
		}
		return qs, nil
	}
	var templates []workload.Template
	if dataset == "fixture" {
		if templates = workload.FixtureTemplates(table, rows); templates == nil {
			return nil, fmt.Errorf("no fixture templates for table %q (have: orders, events)", table)
		}
	} else if templates = workload.TemplatesFor(dataset); templates == nil {
		return nil, fmt.Errorf("unknown dataset %q (have: fixture, tpch, tpcds, telemetry)", dataset)
	}
	return load.BuildPool(templates, table, poolN, segs, execute, seed)
}
