package replica

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"

	"oreo"
	"oreo/internal/metrics"
	"oreo/internal/persist"
	"oreo/internal/serve"
)

// DefaultSubscriberQueue bounds each subscriber's pending-record
// buffer. Deep enough to ride out flushes and scheduling hiccups at
// full decision rate; overflow costs the subscriber one in-stream
// re-snapshot, never the leader a stalled decision loop.
const DefaultSubscriberQueue = 256

// maxSubscribeBody caps the subscribe request body — a handful of
// table names and positions, nowhere near this.
const maxSubscribeBody = 1 << 20

// maxObserveBody caps one forwarded-observation batch.
const maxObserveBody = 8 << 20

// PublisherConfig parameterizes a Publisher.
type PublisherConfig struct {
	// QueueSize bounds each subscriber's pending-record buffer; zero
	// selects DefaultSubscriberQueue.
	QueueSize int
	// Generation is the leader's monotonic fencing term. Zero selects 1,
	// the term of a fresh (never-promoted) leader; a promotion passes
	// the deposed leader's term + 1 so followers can tell the new
	// lineage from a revival of the old one. The term must outlive the
	// process: a caller that can persist state should record the
	// adopted term (SaveTerm, or an archive) and pass it back at the
	// next boot — a restarted leader republishing at term 1 after a
	// failover to 2+ would be fenced out by its own fleet.
	Generation uint64
	// Logf receives operational messages (subscriber churn, forced
	// re-snapshots); nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Publisher is the leader half of replication: attached to a leader
// serve.Core, it observes every decision through the core's decision
// hook, encodes each as one wire record, and fans it out to all
// subscribed followers. It owns the two replication HTTP endpoints
// (mount with Mount or the individual handlers).
//
// The publisher never blocks the decision path: the hook does one JSON
// encode and N non-blocking channel sends. A subscriber that cannot
// keep up overflows its bounded queue, and its writer repairs the gap
// by discarding the backlog and re-snapshotting in-stream.
type Publisher struct {
	core      *serve.Core
	gen       uint64
	boot      string
	queueSize int
	logf      func(format string, args ...any)

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	subSeq uint64 // subscriber label allocator; under mu

	published   atomic.Uint64 // decision records offered to subscribers
	resnapshots atomic.Uint64 // in-stream gap repairs

	// Forwarded-observation outcome counters, registered on the leader
	// core's metrics registry (see registerMetrics).
	obsObserved *metrics.Counter
	obsDropped  *metrics.Counter
	obsRejected *metrics.Counter
	obsFenced   *metrics.Counter
}

// NewPublisher attaches a publisher to a leader core's decision hook.
// There should be exactly one publisher per core — attaching a second
// replaces the first's hook.
func NewPublisher(core *serve.Core, cfg PublisherConfig) (*Publisher, error) {
	if core == nil {
		return nil, fmt.Errorf("replica: nil core")
	}
	if core.Role() != serve.RoleLeader {
		return nil, fmt.Errorf("replica: publisher requires a leader core, got role %q", core.Role())
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = DefaultSubscriberQueue
	}
	if cfg.QueueSize < 0 {
		return nil, fmt.Errorf("replica: QueueSize must be positive, got %d", cfg.QueueSize)
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Generation == 0 {
		cfg.Generation = 1
	}
	p := &Publisher{
		core:      core,
		gen:       cfg.Generation,
		boot:      newBootID(),
		queueSize: cfg.QueueSize,
		logf:      cfg.Logf,
		subs:      make(map[*subscriber]struct{}),
	}
	p.registerMetrics()
	core.SetGeneration(p.gen)
	core.SetDecisionHook(p.publish)
	return p, nil
}

// registerMetrics attaches the publisher's series to the leader core's
// registry, so one /metrics scrape covers serving and replication.
// Callback registration is last-wins, so re-attaching a publisher to
// the same core (allowed: the newest hook wins) re-points the series
// instead of panicking.
func (p *Publisher) registerMetrics() {
	reg := p.core.Metrics()
	reg.GaugeFunc("oreo_replication_subscribers",
		"Connected replication subscribers (follower streams).", nil,
		func() float64 { return float64(p.Subscribers()) })
	reg.CounterFunc("oreo_replication_published_total",
		"Decision records offered to subscribers.", nil,
		func() float64 { return float64(p.published.Load()) })
	reg.CounterFunc("oreo_replication_resnapshots_total",
		"In-stream gap repairs: a lagging subscriber's backlog was discarded and its tables re-snapshotted.", nil,
		func() float64 { return float64(p.resnapshots.Load()) })
	p.obsObserved = reg.Counter("oreo_replication_observations_received_total",
		obsReceivedHelp, metrics.Labels{"result": "observed"})
	p.obsDropped = reg.Counter("oreo_replication_observations_received_total",
		obsReceivedHelp, metrics.Labels{"result": "dropped"})
	p.obsRejected = reg.Counter("oreo_replication_observations_received_total",
		obsReceivedHelp, metrics.Labels{"result": "rejected"})
	p.obsFenced = reg.Counter("oreo_replication_observations_received_total",
		obsReceivedHelp, metrics.Labels{"result": "fenced"})
	for _, table := range p.core.Tables() {
		t := table
		reg.GaugeFunc("oreo_replication_lag_epochs",
			"Leader-side replication lag: the current decision epoch minus the slowest subscriber's last-offered epoch for this table. 0 with no subscribers.",
			metrics.Labels{"table": t}, func() float64 { return float64(p.lagEpochs(t)) })
	}
}

const obsReceivedHelp = "Observations forwarded by followers, by outcome: observed (enqueued for a decision loop), dropped (queue full), rejected (invalid), fenced (stale leader term — whole batch refused)."

// lagEpochs computes the named table's leader-side lag in epochs: how
// far the slowest connected subscriber's stream position trails the
// published decision epoch. A subscriber that overflowed keeps its last
// successfully offered position until the in-stream re-snapshot lands,
// so a growing value is exactly "a follower is falling behind".
func (p *Publisher) lagEpochs(table string) uint64 {
	pos, ok := p.core.ReplicaPosition(table)
	if !ok {
		return 0
	}
	cur := pos.Epoch
	p.mu.Lock()
	defer p.mu.Unlock()
	var lag uint64
	for s := range p.subs {
		if !s.tables[table] {
			continue
		}
		if off := s.offered[table].Load(); cur > off && cur-off > lag {
			lag = cur - off
		}
	}
	return lag
}

// newBootID mints a publisher's boot-unique identity. Randomness — not
// a counter or a timestamp — is the point: no state needs persisting
// for two boots of the same process to be distinguishable.
func newBootID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("replica: reading boot ID entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Generation returns the leader's monotonic fencing term.
func (p *Publisher) Generation() uint64 { return p.gen }

// BootID returns the publisher's boot-unique identity, as carried on
// snapshot and resume records.
func (p *Publisher) BootID() string { return p.boot }

// Subscribers reports the current subscriber count.
func (p *Publisher) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// Published reports decision records offered to subscribers, and
// Resnapshots the in-stream gap repairs performed.
func (p *Publisher) Published() uint64   { return p.published.Load() }
func (p *Publisher) Resnapshots() uint64 { return p.resnapshots.Load() }

// Mount registers the replication endpoints on a serve.Server:
// POST /v2/replication/subscribe and POST /v2/replication/observe.
func (p *Publisher) Mount(srv *serve.Server) {
	srv.Mount("POST /v2/replication/subscribe", p.SubscribeHandler())
	srv.Mount("POST /v2/replication/observe", p.ObserveHandler())
}

// Resync forces a fresh snapshot onto every current subscriber — the
// operational "make the fleet re-sync now" lever (and the test hook
// for the gap-repair path). Safe anytime.
func (p *Publisher) Resync() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for s := range p.subs {
		s.markGapped()
	}
}

// DropSubscribers severs every current subscriber's stream. Followers
// reconnect on their own and negotiate resume-or-snapshot; the lever
// exists for connection draining (and exercises the reconnect path in
// tests).
func (p *Publisher) DropSubscribers() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for s := range p.subs {
		s.dropOnce.Do(func() { close(s.drop) })
	}
}

// subscriber is one follower connection's state.
type subscriber struct {
	tables map[string]bool // subscribed set; never empty
	ch     chan []byte     // encoded records, bounded
	kick   chan struct{}   // wakes the writer when gapped with an idle stream
	gapped atomic.Bool

	// offered tracks, per subscribed table, the highest epoch this
	// subscriber's stream has been handed (enqueued record, resume
	// acknowledgement, or sent snapshot). An overflowed offer does NOT
	// advance it, so the oreo_replication_lag_epochs gauge grows until
	// the in-stream re-snapshot repairs the gap. Keys are fixed at
	// subscribe time; values are atomics so the scrape never takes the
	// publisher lock per table.
	offered map[string]*atomic.Uint64

	drop     chan struct{} // closed by DropSubscribers
	dropOnce sync.Once
}

// markGapped flags the subscriber for an in-stream re-snapshot and
// wakes its writer, so the repair happens even if no further decision
// ever flows (the dropped record may have been the last one).
func (s *subscriber) markGapped() {
	s.gapped.Store(true)
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// offer hands an encoded record to the subscriber without blocking,
// advancing the table's offered-epoch watermark only on success.
func (s *subscriber) offer(data []byte, table string, epoch uint64) {
	select {
	case s.ch <- data:
		s.offered[table].Store(epoch)
	default:
		s.markGapped()
	}
}

// publish is the decision hook: encode once, fan out non-blocking.
// It runs on each table's event consumer goroutine — serialized per
// table, concurrent across tables — so per-table record order on every
// subscriber channel matches epoch order. All three update kinds share
// the path: decisions, append batches, and compactions are one totally
// ordered log.
func (p *Publisher) publish(table string, upd serve.DecisionUpdate) {
	p.mu.Lock()
	var interested []*subscriber
	for s := range p.subs {
		if s.tables[table] {
			//oreovet:ignore maporder subscriber fan-out order carries no data; each subscriber's own stream stays epoch-ordered per table
			interested = append(interested, s)
		}
	}
	p.mu.Unlock()
	if len(interested) == 0 {
		return
	}

	rec := Record{
		Table:    table,
		Epoch:    upd.Epoch,
		Cost:     upd.Cost,
		Switched: upd.Switched,
		Stats:    &upd.Snapshot.Stats,
	}
	if upd.Snapshot.Pending != nil {
		rec.Pending = upd.Snapshot.Pending.Name
	}
	gapAll := func(context string, err error) {
		// A state that cannot be captured cannot be replicated; force
		// every interested subscriber through the snapshot path rather
		// than shipping a record they cannot apply. (Unreachable for
		// states the serve core produces.)
		p.logf("replica: %s for %s: %v", context, table, err)
		for _, s := range interested {
			s.markGapped()
		}
	}
	switch upd.Kind {
	case serve.UpdateAppend:
		rec.Type = RecordAppend
		rec.DeltaRows = upd.DeltaRows
		rows, err := persist.CaptureRows(upd.Rows, 0, upd.Rows.NumRows())
		if err != nil {
			gapAll("capturing append batch", err)
			return
		}
		rec.Rows = rows
	case serve.UpdateCompact:
		rec.Type = RecordCompact
		rec.DeltaRows = upd.DeltaRows
		rec.Folded = upd.Folded
		// The compacted layout ships with stats + memo but no rows: the
		// follower reassembles the grown base from records it already
		// applied and binds this state against it.
		state, err := persist.CaptureState(upd.Snapshot.Serving)
		if err != nil {
			gapAll("capturing compacted state", err)
			return
		}
		rec.State = state
	default:
		rec.Type = RecordDecision
		if upd.Switched {
			doc, err := persist.CaptureLayout(upd.Snapshot.Serving)
			if err != nil {
				gapAll("capturing switched layout", err)
				return
			}
			rec.Layout = doc
		}
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		p.logf("replica: encoding decision record for %s: %v", table, err)
		for _, s := range interested {
			s.markGapped()
		}
		return
	}
	p.published.Add(1)
	for _, s := range interested {
		s.offer(data, table, upd.Epoch)
	}
}

// snapshotRecord captures one table's current state as a snapshot
// record. The whole position — epoch, snapshot, grown base, live delta
// — comes from the core's published replication position, so it is
// coherent by construction; the state document carries every row the
// follower's boot source cannot reproduce (compacted tail + delta).
func (p *Publisher) snapshotRecord(table string) (*Record, error) {
	pos, ok := p.core.ReplicaPosition(table)
	if !ok {
		return nil, fmt.Errorf("replica: no position for table %q", table)
	}
	state, err := persist.CaptureStateWithData(pos.Snapshot.Serving, pos.Dataset, pos.SeedRows, pos.Delta)
	if err != nil {
		return nil, fmt.Errorf("replica: capturing state for %q: %w", table, err)
	}
	rec := &Record{
		Type:       RecordSnapshot,
		Table:      table,
		Epoch:      pos.Epoch,
		Generation: p.gen,
		Boot:       p.boot,
		State:      state,
		Stats:      &pos.Snapshot.Stats,
	}
	if pos.Snapshot.Pending != nil {
		rec.Pending = pos.Snapshot.Pending.Name
	}
	if pos.Delta != nil {
		rec.DeltaRows = pos.Delta.NumRows()
	}
	return rec, nil
}

// SubscribeHandler returns the POST /v2/replication/subscribe handler:
// the NDJSON decision stream. See the package comment for the
// protocol.
func (p *Publisher) SubscribeHandler() http.Handler {
	return http.HandlerFunc(p.handleSubscribe)
}

func (p *Publisher) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	body := http.MaxBytesReader(w, r.Body, maxSubscribeBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("decoding subscribe request: %v", err))
		return
	}
	if req.Version > ProtocolVersion {
		writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("protocol version %d not supported (max %d)", req.Version, ProtocolVersion))
		return
	}
	if req.Generation > p.gen {
		// The follower has applied a higher term than ours: a newer
		// leader exists and this process is deposed. Refusing (terminal
		// on the follower side) is the fence — feeding it our stream
		// would roll its state back to a dead lineage.
		p.logf("replica: refusing subscriber at generation %d (own generation %d is stale)", req.Generation, p.gen)
		writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("subscriber generation %d exceeds leader generation %d: this leader is deposed", req.Generation, p.gen))
		return
	}
	served := p.core.Tables()
	servedSet := make(map[string]bool, len(served))
	for _, t := range served {
		servedSet[t] = true
	}
	tables := req.Tables
	if len(tables) == 0 {
		tables = served
	}
	set := make(map[string]bool, len(tables))
	for _, t := range tables {
		if !servedSet[t] {
			writeJSONError(w, http.StatusNotFound, fmt.Sprintf("unknown table %q", t))
			return
		}
		set[t] = true
	}

	sub := &subscriber{
		tables:  set,
		ch:      make(chan []byte, p.queueSize),
		kick:    make(chan struct{}, 1),
		offered: make(map[string]*atomic.Uint64, len(set)),
		drop:    make(chan struct{}),
	}
	for t := range set {
		sub.offered[t] = new(atomic.Uint64)
	}
	// Register before capturing the initial snapshots: decisions
	// processed while the snapshot is being written land in the queue
	// and follow it; the follower skips the ones the snapshot already
	// covers (epoch <= snapshot epoch), so the stream is gapless from
	// the first byte.
	p.mu.Lock()
	p.subs[sub] = struct{}{}
	p.subSeq++
	id := p.subSeq
	n := len(p.subs)
	p.mu.Unlock()
	// Each connection gets its own queue-depth series, torn down with
	// the connection: a churning fleet must not accrete dead label
	// series scrape over scrape.
	reg := p.core.Metrics()
	queueLabels := metrics.Labels{"subscriber": fmt.Sprintf("%d", id)}
	reg.GaugeFunc("oreo_replication_subscriber_queue_depth",
		"Encoded decision records buffered in this subscriber's queue, waiting for its stream writer. One series per connected subscriber; unregistered on disconnect.",
		queueLabels, func() float64 { return float64(len(sub.ch)) })
	p.logf("replica: subscriber %d connected (%d active, tables %v)", id, n, tables)
	defer func() {
		p.mu.Lock()
		delete(p.subs, sub)
		n := len(p.subs)
		p.mu.Unlock()
		reg.Unregister("oreo_replication_subscriber_queue_depth", queueLabels)
		p.logf("replica: subscriber %d disconnected (%d active)", id, n)
	}()

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()
	bw := bufio.NewWriter(w)
	writeRec := func(data []byte) bool {
		if _, err := bw.Write(data); err != nil {
			return false
		}
		return bw.WriteByte('\n') == nil
	}
	flush := func() {
		_ = bw.Flush()
		_ = rc.Flush()
	}

	// Initial records: resume where the follower's position matches,
	// snapshot otherwise. Registration order keeps multi-table
	// followers deterministic.
	sendSnapshots := func(names []string) bool {
		for _, t := range names {
			if !set[t] {
				continue
			}
			rec, err := p.snapshotRecord(t)
			if err != nil {
				p.logf("replica: %v", err)
				return false
			}
			data, err := json.Marshal(rec)
			if err != nil {
				p.logf("replica: encoding snapshot for %s: %v", t, err)
				return false
			}
			if !writeRec(data) {
				return false
			}
			// The stream now carries everything up to the snapshot epoch;
			// the lag gauge resets to whatever decided since.
			sub.offered[t].Store(rec.Epoch)
		}
		return true
	}
	for _, t := range served {
		if !set[t] {
			continue
		}
		pos, ok := p.core.ReplicaPosition(t)
		epoch := pos.Epoch
		// Resume requires the follower to EXPLICITLY claim this table's
		// position: a missing key must not read as "epoch 0" and match
		// an idle table, or a follower that never applied the table's
		// snapshot would be resumed into permanent unavailability.
		// And the claim must name THIS boot of the leader, not just its
		// term: a restarted leader re-reaches old epochs along a new
		// history, so a (generation, epoch) match from a previous boot —
		// easy for an archiver whose positions persist across arbitrary
		// downtime — must cost a snapshot, never a silent resume onto a
		// forked stream.
		claim, claimed := req.Positions[t]
		if ok && req.Generation == p.gen && req.Boot == p.boot && claimed && claim == epoch {
			data, err := json.Marshal(&Record{Type: RecordResume, Table: t, Epoch: epoch, Generation: p.gen, Boot: p.boot})
			if err != nil || !writeRec(data) {
				return
			}
			sub.offered[t].Store(epoch)
			continue
		}
		if !sendSnapshots([]string{t}) {
			return
		}
	}
	flush()

	ctx := r.Context()
	for {
		var data []byte
		select {
		case <-ctx.Done():
			return
		case <-sub.drop:
			return
		case <-sub.kick:
			// Woken for a gap with an idle stream; handled below.
		case data = <-sub.ch:
		}
		if sub.gapped.Swap(false) {
			// The queue overflowed (or a resync was forced): whatever is
			// buffered — including the record just dequeued — predates
			// the gap. Discard it all and re-snapshot every subscribed
			// table; records enqueued from here on carry epochs at or
			// past the snapshots, and the follower drops the overlap.
			for {
				select {
				case <-sub.ch:
					continue
				default:
				}
				break
			}
			p.resnapshots.Add(1)
			p.logf("replica: subscriber lagged; re-snapshotting %d table(s) in-stream", len(set))
			if !sendSnapshots(served) {
				return
			}
			flush()
			continue
		}
		if data == nil {
			continue // spurious kick with no gap
		}
		if !writeRec(data) {
			return
		}
		// Drain whatever else is ready before paying the flush, so a
		// bulk replay amortizes syscalls without adding latency when
		// the stream is quiet.
	drain:
		for {
			select {
			case more := <-sub.ch:
				if sub.gapped.Load() {
					// Overflow raced the drain: stop writing stale
					// records; the next loop iteration repairs.
					break drain
				}
				if !writeRec(more) {
					return
				}
			default:
				break drain
			}
		}
		flush()
	}
}

// ObserveHandler returns the POST /v2/replication/observe handler: the
// landing point for follower-forwarded observations.
func (p *Publisher) ObserveHandler() http.Handler {
	return http.HandlerFunc(p.handleObserve)
}

func (p *Publisher) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	body := http.MaxBytesReader(w, r.Body, maxObserveBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("decoding observe request: %v", err))
		return
	}
	if req.Generation != 0 && req.Generation != p.gen {
		// Fenced: the sender's worldview is pinned to a different leader
		// term. Stale terms (a follower still feeding a deposed leader's
		// lineage) must not teach this optimizer; a NEWER term tells this
		// leader it has itself been superseded. Either way the whole
		// batch is refused with a status the forwarder counts as
		// rejected, and loudly enough to show up in logs and /metrics.
		p.obsFenced.Inc()
		p.logf("replica: fenced observation batch at generation %d (leader at %d)", req.Generation, p.gen)
		writeJSONError(w, http.StatusConflict,
			fmt.Sprintf("observation batch fenced: generation %d, leader at %d", req.Generation, p.gen))
		return
	}
	var resp ObserveResponse
	for _, ob := range req.Observations {
		q := oreo.Query{ID: ob.ID, Template: -1}
		for _, pj := range ob.Preds {
			q.Preds = append(q.Preds, predFromWire(pj))
		}
		ok, err := p.core.Observe(ob.Table, q)
		switch {
		case err != nil:
			resp.Rejected++
			p.obsRejected.Inc()
		case ok:
			resp.Observed++
			p.obsObserved.Inc()
		default:
			resp.Dropped++
			p.obsDropped.Inc()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}

// writeJSONError writes the server's standard error shape.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: msg})
}
