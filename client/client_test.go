package client_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oreo"
	"oreo/client"
	"oreo/internal/replica"
	"oreo/internal/serve"
)

// newTestServer boots a real serving stack (Core + HTTP codec) over
// two deterministic fixture tables, so the SDK is tested against the
// actual wire surface, not a mock.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()

	orders := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "status", Type: oreo.String},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	statuses := []string{"cancelled", "delivered", "pending", "returned"}
	ob := oreo.NewDatasetBuilder(orders, 4000)
	for i := 0; i < 4000; i++ {
		ob.AppendRow(oreo.Int(int64(i)), oreo.Str(statuses[i%4]), oreo.Float(float64(i%500)+0.25))
	}

	events := oreo.NewSchema(
		oreo.Column{Name: "ts", Type: oreo.Int64},
		oreo.Column{Name: "user", Type: oreo.String},
	)
	users := []string{"alice", "bob", "carol"}
	eb := oreo.NewDatasetBuilder(events, 1500)
	for i := 0; i < 1500; i++ {
		eb.AppendRow(oreo.Int(int64(i)), oreo.Str(users[i%3]))
	}

	m := oreo.NewMulti()
	if err := m.AddTable("orders", ob.Build(), oreo.Config{
		Partitions: 16, InitialSort: []string{"order_ts"}, Seed: 1, TraceCapacity: 32,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTable("events", eb.Build(), oreo.Config{
		Partitions: 8, InitialSort: []string{"ts"}, Seed: 2, TraceCapacity: 32,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

func newTestClient(t *testing.T) *client.Client {
	t.Helper()
	ts := newTestServer(t)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The SDK's stdlib-only dependency contract is enforced by the
// stdlibonly analyzer in internal/analysis (run by `oreovet` in CI),
// which replaced the bespoke go/parser test that used to live here.

func TestQueryAndErrorMapping(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	results, err := c.Query(ctx, client.Query{
		Table: "orders",
		ID:    42,
		Preds: []client.Predicate{client.IntRange("order_ts", 500, 900)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Table != "orders" || results[0].QueryID != 42 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Cost <= 0 || len(results[0].SurvivorPartitions) == 0 {
		t.Fatalf("result carries no pruning answer: %+v", results[0])
	}

	// Routed query touches both tables.
	results, err = c.Query(ctx, client.Query{Preds: []client.Predicate{
		client.IntGE("order_ts", 3000),
		client.StrIn("user", "alice", "bob"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("routed to %d tables, want 2", len(results))
	}

	// Typed error mapping.
	_, err = c.Query(ctx, client.Query{Table: "nope", Preds: []client.Predicate{client.IntGE("x", 1)}})
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown table error = %v, want ErrNotFound", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 || !strings.Contains(apiErr.Message, "unknown table") {
		t.Fatalf("APIError = %+v", apiErr)
	}
	_, err = c.Query(ctx, client.Query{Table: "orders", Preds: []client.Predicate{client.StrEq("ghost", "x")}})
	if !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("unknown column error = %v, want ErrInvalid", err)
	}
}

func TestExecuteAggregates(t *testing.T) {
	c := newTestClient(t)

	results, err := c.Query(context.Background(), client.Query{
		Table:   "orders",
		Execute: true,
		Preds:   []client.Predicate{client.IntRange("order_ts", 100, 199)},
		Aggs:    []client.Aggregate{client.Count(), client.Sum("amount"), client.Min("status")},
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := results[0].Execution
	if ex == nil {
		t.Fatal("no execution in executed result")
	}
	if ex.MatchedRows != 100 {
		t.Fatalf("matched %d rows, want 100", ex.MatchedRows)
	}
	if len(ex.Aggregates) != 3 {
		t.Fatalf("aggregates = %+v", ex.Aggregates)
	}
	// sum(amount) over ts 100..199 = sum(100.25..199.25) = sum(100..199) + 100*0.25.
	if a := ex.Aggregates[1]; a.Type != "float64" || !a.Valid || a.ValueF != 14975 {
		t.Fatalf("sum aggregate = %+v", a)
	}
	if a := ex.Aggregates[2]; a.Type != "string" || a.ValueS != "cancelled" {
		t.Fatalf("min aggregate = %+v", a)
	}
}

func TestBatchPartialFailure(t *testing.T) {
	c := newTestClient(t)

	items, err := c.Batch(context.Background(), []client.Query{
		{ID: 1, Table: "orders", Preds: []client.Predicate{client.IntGE("order_ts", 3500)}},
		{ID: 2, Table: "nope", Preds: []client.Predicate{client.IntGE("order_ts", 1)}},
		{ID: 3, Preds: []client.Predicate{client.StrEq("user", "carol")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	if items[0].Error != "" || items[0].ID != 1 || len(items[0].Results) != 1 {
		t.Fatalf("item 0 = %+v", items[0])
	}
	if items[1].Error == "" || !strings.Contains(items[1].Error, "unknown table") {
		t.Fatalf("item 1 = %+v", items[1])
	}
	if items[2].Error != "" || items[2].Results[0].Table != "events" {
		t.Fatalf("item 2 = %+v", items[2])
	}

	// A whole-batch failure (empty batch) is the call's error.
	if _, err := c.Batch(context.Background(), nil); !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("empty batch error = %v, want ErrInvalid", err)
	}
}

func TestIntrospectionEndpoints(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	tables, err := c.Tables(ctx)
	if err != nil || len(tables) != 2 || tables[0] != "orders" {
		t.Fatalf("tables = %v, %v", tables, err)
	}
	lay, err := c.Layout(ctx, "orders")
	if err != nil || lay.NumPartitions != 16 || lay.TotalRows != 4000 {
		t.Fatalf("layout = %+v, %v", lay, err)
	}
	if _, err := c.Layout(ctx, "nope"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown table layout error = %v", err)
	}
	st, err := c.TableStats(ctx, "orders")
	if err != nil || st.Table != "orders" || st.QueueCapacity == 0 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
	tr, err := c.Trace(ctx, "events")
	if err != nil || tr.Table != "events" || tr.Events == nil {
		t.Fatalf("trace = %+v, %v", tr, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || len(h.Tables) != 2 {
		t.Fatalf("health = %+v, %v", h, err)
	}
}

func TestStreamPingPong(t *testing.T) {
	c := newTestClient(t)
	st, err := c.OpenStream(context.Background(), client.WithFlushEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Strict ping-pong: each answer read before the next query goes up.
	for i := 1; i <= 5; i++ {
		if err := st.Send(client.Query{
			ID: i, Table: "orders",
			Preds: []client.Predicate{client.IntRange("order_ts", int64(i*100), int64(i*100+50))},
		}); err != nil {
			t.Fatal(err)
		}
		item, err := st.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if item.ID != i || item.Error != "" || len(item.Results) != 1 {
			t.Fatalf("answer %d = %+v", i, item)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("after CloseSend: %v, want EOF", err)
	}
	if st.Sent() != 5 {
		t.Fatalf("sent = %d", st.Sent())
	}
}

func TestStreamBadOptionSurfacesTypedError(t *testing.T) {
	ts := newTestServer(t)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// flush_every is validated server-side; force a bad value through a
	// custom option to prove non-200 streams surface as typed errors.
	st, err := c.OpenStream(context.Background(), client.WithFlushEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.CloseSend()
	if _, err := st.Recv(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("recv on rejected stream = %v, want error", err)
	}
	// The failure is terminal and remembered: a drain loop that keeps
	// calling Recv gets the same error again, never a panic or a hang.
	if _, err := st.Recv(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("second recv on rejected stream = %v, want same error", err)
	}
}

// TestReplayUnreachableServer pins the failure path of the whole
// stream machinery: when nothing is listening, Replay (whose deferred
// Close must not block on an exchange that already failed) returns the
// transport error promptly instead of hanging.
func TestReplayUnreachableServer(t *testing.T) {
	c, err := client.New("http://127.0.0.1:1") // port 1: nothing listens
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Replay(context.Background(), []client.Query{
			{ID: 1, Preds: []client.Predicate{client.IntGE("x", 1)}},
		}, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("replay against nothing succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("replay against an unreachable server hung")
	}
}

func TestReplay(t *testing.T) {
	c := newTestClient(t)

	const n = 300
	queries := make([]client.Query, n)
	for i := range queries {
		switch i % 3 {
		case 0:
			queries[i] = client.Query{ID: i + 1, Table: "orders",
				Preds: []client.Predicate{client.IntRange("order_ts", int64(i*10), int64(i*10+500))}}
		case 1:
			queries[i] = client.Query{ID: i + 1,
				Preds: []client.Predicate{client.StrEq("user", "bob")}}
		default:
			queries[i] = client.Query{ID: i + 1, Table: "orders", Execute: true,
				Preds: []client.Predicate{client.FloatGE("amount", 250)},
				Aggs:  []client.Aggregate{client.Count()}}
		}
	}

	var seen int
	items, err := c.Replay(context.Background(), queries, func(client.BatchItem) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != n || seen != n {
		t.Fatalf("replay answered %d items (callback saw %d), want %d", len(items), seen, n)
	}
	for i, it := range items {
		if it.Index != i || it.ID != i+1 {
			t.Fatalf("item %d out of order: %+v", i, it)
		}
		if it.Error != "" {
			t.Fatalf("item %d failed: %s", i, it.Error)
		}
		if i%3 == 2 && it.Results[0].Execution == nil {
			t.Fatalf("executed item %d has no execution: %+v", i, it)
		}
	}
}

func TestLoadTrace(t *testing.T) {
	trace := `{"id":1,"preds":[{"col":"order_ts","has_lo":true,"has_hi":true,"lo_i":10,"hi_i":20}]}
{"id":2,"template":3,"preds":[{"col":"user","in":["alice"]}]}
`
	qs, err := client.LoadTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].ID != 1 || qs[1].Preds[0].In[0] != "alice" {
		t.Fatalf("trace = %+v", qs)
	}
	if _, err := client.LoadTrace(strings.NewReader("{bad json\n")); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := client.New("ftp://host"); err == nil {
		t.Error("ftp scheme accepted")
	}
	if _, err := client.New("http://host:8080/"); err != nil {
		t.Errorf("trailing slash rejected: %v", err)
	}
}

// TestSubscribeAndFollowerHealth covers the SDK's replication surface:
// Subscribe tails the leader's decision stream (snapshots first, then
// one decision per processed query) and Health exposes the
// follower-aware fields (role, layout epochs).
func TestSubscribeAndFollowerHealth(t *testing.T) {
	orders := oreo.NewSchema(
		oreo.Column{Name: "order_ts", Type: oreo.Int64},
		oreo.Column{Name: "amount", Type: oreo.Float64},
	)
	ob := oreo.NewDatasetBuilder(orders, 2000)
	for i := 0; i < 2000; i++ {
		ob.AppendRow(oreo.Int(int64(i)), oreo.Float(float64(i%100)))
	}
	m := oreo.NewMulti()
	if err := m.AddTable("orders", ob.Build(), oreo.Config{
		Partitions: 8, InitialSort: []string{"order_ts"}, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(m, serve.Config{Advertise: "http://leader.example:8080"})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := replica.NewPublisher(s.Core(), replica.PublisherConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	pub.Mount(s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx, client.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	first, err := sub.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if first.Type != "snapshot" || first.Table != "orders" || first.Epoch != 0 {
		t.Fatalf("first record = %+v, want orders snapshot at epoch 0", first)
	}
	if first.Generation == 0 || len(first.State) == 0 {
		t.Fatalf("snapshot record missing generation or state: %+v", first)
	}

	// One served query becomes one decision record at epoch 1.
	if _, err := c.Query(ctx, client.Query{
		Table: "orders",
		Preds: []client.Predicate{client.IntRange("order_ts", 10, 500)},
	}); err != nil {
		t.Fatal(err)
	}
	dec, err := sub.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Type != "decision" || dec.Epoch != 1 || dec.Stats == nil || dec.Stats.Queries != 1 {
		t.Fatalf("decision record = %+v", dec)
	}

	// Unknown tables are rejected with the typed error.
	if _, err := c.Subscribe(ctx, client.SubscribeOptions{Tables: []string{"nope"}}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown-table subscribe error = %v", err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "leader" || h.Advertise != "http://leader.example:8080" {
		t.Fatalf("health role/advertise = %q/%q", h.Role, h.Advertise)
	}
	if h.LayoutEpochs["orders"] != 1 {
		t.Fatalf("layout epoch = %d, want 1", h.LayoutEpochs["orders"])
	}
}

// TestAppendCompactRoundTrip drives the live write surface end to end:
// append, immediate visibility, bulk load in batches, explicit
// compaction, and the typed-error contract on bad writes.
func TestAppendCompactRoundTrip(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	ack, err := c.Append(ctx, "orders", []client.Row{
		{"order_ts": 5000, "status": "new", "amount": 12.5},
		{"order_ts": 5001, "status": "new", "amount": 13.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Table != "orders" || ack.Appended != 2 || ack.DeltaRows != 2 || ack.Epoch == 0 {
		t.Fatalf("append ack = %+v", ack)
	}

	// Acknowledged rows answer queries immediately.
	results, err := c.Query(ctx, client.Query{
		Table:   "orders",
		Preds:   []client.Predicate{client.IntGE("order_ts", 5000)},
		Execute: true,
		Aggs:    []client.Aggregate{client.Count(), client.Sum("amount")},
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := results[0].Execution
	if ex == nil || ex.MatchedRows != 2 || ex.DeltaRows != 2 {
		t.Fatalf("appended rows not visible: %+v", results[0])
	}
	if got := ex.Aggregates[1].ValueF; got != 26 {
		t.Fatalf("sum(amount) over appended rows = %v, want 26", got)
	}

	// BulkLoad splits into ordered batches; the final ack sums them.
	rows := make([]client.Row, 25)
	for i := range rows {
		rows[i] = client.Row{"order_ts": 6000 + i, "status": "bulk", "amount": 1.0}
	}
	ack, err = c.BulkLoad(ctx, "orders", rows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Appended != 25 || ack.DeltaRows != 27 {
		t.Fatalf("bulk ack = %+v, want appended 25, delta 27", ack)
	}

	// Compact folds everything; a second fold is an empty no-op.
	cr, err := c.Compact(ctx, "orders")
	if err != nil {
		t.Fatal(err)
	}
	if cr.Folded != 27 || cr.DeltaRows != 0 {
		t.Fatalf("compact = %+v, want folded 27", cr)
	}
	lay, err := c.Layout(ctx, "orders")
	if err != nil {
		t.Fatal(err)
	}
	if lay.TotalRows != 4027 || lay.DeltaRows != 0 {
		t.Fatalf("post-compact layout = %+v, want 4027 rows, no delta", lay)
	}
	if cr, err = c.Compact(ctx, "orders"); err != nil || cr.Folded != 0 {
		t.Fatalf("empty compact = %+v, %v", cr, err)
	}

	// Stats and health surface the write counters.
	st, err := c.TableStats(ctx, "orders")
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsAppended != 27 || st.Compactions != 1 || st.DeltaRows != 0 {
		t.Fatalf("stats = appended %d, compactions %d, delta %d", st.RowsAppended, st.Compactions, st.DeltaRows)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.DeltaRows["orders"] != 0 {
		t.Fatalf("healthz delta_rows = %v", h.DeltaRows)
	}

	// Typed errors: unknown table is ErrNotFound, a malformed row is
	// ErrInvalid, and neither lands anything.
	if _, err := c.Append(ctx, "nope", []client.Row{{"x": 1}}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("append to unknown table: %v, want ErrNotFound", err)
	}
	if _, err := c.Append(ctx, "orders", []client.Row{{"order_ts": 1}}); !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("append with missing columns: %v, want ErrInvalid", err)
	}
	if _, err := c.Compact(ctx, "nope"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("compact unknown table: %v, want ErrNotFound", err)
	}
}

// TestBulkLoadPartialFailure pins the mid-load contract: when a later
// batch fails, BulkLoad reports the rows that DID land alongside the
// error.
func TestBulkLoadPartialFailure(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	rows := make([]client.Row, 30)
	for i := range rows {
		rows[i] = client.Row{"order_ts": 7000 + i, "status": "ok", "amount": 1.0}
	}
	rows[25] = client.Row{"order_ts": "broken"} // poisons the third batch of 10
	ack, err := c.BulkLoad(ctx, "orders", rows, 10)
	if err == nil {
		t.Fatal("poisoned bulk load succeeded")
	}
	if !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("bulk load error = %v, want ErrInvalid", err)
	}
	if ack == nil || ack.Appended != 20 {
		t.Fatalf("partial ack = %+v, want 20 rows landed", ack)
	}
	if !strings.Contains(err.Error(), "after 20 of 30 rows") {
		t.Fatalf("error %q does not name the landed count", err)
	}
}
