// Package bloom implements a small Bloom filter used as partition-level
// metadata for high-cardinality categorical columns. When a partition's
// exact distinct set overflows its budget, systems like Parquet fall
// back to Bloom filters: membership tests then admit false positives
// (the partition is scanned unnecessarily) but never false negatives
// (a matching partition is never skipped), which preserves the
// soundness of partition skipping.
//
// The implementation is the standard double-hashing scheme of Kirsch &
// Mitzenmauer: k indexes derived from two 64-bit FNV-1a halves.
package bloom

import "hash/fnv"

// Filter is a fixed-size Bloom filter. The zero value is unusable;
// construct with New.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes int
}

// New returns a filter with the given size in bits (rounded up to a
// multiple of 64) and number of hash functions. A 1024-bit filter with
// 4 hashes holds ~100 values at ~2% false-positive rate — ample for
// partition metadata, where a false positive merely costs one scan.
func New(bits int, hashes int) *Filter {
	if bits <= 0 {
		panic("bloom: bits must be positive")
	}
	if hashes <= 0 {
		panic("bloom: hashes must be positive")
	}
	words := (bits + 63) / 64
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  uint64(words * 64),
		hashes: hashes,
	}
}

// hash2 returns two independent 64-bit hashes of s: the FNV-1a hash and
// a splitmix64-style remix of it. Deriving the second hash by appending
// a salt byte to FNV would make it an affine function of the first
// (FNV's step is linear), which degenerates double hashing; the
// multiplicative finalizer breaks that correlation.
func hash2(s string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	h1 := h.Sum64()

	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := z ^ (z >> 31)
	if h2%2 == 0 { // ensure h2 is odd so strides cover the table
		h2++
	}
	return h1, h2
}

// HashPair returns the double-hashing pair for a value, for callers that
// probe many filters with the same value (e.g. a compiled IN-predicate
// tested against every partition's filter). The pair is stable for a
// given value and can be reused with MayContainHash.
func HashPair(s string) (h1, h2 uint64) { return hash2(s) }

// Add inserts a value.
func (f *Filter) Add(s string) {
	h1, h2 := hash2(s)
	for i := 0; i < f.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % f.nbits
		f.bits[idx/64] |= 1 << (idx % 64)
	}
}

// MayContain reports whether the value may have been added. False means
// definitely absent; true means present or a false positive.
func (f *Filter) MayContain(s string) bool {
	h1, h2 := hash2(s)
	return f.MayContainHash(h1, h2)
}

// MayContainHash is MayContain for a value pre-hashed with HashPair.
func (f *Filter) MayContainHash(h1, h2 uint64) bool {
	for i := 0; i < f.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the filter: further Adds on
// either side do not affect the other. Delta segments hand immutable
// stats snapshots to concurrent readers this way.
func (f *Filter) Clone() *Filter {
	bits := make([]uint64, len(f.bits))
	copy(bits, f.bits)
	return &Filter{bits: bits, nbits: f.nbits, hashes: f.hashes}
}

// FillRatio returns the fraction of set bits — a saturation diagnostic
// (filters past ~50% fill stop pruning effectively).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(f.nbits)
}
