package workload

import (
	"math/rand"

	"oreo/internal/query"
)

// FixtureTemplates returns the template library for one of the serving
// fixture tables (cmd/oreoserve -tables orders,events, and the CSV
// fixture the CI smoke jobs ingest). rows is the table's row count —
// the fixtures key their sort column 0..rows-1, so the windows below
// are drawn inside that range. Unknown table names return nil.
//
// The mix mirrors the paper's workload shape on a schema small enough
// to boot in a smoke test: time-window probes at two widths, a
// categorical filter, the combined categorical+window shape, and a
// value-band probe on the float column — enough drift across templates
// that a segment switch changes which layout wins.
func FixtureTemplates(table string, rows int) []Template {
	if rows < 100 {
		rows = 100
	}
	n := int64(rows)
	window := func(rng *rand.Rand, width int64) (int64, int64) {
		if width >= n {
			return 0, n - 1
		}
		lo := rng.Int63n(n - width)
		return lo, lo + width
	}
	switch table {
	case "orders":
		statuses := []string{"cancelled", "delivered", "pending", "returned"}
		return []Template{
			{
				// Narrow recent-window probe: ~1% of the keyspace.
				Name: "ts-narrow",
				Make: func(rng *rand.Rand) []query.Predicate {
					lo, hi := window(rng, n/100+1)
					return []query.Predicate{query.IntRange("order_ts", lo, hi)}
				},
			},
			{
				// Wide reporting window: ~10%.
				Name: "ts-wide",
				Make: func(rng *rand.Rand) []query.Predicate {
					lo, hi := window(rng, n/10+1)
					return []query.Predicate{query.IntRange("order_ts", lo, hi)}
				},
			},
			{
				Name: "status-eq",
				Make: func(rng *rand.Rand) []query.Predicate {
					return []query.Predicate{query.StrEq("status", statuses[rng.Intn(len(statuses))])}
				},
			},
			{
				Name: "status-window",
				Make: func(rng *rand.Rand) []query.Predicate {
					lo, hi := window(rng, n/20+1)
					return []query.Predicate{
						query.StrEq("status", statuses[rng.Intn(len(statuses))]),
						query.IntRange("order_ts", lo, hi),
					}
				},
			},
			{
				// Amount band: the fixture draws amounts uniformly in
				// [0, 500).
				Name: "amount-band",
				Make: func(rng *rand.Rand) []query.Predicate {
					lo := rng.Float64() * 400
					return []query.Predicate{query.FloatRange("amount", lo, lo+60)}
				},
			},
		}
	case "events":
		users := []string{"alice", "bob", "carol", "dave", "erin"}
		return []Template{
			{
				Name: "ts-window",
				Make: func(rng *rand.Rand) []query.Predicate {
					lo, hi := window(rng, n/50+1)
					return []query.Predicate{query.IntRange("ts", lo, hi)}
				},
			},
			{
				Name: "user-eq",
				Make: func(rng *rand.Rand) []query.Predicate {
					return []query.Predicate{query.StrEq("user", users[rng.Intn(len(users))])}
				},
			},
			{
				// Slow-events probe: the fixture's latency is exponential
				// with mean 80, so 200+ is a sparse tail.
				Name: "slow-events",
				Make: func(rng *rand.Rand) []query.Predicate {
					return []query.Predicate{query.FloatGE("latency", 200+rng.Float64()*200)}
				},
			},
			{
				Name: "user-window",
				Make: func(rng *rand.Rand) []query.Predicate {
					lo, hi := window(rng, n/20+1)
					return []query.Predicate{
						query.StrEq("user", users[rng.Intn(len(users))]),
						query.IntRange("ts", lo, hi),
					}
				},
			},
		}
	default:
		return nil
	}
}
