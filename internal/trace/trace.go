// Package trace records the decision history of an OREO run: layout
// admissions and prunes, reorganizations, and MTS phase boundaries.
// Operators of a system that reorganizes itself need to answer "why did
// it rewrite the table at 3am" — the event log is that answer. Events
// carry the stream position and enough context to reconstruct the
// decision, and the Recorder is cheap enough to leave on (bounded ring
// buffer, no allocation beyond the event records).
package trace

import (
	"fmt"
	"io"
)

// Kind enumerates event types.
type Kind int

const (
	// EventAdmit: a candidate layout passed the ε-distance test and
	// joined the dynamic state space.
	EventAdmit Kind = iota
	// EventReject: a candidate was generated but was ε-similar to an
	// incumbent.
	EventReject
	// EventPrune: a state was removed to respect the state-space cap.
	EventPrune
	// EventSwitch: the reorganizer moved to a different layout.
	EventSwitch
	// EventPhase: all counters saturated; a new MTS phase began.
	EventPhase
)

// String returns the event kind's name.
func (k Kind) String() string {
	switch k {
	case EventAdmit:
		return "admit"
	case EventReject:
		return "reject"
	case EventPrune:
		return "prune"
	case EventSwitch:
		return "switch"
	case EventPhase:
		return "phase"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded decision.
type Event struct {
	// Seq is the stream position (queries processed so far) when the
	// event fired.
	Seq int
	// Kind classifies the event.
	Kind Kind
	// Layout names the layout involved (admitted, pruned, switched to).
	Layout string
	// Detail is free-form context ("from=<layout>", "dist=0.03", ...).
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("q%-8d %-7s %s", e.Seq, e.Kind, e.Layout)
	}
	return fmt.Sprintf("q%-8d %-7s %-40s %s", e.Seq, e.Kind, e.Layout, e.Detail)
}

// Recorder is a bounded ring buffer of events. The zero value discards
// everything; construct with NewRecorder. Not safe for concurrent use
// (OREO itself is single-threaded per table).
type Recorder struct {
	buf   []Event
	head  int
	count int
	total int
	seq   int
}

// NewRecorder returns a recorder keeping the most recent capacity
// events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic("trace: recorder capacity must be positive")
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// SetSeq updates the stream position stamped on subsequent events.
func (r *Recorder) SetSeq(seq int) {
	if r == nil {
		return
	}
	r.seq = seq
}

// Record appends an event (nil receiver discards).
func (r *Recorder) Record(kind Kind, layout, detail string) {
	if r == nil || r.buf == nil {
		return
	}
	e := Event{Seq: r.seq, Kind: kind, Layout: layout, Detail: detail}
	if r.count < len(r.buf) {
		r.buf[(r.head+r.count)%len(r.buf)] = e
		r.count++
	} else {
		r.buf[r.head] = e
		r.head = (r.head + 1) % len(r.buf)
	}
	r.total++
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Total returns the lifetime number of events recorded (including
// evicted ones).
func (r *Recorder) Total() int {
	if r == nil {
		return 0
	}
	return r.total
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// Dump writes the retained events to w, one line each.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
