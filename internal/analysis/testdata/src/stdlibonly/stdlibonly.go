// Package stdlibonly seeds a violation for the stdlibonly analyzer:
// a designated leaf package reaching back into the module.
package stdlibonly

import (
	"fmt"

	"oreo/internal/zorder" // want "reaches back into the module"
)

func use() string {
	return fmt.Sprint(zorder.MaxDims)
}

var _ = use
